//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free guard
//! API: `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s. Poisoning is ignored (parking_lot locks do not poison),
//! so a panic while holding a lock does not wedge later acquirers.

use std::sync::{self, TryLockError};

/// Mutual exclusion lock (subset of `parking_lot::Mutex`).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader-writer lock (subset of `parking_lot::RwLock`).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn no_poisoning_after_panic() {
        let l = std::sync::Arc::new(Mutex::new(0u8));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable after a panicking holder.
        *l.lock() += 1;
        assert_eq!(*l.lock(), 1);
    }
}
