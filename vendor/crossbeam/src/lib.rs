//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `crossbeam::thread::scope` API surface the SPOT executor
//! uses, implemented on top of `std::thread::scope` (stable since Rust
//! 1.63). Semantics match crossbeam's: spawned threads may borrow from
//! the enclosing stack frame, `scope` joins all threads before
//! returning, and a panicking child surfaces as `Err` from `scope` /
//! `join`.

/// Scoped threads (subset of `crossbeam::thread`).
pub mod thread {
    use std::any::Any;

    /// Result of joining a scoped thread: `Err` carries the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle that can spawn borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle awaiting one spawned thread's result.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Creates a scope in which borrowing threads can be spawned; joins
    /// all of them before returning. Returns `Err` if any *unjoined*
    /// thread panicked (joined threads report through their handle).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // std::thread::scope propagates unjoined-child panics by
        // panicking itself; catch to match crossbeam's Result contract.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let counter_ref = &counter;
        let data = [1usize, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .iter()
                .map(|&v| {
                    s.spawn(move |_| {
                        counter_ref.fetch_add(1, Ordering::SeqCst);
                        v * 10
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
        .unwrap();
        assert_eq!(total, 100);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn child_panic_reported_via_join() {
        crate::thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        })
        .unwrap();
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7usize).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 7);
    }
}
