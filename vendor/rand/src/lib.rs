//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the small API surface it actually uses: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits and a deterministic
//! [`rngs::StdRng`] built on xoshiro256++ seeded via SplitMix64.
//!
//! The generator is **not** the upstream ChaCha12-based `StdRng`; streams
//! differ from the real crate, but every consumer in this workspace only
//! relies on determinism-under-seed, which holds.

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG (the subset of
/// `rand::distributions::Standard` this workspace needs).
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform value in `[0, span)` by widening multiply (Lemire);
/// the modulo bias at 64-bit width is negligible for every consumer here.
#[inline]
fn uniform_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = hi.wrapping_sub(lo) as u64;
                lo.wrapping_add(uniform_below(rng, span.wrapping_add(1)) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG by expanding a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s.iter().all(|&w| w == 0) {
                s = [1, 2, 3, 4];
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// A non-deterministic-ish generator for callers that don't need
/// reproducibility (mirrors `rand::thread_rng`, without thread locals).
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    SeedableRng::seed_from_u64(nanos ^ (std::process::id() as u64) << 32)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(0u64..97);
            assert!(v < 97);
            let w = rng.gen_range(-1i64..=1);
            assert!((-1..=1).contains(&w));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.gen_range(5usize..6);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn gen_range_covers_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(rng.gen_range(-1i64..=1) + 1) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "ternary sampler must hit all values"
        );
    }

    #[test]
    fn generic_rng_arg_accepts_reborrow() {
        fn takes_rng<R: Rng>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..10)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = takes_rng(&mut rng);
        // &mut StdRng also implements RngCore, so nested generics work
        let r = &mut rng;
        let _ = takes_rng(r);
    }
}
