//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros — with a simple
//! but honest timing loop: each benchmark is warmed up, then run for a
//! fixed number of timed samples, and the per-iteration mean, minimum,
//! and maximum are printed in a criterion-like format.
//!
//! There is no statistical analysis, HTML report, or saved baseline;
//! numbers go to stdout only.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// The benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    /// Target time per benchmark; the sample count adapts to stay near it.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
            measurement_time,
        }
    }

    /// Registers a standalone benchmark.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        run_one(name.as_ref(), 100, self.measurement_time, &mut f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_one(&full, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Finishes the group (printing is immediate; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Hands the measurement routine to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, calling it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one call to page code in and estimate duration.
        let warm_start = Instant::now();
        black_box(routine());
        let estimate = warm_start.elapsed().max(Duration::from_nanos(1));

        // Batch iterations so cheap routines are timed above clock noise,
        // while keeping total time near the measurement target.
        let per_sample = self.measurement_time.as_nanos() as u64 / self.sample_size.max(1) as u64;
        let iters_per_sample = (per_sample / estimate.as_nanos().max(1) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / iters_per_sample as u32);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        measurement_time,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{name:<44} time: [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function (subset of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(20),
        };
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0, "routine must have been invoked");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert!(fmt_duration(Duration::from_micros(15)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(3)).ends_with("ms"));
    }
}
