//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, range/`Just`/`prop_oneof!`
//! strategies, `collection::vec`, `ProptestConfig`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Unlike upstream proptest there is **no shrinking**: failing cases
//! report the generated inputs verbatim. Case generation is
//! deterministic (fixed seed per test function) so failures reproduce.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            max_global_rejects: 65_536,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self::with_cases(256)
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw a fresh case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Result type property-test bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A value generator (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (subset of upstream
    /// `Strategy::prop_map`; no shrinking, so this is a plain map).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// A strategy mapping another strategy's output through a function
/// (built by [`Strategy::prop_map`]).
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// A uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A length specification: a fixed size or a range of sizes.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Fixed(usize),
        /// Uniformly drawn from `[lo, hi)`.
        Range(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange::Range(r.start, r.end)
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange::Range(*r.start(), *r.end() + 1)
        }
    }

    /// Strategy generating `Vec`s of `element` with a size in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = match self.size {
                SizeRange::Fixed(n) => n,
                SizeRange::Range(lo, hi) => rng.gen_range(lo..hi),
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boxes a strategy for use in [`prop_oneof!`] unions.
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Builds the deterministic per-test RNG (used by the `proptest!`
/// expansion; not public API).
#[doc(hidden)]
pub fn __new_test_rng(seed: u64) -> TestRng {
    StdRng::seed_from_u64(seed)
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Builds a [`Union`] strategy choosing uniformly among the arguments.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Asserts inequality inside a property test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Rejects the current case, drawing a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests (subset of `proptest::proptest!`).
///
/// Supported grammar: an optional `#![proptest_config(expr)]` header
/// followed by `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] items; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Deterministic per-test seed so failures reproduce.
                let mut seed: u64 = 0xC0FF_EE00_D15E_A5E5;
                for b in stringify!($name).bytes() {
                    seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
                }
                let mut rng = $crate::__new_test_rng(seed);
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let result: $crate::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match result {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "proptest {}: too many prop_assume! rejections ({rejected})",
                                    stringify!($name)
                                );
                            }
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed after {passed} passing case(s): {msg}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u64..100, y in -5i64..=5, f in -1.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_len(v in collection::vec(0u64..10, 3usize), w in collection::vec(0u64..10, 1..5)) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!((1..5).contains(&w.len()));
        }

        #[test]
        fn oneof_and_assume(k in prop_oneof![Just(1usize), Just(3), Just(5)], n in 0usize..10) {
            prop_assume!(n > 0);
            prop_assert!(k == 1 || k == 3 || k == 5);
            prop_assert_ne!(n, 0);
        }
    }
}
