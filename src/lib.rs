//! # SPOT — Structure Patching and Overlap Tweaking
//!
//! A from-scratch Rust reproduction of *SPOT: Structure Patching and
//! Overlap Tweaking for Effective Pipelining in Privacy-Preserving MLaaS
//! with Tiny Clients* (ICDCS 2024): privacy-preserving CNN inference for
//! memory-constrained clients, built on a self-contained BFV
//! homomorphic-encryption implementation.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`he`] — SIMD-batched BFV (replaces Microsoft SEAL)
//! * [`tensor`] — plaintext CNN substrate and model specs
//! * [`proto`] — secret sharing, channels, OT-based non-linear layers
//! * [`pipeline`] — tiny-client device profiles and pipeline simulator
//! * [`core`] — SPOT itself plus the CrypTFlow2/Cheetah baselines
//!
//! ## Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use spot::he::prelude::*;
//! use spot::core::{patching::PatchMode, spot as spot_conv};
//! use spot::tensor::{conv2d, Kernel, Tensor};
//!
//! // Secure 3x3 convolution of a 4-channel 8x8 input via SPOT patches.
//! let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let keygen = KeyGenerator::new(&ctx, &mut rng);
//! let input = Tensor::random(4, 8, 8, 8, 1);
//! let kernel = Kernel::random(4, 4, 3, 3, 4, 2);
//! let result = spot_conv::execute(
//!     &ctx, &keygen, &input, &kernel, 1, (4, 4), PatchMode::Tweaked, &mut rng,
//! );
//! assert_eq!(result.reconstruct(), conv2d(&input, &kernel, 1));
//! ```

#![warn(missing_docs)]

pub use spot_core as core;
pub use spot_he as he;
pub use spot_pipeline as pipeline;
pub use spot_proto as proto;
pub use spot_tensor as tensor;
