//! The Fig. 11 memory-utilization metric: *in-memory values* — how many
//! useful feature-map entries each megabyte of client ciphertext memory
//! carries.
//!
//! Channel-wise packing wastes the padding slots of each power-of-two
//! channel block and is forced onto large parameter levels; Cheetah
//! packs inputs densely but its extracted LWE outputs carry one useful
//! value each; SPOT's adaptive patches keep slot utilization high at the
//! smallest levels.

use spot_pipeline::plan::ConvPlan;

/// In-memory values for a plan: useful entries per MB of ciphertext
/// material the client holds over the layer (inputs and outputs).
pub fn in_memory_values_per_mb(plan: &ConvPlan) -> f64 {
    let useful = (plan.input_cts * plan.useful_input_slots
        + plan.output_cts * plan.useful_output_slots) as f64;
    let bytes = (plan.upstream_bytes() + plan.downstream_bytes()) as f64;
    useful / (bytes / (1024.0 * 1024.0))
}

/// Input-side only variant (what the client holds while encrypting).
pub fn input_values_per_mb(plan: &ConvPlan) -> f64 {
    plan.useful_input_slots as f64 / (plan.ciphertext_bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patching::PatchMode;
    use crate::{channelwise, cheetah, select, spot};
    use spot_tensor::models::ConvShape;

    #[test]
    fn spot_beats_channelwise_on_memory_utilization() {
        // A deep block: 14x14, 256 channels (Table VIII row 3).
        let shape = ConvShape::new(14, 14, 256, 256, 3, 1);
        let cw = channelwise::plan(&shape, channelwise::minimum_level(&shape), false);
        let choice = select::best_level(&shape, PatchMode::Tweaked).unwrap();
        let sp = spot::plan(
            &shape,
            choice.level,
            choice.patch,
            PatchMode::Tweaked,
            false,
        );
        let cw_v = in_memory_values_per_mb(&cw);
        let sp_v = in_memory_values_per_mb(&sp);
        assert!(
            sp_v > cw_v,
            "SPOT {sp_v:.0} values/MB should beat channel-wise {cw_v:.0}"
        );
    }

    #[test]
    fn cheetah_output_extraction_hurts_utilization() {
        let shape = ConvShape::new(28, 28, 128, 128, 3, 1);
        let ch = cheetah::plan(&shape, cheetah::minimum_level(&shape), false);
        // Cheetah's input-side utilization is high...
        assert!(input_values_per_mb(&ch) > 5_000.0);
        // ...but the combined metric drops due to extraction downstream.
        assert!(in_memory_values_per_mb(&ch) < 2.0 * input_values_per_mb(&ch));
    }

    #[test]
    fn values_positive_for_all_schemes() {
        let shape = ConvShape::new(56, 56, 64, 64, 3, 1);
        let cw = channelwise::plan(&shape, channelwise::minimum_level(&shape), false);
        let ch = cheetah::plan(&shape, cheetah::minimum_level(&shape), false);
        let choice = select::best_level(&shape, PatchMode::Tweaked).unwrap();
        let sp = spot::plan(
            &shape,
            choice.level,
            choice.patch,
            PatchMode::Tweaked,
            false,
        );
        for p in [&cw, &ch, &sp] {
            assert!(in_memory_values_per_mb(p) > 0.0, "{}", p.scheme);
        }
    }
}
