//! The SPOT secure convolution: structure patching pipelining with patch
//! overlap tweaking (Sec. III-A/III-B of the paper).
//!
//! The input is sliced into pieces spanning **all** input channels
//! ([`crate::patching`]); every piece — main patches and the tweaked
//! scheme's auxiliary seam pieces — is packed into ciphertext lanes in
//! channel-major order and convolved *independently* on the server
//! ([`crate::heconv`]): one input ciphertext suffices to produce final
//! output values for its pieces, so results stream back to the client
//! with no cross-ciphertext stall. The client assembles its share of the
//! convolution arithmetically (add patch and corner shares, subtract
//! strip shares) exactly as in Fig. 10.
//!
//! Kernel blocking follows Fig. 7: when `C_o ≥ C_i` the kernels split
//! into `C_o/C_i` blocks of size `C_i` (one output ciphertext each);
//! when `C_o < C_i` the diagonals are concatenated across `C_i` and the
//! partial sums folded with `log2(C_i/C_o)` rotate-and-add steps.
//!
//! The drivers here are thin wrappers over the session layer
//! ([`crate::session`]): client and server run as separate state
//! machines over an in-process transport exchanging real wire frames.

use crate::channelwise::SecureConvResult;
use crate::executor::Executor;
use crate::heconv::{ChannelMap, GroupSpec};
use crate::layout::{next_pow2, unpack_pieces, unpack_pieces_split, LaneLayout};
use crate::patching::{decompose, PatchMode};
use crate::session::{run_in_process, run_in_process_batched, ExecBackend, SchemeKind};
use crate::stream::{StreamConfig, StreamStats};
use rand::Rng;
use spot_he::context::Context;
use spot_he::evaluator::OpCounts;
use spot_he::keys::KeyGenerator;
use spot_he::params::ParamLevel;
use spot_pipeline::plan::{ConvPlan, OutputDependency};
use spot_tensor::models::ConvShape;
use spot_tensor::tensor::{Kernel, Tensor};
use std::sync::Arc;

/// Kernel blocking configuration derived from channel counts (Fig. 7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blocking {
    /// Padded input channels.
    pub ci_pad: usize,
    /// Padded output channels.
    pub co_pad: usize,
    /// Channel blocks **per lane** (`ci_pad/2` when split across lanes).
    pub lane_blocks: usize,
    /// Whether piece channels are split across the two lanes (always,
    /// except for single-channel inputs) — doubles the patch budget to
    /// the full `N / C_i` of the paper's Table VI.
    pub split: bool,
    /// Diagonal count per group.
    pub diagonals: usize,
    /// Output groups (result ciphertexts per input ciphertext).
    pub out_groups: usize,
    /// Fold steps (per-lane block shifts) applied after alignment.
    pub fold_steps: Vec<usize>,
}

/// Computes the kernel blocking for the given channel counts.
pub fn blocking(c_in: usize, c_out: usize) -> Blocking {
    let ci_pad = next_pow2(c_in);
    let co_pad = next_pow2(c_out);
    let split = ci_pad >= 2;
    let lane_blocks = if split { ci_pad / 2 } else { 1 };
    if co_pad >= ci_pad {
        Blocking {
            ci_pad,
            co_pad,
            lane_blocks,
            split,
            diagonals: lane_blocks,
            out_groups: (co_pad / ci_pad).max(1),
            fold_steps: Vec::new(),
        }
    } else {
        // C_o < C_i: concatenated diagonals + per-lane tree folding; the
        // cross-lane half is covered by the column-swapped products.
        let mut fold_steps = Vec::new();
        let mut step = lane_blocks / 2;
        while step >= co_pad {
            fold_steps.push(step);
            step /= 2;
        }
        Blocking {
            ci_pad,
            co_pad,
            lane_blocks,
            split,
            diagonals: co_pad.min(lane_blocks),
            out_groups: 1,
            fold_steps,
        }
    }
}

/// Builds the output-group specs for a blocking (one per result
/// ciphertext), mapping lane blocks to output channels per Fig. 7.
pub fn spot_group_specs(blk: &Blocking, c_out: usize) -> Vec<GroupSpec> {
    let b_lane = blk.lane_blocks;
    let mut groups = Vec::with_capacity(blk.out_groups);
    for g in 0..blk.out_groups {
        let mut out_ch = vec![vec![None; b_lane]; 2];
        for (lane, row) in out_ch.iter_mut().enumerate() {
            if lane == 1 && !blk.split {
                break;
            }
            for (b, slot) in row.iter_mut().enumerate() {
                let ch = if blk.co_pad >= blk.ci_pad {
                    // C_o ≥ C_i: out channels split across lanes per group
                    g * blk.ci_pad + lane * b_lane + b
                } else {
                    // folding: out channels repeat with period co_pad
                    (lane * b_lane + b) % blk.co_pad
                };
                if ch < c_out {
                    *slot = Some(ch);
                }
            }
        }
        groups.push(GroupSpec { out_ch });
    }
    groups
}

/// Builds the input channel maps for a blocking: the channel-major lane
/// assignment, plus its lane-swapped twin when channels split across
/// lanes.
pub fn spot_in_maps(blk: &Blocking, c_in: usize) -> Vec<ChannelMap> {
    let b_lane = blk.lane_blocks;
    let mut map = vec![vec![None; b_lane]; 2];
    for (lane, row) in map.iter_mut().enumerate() {
        if lane == 1 && !blk.split {
            break;
        }
        for (b, slot) in row.iter_mut().enumerate() {
            let ch = lane * b_lane + b;
            if ch < c_in {
                *slot = Some(ch);
            }
        }
    }
    if blk.split {
        let swapped = vec![map[1].clone(), map[0].clone()];
        vec![map, swapped]
    } else {
        vec![map]
    }
}

/// Unpacks one class's per-group slot vectors (one party's decoded
/// results or masks) into per-piece share tensors. Used symmetrically
/// by the client and server halves of the session.
#[allow(clippy::too_many_arguments)]
pub(crate) fn unpack_class_share(
    blk: &Blocking,
    layout: &LaneLayout,
    pieces_len: usize,
    class_h: usize,
    class_w: usize,
    c_out: usize,
    t: u64,
    group_slots: &[Vec<Vec<u64>>],
) -> Vec<Tensor> {
    let ch_in_group = if blk.co_pad >= blk.ci_pad {
        blk.ci_pad
    } else {
        blk.co_pad
    };
    let mut class_out = vec![Tensor::zeros(c_out, class_h, class_w); pieces_len];
    for (g, slots) in group_slots.iter().enumerate() {
        let cp = if blk.split {
            unpack_pieces_split(layout, slots, pieces_len, ch_in_group, t)
        } else {
            unpack_pieces(layout, slots, pieces_len, ch_in_group, t)
        };
        for pi in 0..pieces_len {
            for local_c in 0..ch_in_group {
                let global_c = if blk.co_pad >= blk.ci_pad {
                    g * blk.ci_pad + local_c
                } else {
                    local_c
                };
                if global_c >= c_out {
                    continue;
                }
                for y in 0..class_h {
                    for x in 0..class_w {
                        *class_out[pi].at_mut(global_c, y, x) = cp[pi].at(local_c, y, x);
                    }
                }
            }
        }
    }
    class_out
}

/// Executes the SPOT secure convolution end to end on a single thread.
///
/// `patch` is the main patch size `(ph, pw)` (see [`crate::select`] for
/// the Table VI selection); `mode` picks vanilla patching or overlap
/// tweaking.
///
/// # Panics
///
/// Panics if a piece does not fit a lane
/// (`C_i_pad · next_pow2(ph·pw) > N/2`) or the level has no rotations.
#[allow(clippy::too_many_arguments)]
pub fn execute<R: Rng>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    input: &Tensor,
    kernel: &Kernel,
    stride: usize,
    patch: (usize, usize),
    mode: PatchMode,
    rng: &mut R,
) -> SecureConvResult {
    execute_with(
        ctx,
        keygen,
        input,
        kernel,
        stride,
        patch,
        mode,
        &Executor::serial(),
        rng,
    )
}

/// Executes the SPOT secure convolution with the server-side
/// per-ciphertext convolutions fanned across `executor`'s worker pool.
///
/// All randomness (encryption and masking) is drawn sequentially in a
/// fixed order per party, and the parallel phase is pure, so the
/// result — shares, counts and all — is bit-identical for every thread
/// count.
///
/// # Panics
///
/// Panics if a piece does not fit a lane
/// (`C_i_pad · next_pow2(ph·pw) > N/2`) or the level has no rotations.
#[allow(clippy::too_many_arguments)]
pub fn execute_with<R: Rng>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    input: &Tensor,
    kernel: &Kernel,
    stride: usize,
    patch: (usize, usize),
    mode: PatchMode,
    executor: &Executor,
    rng: &mut R,
) -> SecureConvResult {
    run_in_process(
        ctx,
        keygen,
        input,
        kernel,
        stride,
        patch,
        mode,
        SchemeKind::Spot,
        &ExecBackend::Phased(*executor),
        rng,
    )
    .expect("in-process SPOT session")
    .result
}

/// Executes the SPOT secure convolution as a real client/server
/// pipeline: the client thread packs and encrypts each ciphertext and
/// streams it through a bounded in-process transport; server workers
/// convolve every ciphertext the moment it arrives (SPOT's per-input
/// dependency — no barrier); masked results return to the client
/// overlapped with ongoing uploads.
///
/// Client and server randomness are split from `rng` exactly as in the
/// phased driver, so the returned shares and operation counts are
/// bit-identical to [`execute_with`] for any worker count and channel
/// capacity, given the same rng seed.
///
/// # Panics
///
/// Panics as [`execute_with`] does on layouts that do not fit a lane.
#[allow(clippy::too_many_arguments)]
pub fn execute_streaming<R: Rng + Send>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    input: &Tensor,
    kernel: &Kernel,
    stride: usize,
    patch: (usize, usize),
    mode: PatchMode,
    config: &StreamConfig,
    rng: &mut R,
) -> (SecureConvResult, StreamStats) {
    let outcome = run_in_process(
        ctx,
        keygen,
        input,
        kernel,
        stride,
        patch,
        mode,
        SchemeKind::Spot,
        &ExecBackend::Streaming(*config),
        rng,
    )
    .expect("in-process SPOT session");
    let stats = outcome
        .stream
        .expect("streaming backend reports stall stats");
    (outcome.result, stats)
}

/// [`execute_streaming`] over a batch of same-shape images coalesced
/// into shared ciphertexts (see
/// [`crate::session::ClientConv::send_all_batched`]): one streamed
/// session serves every image, with the per-batch rotation and
/// key-switch counts of a single image. Returns each image's
/// functional result in submission order plus the run's stall stats.
#[allow(clippy::too_many_arguments)]
pub fn execute_streaming_batched<R: Rng + Send>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    inputs: &[Tensor],
    kernel: &Kernel,
    stride: usize,
    patch: (usize, usize),
    mode: PatchMode,
    config: &StreamConfig,
    rng: &mut R,
) -> (Vec<SecureConvResult>, StreamStats) {
    let outcome = run_in_process_batched(
        ctx,
        keygen,
        inputs,
        kernel,
        stride,
        patch,
        mode,
        SchemeKind::Spot,
        &ExecBackend::Streaming(*config),
        rng,
    )
    .expect("in-process batched SPOT session");
    let stats = outcome
        .stream
        .clone()
        .expect("streaming backend reports stall stats");
    (outcome.into_results(), stats)
}

/// Piece-class geometry used by the planner.
#[derive(Debug, Clone)]
pub struct SpotGeometry {
    /// Patch size used.
    pub patch: (usize, usize),
    /// Decomposition mode.
    pub mode: PatchMode,
    /// Kernel blocking.
    pub blocking: Blocking,
    /// Per class: `(piece count, ciphertext count)`.
    pub class_cts: Vec<(usize, usize)>,
    /// Total input ciphertexts.
    pub input_cts: usize,
    /// Total output ciphertexts.
    pub output_cts: usize,
    /// Useful input slots per ciphertext (average).
    pub useful_input_slots: usize,
}

/// Computes the SPOT geometry for a shape without touching data.
///
/// # Panics
///
/// Panics if a piece does not fit a lane at this level.
pub fn geometry(
    shape: &ConvShape,
    level: ParamLevel,
    patch: (usize, usize),
    mode: PatchMode,
) -> SpotGeometry {
    let lane = level.degree() / 2;
    let blk = blocking(shape.c_in, shape.c_out);
    // Piece counts depend only on spatial dims; probe with one channel.
    let probe = Tensor::zeros(1, shape.height, shape.width);
    let decomp = decompose(&probe, patch.0, patch.1, shape.k_h, mode);
    let mut class_cts = Vec::new();
    let mut input_cts = 0usize;
    let mut useful = 0usize;
    for (class, pieces) in &decomp.classes {
        let layout = LaneLayout::new(lane, blk.lane_blocks, class.h, class.w);
        let per_ct = if blk.split {
            layout.groups
        } else {
            2 * layout.groups
        };
        let cts = pieces.len().div_ceil(per_ct);
        class_cts.push((pieces.len(), cts));
        input_cts += cts;
        useful += pieces.len() * shape.c_in * class.h * class.w;
    }
    let output_cts = input_cts * blk.out_groups;
    SpotGeometry {
        patch,
        mode,
        blocking: blk,
        class_cts,
        input_cts,
        output_cts,
        useful_input_slots: useful / input_cts.max(1),
    }
}

/// Analytic per-ciphertext operation counts (exact for power-of-two
/// channel counts and fully populated ciphertexts).
pub fn per_ct_counts(blk: &Blocking, k_h: usize, k_w: usize) -> OpCounts {
    let kk = (k_h * k_w) as u64;
    let d = blk.diagonals as u64;
    let g = blk.out_groups as u64;
    let v = if blk.split { 2u64 } else { 1 };
    let folds = blk.fold_steps.len() as u64;
    let (baby, giants) = crate::heconv::bsgs_split(
        blk.diagonals,
        blk.out_groups,
        v as usize,
        (k_h * k_w).max(1),
    );
    OpCounts {
        rotate: (v - 1) + v * (kk * baby as u64 - 1) + g * (giants as u64 - 1) + g * folds,
        mult_plain: g * v * d * kk,
        add: g * (v * d * kk - 1) + g * folds + g, // final term: mask adds
        encrypt: 0,
        decrypt: 0,
    }
}

/// Builds the SPOT execution plan for the simulator.
pub fn plan(
    shape: &ConvShape,
    level: ParamLevel,
    patch: (usize, usize),
    mode: PatchMode,
    with_relu: bool,
) -> ConvPlan {
    let geo = geometry(shape, level, patch, mode);
    let per_ct = per_ct_counts(&geo.blocking, shape.k_h, shape.k_w);
    let params = spot_he::params::EncryptionParams::new(level);
    // Assembly: every piece output element is added/subtracted once into
    // the client share (and once server-side, charged to the server for
    // free — it is negligible there).
    let assembly = (shape.width * shape.height * shape.c_out) as u64 * 2;
    ConvPlan {
        scheme: "SPOT",
        level,
        input_cts: geo.input_cts,
        output_cts: geo.output_cts,
        per_ct_ops: per_ct,
        finalize_ops: OpCounts::default(),
        dependency: OutputDependency::PerInput,
        extra_downstream_bytes: 0,
        client_extra_s: 0.0,
        assembly_elements: assembly,
        relu_elements: if with_relu {
            shape.output_elements()
        } else {
            0
        },
        ciphertext_bytes: params.ciphertext_bytes(),
        useful_input_slots: geo.useful_input_slots,
        useful_output_slots: geo.useful_input_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spot_he::params::EncryptionParams;
    use spot_tensor::conv::conv2d;

    fn ctx4096() -> Arc<Context> {
        Context::new(EncryptionParams::new(ParamLevel::N4096))
    }

    #[test]
    fn blocking_cases() {
        // C_o >= C_i: split lanes, diagonals over per-lane blocks
        let b = blocking(4, 16);
        assert!(b.split);
        assert_eq!(b.lane_blocks, 2);
        assert_eq!(b.out_groups, 4);
        assert_eq!(b.diagonals, 2);
        assert!(b.fold_steps.is_empty());
        // C_o < C_i: per-lane folding
        let b = blocking(16, 4);
        assert_eq!(b.lane_blocks, 8);
        assert_eq!(b.out_groups, 1);
        assert_eq!(b.diagonals, 4);
        assert_eq!(b.fold_steps, vec![4]);
        // C_o == C_i
        let b = blocking(8, 8);
        assert_eq!(b.out_groups, 1);
        assert_eq!(b.diagonals, 4);
        assert!(b.fold_steps.is_empty());
        // single-channel input stays lane-contained
        let b = blocking(1, 4);
        assert!(!b.split);
        assert_eq!(b.lane_blocks, 1);
    }

    #[test]
    fn spot_tweaked_matches_reference() {
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(1000);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(4, 8, 8, 8, 11);
        let kernel = Kernel::random(4, 4, 3, 3, 4, 12);
        let res = execute(
            &ctx,
            &kg,
            &input,
            &kernel,
            1,
            (4, 4),
            PatchMode::Tweaked,
            &mut rng,
        );
        assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 1));
    }

    #[test]
    fn spot_co_greater_than_ci() {
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(2000);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(2, 8, 8, 8, 21);
        let kernel = Kernel::random(8, 2, 3, 3, 4, 22);
        let res = execute(
            &ctx,
            &kg,
            &input,
            &kernel,
            1,
            (4, 4),
            PatchMode::Tweaked,
            &mut rng,
        );
        assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 1));
    }

    #[test]
    fn spot_co_less_than_ci_folding() {
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(3000);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(8, 8, 8, 8, 31);
        let kernel = Kernel::random(2, 8, 3, 3, 4, 32);
        let res = execute(
            &ctx,
            &kg,
            &input,
            &kernel,
            1,
            (4, 4),
            PatchMode::Tweaked,
            &mut rng,
        );
        assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 1));
    }

    #[test]
    fn spot_1x1_kernel() {
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(4000);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(4, 8, 8, 8, 41);
        let kernel = Kernel::random(8, 4, 1, 1, 4, 42);
        let res = execute(
            &ctx,
            &kg,
            &input,
            &kernel,
            1,
            (4, 4),
            PatchMode::Tweaked,
            &mut rng,
        );
        assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 1));
    }

    #[test]
    fn spot_vanilla_mode() {
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(5000);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(2, 8, 8, 8, 51);
        let kernel = Kernel::random(2, 2, 3, 3, 4, 52);
        let res = execute(
            &ctx,
            &kg,
            &input,
            &kernel,
            1,
            (4, 4),
            PatchMode::Vanilla,
            &mut rng,
        );
        assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 1));
    }

    #[test]
    fn spot_stride_2() {
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(6000);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(2, 8, 8, 8, 61);
        let kernel = Kernel::random(2, 2, 3, 3, 4, 62);
        let res = execute(
            &ctx,
            &kg,
            &input,
            &kernel,
            2,
            (4, 4),
            PatchMode::Tweaked,
            &mut rng,
        );
        assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 2));
    }

    #[test]
    fn geometry_counts() {
        let shape = ConvShape::new(8, 8, 4, 4, 3, 1);
        let geo = geometry(&shape, ParamLevel::N4096, (4, 4), PatchMode::Tweaked);
        // classes: 9 patches, 6 vsegs, 6 hsegs, 4 corners
        assert_eq!(geo.class_cts.len(), 4);
        assert_eq!(geo.class_cts[0].0, 9);
        assert!(geo.input_cts >= 1);
        assert_eq!(geo.output_cts, geo.input_cts * geo.blocking.out_groups);
    }

    #[test]
    fn plan_streams_per_input() {
        let shape = ConvShape::new(16, 16, 16, 16, 3, 1);
        let p = plan(&shape, ParamLevel::N4096, (4, 4), PatchMode::Tweaked, true);
        assert_eq!(p.dependency, OutputDependency::PerInput);
        assert_eq!(p.finalize_ops, OpCounts::default());
        assert!(p.assembly_elements > 0);
    }
}
