//! Admin endpoint: a tiny HTTP/1.0 responder exposing a running
//! [`SpotServer`]'s live state — no web framework, no dependencies,
//! same zero-dep discipline as the rest of the workspace.
//!
//! Four routes, all read-only:
//!
//! * `GET /metrics` — the global [`spot_trace::metrics`] registry in
//!   Prometheus text exposition format (scrape target).
//! * `GET /healthz` — `200 ok` normally, `503 overloaded` when the
//!   server is at its session cap or the worker pool is fully claimed
//!   ([`SpotServer::overloaded`]); a load balancer's readiness probe.
//! * `GET /sessions` — JSON: in-flight session ids with elapsed time,
//!   plus the monotonic served/rejected/failed totals.
//! * `GET /pipeline` — JSON: per-session pipeline-overlap summaries for
//!   the most recent streamed sessions ([`SpotServer::pipeline_recent`]):
//!   worker busy/idle thread-seconds, producer backpressure, and the
//!   server-side overlap efficiency.
//!
//! ## Robustness model
//!
//! The accept loop does nothing but accept: every connection is handed
//! to its own short-lived thread, so a client that connects and sends
//! garbage — or nothing at all — stalls only its own handler, never the
//! endpoint (enforced by a test in `serving_hostile.rs`). Handlers read
//! with a 2-second timeout, cap the request at 4 KiB, answer exactly
//! one request, and close (`Connection: close`; HTTP/1.0 semantics).

use crate::serving::SpotServer;
use spot_trace::{log_debug, log_warn, metrics};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-request read timeout: a silent or slow-loris client holds only
/// its own handler thread for this long.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Longest request line + headers accepted.
const MAX_REQUEST_BYTES: usize = 4096;

/// A running admin endpoint; [`AdminServer::bind`] starts it,
/// [`AdminHandle::shutdown`] stops it.
pub struct AdminServer;

/// Handle to a running admin endpoint.
pub struct AdminHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// serves admin requests for `server` until the handle is shut
    /// down. Enables the global metrics registry: an admin endpoint
    /// without live numbers would be pointless.
    pub fn bind(addr: &str, server: Arc<SpotServer>) -> std::io::Result<AdminHandle> {
        metrics::enable();
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("spot-admin".into())
            .spawn(move || accept_loop(listener, server, stop_flag))?;
        Ok(AdminHandle {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }
}

impl AdminHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it. In-flight handler threads
    /// finish their single response on their own.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for AdminHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.addr);
            if let Some(t) = self.accept_thread.take() {
                let _ = t.join();
            }
        }
    }
}

fn accept_loop(listener: TcpListener, server: Arc<SpotServer>, stop: Arc<AtomicBool>) {
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                log_warn!("admin", "accept failed: {e}");
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // One thread per request: a wedged client wedges only itself.
        let server = Arc::clone(&server);
        let spawned = std::thread::Builder::new()
            .name("spot-admin-conn".into())
            .spawn(move || handle_connection(stream, peer, &server));
        if let Err(e) = spawned {
            log_warn!("admin", "spawn for {peer} failed: {e}");
        }
    }
}

fn handle_connection(mut stream: TcpStream, peer: SocketAddr, server: &SpotServer) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            log_debug!("admin", "read from {peer} failed: {e}");
            return;
        }
    };
    let (status, content_type, body) = match parse_path(&request) {
        Some(path) => respond(path, server),
        None => ("400 Bad Request", "text/plain", "bad request\n".to_string()),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.shutdown(Shutdown::Both);
}

/// Reads until the end of the request head (`\r\n\r\n`), a bare
/// newline-terminated request line (curl/netcat-friendly), EOF, the
/// size cap, or the read timeout.
fn read_request(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.contains(&b'\n') {
            break;
        }
        if buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    Ok(buf)
}

/// Extracts the path from a `GET <path> HTTP/1.x` (or bare
/// `GET <path>`) request line; anything else is a bad request.
fn parse_path(request: &[u8]) -> Option<&str> {
    let text = std::str::from_utf8(request).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let path = parts.next()?;
    match parts.next() {
        None => Some(path),
        Some(version) if version.starts_with("HTTP/") => Some(path),
        Some(_) => None,
    }
}

fn respond(path: &str, server: &SpotServer) -> (&'static str, &'static str, String) {
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            metrics::encode_prometheus(&metrics::global().snapshot()),
        ),
        "/metrics.json" => (
            "200 OK",
            "application/json",
            metrics::encode_json(&metrics::global().snapshot()),
        ),
        "/healthz" => {
            if server.overloaded() {
                (
                    "503 Service Unavailable",
                    "text/plain",
                    "overloaded\n".into(),
                )
            } else {
                ("200 OK", "text/plain", "ok\n".into())
            }
        }
        "/sessions" => ("200 OK", "application/json", sessions_json(server)),
        "/pipeline" => ("200 OK", "application/json", pipeline_json(server)),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    }
}

fn sessions_json(server: &SpotServer) -> String {
    let stats = server.stats();
    let sessions = server
        .session_info()
        .into_iter()
        .map(|(id, elapsed)| format!("{{\"id\": {id}, \"elapsed_ms\": {}}}", elapsed.as_millis()))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"active\": {}, \"max_sessions\": {}, \"served\": {}, \"rejected\": {}, \"failed\": {}, \"sessions\": [{sessions}]}}\n",
        server.active_sessions(),
        server.config().max_sessions,
        stats.served,
        stats.rejected,
        stats.failed,
    )
}

fn pipeline_json(server: &SpotServer) -> String {
    let sessions = server
        .pipeline_recent()
        .into_iter()
        .map(|p| {
            format!(
                "{{\"id\": {}, \"wall_ms\": {:.3}, \"input_items\": {}, \"output_items\": {}, \
                 \"server_threads\": {}, \"server_busy_s\": {:.6}, \"server_idle_s\": {:.6}, \
                 \"client_blocked_s\": {:.6}, \"spot_overlap_efficiency\": {:.4}}}",
                p.id,
                p.wall_ms,
                p.input_items,
                p.output_items,
                p.server_threads,
                p.server_busy_s,
                p.server_idle_s,
                p.client_blocked_s,
                p.efficiency,
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!("{{\"pipeline\": [{sessions}]}}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parsing() {
        assert_eq!(
            parse_path(b"GET /metrics HTTP/1.1\r\n\r\n"),
            Some("/metrics")
        );
        assert_eq!(
            parse_path(b"GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n"),
            Some("/healthz")
        );
        assert_eq!(parse_path(b"GET /sessions\n"), Some("/sessions"));
        assert_eq!(parse_path(b"POST /metrics HTTP/1.1\r\n\r\n"), None);
        assert_eq!(parse_path(b"GET /metrics JUNK\r\n\r\n"), None);
        assert_eq!(parse_path(b"\x00\xff garbage"), None);
        assert_eq!(parse_path(b""), None);
    }
}
