//! # spot-core — SPOT: structure patching and overlap tweaking
//!
//! The paper's primary contribution: HE convolution schemes for
//! privacy-preserving CNN inference with memory-constrained clients.
//!
//! * [`channelwise`] — the CrypTFlow2/GAZELLE-style channel-wise packing
//!   baseline (SISO/MIMO rotation-based convolution).
//! * [`patching`] + [`spot`] — SPOT's structure patching pipeline with
//!   patch overlap tweaking.
//! * [`cheetah`] — the Cheetah coefficient-encoding baseline.
//! * [`select`] — patch-size / parameter-level selection (Table VI).
//! * [`complexity`] — the Table V operation-count formulas.
//! * [`inference`] — end-to-end secure inference over full networks.
//! * [`batch`] — multi-image throughput planning (the Channel-By-Channel
//!   comparison of Sec. II-E).

#![warn(missing_docs)]

pub mod admin;
pub mod batch;
pub mod channelwise;
pub mod cheetah;
pub mod complexity;
pub mod error;
pub mod executor;
pub mod heconv;
pub mod inference;
pub mod layout;
pub mod memory_util;
pub mod patching;
pub mod select;
pub mod serving;
pub mod session;
pub mod spot;
pub mod stream;
pub mod twoparty;
