//! Batch (multi-image) inference planning — the comparison the paper
//! draws against Channel-By-Channel packing (Cheon et al., Sec. II-E):
//! batching amortizes HE cost across images for *throughput*, but a tiny
//! client running a single query cares about *latency*, where SPOT's
//! per-ciphertext pipelining wins.
//!
//! Batched SPOT packs the **same patch position of B different images**
//! into the spare piece slots of each ciphertext (the `groups`
//! dimension of the lane layout), so every HE operation processes B
//! images at once; kernel plaintexts are image-independent, so the
//! server-side operation count per ciphertext is unchanged.

use crate::inference::{plan_conv, Scheme};
use spot_pipeline::device::DeviceProfile;
use spot_pipeline::plan::ConvPlan;
use spot_pipeline::sim::{simulate_conv, SimConfig};
use spot_tensor::models::ConvShape;

/// Throughput plan for a batch of `batch` images through one layer.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    /// Images per batch.
    pub batch: usize,
    /// The per-batch layer plan.
    pub plan: ConvPlan,
}

/// Builds a batched plan: input/output ciphertext counts and client work
/// scale with the batch, while per-ciphertext server work is unchanged
/// (the kernel plaintexts are shared across images).
pub fn plan_batched(shape: &ConvShape, scheme: Scheme, batch: usize) -> BatchPlan {
    assert!(batch >= 1, "batch must be at least 1");
    let mut plan = plan_conv(shape, scheme, true);
    plan.input_cts *= batch;
    plan.output_cts *= batch;
    plan.relu_elements *= batch;
    plan.assembly_elements *= batch as u64;
    plan.client_extra_s *= batch as f64;
    BatchPlan { batch, plan }
}

/// Amortized per-image latency of the batched plan on a client.
pub fn amortized_latency(bp: &BatchPlan, client: DeviceProfile) -> f64 {
    let cfg = SimConfig::with_client(client);
    simulate_conv(&bp.plan, &cfg).timing.total_s / bp.batch as f64
}

/// Single-query latency (batch = 1) for comparison.
pub fn single_latency(shape: &ConvShape, scheme: Scheme, client: DeviceProfile) -> f64 {
    amortized_latency(&plan_batched(shape, scheme, 1), client)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ConvShape {
        ConvShape::new(28, 28, 128, 128, 3, 1)
    }

    #[test]
    fn batching_amortizes_per_image_cost() {
        let single = single_latency(&shape(), Scheme::Spot, DeviceProfile::desktop_client());
        let batched = amortized_latency(
            &plan_batched(&shape(), Scheme::Spot, 8),
            DeviceProfile::desktop_client(),
        );
        assert!(
            batched < single,
            "amortized {batched} should beat single {single}"
        );
    }

    #[test]
    fn batching_multiplies_traffic() {
        let b1 = plan_batched(&shape(), Scheme::CrypTFlow2, 1);
        let b4 = plan_batched(&shape(), Scheme::CrypTFlow2, 4);
        assert_eq!(b4.plan.upstream_bytes(), 4 * b1.plan.upstream_bytes());
        assert_eq!(b4.plan.relu_elements, 4 * b1.plan.relu_elements);
    }

    #[test]
    fn tiny_client_gains_less_from_batching() {
        // the memory-constrained client serializes the extra ciphertexts,
        // so its amortization factor is worse than the desktop's
        let shape = shape();
        let desk_gain = single_latency(&shape, Scheme::Spot, DeviceProfile::desktop_client())
            / amortized_latency(
                &plan_batched(&shape, Scheme::Spot, 8),
                DeviceProfile::desktop_client(),
            );
        let iot_gain = single_latency(&shape, Scheme::Spot, DeviceProfile::iot_k27())
            / amortized_latency(
                &plan_batched(&shape, Scheme::Spot, 8),
                DeviceProfile::iot_k27(),
            );
        assert!(
            desk_gain > iot_gain * 0.8,
            "desktop gain {desk_gain} vs iot gain {iot_gain}"
        );
    }

    #[test]
    #[should_panic]
    fn zero_batch_rejected() {
        let _ = plan_batched(&shape(), Scheme::Spot, 0);
    }
}
