//! Typed errors for the session layer and streaming runtime.

use spot_he::serial::SerialError;
use spot_proto::ProtoError;
use std::fmt;

/// Errors surfaced by the client/server sessions and the streaming
/// runtime (thiserror-style, hand-rolled to stay dependency-free).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpotError {
    /// A transport or wire-codec failure.
    Proto(ProtoError),
    /// An HE object failed validated deserialization.
    Serial(SerialError),
    /// The peer violated the session protocol (wrong message, bad
    /// sequence number, inconsistent geometry, …).
    Protocol(String),
    /// The server refused the session with a typed wire error
    /// (admission control: at capacity, over the ciphertext budget…).
    /// On the server side the code selects the `WireMessage::Error`
    /// frame sent back; on the client side it is the received frame.
    Rejected {
        /// Machine-readable reason (`spot_proto::error_code`).
        code: u16,
        /// Human-readable context from the server.
        detail: String,
    },
    /// A lock was poisoned by a panic on another thread.
    Poisoned(&'static str),
    /// A queue or channel was disconnected while traffic was expected.
    Disconnected(&'static str),
}

impl fmt::Display for SpotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpotError::Proto(e) => write!(f, "protocol transport error: {e}"),
            SpotError::Serial(e) => write!(f, "HE deserialization error: {e}"),
            SpotError::Protocol(m) => write!(f, "session protocol violation: {m}"),
            SpotError::Rejected { code, detail } => {
                write!(f, "rejected by server (code {code}): {detail}")
            }
            SpotError::Poisoned(what) => write!(f, "poisoned lock: {what}"),
            SpotError::Disconnected(what) => write!(f, "disconnected: {what}"),
        }
    }
}

impl std::error::Error for SpotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpotError::Proto(e) => Some(e),
            SpotError::Serial(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtoError> for SpotError {
    fn from(e: ProtoError) -> Self {
        SpotError::Proto(e)
    }
}

impl From<SerialError> for SpotError {
    fn from(e: SerialError) -> Self {
        SpotError::Serial(e)
    }
}
