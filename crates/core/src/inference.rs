//! End-to-end secure inference: planning full networks for the
//! simulator, and a functional driver that runs a real network
//! (convolutions under HE, non-linearities via the simulated OT
//! protocols) on additive shares.

use crate::executor::Executor;
use crate::patching::PatchMode;
use crate::session::{run_in_process, run_in_process_batched, SchemeKind};
use crate::stream::StreamStats;
use crate::{channelwise, cheetah, select, spot};

pub use crate::session::ExecBackend;
use rand::Rng;
use spot_he::context::Context;
use spot_he::keys::KeyGenerator;
use spot_he::params::ParamLevel;
use spot_pipeline::plan::ConvPlan;
use spot_pipeline::sim::{simulate_layers, LayerTiming, SimConfig};
use spot_proto::channel::Channel;
use spot_proto::relu::{maxpool2_on_shares, relu_on_shares};
use spot_proto::share::ShareVec;
use spot_tensor::models::{ConvShape, Layer, Network};
use spot_tensor::tensor::{Kernel, Tensor};
use std::sync::Arc;

/// The secure-convolution scheme used for the linear layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// CrypTFlow2-style channel-wise packing.
    CrypTFlow2,
    /// Cheetah-style coefficient encoding.
    Cheetah,
    /// SPOT structure patching with overlap tweaking.
    Spot,
}

impl Scheme {
    /// All schemes, baselines first.
    pub const ALL: [Scheme; 3] = [Scheme::CrypTFlow2, Scheme::Cheetah, Scheme::Spot];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::CrypTFlow2 => "CrypTFlow2",
            Scheme::Cheetah => "Cheetah",
            Scheme::Spot => "SPOT",
        }
    }

    /// The session-layer scheme kind this scheme runs as.
    pub fn kind(self) -> SchemeKind {
        match self {
            Scheme::CrypTFlow2 => SchemeKind::Channelwise,
            Scheme::Cheetah => SchemeKind::Cheetah,
            Scheme::Spot => SchemeKind::Spot,
        }
    }
}

/// Runs one secure convolution under `scheme` with the chosen backend
/// (a thin wrapper over [`crate::session::run_in_process`]).
///
/// Returns the measured [`StreamStats`] when the streaming backend ran
/// (`None` for the phased backend). Both backends draw randomness in
/// the same order, so for a given rng seed the returned shares and op
/// counts are bit-identical across backends, thread counts, and channel
/// capacities.
#[allow(clippy::too_many_arguments)]
pub fn run_conv_backend<R: Rng + Send>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    input: &Tensor,
    kernel: &Kernel,
    stride: usize,
    patch: (usize, usize),
    mode: PatchMode,
    scheme: Scheme,
    backend: &ExecBackend,
    rng: &mut R,
) -> (channelwise::SecureConvResult, Option<StreamStats>) {
    let outcome = run_in_process(
        ctx,
        keygen,
        input,
        kernel,
        stride,
        patch,
        mode,
        scheme.kind(),
        backend,
        rng,
    )
    .expect("in-process secure convolution session");
    (outcome.result, outcome.stream)
}

/// [`run_conv_backend`] over a batch of same-shape images coalesced
/// into one session (shared ciphertexts for the slot-packed schemes,
/// sequential images for Cheetah). Returns each image's functional
/// result in submission order; op and ciphertext counts on the results
/// are per batch.
#[allow(clippy::too_many_arguments)]
pub fn run_conv_backend_batched<R: Rng + Send>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    inputs: &[Tensor],
    kernel: &Kernel,
    stride: usize,
    patch: (usize, usize),
    mode: PatchMode,
    scheme: Scheme,
    backend: &ExecBackend,
    rng: &mut R,
) -> (Vec<channelwise::SecureConvResult>, Option<StreamStats>) {
    let outcome = run_in_process_batched(
        ctx,
        keygen,
        inputs,
        kernel,
        stride,
        patch,
        mode,
        scheme.kind(),
        backend,
        rng,
    )
    .expect("in-process batched secure convolution session");
    let stream = outcome.stream.clone();
    (outcome.into_results(), stream)
}

/// Builds the execution plan for one convolution layer under a scheme,
/// choosing each scheme's preferred parameter level.
pub fn plan_conv(shape: &ConvShape, scheme: Scheme, with_relu: bool) -> ConvPlan {
    match scheme {
        Scheme::CrypTFlow2 => {
            channelwise::plan(shape, channelwise::minimum_level(shape), with_relu)
        }
        Scheme::Cheetah => cheetah::plan(shape, cheetah::minimum_level(shape), with_relu),
        Scheme::Spot => {
            // Cost-aware level choice: smaller parameters are cheaper per
            // op, but tiny patches at a small level can inflate overlap
            // duplication and alignment rotations; pick the cheapest.
            let costs = spot_pipeline::device::HeCostTable::reference();
            let best = ParamLevel::ALL
                .into_iter()
                .filter(|l| l.supports_rotation())
                .filter_map(|l| {
                    let c = select::select_patch(shape, l, PatchMode::Tweaked)?;
                    Some(spot::plan(shape, l, c.patch, PatchMode::Tweaked, with_relu))
                })
                .min_by(|a, b| {
                    a.estimated_seconds(&costs)
                        .partial_cmp(&b.estimated_seconds(&costs))
                        .unwrap()
                });
            match best {
                Some(plan) => plan,
                None => {
                    // Channel count exceeds every lane even at the
                    // minimum patch (huge-fan-in FC layers): fall back to
                    // channel-split packing at the smallest rotation
                    // level — patch pipelining is moot for dot products.
                    let level = ParamLevel::ALL
                        .into_iter()
                        .filter(|l| l.supports_rotation())
                        .find(|l| {
                            crate::layout::next_pow2(shape.width * shape.height) <= l.degree() / 2
                        })
                        .unwrap_or(ParamLevel::N16384);
                    let mut p = channelwise::plan(shape, level, with_relu);
                    p.scheme = "SPOT (channel-split fallback)";
                    p
                }
            }
        }
    }
}

/// Builds a conv plan pinned to a specific level (for parameter sweeps).
pub fn plan_conv_at_level(
    shape: &ConvShape,
    scheme: Scheme,
    level: ParamLevel,
    with_relu: bool,
) -> Option<ConvPlan> {
    match scheme {
        Scheme::CrypTFlow2 => Some(channelwise::plan(shape, level, with_relu)),
        Scheme::Cheetah => Some(cheetah::plan(shape, level, with_relu)),
        Scheme::Spot => {
            let choice = select::select_patch(shape, level, PatchMode::Tweaked)?;
            Some(spot::plan(
                shape,
                level,
                choice.patch,
                PatchMode::Tweaked,
                with_relu,
            ))
        }
    }
}

/// The plan of a full network: one [`ConvPlan`] per linear layer (conv
/// and FC) with ReLU elements attached, plus pooling element counts.
#[derive(Debug, Clone)]
pub struct NetworkPlan {
    /// Network name.
    pub name: &'static str,
    /// Scheme used.
    pub scheme: Scheme,
    /// One plan per linear layer.
    pub conv_plans: Vec<ConvPlan>,
    /// Total max-pool input elements (OT comparisons at 3 per window).
    pub maxpool_elements: usize,
}

/// Plans a whole network under a scheme.
pub fn plan_network(net: &Network, scheme: Scheme) -> NetworkPlan {
    let mut conv_plans = Vec::new();
    let mut maxpool_elements = 0usize;
    let layers = net.layers();
    for (i, layer) in layers.iter().enumerate() {
        match layer {
            Layer::Conv(shape) => {
                let with_relu = matches!(layers.get(i + 1), Some(Layer::Relu { .. }));
                conv_plans.push(plan_conv(shape, scheme, with_relu));
            }
            Layer::Fc { inputs, outputs } => {
                // An FC layer is a 1×1 convolution over a 1×1 map with
                // `inputs` channels.
                let shape = ConvShape::new(1, 1, *inputs, *outputs, 1, 1);
                conv_plans.push(plan_conv(&shape, scheme, false));
            }
            Layer::MaxPool { elements } => maxpool_elements += elements,
            Layer::Relu { .. } | Layer::AvgPool { .. } => {}
        }
    }
    NetworkPlan {
        name: net.name(),
        scheme,
        conv_plans,
        maxpool_elements,
    }
}

impl NetworkPlan {
    /// Simulates the network end to end under a device configuration,
    /// adding the max-pool protocol cost.
    pub fn simulate(&self, cfg: &SimConfig) -> LayerTiming {
        let mut timing = simulate_layers(&self.conv_plans, cfg);
        if self.maxpool_elements > 0 {
            let model = spot_proto::cost::OtCostModel::max(21);
            // 3 comparisons per 2×2 window = 3/4 per input element
            let n = self.maxpool_elements * 3 / 4;
            let cpu = model.cpu_seconds(n);
            let both = cfg.client.scale(cpu).max(cfg.server.scale(cpu));
            let comm = cfg.link.transfer_time(model.comm_bytes(n) as usize);
            timing.relu_s += both + comm;
            timing.total_s += both + comm;
        }
        timing
    }

    /// Total upstream+downstream communication in bytes.
    pub fn total_comm_bytes(&self) -> u64 {
        self.conv_plans
            .iter()
            .map(|p| p.upstream_bytes() + p.downstream_bytes())
            .sum()
    }
}

/// A small CNN for the functional end-to-end demo: conv → ReLU →
/// maxpool → conv → ReLU, with explicit kernels.
#[derive(Debug, Clone)]
pub struct TinyCnn {
    /// First convolution kernels.
    pub conv1: Kernel,
    /// Second convolution kernels.
    pub conv2: Kernel,
}

impl TinyCnn {
    /// Deterministic small network for tests/examples.
    pub fn new(seed: u64) -> Self {
        Self {
            conv1: Kernel::random(4, 2, 3, 3, 3, seed),
            conv2: Kernel::random(4, 4, 3, 3, 3, seed + 1),
        }
    }

    /// Plaintext reference forward pass.
    pub fn forward_plain(&self, input: &Tensor) -> Tensor {
        use spot_tensor::conv::{conv2d, maxpool2, relu};
        let x = relu(&conv2d(input, &self.conv1, 1));
        let x = maxpool2(&x);
        relu(&conv2d(&x, &self.conv2, 1))
    }

    /// Secure forward pass: convolutions under HE with the chosen
    /// scheme, ReLU/pooling via the simulated OT protocols on shares.
    ///
    /// Returns the reconstructed output (testing convenience) and the
    /// protocol channel with its traffic statistics.
    pub fn forward_secure<R: Rng + Send>(
        &self,
        ctx: &Arc<Context>,
        keygen: &KeyGenerator,
        input: &Tensor,
        scheme: Scheme,
        rng: &mut R,
    ) -> (Tensor, Channel) {
        let (out, channel, _) = self.forward_secure_with(
            ctx,
            keygen,
            input,
            scheme,
            &ExecBackend::Phased(Executor::serial()),
            rng,
        );
        (out, channel)
    }

    /// [`TinyCnn::forward_secure`] with an explicit execution backend.
    ///
    /// With [`ExecBackend::Streaming`], each convolution layer runs as a
    /// real client/server pipeline and the returned [`StreamStats`]
    /// accumulate the per-layer stall accounting end to end; the output
    /// is bit-identical to the phased backend for the same rng seed.
    pub fn forward_secure_with<R: Rng + Send>(
        &self,
        ctx: &Arc<Context>,
        keygen: &KeyGenerator,
        input: &Tensor,
        scheme: Scheme,
        backend: &ExecBackend,
        rng: &mut R,
    ) -> (Tensor, Channel, StreamStats) {
        let t = ctx.params().plain_modulus();
        let mut channel = Channel::new();
        let mut stream_stats = StreamStats::default();
        let run = |input: &Tensor,
                   kernel: &Kernel,
                   chan: &mut Channel,
                   stats: &mut StreamStats,
                   rng: &mut R| {
            let outcome = run_in_process(
                ctx,
                keygen,
                input,
                kernel,
                1,
                (4, 4),
                PatchMode::Tweaked,
                scheme.kind(),
                backend,
                rng,
            )
            .expect("in-process secure convolution session");
            // Charge the convolution's real framed wire traffic to the
            // protocol channel alongside the OT rounds.
            chan.charge_traffic(&outcome.uplink, &outcome.downlink);
            if let Some(s) = outcome.stream {
                stats.accumulate(&s);
            }
            outcome.result
        };

        // conv1 under HE
        let r1 = run(input, &self.conv1, &mut channel, &mut stream_stats, rng);
        // ReLU on shares
        let (c, s) = to_shares(&r1, t);
        let (c, s) = relu_on_shares(&c, &s, &mut channel, rng);
        // maxpool on shares
        let (c, s) = maxpool2_on_shares(
            &c,
            &s,
            self.conv1.out_channels(),
            input.height(),
            input.width(),
            &mut channel,
            rng,
        );
        let mid = from_shares(
            &c,
            &s,
            self.conv1.out_channels(),
            input.height() / 2,
            input.width() / 2,
            t,
        );
        // conv2 under HE (on the reconstructed-for-simulation tensor; in
        // the real protocol the client re-encrypts its share and the
        // server adds its own — the arithmetic is identical)
        let r2 = run(&mid, &self.conv2, &mut channel, &mut stream_stats, rng);
        let (c, s) = to_shares(&r2, t);
        let (c, s) = relu_on_shares(&c, &s, &mut channel, rng);
        let out = from_shares(
            &c,
            &s,
            self.conv2.out_channels(),
            input.height() / 2,
            input.width() / 2,
            t,
        );
        (out, channel, stream_stats)
    }
}

fn to_shares(res: &crate::channelwise::SecureConvResult, t: u64) -> (ShareVec, ShareVec) {
    let client: Vec<u64> = res
        .client_share
        .data()
        .iter()
        .map(|&v| v.rem_euclid(t as i64) as u64)
        .collect();
    let server: Vec<u64> = res
        .server_share
        .data()
        .iter()
        .map(|&v| v.rem_euclid(t as i64) as u64)
        .collect();
    (
        ShareVec::new(spot_proto::share::Party::Client, t, client),
        ShareVec::new(spot_proto::share::Party::Server, t, server),
    )
}

fn from_shares(c: &ShareVec, s: &ShareVec, channels: usize, h: usize, w: usize, t: u64) -> Tensor {
    let vals = spot_proto::relu::reconstruct_signed(c, s);
    let _ = t;
    Tensor::from_vec(channels, h, w, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spot_he::params::EncryptionParams;
    use spot_tensor::models::{resnet18, vgg16};

    #[test]
    fn network_plans_have_all_linear_layers() {
        let net = resnet18();
        for scheme in Scheme::ALL {
            let plan = plan_network(&net, scheme);
            // 17 convs + 1 FC
            assert_eq!(plan.conv_plans.len(), 18, "{}", scheme.name());
            assert!(plan.maxpool_elements > 0);
        }
    }

    #[test]
    fn spot_uses_smaller_levels_than_channelwise() {
        let net = vgg16();
        let cw = plan_network(&net, Scheme::CrypTFlow2);
        let sp = plan_network(&net, Scheme::Spot);
        let avg_level = |p: &NetworkPlan| {
            p.conv_plans.iter().map(|c| c.level.degree()).sum::<usize>() as f64
                / p.conv_plans.len() as f64
        };
        assert!(avg_level(&sp) < avg_level(&cw));
    }

    #[test]
    fn tiny_cnn_secure_matches_plain_all_schemes() {
        let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
        let mut rng = StdRng::seed_from_u64(42);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let cnn = TinyCnn::new(7);
        let input = Tensor::random(2, 8, 8, 5, 9);
        let want = cnn.forward_plain(&input);
        for scheme in Scheme::ALL {
            let (got, channel) = cnn.forward_secure(&ctx, &kg, &input, scheme, &mut rng);
            assert_eq!(got, want, "scheme {}", scheme.name());
            assert!(channel.total_bytes() > 0);
        }
    }

    #[test]
    fn tiny_cnn_streaming_backend_matches_phased() {
        let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
        let mut rng = StdRng::seed_from_u64(42);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let cnn = TinyCnn::new(7);
        let input = Tensor::random(2, 8, 8, 5, 9);
        for scheme in Scheme::ALL {
            let mut rng_a = StdRng::seed_from_u64(77);
            let (phased, chan_a, _) = cnn.forward_secure_with(
                &ctx,
                &kg,
                &input,
                scheme,
                &ExecBackend::Phased(Executor::serial()),
                &mut rng_a,
            );
            let mut rng_b = StdRng::seed_from_u64(77);
            let cfg = StreamConfig::new(Executor::new(2), 2);
            let (streamed, chan_b, stats) = cnn.forward_secure_with(
                &ctx,
                &kg,
                &input,
                scheme,
                &ExecBackend::Streaming(cfg),
                &mut rng_b,
            );
            assert_eq!(phased, streamed, "scheme {}", scheme.name());
            assert_eq!(chan_a.total_bytes(), chan_b.total_bytes());
            assert!(stats.input_items > 0, "scheme {}", scheme.name());
            assert!(stats.wall_s > 0.0);
        }
    }

    #[test]
    fn simulate_network_produces_sane_timing() {
        use spot_pipeline::device::DeviceProfile;
        let net = resnet18();
        let cfg = SimConfig::with_client(DeviceProfile::iot_k27());
        let sp = plan_network(&net, Scheme::Spot).simulate(&cfg);
        let cw = plan_network(&net, Scheme::CrypTFlow2).simulate(&cfg);
        assert!(sp.total_s > 1.0, "SPOT total {}", sp.total_s);
        assert!(
            sp.total_s < cw.total_s,
            "SPOT {} should beat CrypTFlow2 {}",
            sp.total_s,
            cw.total_s
        );
    }
}
