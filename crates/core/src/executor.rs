//! Deterministic parallel executor for server-side convolution work.
//!
//! The per-ciphertext convolutions of every scheme ([`crate::spot`],
//! [`crate::channelwise`], [`crate::cheetah`]) are independent: no job
//! reads another's output and none touches the protocol randomness
//! (masking happens on the sequential path). The executor fans those
//! jobs across a pool of scoped worker threads pulling from a shared
//! atomic work queue, and returns results **in job order** regardless
//! of which worker finished when — so the produced ciphertexts, shares
//! and operation counts are bit-identical for any thread count.

use crossbeam::thread;
use spot_pipeline::device::DeviceProfile;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-width worker pool executing independent jobs with
/// deterministic output ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    /// Defaults to one thread per available CPU.
    fn default() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

impl Executor {
    /// An executor with the given worker count (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The single-threaded executor: jobs run inline on the caller's
    /// thread in order, with no pool at all.
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// An executor sized for a simulated device profile's core count.
    pub fn for_device(profile: &DeviceProfile) -> Self {
        Self::new(profile.threads)
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Spawns `workers` scoped threads, runs `f(worker_index)` on each,
    /// and returns the per-worker results in worker order.
    ///
    /// This is the raw pool primitive shared by [`Executor::run`] and
    /// the streaming runtime ([`crate::stream`]): `f` typically loops
    /// over a shared work source (an atomic cursor or a channel) until
    /// it is exhausted. A panic on any worker is propagated to the
    /// caller after all threads have joined. With `workers == 1` the
    /// closure runs inline on the caller's thread.
    pub fn run_workers<R, F>(&self, workers: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = workers.max(1);
        if workers == 1 {
            return vec![f(0)];
        }
        // Per-session counter attribution crosses the pool boundary:
        // workers inherit the spawning thread's session sink so HE ops
        // executed on their behalf land in the right session's totals.
        let session = spot_trace::session_counters();
        let result = thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let f = &f;
                    let session = session.clone();
                    s.spawn(move |_| {
                        if let Some(sink) = session {
                            spot_trace::set_session_counters(Some(sink));
                        }
                        f(w)
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(workers);
            let mut panic = None;
            for h in handles {
                match h.join() {
                    Ok(r) => out.push(r),
                    Err(payload) => panic = Some(payload),
                }
            }
            if let Some(payload) = panic {
                std::panic::resume_unwind(payload);
            }
            out
        });
        match result {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Runs `f(index, &item)` for every item and returns the results in
    /// item order.
    ///
    /// With one worker (or ≤ 1 item) everything runs inline. Otherwise
    /// workers race on an atomic cursor over the item list — dynamic
    /// load balancing for jobs of uneven cost — and the collected
    /// results are reassembled by index before returning. A panic in
    /// any job is propagated to the caller after the scope joins.
    pub fn run<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
        }
        let workers = self.threads.min(items.len());
        let cursor = AtomicUsize::new(0);
        let per_worker = self.run_workers(workers, |_| {
            let mut done: Vec<(usize, R)> = Vec::new();
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                done.push((i, f(i, &items[i])));
            }
            done
        });
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in per_worker.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|r| r.expect("every job produced a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn results_are_in_job_order() {
        for threads in [1usize, 2, 4, 8] {
            let ex = Executor::new(threads);
            let items: Vec<usize> = (0..100).collect();
            let out = ex.run(&items, |i, &v| {
                // uneven job cost to shuffle completion order
                let spin = (v * 7919) % 97;
                let mut acc = 0u64;
                for k in 0..spin * 100 {
                    acc = acc.wrapping_add(k as u64);
                }
                std::hint::black_box(acc);
                i * 2 + v
            });
            assert_eq!(
                out,
                (0..100).map(|v| v * 3).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let seen = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..64).collect();
        Executor::new(4).run(&items, |i, _| {
            assert!(seen.lock().unwrap().insert(i), "job {i} ran twice");
        });
        assert_eq!(seen.into_inner().unwrap().len(), 64);
    }

    #[test]
    fn thread_count_clamps_to_one() {
        assert_eq!(Executor::new(0).threads(), 1);
        assert_eq!(Executor::serial().threads(), 1);
    }

    #[test]
    fn for_device_uses_profile_threads() {
        let profile = DeviceProfile::server_epyc();
        assert_eq!(Executor::for_device(&profile).threads(), profile.threads);
    }

    #[test]
    fn empty_and_single_item() {
        let ex = Executor::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(ex.run(&empty, |_, &v| v).is_empty());
        assert_eq!(ex.run(&[41u32], |_, &v| v + 1), vec![42]);
    }

    #[test]
    #[should_panic(expected = "job 3 failed")]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..8).collect();
        Executor::new(4).run(&items, |i, _| {
            if i == 3 {
                panic!("job 3 failed");
            }
        });
    }
}
