//! The Table V complexity formulas and their validation against recorded
//! operation counts.
//!
//! The paper compares CrypTFlow2's channel-wise convolution and SPOT's
//! patch convolution by Permutation (rotation), SIMD multiplication, and
//! addition counts:
//!
//! | method     | Perm                                  | SIMDMult        | Add                        |
//! |------------|---------------------------------------|-----------------|----------------------------|
//! | CrypTFlow2 | `Cm·(Co/Cn)(Cn−1) + Cm(KwKh−1)`       | `Cm·Co·KwKh`    | `Cm·(Co/Cn)(Cn·KwKh−1)`    |
//! | SPOT       | `C'm(KwKh−1) + C'm(Co/Ci)(Ci−1)`      | `C'm·Co·KwKh`   | `C'm·(Co/Ci)(Ci·KwKh−1)`   |
//!
//! Our implementation packs the two SIMD slot rows as parallel lanes, so
//! one HE operation processes two channel groups at once: the recorded
//! counts equal the formulas with `Cn` (resp. `Ci`) interpreted as the
//! *per-lane* block count — see `tests` and the Table V generator.

use spot_he::evaluator::OpCounts;

/// Operation counts predicted by a Table V formula row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FormulaCounts {
    /// Rotations (the paper's "Permutation").
    pub perm: u64,
    /// SIMD ciphertext–plaintext multiplications.
    pub simd_mult: u64,
    /// Ciphertext additions.
    pub add: u64,
}

impl FormulaCounts {
    /// Compares against recorded counts, returning the largest relative
    /// deviation across the three operation kinds (0.0 = exact).
    pub fn relative_deviation(&self, recorded: &OpCounts) -> f64 {
        let rel = |formula: u64, got: u64| -> f64 {
            if formula == 0 && got == 0 {
                0.0
            } else {
                (formula as f64 - got as f64).abs() / formula.max(got).max(1) as f64
            }
        };
        rel(self.perm, recorded.rotate)
            .max(rel(self.simd_mult, recorded.mult_plain))
            .max(rel(self.add, recorded.add))
    }
}

/// Table V, CrypTFlow2 row: `c_m` input ciphertexts, `c_n` channels per
/// ciphertext, `c_o` output channels, `k_w × k_h` kernel.
pub fn cryptflow2_formula(c_m: u64, c_n: u64, c_o: u64, k_w: u64, k_h: u64) -> FormulaCounts {
    let kk = k_w * k_h;
    let groups = c_o / c_n;
    FormulaCounts {
        perm: c_m * groups * (c_n - 1) + c_m * (kk - 1),
        simd_mult: c_m * c_o * kk,
        add: c_m * groups * (c_n * kk - 1),
    }
}

/// Table V, SPOT row: `c_m` input (patch) ciphertexts, `c_i`/`c_o`
/// channels, `k_w × k_h` kernel.
pub fn spot_formula(c_m: u64, c_i: u64, c_o: u64, k_w: u64, k_h: u64) -> FormulaCounts {
    let kk = k_w * k_h;
    let groups = (c_o / c_i).max(1);
    FormulaCounts {
        perm: c_m * (kk - 1) + c_m * groups * (c_i - 1),
        simd_mult: c_m * c_o * kk,
        add: c_m * groups * (c_i * kk - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channelwise;
    use crate::spot;
    use spot_he::params::ParamLevel;
    use spot_tensor::models::ConvShape;

    #[test]
    fn formulas_scale_with_ct_count() {
        let a = cryptflow2_formula(1, 4, 16, 3, 3);
        let b = cryptflow2_formula(3, 4, 16, 3, 3);
        assert_eq!(b.perm, 3 * a.perm);
        assert_eq!(b.simd_mult, 3 * a.simd_mult);
        assert_eq!(b.add, 3 * a.add);
    }

    #[test]
    fn spot_fewer_rotations_than_channelwise_per_output() {
        // Same totals of channels: SPOT's per-ct rotation count is lower
        // because taps are shared and no cross-ct alignment is needed.
        let cf = cryptflow2_formula(4, 8, 64, 3, 3);
        let sp = spot_formula(4, 8, 64, 3, 3);
        assert_eq!(cf.simd_mult, sp.simd_mult);
        assert!(sp.perm <= cf.perm);
    }

    #[test]
    fn channelwise_planner_matches_formula() {
        // The planner's per-ct multiplication and addition counts equal
        // the published formula with c_n = channels per ciphertext; our
        // rotation count is slightly *below* the formula because the
        // two-lane layout shares each alignment rotation across lanes.
        let shape = ConvShape::new(16, 16, 32, 32, 3, 1);
        let geo = channelwise::geometry(&shape, ParamLevel::N4096);
        let per_ct = channelwise::per_ct_counts(&geo, 3, 3);
        let f = cryptflow2_formula(1, geo.channels_per_ct as u64, 32, 3, 3);
        assert_eq!(per_ct.mult_plain, f.simd_mult);
        assert_eq!(per_ct.add, f.add);
        assert!(per_ct.rotate <= f.perm, "{} > {}", per_ct.rotate, f.perm);
        // within 30% of the formula
        let dev = f.relative_deviation(&per_ct);
        assert!(dev < 0.3, "deviation {dev}");
    }

    #[test]
    fn spot_planner_matches_formula_with_lane_ci() {
        let blk = spot::blocking(8, 32);
        let per_ct = spot::per_ct_counts(&blk, 3, 3);
        let f = spot_formula(1, 8, 32, 3, 3);
        // The BSGS alignment never exceeds the published rotation count.
        assert!(per_ct.rotate <= f.perm, "{} > {}", per_ct.rotate, f.perm);
        assert_eq!(per_ct.mult_plain, f.simd_mult);
        // adds differ only by the per-output mask additions
        assert_eq!(per_ct.add, f.add + blk.out_groups as u64);
    }

    #[test]
    fn deviation_metric() {
        let f = FormulaCounts {
            perm: 10,
            simd_mult: 100,
            add: 50,
        };
        let exact = OpCounts {
            rotate: 10,
            mult_plain: 100,
            add: 50,
            ..OpCounts::default()
        };
        assert_eq!(f.relative_deviation(&exact), 0.0);
        let off = OpCounts {
            rotate: 20,
            ..exact
        };
        assert!(f.relative_deviation(&off) > 0.4);
    }
}
