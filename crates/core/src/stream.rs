//! Streaming execution runtime: overlap client encryption with server
//! convolution.
//!
//! The phased drivers (`execute_with` in [`crate::spot`],
//! [`crate::channelwise`], [`crate::cheetah`]) run *encrypt everything →
//! convolve everything* as two sequential phases, so the pipelining that
//! SPOT's structure patching enables existed only in the analytic
//! simulator. This module makes it real: a **producer thread** (the
//! client) packs and encrypts ciphertexts and pushes them through a
//! [`BoundedQueue`] whose capacity is the tiny client's ciphertext
//! budget ([`DeviceProfile::ciphertext_capacity`]); **server workers**
//! (the PR 1 [`Executor`] pool, via [`Executor::run_workers`]) pull each
//! ciphertext the moment it arrives and convolve it; result shares flow
//! back on an unbounded return queue for overlapped assembly on the
//! caller's thread.
//!
//! Two drivers map the two output-dependency classes
//! ([`crate::inference::plan_conv`]):
//!
//! * [`run_stream`] — per-input dependencies (SPOT): every ciphertext is
//!   independently convolvable, so the server starts on ciphertext 0
//!   while the client is still encrypting ciphertext 1.
//! * [`run_stream_barrier`] — all-input dependencies (channel-wise,
//!   Cheetah): every server job reads the full input set, so workers sit
//!   idle until the last ciphertext lands — the "linear computation
//!   stall" the paper eliminates. Upload is still overlappable with
//!   nothing, and that idle time is what the stall accounting surfaces.
//!
//! ## Determinism
//!
//! All protocol randomness is drawn on the producer thread in exactly
//! the phased driver's order; the parallel phase is pure; results are
//! consumed in item order. Given the same rng seed, a streamed layer's
//! shares are bit-identical to the phased layer's — enforced by
//! `tests/streaming_determinism.rs` at 1 and 8 server threads.
//!
//! ## Stall accounting
//!
//! Every stage is timed against a common origin: client active/blocked
//! time, per-worker busy and idle (blocked on [`BoundedQueue::recv`]
//! while the stream is open) in thread-seconds.
//! [`StreamStats::stall_row`] converts a run into the
//! [`spot_pipeline::report::StallRow`] rendered by
//! [`spot_pipeline::report::stall_table`]. When `spot_trace` is
//! enabled, every stage additionally records spans (`enc #i`,
//! `conv #i`, `idle`, `out #i`) and queue counters/gauges into the
//! unified trace, which is what the `stream_timeline` binary and the
//! `--trace` flags export.

use crate::error::SpotError;
use crate::executor::Executor;
use crossbeam::thread;
use spot_he::pool;
use spot_pipeline::device::DeviceProfile;
use spot_pipeline::report::StallRow;
use spot_trace::{count, gauge, metrics, Cat, Counter};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

// Live-registry histograms for the streaming runtime, registered once
// per process: producer time blocked on channel backpressure (SPOT's
// headline stall number, readable off a running server) and per-item
// conv wall time across all worker threads.
fn stream_queue_blocked_hist() -> &'static metrics::Histogram {
    static H: OnceLock<std::sync::Arc<metrics::Histogram>> = OnceLock::new();
    H.get_or_init(|| metrics::global().histogram("spot_stream_queue_blocked_ns", &[]))
}

fn stream_conv_hist() -> &'static metrics::Histogram {
    static H: OnceLock<std::sync::Arc<metrics::Histogram>> = OnceLock::new();
    H.get_or_init(|| metrics::global().histogram("spot_stream_conv_ns", &[]))
}

// ---------------------------------------------------------------------
// Bounded MPMC queue
// ---------------------------------------------------------------------

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A blocking bounded MPMC queue with close semantics and blocked-time
/// measurement (the vendored `crossbeam` stand-in provides only scoped
/// threads, so the channel layer is built here).
///
/// [`BoundedQueue::send`] blocks while the queue is full — this is the
/// backpressure that keeps at most `capacity` ciphertexts in flight,
/// i.e. the tiny client's memory model. [`BoundedQueue::recv`] blocks
/// while the queue is empty and open, and returns `None` once it is
/// closed and drained. Both return the time they spent blocked so the
/// runtime can attribute stall to the right side.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    can_send: Condvar,
    can_recv: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn bounded(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            can_send: Condvar::new(),
            can_recv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// A queue with no capacity bound (used for the return channel:
    /// server workers must never block on the client).
    pub fn unbounded() -> Self {
        Self::bounded(usize::MAX)
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sends an item, blocking while the queue is full; returns the
    /// time spent blocked. Sending on a closed queue or through a
    /// poisoned lock returns an error instead of panicking.
    pub fn send(&self, item: T) -> Result<Duration, SpotError> {
        let mut blocked = Duration::ZERO;
        let mut st = self
            .state
            .lock()
            .map_err(|_| SpotError::Poisoned("stream queue"))?;
        while st.items.len() >= self.capacity && !st.closed {
            let t0 = Instant::now();
            st = self
                .can_send
                .wait(st)
                .map_err(|_| SpotError::Poisoned("stream queue"))?;
            blocked += t0.elapsed();
        }
        if st.closed {
            return Err(SpotError::Disconnected("send on closed stream queue"));
        }
        st.items.push_back(item);
        let depth = st.items.len() as u64;
        drop(st);
        self.can_recv.notify_one();
        count(Counter::QueuePushed, 1);
        count(Counter::QueueBlockedNs, blocked.as_nanos() as u64);
        gauge(Cat::Stream, "queue_depth", depth);
        if metrics::enabled() {
            stream_queue_blocked_hist().observe(blocked.as_nanos() as u64);
        }
        Ok(blocked)
    }

    /// Receives an item, blocking while the queue is empty and open;
    /// returns `None` once closed and drained, plus the time spent
    /// blocked.
    pub fn recv(&self) -> Result<(Option<T>, Duration), SpotError> {
        let mut blocked = Duration::ZERO;
        let mut st = self
            .state
            .lock()
            .map_err(|_| SpotError::Poisoned("stream queue"))?;
        loop {
            if let Some(item) = st.items.pop_front() {
                let depth = st.items.len() as u64;
                drop(st);
                self.can_send.notify_one();
                count(Counter::QueuePopped, 1);
                gauge(Cat::Stream, "queue_depth", depth);
                return Ok((Some(item), blocked));
            }
            if st.closed {
                return Ok((None, blocked));
            }
            let t0 = Instant::now();
            st = self
                .can_recv
                .wait(st)
                .map_err(|_| SpotError::Poisoned("stream queue"))?;
            blocked += t0.elapsed();
        }
    }

    /// Closes the queue: senders get an error, receivers drain then get
    /// `None`. Idempotent; a poisoned lock is ignored (the panic that
    /// poisoned it is already propagating).
    pub fn close(&self) {
        if let Ok(mut st) = self.state.lock() {
            st.closed = true;
        }
        self.can_send.notify_all();
        self.can_recv.notify_all();
    }
}

// ---------------------------------------------------------------------
// Configuration and stats
// ---------------------------------------------------------------------

/// Streaming runtime configuration: the server worker pool and the
/// bounded-channel capacity (the client's ciphertext budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Server-side worker pool.
    pub executor: Executor,
    /// Maximum ciphertexts in flight client → server.
    pub channel_capacity: usize,
}

impl StreamConfig {
    /// A config with an explicit channel capacity (clamped to ≥ 1).
    pub fn new(executor: Executor, channel_capacity: usize) -> Self {
        Self {
            executor,
            channel_capacity: channel_capacity.max(1),
        }
    }

    /// A config whose channel capacity is the client device's
    /// ciphertext budget for the given serialized ciphertext size.
    pub fn for_client(executor: Executor, client: &DeviceProfile, ciphertext_bytes: usize) -> Self {
        Self::new(executor, client.ciphertext_capacity(ciphertext_bytes))
    }
}

/// Measured wall-clock accounting for one streamed execution.
///
/// `server_busy_s`/`server_idle_s` are thread-seconds summed over the
/// worker pool; the rest are wall-clock seconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamStats {
    /// End-to-end wall time.
    pub wall_s: f64,
    /// Producer (client) active time: packing, encryption, mask
    /// generation.
    pub client_s: f64,
    /// Producer time blocked on channel backpressure.
    pub client_blocked_s: f64,
    /// Worker thread-seconds spent computing.
    pub server_busy_s: f64,
    /// Worker thread-seconds blocked waiting for ciphertexts while the
    /// stream was open — the measured "linear computation stall".
    pub server_idle_s: f64,
    /// Items streamed client → server.
    pub input_items: usize,
    /// Results returned server → client.
    pub output_items: usize,
    /// Bounded-channel capacity used.
    pub channel_capacity: usize,
    /// Server worker count.
    pub server_threads: usize,
}

impl StreamStats {
    /// Folds another layer's stats into this one (used when a network
    /// streams layer after layer). Timeline detail lives in the
    /// `spot_trace` event stream, not here.
    pub fn accumulate(&mut self, other: &StreamStats) {
        self.wall_s += other.wall_s;
        self.client_s += other.client_s;
        self.client_blocked_s += other.client_blocked_s;
        self.server_busy_s += other.server_busy_s;
        self.server_idle_s += other.server_idle_s;
        self.input_items += other.input_items;
        self.output_items += other.output_items;
        self.channel_capacity = self.channel_capacity.max(other.channel_capacity);
        self.server_threads = self.server_threads.max(other.server_threads);
    }

    /// Converts to the report row rendered by
    /// [`spot_pipeline::report::stall_table`].
    pub fn stall_row(&self, scheme: &str) -> StallRow {
        StallRow {
            scheme: scheme.to_string(),
            wall_s: self.wall_s,
            client_s: self.client_s,
            client_blocked_s: self.client_blocked_s,
            server_busy_s: self.server_busy_s,
            server_idle_s: self.server_idle_s,
            input_cts: self.input_items,
            output_cts: self.output_items,
            channel_capacity: self.channel_capacity,
            server_threads: self.server_threads,
        }
    }
}

// ---------------------------------------------------------------------
// Producer side
// ---------------------------------------------------------------------

/// Handle the producer closure pushes ciphertexts through. Items are
/// indexed in push order; [`Feeder::push`] blocks when the channel is
/// full (client out of ciphertext memory) and attributes the wait to
/// `client_blocked_s`.
pub struct Feeder<'q, T> {
    queue: &'q BoundedQueue<(usize, T)>,
    next_index: usize,
    blocked: Duration,
    // Open span covering production of item `next_index` (closed when
    // that item is pushed). Inert while tracing is disabled.
    enc_span: Option<spot_trace::Span>,
}

impl<'q, T> Feeder<'q, T> {
    fn new(queue: &'q BoundedQueue<(usize, T)>) -> Self {
        Self {
            queue,
            next_index: 0,
            blocked: Duration::ZERO,
            enc_span: Some(spot_trace::span_owned(Cat::Client, || "enc #0".into())),
        }
    }

    /// Pushes the next item (index assigned in push order), blocking on
    /// backpressure. Fails if the queue was closed or poisoned
    /// underneath the producer (e.g. the server side died).
    pub fn push(&mut self, item: T) -> Result<(), SpotError> {
        let i = self.next_index;
        // Close the span covering this item's production.
        self.enc_span.take();
        let blocked_span = spot_trace::span(Cat::Client, "blocked (channel full)");
        let waited = self.queue.send((i, item))?;
        if waited > Duration::ZERO {
            drop(blocked_span);
        } else {
            blocked_span.cancel();
        }
        self.blocked += waited;
        self.next_index += 1;
        self.enc_span = Some(spot_trace::span_owned(Cat::Client, || {
            format!("enc #{}", i + 1)
        }));
        Ok(())
    }

    /// Items pushed so far.
    pub fn pushed(&self) -> usize {
        self.next_index
    }
}

struct ProducerOutcome {
    blocked: Duration,
    pushed: usize,
    finished: Instant,
}

fn run_producer<T, P>(
    queue: &BoundedQueue<(usize, T)>,
    channel_capacity: usize,
    producer: P,
) -> Result<ProducerOutcome, SpotError>
where
    P: FnOnce(&mut Feeder<'_, T>) -> Result<(), SpotError>,
{
    spot_trace::set_thread_label("client");
    // Client memory model: a ciphertext is two residue polynomials, so a
    // budget of `channel_capacity` in-flight ciphertexts bounds the
    // producer's buffer pool at twice that — the debug assertion is the
    // satellite-task guarantee that pooling never retains more scratch
    // than the device could hold.
    let prev_cap = pool::capacity();
    pool::set_capacity(2 * channel_capacity);
    debug_assert!(pool::capacity() <= 2 * channel_capacity);
    let mut feeder = Feeder::new(queue);
    let result = producer(&mut feeder);
    // The span opened for a next item that will never be produced.
    if let Some(open) = feeder.enc_span.take() {
        open.cancel();
    }
    // Close and restore the pool even on failure, so workers drain and
    // exit instead of blocking forever.
    queue.close();
    let outcome = ProducerOutcome {
        blocked: feeder.blocked,
        pushed: feeder.next_index,
        finished: Instant::now(),
    };
    pool::set_capacity(prev_cap);
    spot_trace::flush_thread();
    result.map(|()| outcome)
}

// ---------------------------------------------------------------------
// Per-input streaming driver
// ---------------------------------------------------------------------

/// Streams independently-convolvable ciphertexts (SPOT's per-input
/// dependency class): the producer closure encrypts and pushes items;
/// each server worker pulls and applies `work` the moment an item
/// arrives; `consume` receives results **in item order** on the
/// caller's thread, overlapped with ongoing production and convolution.
///
/// Determinism contract: `producer` performs all rng draws in the
/// phased order on its single thread; `work` must be pure (no shared
/// mutable state, no randomness); `consume` runs sequentially in index
/// order — so the composition is bit-identical to the phased loop for
/// any thread count and channel capacity.
pub fn run_stream<T, R, P, W, C>(
    config: &StreamConfig,
    producer: P,
    work: W,
    mut consume: C,
) -> Result<StreamStats, SpotError>
where
    T: Send,
    R: Send,
    P: FnOnce(&mut Feeder<'_, T>) -> Result<(), SpotError> + Send,
    W: Fn(usize, T) -> R + Sync,
    C: FnMut(usize, R) -> Result<(), SpotError>,
{
    let t0 = Instant::now();
    let in_q: BoundedQueue<(usize, T)> = BoundedQueue::bounded(config.channel_capacity);
    let out_q: BoundedQueue<(usize, R)> = BoundedQueue::unbounded();
    let workers = config.executor.threads();

    let mut stats = StreamStats {
        channel_capacity: config.channel_capacity,
        server_threads: workers,
        ..StreamStats::default()
    };

    // Producer and server run on fresh scoped threads: hand them the
    // session counter sink so their wire/HE ops stay attributed.
    let session = spot_trace::session_counters();
    let scope_result = thread::scope(|s| {
        let in_q = &in_q;
        let out_q = &out_q;
        let work = &work;

        let producer_session = session.clone();
        let producer_handle = s.spawn(move |_| {
            if let Some(sink) = producer_session {
                spot_trace::set_session_counters(Some(sink));
            }
            run_producer(in_q, config.channel_capacity, producer)
        });

        let server_session = session.clone();
        let server_handle = s.spawn(move |_| {
            if let Some(sink) = server_session {
                spot_trace::set_session_counters(Some(sink));
            }
            let per_worker = config.executor.run_workers(workers, |w| {
                spot_trace::set_thread_label(format!("server-{w}"));
                let mut idle = Duration::ZERO;
                let mut busy = Duration::ZERO;
                loop {
                    let idle_span = spot_trace::span(Cat::Stream, "idle");
                    let (msg, waited) = in_q.recv()?;
                    if waited > Duration::ZERO {
                        drop(idle_span);
                    } else {
                        idle_span.cancel();
                    }
                    idle += waited;
                    let Some((i, item)) = msg else { break };
                    let conv_span = spot_trace::span_owned(Cat::Stream, || format!("conv #{i}"));
                    let job_start = Instant::now();
                    let r = work(i, item);
                    let took = job_start.elapsed();
                    busy += took;
                    drop(conv_span);
                    if metrics::enabled() {
                        stream_conv_hist().observe(took.as_nanos() as u64);
                    }
                    out_q.send((i, r))?;
                }
                spot_trace::flush_thread();
                Ok::<_, SpotError>((idle, busy))
            });
            // All workers have exited: no more results will appear.
            out_q.close();
            per_worker
        });

        // Overlapped assembly on the caller's thread, in item order. On a
        // consume failure, stop assembling but keep draining so the
        // producer and workers can exit before the error propagates.
        let mut pending: BTreeMap<usize, R> = BTreeMap::new();
        let mut next = 0usize;
        let mut assemble_err: Option<SpotError> = None;
        loop {
            let (msg, _) = match out_q.recv() {
                Ok(m) => m,
                Err(e) => {
                    assemble_err.get_or_insert(e);
                    break;
                }
            };
            let Some((i, r)) = msg else { break };
            if assemble_err.is_some() {
                continue;
            }
            pending.insert(i, r);
            while let Some(r) = pending.remove(&next) {
                let out_span = spot_trace::span_owned(Cat::Stream, || format!("out #{next}"));
                let res = consume(next, r);
                drop(out_span);
                if let Err(e) = res {
                    assemble_err.get_or_insert(e);
                    break;
                }
                next += 1;
            }
        }

        let produced = producer_handle.join().expect("producer thread panicked");
        let per_worker = server_handle.join().expect("server pool panicked");
        (produced, per_worker, assemble_err, next)
    });

    let (produced, per_worker, assemble_err, consumed) = match scope_result {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    };

    let produced = produced?;
    if let Some(e) = assemble_err {
        return Err(e);
    }
    stats.wall_s = t0.elapsed().as_secs_f64();
    stats.client_blocked_s = produced.blocked.as_secs_f64();
    stats.client_s = produced
        .finished
        .duration_since(t0)
        .saturating_sub(produced.blocked)
        .as_secs_f64();
    stats.input_items = produced.pushed;
    stats.output_items = consumed;
    for worker_result in per_worker {
        let (idle, busy) = worker_result?;
        stats.server_idle_s += idle.as_secs_f64();
        stats.server_busy_s += busy.as_secs_f64();
    }
    Ok(stats)
}

// ---------------------------------------------------------------------
// All-input (barrier) streaming driver
// ---------------------------------------------------------------------

/// Streams ciphertexts for a scheme whose every output depends on the
/// full input set (`OutputDependency::AllInputs`: channel-wise packing,
/// Cheetah): the producer uploads through the same bounded channel, but
/// no server job can start before the last input arrives, so the whole
/// upload span is measured as server idle — the stall SPOT's per-input
/// structure eliminates. Once the inputs are staged, `n_jobs` jobs run
/// on the worker pool (`work(j, &inputs)`), and `consume` receives
/// results in job order.
pub fn run_stream_barrier<T, R, P, W, C>(
    config: &StreamConfig,
    n_jobs: usize,
    producer: P,
    work: W,
    mut consume: C,
) -> Result<StreamStats, SpotError>
where
    T: Send + Sync,
    R: Send,
    P: FnOnce(&mut Feeder<'_, T>) -> Result<(), SpotError> + Send,
    W: Fn(usize, &[T]) -> R + Sync,
    C: FnMut(usize, R) -> Result<(), SpotError>,
{
    let t0 = Instant::now();
    let in_q: BoundedQueue<(usize, T)> = BoundedQueue::bounded(config.channel_capacity);
    let workers = config.executor.threads().min(n_jobs.max(1));

    let mut stats = StreamStats {
        channel_capacity: config.channel_capacity,
        server_threads: workers,
        ..StreamStats::default()
    };

    // Stage 1: drain the full upload; the server's workers are parked
    // until the barrier clears.
    let barrier_span =
        spot_trace::span(Cat::Stream, "barrier (await all inputs)").arg("workers", workers as u64);
    let session = spot_trace::session_counters();
    let scope_result = thread::scope(|s| {
        let in_q = &in_q;
        let producer_handle = s.spawn(move |_| {
            if let Some(sink) = session {
                spot_trace::set_session_counters(Some(sink));
            }
            run_producer(in_q, config.channel_capacity, producer)
        });
        let mut inputs: Vec<T> = Vec::new();
        let mut drain_err: Option<SpotError> = None;
        loop {
            let (msg, _) = match in_q.recv() {
                Ok(m) => m,
                Err(e) => {
                    drain_err.get_or_insert(e);
                    break;
                }
            };
            let Some((i, item)) = msg else { break };
            debug_assert_eq!(i, inputs.len(), "single producer delivers in order");
            inputs.push(item);
        }
        let produced = producer_handle.join().expect("producer thread panicked");
        (inputs, produced, drain_err)
    });
    let (inputs, produced, drain_err) = match scope_result {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    };
    let produced = produced?;
    if let Some(e) = drain_err {
        return Err(e);
    }

    drop(barrier_span);
    let barrier_cleared = Instant::now();
    let upload_span = barrier_cleared.duration_since(t0);
    stats.server_idle_s = upload_span.as_secs_f64() * workers as f64;
    stats.client_blocked_s = produced.blocked.as_secs_f64();
    stats.client_s = produced
        .finished
        .duration_since(t0)
        .saturating_sub(produced.blocked)
        .as_secs_f64();
    stats.input_items = produced.pushed;

    // Stage 2: all inputs present — run the job fan-out on the pool.
    let cursor = AtomicUsize::new(0);
    let inputs_ref = &inputs;
    let work = &work;
    let per_worker = config.executor.run_workers(workers, |w| {
        spot_trace::set_thread_label(format!("server-{w}"));
        let mut busy = Duration::ZERO;
        let mut done: Vec<(usize, R)> = Vec::new();
        loop {
            let j = cursor.fetch_add(1, Ordering::Relaxed);
            if j >= n_jobs {
                break;
            }
            let job_span = spot_trace::span_owned(Cat::Stream, || format!("job #{j}"));
            let job_start = Instant::now();
            let r = work(j, inputs_ref.as_slice());
            busy += job_start.elapsed();
            drop(job_span);
            done.push((j, r));
        }
        spot_trace::flush_thread();
        (busy, done)
    });

    let mut slots: Vec<Option<R>> = (0..n_jobs).map(|_| None).collect();
    for (busy, done) in per_worker {
        stats.server_busy_s += busy.as_secs_f64();
        for (j, r) in done {
            slots[j] = Some(r);
        }
    }
    for (j, slot) in slots.into_iter().enumerate() {
        let r = slot.ok_or(SpotError::Disconnected("barrier job produced no result"))?;
        let out_span = spot_trace::span_owned(Cat::Stream, || format!("out #{j}"));
        consume(j, r)?;
        drop(out_span);
    }
    stats.output_items = n_jobs;
    stats.wall_s = t0.elapsed().as_secs_f64();
    Ok(stats)
}

// ---------------------------------------------------------------------
// Cross-image batch assembler
// ---------------------------------------------------------------------

struct AssemblerState<T> {
    /// Queued items with their arrival times (front = oldest).
    items: VecDeque<(Instant, T)>,
    closed: bool,
}

/// Coalesces queued inference requests into batches for the cross-image
/// SIMD-slot batching path ([`crate::session::run_in_process_batched`]).
///
/// Submitters enqueue items as they arrive; the dispatch loop calls
/// [`BatchAssembler::next_batch`], which returns as soon as `capacity`
/// items are queued — or once the **oldest** queued item has waited
/// `latency_cap`, whatever is queued by then. A lone request is
/// therefore never starved waiting for company: its worst-case queueing
/// delay is the latency cap, and under load batches fill instantly.
pub struct BatchAssembler<T> {
    state: Mutex<AssemblerState<T>>,
    nonempty: Condvar,
    capacity: usize,
    latency_cap: Duration,
}

impl<T> std::fmt::Debug for BatchAssembler<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchAssembler")
            .field("capacity", &self.capacity)
            .field("latency_cap", &self.latency_cap)
            .field("queued", &self.queued())
            .finish()
    }
}

impl<T> BatchAssembler<T> {
    /// An assembler forming batches of at most `capacity` items
    /// (clamped to ≥ 1, typically [`ClientConv::batch_capacity`]),
    /// releasing partial batches after `latency_cap`.
    ///
    /// [`ClientConv::batch_capacity`]: crate::session::ClientConv::batch_capacity
    pub fn new(capacity: usize, latency_cap: Duration) -> Self {
        Self {
            state: Mutex::new(AssemblerState {
                items: VecDeque::new(),
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity: capacity.max(1),
            latency_cap,
        }
    }

    /// The batch-width bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The partial-batch release deadline.
    pub fn latency_cap(&self) -> Duration {
        self.latency_cap
    }

    /// Enqueues one item. Fails once the assembler is closed.
    pub fn submit(&self, item: T) -> Result<(), SpotError> {
        let mut st = self
            .state
            .lock()
            .map_err(|_| SpotError::Poisoned("batch assembler"))?;
        if st.closed {
            return Err(SpotError::Disconnected("submit on closed batch assembler"));
        }
        st.items.push_back((Instant::now(), item));
        let depth = st.items.len() as u64;
        drop(st);
        self.nonempty.notify_all();
        gauge(Cat::Stream, "batch_queue_depth", depth);
        Ok(())
    }

    /// Queued items not yet taken into a batch.
    pub fn queued(&self) -> usize {
        self.state.lock().map(|st| st.items.len()).unwrap_or(0)
    }

    /// Closes the assembler: submitters get an error; `next_batch`
    /// drains what is queued, then returns `None`. Idempotent.
    pub fn close(&self) {
        if let Ok(mut st) = self.state.lock() {
            st.closed = true;
        }
        self.nonempty.notify_all();
    }

    /// Blocks for the next batch, in submission order: returns up to
    /// `capacity` items as soon as they are queued, a partial batch
    /// once the oldest queued item has waited `latency_cap` (or the
    /// assembler closes), and `None` once closed and drained.
    pub fn next_batch(&self) -> Result<Option<Vec<T>>, SpotError> {
        let mut st = self
            .state
            .lock()
            .map_err(|_| SpotError::Poisoned("batch assembler"))?;
        loop {
            if st.items.len() >= self.capacity || (st.closed && !st.items.is_empty()) {
                return Ok(Some(Self::drain(&mut st, self.capacity)));
            }
            if st.closed {
                return Ok(None);
            }
            match st.items.front() {
                Some(&(arrived, _)) => {
                    let deadline = arrived + self.latency_cap;
                    let now = Instant::now();
                    if now >= deadline {
                        return Ok(Some(Self::drain(&mut st, self.capacity)));
                    }
                    st = self
                        .nonempty
                        .wait_timeout(st, deadline - now)
                        .map_err(|_| SpotError::Poisoned("batch assembler"))?
                        .0;
                }
                None => {
                    st = self
                        .nonempty
                        .wait(st)
                        .map_err(|_| SpotError::Poisoned("batch assembler"))?;
                }
            }
        }
    }

    fn drain(st: &mut AssemblerState<T>, capacity: usize) -> Vec<T> {
        let take = st.items.len().min(capacity);
        let batch: Vec<T> = st.items.drain(..take).map(|(_, item)| item).collect();
        count(Counter::QueuePopped, batch.len() as u64);
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn cfg(threads: usize, cap: usize) -> StreamConfig {
        StreamConfig::new(Executor::new(threads), cap)
    }

    #[test]
    fn queue_fifo_and_close() {
        let q: BoundedQueue<u32> = BoundedQueue::bounded(4);
        q.send(1).unwrap();
        q.send(2).unwrap();
        assert_eq!(q.recv().unwrap().0, Some(1));
        q.close();
        assert_eq!(q.recv().unwrap().0, Some(2));
        assert_eq!(q.recv().unwrap().0, None);
    }

    #[test]
    fn send_on_closed_queue_errors_instead_of_panicking() {
        let q: BoundedQueue<u32> = BoundedQueue::bounded(4);
        q.close();
        assert!(matches!(q.send(1), Err(SpotError::Disconnected(_))));
    }

    #[test]
    fn queue_backpressure_blocks_sender() {
        let q: BoundedQueue<u32> = BoundedQueue::bounded(1);
        let released = AtomicBool::new(false);
        thread::scope(|s| {
            let q = &q;
            let released = &released;
            s.spawn(move |_| {
                q.send(1).unwrap(); // fills the queue
                let waited = q.send(2).unwrap(); // must block until recv
                assert!(released.load(Ordering::SeqCst), "send returned before recv");
                assert!(waited > Duration::ZERO);
                q.close();
            });
            std::thread::sleep(Duration::from_millis(30));
            released.store(true, Ordering::SeqCst);
            assert_eq!(q.recv().unwrap().0, Some(1));
            assert_eq!(q.recv().unwrap().0, Some(2));
            assert_eq!(q.recv().unwrap().0, None);
        })
        .unwrap();
    }

    #[test]
    fn stream_results_consumed_in_order() {
        for threads in [1usize, 2, 8] {
            for cap in [1usize, 3, 64] {
                let mut out = Vec::new();
                let stats = run_stream(
                    &cfg(threads, cap),
                    |feeder| {
                        for v in 0..50u64 {
                            feeder.push(v)?;
                        }
                        Ok(())
                    },
                    |i, v| {
                        // uneven cost to shuffle completion order
                        let spin = (v * 7919) % 50;
                        let mut acc = 0u64;
                        for k in 0..spin * 200 {
                            acc = acc.wrapping_add(k);
                        }
                        std::hint::black_box(acc);
                        (i as u64) * 100 + v
                    },
                    |i, r| {
                        out.push((i, r));
                        Ok(())
                    },
                )
                .unwrap();
                let expect: Vec<(usize, u64)> =
                    (0..50).map(|v| (v as usize, (v as u64) * 101)).collect();
                assert_eq!(out, expect, "threads={threads} cap={cap}");
                assert_eq!(stats.input_items, 50);
                assert_eq!(stats.output_items, 50);
                assert!(stats.wall_s > 0.0);
            }
        }
    }

    #[test]
    fn producer_error_propagates_without_deadlock() {
        let err = run_stream(
            &cfg(2, 1),
            |feeder: &mut Feeder<'_, u64>| {
                feeder.push(1)?;
                Err(SpotError::Protocol("client gave up".into()))
            },
            |_, v: u64| v,
            |_, _| Ok(()),
        )
        .unwrap_err();
        assert!(matches!(err, SpotError::Protocol(_)));
    }

    #[test]
    fn barrier_waits_for_all_inputs() {
        let seen = Mutex::new(Vec::new());
        let stats = run_stream_barrier(
            &cfg(4, 2),
            3,
            |feeder| {
                for v in 0..6u64 {
                    std::thread::sleep(Duration::from_millis(5));
                    feeder.push(v)?;
                }
                Ok(())
            },
            |j, inputs: &[u64]| {
                assert_eq!(inputs.len(), 6, "all inputs staged before any job");
                j as u64 + inputs.iter().sum::<u64>()
            },
            |j, r| {
                seen.lock().unwrap().push((j, r));
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(seen.into_inner().unwrap(), vec![(0, 15), (1, 16), (2, 17)]);
        assert_eq!(stats.input_items, 6);
        assert_eq!(stats.output_items, 3);
        // ~30 ms of upload with 3 parked workers (pool is capped at n_jobs).
        assert_eq!(stats.server_threads, 3);
        assert!(
            stats.server_idle_s >= 0.025 * 3.0,
            "idle {} too small",
            stats.server_idle_s
        );
    }

    #[test]
    fn per_input_idle_less_than_barrier_idle() {
        // Same synthetic layer on a 1-thread server: per-input streaming
        // overlaps upload with compute; the barrier cannot.
        let produce = |feeder: &mut Feeder<'_, u64>| {
            for v in 0..8u64 {
                std::thread::sleep(Duration::from_millis(4));
                feeder.push(v)?;
            }
            Ok(())
        };
        let spin = |v: u64| {
            let t = Instant::now();
            while t.elapsed() < Duration::from_millis(4) {
                std::hint::black_box(v);
            }
            v
        };
        let s1 = run_stream(&cfg(1, 2), produce, |_, v| spin(v), |_, _| Ok(())).unwrap();
        let s2 = run_stream_barrier(
            &cfg(1, 2),
            8,
            produce,
            |j, _: &[u64]| spin(j as u64),
            |_, _| Ok(()),
        )
        .unwrap();
        assert!(
            s1.server_idle_s < s2.server_idle_s,
            "per-input idle {} should beat barrier idle {}",
            s1.server_idle_s,
            s2.server_idle_s
        );
    }

    #[test]
    fn stats_accumulate_sums_fields() {
        let mut a = StreamStats {
            wall_s: 1.0,
            server_idle_s: 0.25,
            input_items: 4,
            channel_capacity: 2,
            ..StreamStats::default()
        };
        let b = StreamStats {
            wall_s: 2.0,
            server_idle_s: 0.5,
            input_items: 6,
            channel_capacity: 3,
            ..StreamStats::default()
        };
        a.accumulate(&b);
        assert_eq!(a.wall_s, 3.0);
        assert_eq!(a.server_idle_s, 0.75);
        assert_eq!(a.input_items, 10);
        assert_eq!(a.channel_capacity, 3);
    }

    #[test]
    fn config_uses_device_budget() {
        let ct_bytes = 200_000;
        let client = DeviceProfile::nexus6().with_capacity(3, ct_bytes);
        let cfg = StreamConfig::for_client(Executor::new(4), &client, ct_bytes);
        assert_eq!(cfg.channel_capacity, 3);
        assert_eq!(StreamConfig::new(Executor::serial(), 0).channel_capacity, 1);
    }

    #[test]
    fn assembler_full_batch_released_immediately() {
        // A long latency cap must not delay a full batch.
        let asm: BatchAssembler<u32> = BatchAssembler::new(2, Duration::from_secs(60));
        for v in 0..5 {
            asm.submit(v).unwrap();
        }
        let t0 = Instant::now();
        assert_eq!(asm.next_batch().unwrap(), Some(vec![0, 1]));
        assert_eq!(asm.next_batch().unwrap(), Some(vec![2, 3]));
        assert!(t0.elapsed() < Duration::from_secs(5));
        assert_eq!(asm.queued(), 1);
        asm.close();
        assert_eq!(asm.next_batch().unwrap(), Some(vec![4]));
        assert_eq!(asm.next_batch().unwrap(), None);
    }

    #[test]
    fn assembler_latency_cap_releases_lone_item() {
        let asm: BatchAssembler<u32> = BatchAssembler::new(8, Duration::from_millis(30));
        asm.submit(7).unwrap();
        let t0 = Instant::now();
        assert_eq!(asm.next_batch().unwrap(), Some(vec![7]));
        let waited = t0.elapsed();
        assert!(
            waited >= Duration::from_millis(25),
            "partial batch released after {waited:?}, before the cap"
        );
    }

    #[test]
    fn assembler_submit_after_close_errors() {
        let asm: BatchAssembler<u32> = BatchAssembler::new(4, Duration::ZERO);
        asm.close();
        assert!(matches!(asm.submit(1), Err(SpotError::Disconnected(_))));
        assert_eq!(asm.next_batch().unwrap(), None);
    }

    #[test]
    fn assembler_preserves_submission_order_across_threads() {
        let asm: BatchAssembler<u32> = BatchAssembler::new(3, Duration::from_millis(10));
        let collected = Mutex::new(Vec::new());
        thread::scope(|s| {
            let asm = &asm;
            let collected = &collected;
            s.spawn(move |_| {
                for v in 0..20u32 {
                    asm.submit(v).unwrap();
                    if v % 7 == 0 {
                        std::thread::sleep(Duration::from_millis(3));
                    }
                }
                asm.close();
            });
            while let Some(batch) = asm.next_batch().unwrap() {
                assert!(!batch.is_empty() && batch.len() <= 3);
                collected.lock().unwrap().extend(batch);
            }
        })
        .unwrap();
        assert_eq!(collected.into_inner().unwrap(), (0..20).collect::<Vec<_>>());
    }
}
