//! Channel-wise HE packing — the CrypTFlow2/GAZELLE baseline.
//!
//! Each ciphertext packs whole feature-map channels (`C_n = ⌊S'/HW⌋` per
//! the paper's Sec. III intro): channel `c` occupies one contiguous
//! power-of-two block of a lane. The convolution is the classic
//! SISO/MIMO rotation scheme; because every output channel needs *all*
//! input channels, the per-ciphertext partial results must be summed
//! across input ciphertexts — the cross-ciphertext dependency that
//! causes the linear computation stall on tiny clients.

use crate::executor::Executor;
use crate::heconv::{ChannelMap, ConvRequest, GroupSpec, HeConvEngine};
use crate::layout::{next_pow2, LaneLayout};
use crate::stream::{run_stream_barrier, StreamConfig, StreamStats};
use rand::Rng;
use spot_he::ciphertext::Ciphertext;
use spot_he::context::Context;
use spot_he::encryptor::{Decryptor, Encryptor};
use spot_he::evaluator::OpCounts;
use spot_he::keys::KeyGenerator;
use spot_he::params::ParamLevel;
use spot_pipeline::plan::{ConvPlan, OutputDependency};
use spot_tensor::models::ConvShape;
use spot_tensor::tensor::{Kernel, Tensor};
use std::sync::mpsc;
use std::sync::Arc;

/// Geometry of a channel-wise packing for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelwiseGeometry {
    /// Slots per channel block (power of two ≥ `H·W`).
    pub channel_slots: usize,
    /// Channel blocks per lane.
    pub blocks_per_lane: usize,
    /// Channels per ciphertext (both lanes).
    pub channels_per_ct: usize,
    /// Number of input ciphertexts.
    pub input_cts: usize,
    /// Number of output ciphertexts.
    pub output_cts: usize,
    /// Whether both lanes carry (distinct) channels.
    pub both_lanes: bool,
}

/// Computes the packing geometry for a layer shape at a parameter level.
///
/// # Panics
///
/// Panics if one channel does not fit a lane (`HW_pad > N/2`); large
/// feature maps must be handled by the planner's fragment model.
pub fn geometry(shape: &ConvShape, level: ParamLevel) -> ChannelwiseGeometry {
    let lane = level.degree() / 2;
    let s = next_pow2(shape.width * shape.height);
    assert!(
        s <= lane,
        "channel of {}x{} does not fit a lane of {} slots",
        shape.height,
        shape.width,
        lane
    );
    let ci_pad = next_pow2(shape.c_in);
    let co_pad = next_pow2(shape.c_out);
    let max_per_lane = lane / s;
    let blocks = max_per_lane.min(ci_pad.div_ceil(2)).max(1);
    let both_lanes = ci_pad >= 2;
    let channels_per_ct = if both_lanes { 2 * blocks } else { 1 };
    let input_cts = ci_pad.div_ceil(channels_per_ct);
    let output_cts = co_pad.div_ceil(channels_per_ct);
    ChannelwiseGeometry {
        channel_slots: s,
        blocks_per_lane: blocks,
        channels_per_ct,
        input_cts,
        output_cts,
        both_lanes,
    }
}

/// Result of a functional secure convolution: additive shares of the
/// output plus the recorded server operation counts.
#[derive(Debug)]
pub struct SecureConvResult {
    /// The client's additive share of the (strided) output tensor.
    pub client_share: Tensor,
    /// The server's additive share.
    pub server_share: Tensor,
    /// Recorded HE operations.
    pub counts: OpCounts,
    /// Number of input ciphertexts the client produced.
    pub input_cts: usize,
    /// Number of output ciphertexts returned.
    pub output_cts: usize,
    /// The plaintext modulus shares live in.
    pub modulus: u64,
}

impl SecureConvResult {
    /// Reconstructs the plain output: adds the shares modulo `t` and
    /// recenters (testing convenience).
    pub fn reconstruct(&self) -> Tensor {
        let t = self.modulus as i64;
        self.client_share.add(&self.server_share).map(|v| {
            let m = v.rem_euclid(t);
            if m > t / 2 {
                m - t
            } else {
                m
            }
        })
    }
}

fn channel_map(geo: &ChannelwiseGeometry, ct: usize, c_in: usize) -> ChannelMap {
    let mut map = vec![vec![None; geo.blocks_per_lane]; 2];
    for (lane, row) in map.iter_mut().enumerate() {
        if lane == 1 && !geo.both_lanes {
            break;
        }
        for (b, slot) in row.iter_mut().enumerate() {
            let ch = ct * geo.channels_per_ct + lane * geo.blocks_per_lane + b;
            if ch < c_in {
                *slot = Some(ch);
            }
        }
    }
    map
}

fn group_spec(geo: &ChannelwiseGeometry, out_ct: usize, c_out: usize) -> GroupSpec {
    let mut out_ch = vec![vec![None; geo.blocks_per_lane]; 2];
    for (lane, row) in out_ch.iter_mut().enumerate() {
        if lane == 1 && !geo.both_lanes {
            break;
        }
        for (b, slot) in row.iter_mut().enumerate() {
            let ch = out_ct * geo.channels_per_ct + lane * geo.blocks_per_lane + b;
            if ch < c_out {
                *slot = Some(ch);
            }
        }
    }
    GroupSpec { out_ch }
}

/// Executes the channel-wise secure convolution end to end on a single
/// thread (functional path used by tests and small workloads).
///
/// # Panics
///
/// Panics if the shape does not fit the level (see [`geometry`]) or the
/// level does not support rotations.
pub fn execute<R: Rng>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    input: &Tensor,
    kernel: &Kernel,
    stride: usize,
    rng: &mut R,
) -> SecureConvResult {
    execute_with(ctx, keygen, input, kernel, stride, &Executor::serial(), rng)
}

/// Executes the channel-wise secure convolution with the per-input-
/// ciphertext MIMO convolutions fanned across `executor`'s worker pool.
///
/// The cross-ciphertext partial sums are accumulated in input order on
/// the calling thread, and all randomness stays sequential, so results
/// are bit-identical for every thread count.
///
/// # Panics
///
/// Panics if the shape does not fit the level (see [`geometry`]) or the
/// level does not support rotations.
pub fn execute_with<R: Rng>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    input: &Tensor,
    kernel: &Kernel,
    stride: usize,
    executor: &Executor,
    rng: &mut R,
) -> SecureConvResult {
    let shape = ConvShape {
        width: input.width(),
        height: input.height(),
        c_in: input.channels(),
        c_out: kernel.out_channels(),
        k_h: kernel.k_h(),
        k_w: kernel.k_w(),
        stride,
    };
    let level = ctx.params().level();
    let geo = geometry(&shape, level);
    let lane = ctx.degree() / 2;
    let layout = LaneLayout::new(lane, geo.blocks_per_lane, input.height(), input.width());
    let t = ctx.params().plain_modulus();

    let engine = HeConvEngine::new(
        ctx,
        keygen,
        &layout,
        kernel.k_h(),
        kernel.k_w(),
        geo.blocks_per_lane,
        geo.output_cts,
        &[],
        geo.both_lanes,
        false,
        rng,
    );
    let mut counts = OpCounts::default();

    // --- client: pack and encrypt ---
    let encryptor = Encryptor::new(ctx, keygen.public_key(rng));
    let mut input_cts: Vec<Ciphertext> = Vec::with_capacity(geo.input_cts);
    for j in 0..geo.input_cts {
        let mut slots = vec![0u64; ctx.degree()];
        let map = channel_map(&geo, j, input.channels());
        for (lane_idx, row) in map.iter().enumerate() {
            for (b, ch) in row.iter().enumerate() {
                let Some(c) = *ch else { continue };
                for y in 0..input.height() {
                    for x in 0..input.width() {
                        slots[lane_idx * lane + layout.slot(b, 0, y, x)] =
                            input.at(c, y, x).rem_euclid(t as i64) as u64;
                    }
                }
            }
        }
        input_cts.push(encryptor.encrypt(&engine.encoder().encode(&slots), rng));
        counts.encrypt += 1;
    }

    // --- server: MIMO conv per input ct, then cross-ct accumulation ---
    let groups: Vec<GroupSpec> = (0..geo.output_cts)
        .map(|k| group_spec(&geo, k, kernel.out_channels()))
        .collect();
    let mut out_cts: Vec<Option<Ciphertext>> = vec![None; geo.output_cts];
    // Parallel phase (pure): per-ciphertext MIMO convolutions.
    let per_ct = executor.run(&input_cts, |j, ct| {
        let map = channel_map(&geo, j, input.channels());
        let mut in_maps = vec![map.clone()];
        if geo.both_lanes {
            // column-swapped version: lanes exchanged
            in_maps.push(vec![map[1].clone(), map[0].clone()]);
        }
        let mut c = OpCounts::default();
        let partials = engine.conv_one_ct(
            ct,
            &ConvRequest {
                layout: &layout,
                in_maps: &in_maps,
                groups: &groups,
                diagonals: geo.blocks_per_lane,
                fold_steps: &[],
                kernel,
                // per-input-ct channel maps → distinct cache entries
                cache_tag: j,
            },
            &mut c,
        );
        (partials, c)
    });
    // Sequential cross-ciphertext accumulation, in input order exactly
    // as a serial run would add the partials.
    for (partials, c) in per_ct {
        counts.merge(&c);
        for (k, p) in partials.into_iter().enumerate() {
            match &mut out_cts[k] {
                None => out_cts[k] = Some(p),
                Some(acc) => {
                    engine.evaluator().add_inplace(acc, &p);
                    counts.add += 1;
                }
            }
        }
    }

    // --- server: additive masking, client: decrypt + extract ---
    let decryptor = Decryptor::new(ctx, keygen.secret_key().clone());
    let (client_share, server_share) = mask_and_extract(
        ctx,
        &engine,
        &decryptor,
        &layout,
        &groups,
        out_cts,
        kernel.out_channels(),
        &shape,
        &mut counts,
        rng,
    );

    SecureConvResult {
        client_share,
        server_share,
        counts,
        input_cts: geo.input_cts,
        output_cts: geo.output_cts,
        modulus: t,
    }
}

/// Masks every accumulated output ciphertext, decrypts, and extracts
/// the strided shares (the sequential client/server tail shared by the
/// phased and streaming drivers). Mask randomness is drawn from `rng`
/// in output-ciphertext order.
#[allow(clippy::too_many_arguments)]
fn mask_and_extract<R: Rng>(
    ctx: &Arc<Context>,
    engine: &HeConvEngine,
    decryptor: &Decryptor,
    layout: &LaneLayout,
    groups: &[GroupSpec],
    out_cts: Vec<Option<Ciphertext>>,
    c_out: usize,
    shape: &ConvShape,
    counts: &mut OpCounts,
    rng: &mut R,
) -> (Tensor, Tensor) {
    let t = ctx.params().plain_modulus();
    let lane = ctx.degree() / 2;
    let stride = shape.stride;
    let oh = shape.out_height();
    let ow = shape.out_width();
    let mut client_share = Tensor::zeros(c_out, oh, ow);
    let mut server_share = Tensor::zeros(c_out, oh, ow);
    for (k, maybe_ct) in out_cts.into_iter().enumerate() {
        let ct = maybe_ct.expect("every output group produced");
        let r: Vec<u64> = (0..ctx.degree()).map(|_| rng.gen_range(0..t)).collect();
        let masked = engine
            .evaluator()
            .sub_plain(&ct, &engine.encoder().encode(&r));
        counts.add += 1;
        let decoded = engine.encoder().decode(&decryptor.decrypt(&masked));
        counts.decrypt += 1;
        let spec = &groups[k];
        for (lane_idx, row) in spec.out_ch.iter().enumerate() {
            for (b, ch) in row.iter().enumerate() {
                let Some(o) = *ch else { continue };
                for y in 0..oh {
                    for x in 0..ow {
                        let idx = lane_idx * lane + layout.slot(b, 0, y * stride, x * stride);
                        let cv = decoded[idx];
                        let rv = r[idx];
                        *client_share.at_mut(o, y, x) = if cv > t / 2 {
                            cv as i64 - t as i64
                        } else {
                            cv as i64
                        };
                        *server_share.at_mut(o, y, x) = rv as i64;
                    }
                }
            }
        }
    }
    (client_share, server_share)
}

/// Executes the channel-wise secure convolution as a streamed upload:
/// the client pushes every packed ciphertext through the bounded
/// channel of [`crate::stream::run_stream_barrier`], but because every
/// output ciphertext needs **all** input ciphertexts
/// ([`OutputDependency::AllInputs`]), no server job can start until the
/// last upload lands — the measured server idle is the linear
/// computation stall this baseline pays on tiny clients.
///
/// Randomness is drawn in exactly the phased order (rotation keys →
/// public key → encryptions on the producer thread; masks on the
/// caller's thread after the fan-out), so shares and op counts are
/// bit-identical to [`execute_with`] for any worker count and channel
/// capacity, given the same rng seed.
///
/// # Panics
///
/// Panics if the shape does not fit the level (see [`geometry`]) or the
/// level does not support rotations.
pub fn execute_streaming<R: Rng + Send>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    input: &Tensor,
    kernel: &Kernel,
    stride: usize,
    config: &StreamConfig,
    rng: &mut R,
) -> (SecureConvResult, StreamStats) {
    let shape = ConvShape {
        width: input.width(),
        height: input.height(),
        c_in: input.channels(),
        c_out: kernel.out_channels(),
        k_h: kernel.k_h(),
        k_w: kernel.k_w(),
        stride,
    };
    let level = ctx.params().level();
    let geo = geometry(&shape, level);
    let lane = ctx.degree() / 2;
    let layout = LaneLayout::new(lane, geo.blocks_per_lane, input.height(), input.width());
    let t = ctx.params().plain_modulus();
    let groups: Vec<GroupSpec> = (0..geo.output_cts)
        .map(|k| group_spec(&geo, k, kernel.out_channels()))
        .collect();

    let mut counts = OpCounts::default();
    // The engine is built on the producer thread (its rotation keys are
    // the first rng draws, as in the phased driver) and shipped back for
    // the caller's masking tail.
    let (engine_tx, engine_rx) = mpsc::channel::<Arc<HeConvEngine>>();

    let layout_ref = &layout;
    let groups_ref = &groups;
    let geo_ref = &geo;
    let rng_ref = &mut *rng;

    let mut per_ct: Vec<(Vec<Ciphertext>, OpCounts)> = Vec::with_capacity(geo.input_cts);
    let stats = run_stream_barrier(
        config,
        geo.input_cts,
        // Producer: rotation keys, public key, then pack + encrypt each
        // input ciphertext — all rng draws in phased order.
        move |feeder| {
            let engine = Arc::new(HeConvEngine::new(
                ctx,
                keygen,
                layout_ref,
                kernel.k_h(),
                kernel.k_w(),
                geo_ref.blocks_per_lane,
                geo_ref.output_cts,
                &[],
                geo_ref.both_lanes,
                false,
                rng_ref,
            ));
            engine_tx
                .send(engine.clone())
                .expect("caller holds the engine receiver");
            let encryptor = Encryptor::new(ctx, keygen.public_key(rng_ref));
            for j in 0..geo_ref.input_cts {
                let mut slots = vec![0u64; ctx.degree()];
                let map = channel_map(geo_ref, j, input.channels());
                for (lane_idx, row) in map.iter().enumerate() {
                    for (b, ch) in row.iter().enumerate() {
                        let Some(c) = *ch else { continue };
                        for y in 0..input.height() {
                            for x in 0..input.width() {
                                slots[lane_idx * lane + layout_ref.slot(b, 0, y, x)] =
                                    input.at(c, y, x).rem_euclid(t as i64) as u64;
                            }
                        }
                    }
                }
                let ct = encryptor.encrypt(&engine.encoder().encode(&slots), rng_ref);
                feeder.push((engine.clone(), ct));
            }
        },
        // Server job (after the barrier): the MIMO convolution of input
        // ciphertext `j` against every output group.
        |j, inputs: &[(Arc<HeConvEngine>, Ciphertext)]| {
            let (engine, ct) = &inputs[j];
            let map = channel_map(geo_ref, j, input.channels());
            let mut in_maps = vec![map.clone()];
            if geo_ref.both_lanes {
                in_maps.push(vec![map[1].clone(), map[0].clone()]);
            }
            let mut c = OpCounts::default();
            let partials = engine.conv_one_ct(
                ct,
                &ConvRequest {
                    layout: layout_ref,
                    in_maps: &in_maps,
                    groups: groups_ref,
                    diagonals: geo_ref.blocks_per_lane,
                    fold_steps: &[],
                    kernel,
                    cache_tag: j,
                },
                &mut c,
            );
            (partials, c)
        },
        |_, r| per_ct.push(r),
    );
    counts.encrypt += stats.input_items as u64;

    // Sequential cross-ciphertext accumulation in input order, exactly
    // as the phased driver does after its parallel phase.
    let engine = engine_rx.recv().expect("producer sent the engine");
    let mut out_cts: Vec<Option<Ciphertext>> = vec![None; geo.output_cts];
    for (partials, c) in per_ct {
        counts.merge(&c);
        for (k, p) in partials.into_iter().enumerate() {
            match &mut out_cts[k] {
                None => out_cts[k] = Some(p),
                Some(acc) => {
                    engine.evaluator().add_inplace(acc, &p);
                    counts.add += 1;
                }
            }
        }
    }

    // Masks are drawn here, after the producer's reborrowed rng is
    // released — the same position in the rng sequence as the phased
    // driver's tail.
    let decryptor = Decryptor::new(ctx, keygen.secret_key().clone());
    let (client_share, server_share) = mask_and_extract(
        ctx,
        &engine,
        &decryptor,
        &layout,
        &groups,
        out_cts,
        kernel.out_channels(),
        &shape,
        &mut counts,
        rng,
    );

    let result = SecureConvResult {
        client_share,
        server_share,
        counts,
        input_cts: geo.input_cts,
        output_cts: geo.output_cts,
        modulus: t,
    };
    (result, stats)
}

/// Analytic operation counts for one input ciphertext (matches the
/// executor exactly when channel counts are powers of two).
pub fn per_ct_counts(geo: &ChannelwiseGeometry, k_h: usize, k_w: usize) -> OpCounts {
    let kk = (k_h * k_w) as u64;
    let b = geo.blocks_per_lane as u64;
    let v = if geo.both_lanes { 2u64 } else { 1 };
    let groups = geo.output_cts as u64;
    OpCounts {
        // column swap + tap pre-rotations per version + per-group
        // diagonal alignment rotations (CrypTFlow2's published
        // output-rotation algorithm, no BSGS)
        rotate: (v - 1) + v * (kk - 1) + groups * (b - 1),
        mult_plain: groups * v * b * kk,
        add: groups * (v * b * kk - 1),
        encrypt: 0,
        decrypt: 0,
    }
}

/// Builds the execution plan for the simulator. Handles feature maps
/// larger than a lane by splitting channels into lane-sized fragments
/// (counts only; the functional path requires `HW_pad ≤ N/2`).
pub fn plan(shape: &ConvShape, level: ParamLevel, with_relu: bool) -> ConvPlan {
    let lane = level.degree() / 2;
    let s_full = next_pow2(shape.width * shape.height);
    let (eff_shape, fragments) = if s_full <= lane {
        (*shape, 1usize)
    } else {
        // Fragment the feature map: each fragment behaves like a channel
        // holding a full lane of slots.
        let frag = s_full / lane;
        let mut s = *shape;
        s.c_in = shape.c_in * frag;
        s.c_out = shape.c_out * frag;
        s.height = 1;
        s.width = lane;
        (s, frag)
    };
    let geo = geometry(&eff_shape, level);
    let per_ct = per_ct_counts(&geo, shape.k_h, shape.k_w);
    let finalize = OpCounts {
        add: ((geo.input_cts as u64 - 1) * geo.output_cts as u64) + geo.output_cts as u64,
        ..OpCounts::default()
    };
    let params = spot_he::params::EncryptionParams::new(level);
    ConvPlan {
        scheme: "CrypTFlow2 (channel-wise)",
        level,
        input_cts: geo.input_cts,
        output_cts: geo.output_cts,
        per_ct_ops: per_ct,
        finalize_ops: finalize,
        dependency: OutputDependency::AllInputs,
        extra_downstream_bytes: 0,
        client_extra_s: 0.0,
        assembly_elements: 0,
        relu_elements: if with_relu {
            shape.output_elements()
        } else {
            0
        },
        ciphertext_bytes: params.ciphertext_bytes(),
        useful_input_slots: (geo.channels_per_ct * shape.width * shape.height / fragments)
            .min(level.degree()),
        useful_output_slots: (geo.channels_per_ct * shape.out_width() * shape.out_height()
            / fragments)
            .min(level.degree()),
    }
}

/// The smallest parameter level channel-wise packing can use for a
/// shape: one channel must fit a lane (the paper's Observation 2 —
/// CrypTFlow2 cannot shrink parameters below the channel size, and uses
/// at least `N = 8192`).
pub fn minimum_level(shape: &ConvShape) -> ParamLevel {
    let s = next_pow2(shape.width * shape.height);
    for level in [ParamLevel::N8192, ParamLevel::N16384] {
        if s <= level.degree() / 2 {
            return level;
        }
    }
    // 224×224 and beyond: stuck at the largest level with fragmentation.
    ParamLevel::N16384
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spot_he::params::EncryptionParams;
    use spot_tensor::conv::conv2d;

    fn ctx4096() -> Arc<Context> {
        Context::new(EncryptionParams::new(ParamLevel::N4096))
    }

    #[test]
    fn geometry_small_map() {
        // 16x16 map (256 slots), lane 2048 at N4096: 8 channels per lane
        let shape = ConvShape::new(16, 16, 16, 16, 3, 1);
        let geo = geometry(&shape, ParamLevel::N4096);
        assert_eq!(geo.channel_slots, 256);
        assert_eq!(geo.blocks_per_lane, 8);
        assert_eq!(geo.channels_per_ct, 16);
        assert_eq!(geo.input_cts, 1);
        assert_eq!(geo.output_cts, 1);
    }

    #[test]
    fn geometry_many_channels() {
        let shape = ConvShape::new(16, 16, 64, 32, 3, 1);
        let geo = geometry(&shape, ParamLevel::N4096);
        assert_eq!(geo.channels_per_ct, 16);
        assert_eq!(geo.input_cts, 4);
        assert_eq!(geo.output_cts, 2);
    }

    #[test]
    fn secure_conv_matches_reference_3x3() {
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(100);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(4, 8, 8, 8, 1);
        let kernel = Kernel::random(4, 4, 3, 3, 4, 2);
        let res = execute(&ctx, &kg, &input, &kernel, 1, &mut rng);
        let expected = conv2d(&input, &kernel, 1);
        assert_eq!(res.reconstruct(), expected);
    }

    #[test]
    fn secure_conv_matches_reference_1x1() {
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(200);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(8, 4, 4, 8, 3);
        let kernel = Kernel::random(16, 8, 1, 1, 4, 4);
        let res = execute(&ctx, &kg, &input, &kernel, 1, &mut rng);
        assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 1));
    }

    #[test]
    fn secure_conv_stride_2() {
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(300);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(2, 8, 8, 8, 5);
        let kernel = Kernel::random(2, 2, 3, 3, 4, 6);
        let res = execute(&ctx, &kg, &input, &kernel, 2, &mut rng);
        assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 2));
    }

    #[test]
    fn secure_conv_multi_ct_inputs() {
        // 32 input channels at 8x8 (64 slots): lane 2048 → 16/lane? blocks
        // limited by ci/2 = 16; channels_per_ct = 32 → 1 input ct. Use a
        // bigger map to force multiple cts: 16x16 → 8 blocks, 16 ch/ct.
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(500);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(32, 16, 16, 4, 9);
        let kernel = Kernel::random(8, 32, 3, 3, 3, 10);
        let res = execute(&ctx, &kg, &input, &kernel, 1, &mut rng);
        assert!(
            res.input_cts > 1,
            "want multi-ct input, got {}",
            res.input_cts
        );
        assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 1));
    }

    #[test]
    fn recorded_counts_match_plan() {
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(400);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(8, 8, 8, 8, 7);
        let kernel = Kernel::random(8, 8, 3, 3, 4, 8);
        let res = execute(&ctx, &kg, &input, &kernel, 1, &mut rng);
        let shape = ConvShape::new(8, 8, 8, 8, 3, 1);
        let p = plan(&shape, ParamLevel::N4096, false);
        assert_eq!(p.input_cts, res.input_cts);
        assert_eq!(p.output_cts, res.output_cts);
        let total = p.total_server_ops();
        assert_eq!(total.mult_plain, res.counts.mult_plain);
        assert_eq!(total.rotate, res.counts.rotate);
        assert_eq!(total.add, res.counts.add);
    }

    #[test]
    fn minimum_levels() {
        assert_eq!(
            minimum_level(&ConvShape::new(56, 56, 64, 64, 3, 1)),
            ParamLevel::N8192
        );
        assert_eq!(
            minimum_level(&ConvShape::new(112, 112, 64, 64, 3, 1)),
            ParamLevel::N16384
        );
    }

    #[test]
    fn plan_fragments_large_maps() {
        let shape = ConvShape::new(224, 224, 3, 64, 3, 1);
        let p = plan(&shape, ParamLevel::N16384, true);
        assert!(p.input_cts >= 2, "fragmented input cts = {}", p.input_cts);
        assert_eq!(p.dependency, OutputDependency::AllInputs);
        assert_eq!(p.relu_elements, 224 * 224 * 64);
    }
}
