//! Channel-wise HE packing — the CrypTFlow2/GAZELLE baseline.
//!
//! Each ciphertext packs whole feature-map channels (`C_n = ⌊S'/HW⌋` per
//! the paper's Sec. III intro): channel `c` occupies one contiguous
//! power-of-two block of a lane. The convolution is the classic
//! SISO/MIMO rotation scheme; because every output channel needs *all*
//! input channels, the per-ciphertext partial results must be summed
//! across input ciphertexts — the cross-ciphertext dependency that
//! causes the linear computation stall on tiny clients.
//!
//! The drivers here are thin wrappers over the session layer
//! ([`crate::session`]): client and server run as separate state
//! machines over an in-process transport exchanging real wire frames.

use crate::executor::Executor;
use crate::heconv::{ChannelMap, GroupSpec};
use crate::layout::next_pow2;
use crate::patching::PatchMode;
use crate::session::{run_in_process, ExecBackend, SchemeKind};
use crate::stream::{StreamConfig, StreamStats};
use rand::Rng;
use spot_he::context::Context;
use spot_he::evaluator::OpCounts;
use spot_he::keys::KeyGenerator;
use spot_he::params::ParamLevel;
use spot_pipeline::plan::{ConvPlan, OutputDependency};
use spot_tensor::models::ConvShape;
use spot_tensor::tensor::{Kernel, Tensor};
use std::sync::Arc;

/// Geometry of a channel-wise packing for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelwiseGeometry {
    /// Slots per channel block (power of two ≥ `H·W`).
    pub channel_slots: usize,
    /// Channel blocks per lane.
    pub blocks_per_lane: usize,
    /// Channels per ciphertext (both lanes).
    pub channels_per_ct: usize,
    /// Number of input ciphertexts.
    pub input_cts: usize,
    /// Number of output ciphertexts.
    pub output_cts: usize,
    /// Whether both lanes carry (distinct) channels.
    pub both_lanes: bool,
}

/// Computes the packing geometry for a layer shape at a parameter level.
///
/// # Panics
///
/// Panics if one channel does not fit a lane (`HW_pad > N/2`); large
/// feature maps must be handled by the planner's fragment model.
pub fn geometry(shape: &ConvShape, level: ParamLevel) -> ChannelwiseGeometry {
    let lane = level.degree() / 2;
    let s = next_pow2(shape.width * shape.height);
    assert!(
        s <= lane,
        "channel of {}x{} does not fit a lane of {} slots",
        shape.height,
        shape.width,
        lane
    );
    let ci_pad = next_pow2(shape.c_in);
    let co_pad = next_pow2(shape.c_out);
    let max_per_lane = lane / s;
    let blocks = max_per_lane.min(ci_pad.div_ceil(2)).max(1);
    let both_lanes = ci_pad >= 2;
    let channels_per_ct = if both_lanes { 2 * blocks } else { 1 };
    let input_cts = ci_pad.div_ceil(channels_per_ct);
    let output_cts = co_pad.div_ceil(channels_per_ct);
    ChannelwiseGeometry {
        channel_slots: s,
        blocks_per_lane: blocks,
        channels_per_ct,
        input_cts,
        output_cts,
        both_lanes,
    }
}

/// Result of a functional secure convolution: additive shares of the
/// output plus the recorded server operation counts.
#[derive(Debug)]
pub struct SecureConvResult {
    /// The client's additive share of the (strided) output tensor.
    pub client_share: Tensor,
    /// The server's additive share.
    pub server_share: Tensor,
    /// Recorded HE operations.
    pub counts: OpCounts,
    /// Number of input ciphertexts the client produced.
    pub input_cts: usize,
    /// Number of output ciphertexts returned.
    pub output_cts: usize,
    /// The plaintext modulus shares live in.
    pub modulus: u64,
}

impl SecureConvResult {
    /// Reconstructs the plain output: adds the shares modulo `t` and
    /// recenters (testing convenience).
    pub fn reconstruct(&self) -> Tensor {
        let t = self.modulus as i64;
        self.client_share.add(&self.server_share).map(|v| {
            let m = v.rem_euclid(t);
            if m > t / 2 {
                m - t
            } else {
                m
            }
        })
    }
}

/// Input-channel placement for ciphertext `ct`: `map[lane][block]` is
/// the channel packed there, if any.
pub(crate) fn channel_map(geo: &ChannelwiseGeometry, ct: usize, c_in: usize) -> ChannelMap {
    let mut map = vec![vec![None; geo.blocks_per_lane]; 2];
    for (lane, row) in map.iter_mut().enumerate() {
        if lane == 1 && !geo.both_lanes {
            break;
        }
        for (b, slot) in row.iter_mut().enumerate() {
            let ch = ct * geo.channels_per_ct + lane * geo.blocks_per_lane + b;
            if ch < c_in {
                *slot = Some(ch);
            }
        }
    }
    map
}

/// Output-channel placement for output ciphertext `out_ct` (same layout
/// rule as [`channel_map`] against `c_out`).
pub(crate) fn group_spec(geo: &ChannelwiseGeometry, out_ct: usize, c_out: usize) -> GroupSpec {
    let mut out_ch = vec![vec![None; geo.blocks_per_lane]; 2];
    for (lane, row) in out_ch.iter_mut().enumerate() {
        if lane == 1 && !geo.both_lanes {
            break;
        }
        for (b, slot) in row.iter_mut().enumerate() {
            let ch = out_ct * geo.channels_per_ct + lane * geo.blocks_per_lane + b;
            if ch < c_out {
                *slot = Some(ch);
            }
        }
    }
    GroupSpec { out_ch }
}

/// Executes the channel-wise secure convolution end to end on a single
/// thread (functional path used by tests and small workloads).
///
/// # Panics
///
/// Panics if the shape does not fit the level (see [`geometry`]) or the
/// session fails (in-process transports cannot fail in normal use).
pub fn execute<R: Rng>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    input: &Tensor,
    kernel: &Kernel,
    stride: usize,
    rng: &mut R,
) -> SecureConvResult {
    execute_with(ctx, keygen, input, kernel, stride, &Executor::serial(), rng)
}

/// Executes the channel-wise secure convolution with the per-input-
/// ciphertext MIMO convolutions fanned across `executor`'s worker pool.
///
/// The cross-ciphertext partial sums are accumulated in input order on
/// the calling thread, and all randomness stays sequential, so results
/// are bit-identical for every thread count.
///
/// # Panics
///
/// Panics if the shape does not fit the level (see [`geometry`]) or the
/// session fails (in-process transports cannot fail in normal use).
pub fn execute_with<R: Rng>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    input: &Tensor,
    kernel: &Kernel,
    stride: usize,
    executor: &Executor,
    rng: &mut R,
) -> SecureConvResult {
    run_in_process(
        ctx,
        keygen,
        input,
        kernel,
        stride,
        (0, 0),
        PatchMode::Vanilla,
        SchemeKind::Channelwise,
        &ExecBackend::Phased(*executor),
        rng,
    )
    .expect("in-process channelwise session")
    .result
}

/// Executes the channel-wise secure convolution as a streamed upload:
/// the client pushes every packed ciphertext through a bounded
/// in-process transport, but because every output ciphertext needs
/// **all** input ciphertexts ([`OutputDependency::AllInputs`]), no
/// server job can start until the last upload lands — the measured
/// server idle is the linear computation stall this baseline pays on
/// tiny clients.
///
/// Client and server randomness are split from `rng` exactly as in the
/// phased driver, so shares and op counts are bit-identical to
/// [`execute_with`] for any worker count and channel capacity, given
/// the same rng seed.
///
/// # Panics
///
/// Panics if the shape does not fit the level (see [`geometry`]) or the
/// session fails (in-process transports cannot fail in normal use).
pub fn execute_streaming<R: Rng + Send>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    input: &Tensor,
    kernel: &Kernel,
    stride: usize,
    config: &StreamConfig,
    rng: &mut R,
) -> (SecureConvResult, StreamStats) {
    let outcome = run_in_process(
        ctx,
        keygen,
        input,
        kernel,
        stride,
        (0, 0),
        PatchMode::Vanilla,
        SchemeKind::Channelwise,
        &ExecBackend::Streaming(*config),
        rng,
    )
    .expect("in-process channelwise session");
    let stats = outcome
        .stream
        .expect("streaming backend reports stall stats");
    (outcome.result, stats)
}

/// Analytic operation counts for one input ciphertext (matches the
/// executor exactly when channel counts are powers of two).
pub fn per_ct_counts(geo: &ChannelwiseGeometry, k_h: usize, k_w: usize) -> OpCounts {
    let kk = (k_h * k_w) as u64;
    let b = geo.blocks_per_lane as u64;
    let v = if geo.both_lanes { 2u64 } else { 1 };
    let groups = geo.output_cts as u64;
    OpCounts {
        // column swap + tap pre-rotations per version + per-group
        // diagonal alignment rotations (CrypTFlow2's published
        // output-rotation algorithm, no BSGS)
        rotate: (v - 1) + v * (kk - 1) + groups * (b - 1),
        mult_plain: groups * v * b * kk,
        add: groups * (v * b * kk - 1),
        encrypt: 0,
        decrypt: 0,
    }
}

/// Builds the execution plan for the simulator. Handles feature maps
/// larger than a lane by splitting channels into lane-sized fragments
/// (counts only; the functional path requires `HW_pad ≤ N/2`).
pub fn plan(shape: &ConvShape, level: ParamLevel, with_relu: bool) -> ConvPlan {
    let lane = level.degree() / 2;
    let s_full = next_pow2(shape.width * shape.height);
    let (eff_shape, fragments) = if s_full <= lane {
        (*shape, 1usize)
    } else {
        // Fragment the feature map: each fragment behaves like a channel
        // holding a full lane of slots.
        let frag = s_full / lane;
        let mut s = *shape;
        s.c_in = shape.c_in * frag;
        s.c_out = shape.c_out * frag;
        s.height = 1;
        s.width = lane;
        (s, frag)
    };
    let geo = geometry(&eff_shape, level);
    let per_ct = per_ct_counts(&geo, shape.k_h, shape.k_w);
    let finalize = OpCounts {
        add: ((geo.input_cts as u64 - 1) * geo.output_cts as u64) + geo.output_cts as u64,
        ..OpCounts::default()
    };
    let params = spot_he::params::EncryptionParams::new(level);
    ConvPlan {
        scheme: "CrypTFlow2 (channel-wise)",
        level,
        input_cts: geo.input_cts,
        output_cts: geo.output_cts,
        per_ct_ops: per_ct,
        finalize_ops: finalize,
        dependency: OutputDependency::AllInputs,
        extra_downstream_bytes: 0,
        client_extra_s: 0.0,
        assembly_elements: 0,
        relu_elements: if with_relu {
            shape.output_elements()
        } else {
            0
        },
        ciphertext_bytes: params.ciphertext_bytes(),
        useful_input_slots: (geo.channels_per_ct * shape.width * shape.height / fragments)
            .min(level.degree()),
        useful_output_slots: (geo.channels_per_ct * shape.out_width() * shape.out_height()
            / fragments)
            .min(level.degree()),
    }
}

/// The smallest parameter level channel-wise packing can use for a
/// shape: one channel must fit a lane (the paper's Observation 2 —
/// CrypTFlow2 cannot shrink parameters below the channel size, and uses
/// at least `N = 8192`).
pub fn minimum_level(shape: &ConvShape) -> ParamLevel {
    let s = next_pow2(shape.width * shape.height);
    for level in [ParamLevel::N8192, ParamLevel::N16384] {
        if s <= level.degree() / 2 {
            return level;
        }
    }
    // 224×224 and beyond: stuck at the largest level with fragmentation.
    ParamLevel::N16384
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spot_he::params::EncryptionParams;
    use spot_tensor::conv::conv2d;

    fn ctx4096() -> Arc<Context> {
        Context::new(EncryptionParams::new(ParamLevel::N4096))
    }

    #[test]
    fn geometry_small_map() {
        // 16x16 map (256 slots), lane 2048 at N4096: 8 channels per lane
        let shape = ConvShape::new(16, 16, 16, 16, 3, 1);
        let geo = geometry(&shape, ParamLevel::N4096);
        assert_eq!(geo.channel_slots, 256);
        assert_eq!(geo.blocks_per_lane, 8);
        assert_eq!(geo.channels_per_ct, 16);
        assert_eq!(geo.input_cts, 1);
        assert_eq!(geo.output_cts, 1);
    }

    #[test]
    fn geometry_many_channels() {
        let shape = ConvShape::new(16, 16, 64, 32, 3, 1);
        let geo = geometry(&shape, ParamLevel::N4096);
        assert_eq!(geo.channels_per_ct, 16);
        assert_eq!(geo.input_cts, 4);
        assert_eq!(geo.output_cts, 2);
    }

    #[test]
    fn secure_conv_matches_reference_3x3() {
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(100);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(4, 8, 8, 8, 1);
        let kernel = Kernel::random(4, 4, 3, 3, 4, 2);
        let res = execute(&ctx, &kg, &input, &kernel, 1, &mut rng);
        let expected = conv2d(&input, &kernel, 1);
        assert_eq!(res.reconstruct(), expected);
    }

    #[test]
    fn secure_conv_matches_reference_1x1() {
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(200);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(8, 4, 4, 8, 3);
        let kernel = Kernel::random(16, 8, 1, 1, 4, 4);
        let res = execute(&ctx, &kg, &input, &kernel, 1, &mut rng);
        assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 1));
    }

    #[test]
    fn secure_conv_stride_2() {
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(300);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(2, 8, 8, 8, 5);
        let kernel = Kernel::random(2, 2, 3, 3, 4, 6);
        let res = execute(&ctx, &kg, &input, &kernel, 2, &mut rng);
        assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 2));
    }

    #[test]
    fn secure_conv_multi_ct_inputs() {
        // 32 input channels at 8x8 (64 slots): lane 2048 → 16/lane? blocks
        // limited by ci/2 = 16; channels_per_ct = 32 → 1 input ct. Use a
        // bigger map to force multiple cts: 16x16 → 8 blocks, 16 ch/ct.
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(500);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(32, 16, 16, 4, 9);
        let kernel = Kernel::random(8, 32, 3, 3, 3, 10);
        let res = execute(&ctx, &kg, &input, &kernel, 1, &mut rng);
        assert!(
            res.input_cts > 1,
            "want multi-ct input, got {}",
            res.input_cts
        );
        assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 1));
    }

    #[test]
    fn recorded_counts_match_plan() {
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(400);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(8, 8, 8, 8, 7);
        let kernel = Kernel::random(8, 8, 3, 3, 4, 8);
        let res = execute(&ctx, &kg, &input, &kernel, 1, &mut rng);
        let shape = ConvShape::new(8, 8, 8, 8, 3, 1);
        let p = plan(&shape, ParamLevel::N4096, false);
        assert_eq!(p.input_cts, res.input_cts);
        assert_eq!(p.output_cts, res.output_cts);
        let total = p.total_server_ops();
        assert_eq!(total.mult_plain, res.counts.mult_plain);
        assert_eq!(total.rotate, res.counts.rotate);
        assert_eq!(total.add, res.counts.add);
    }

    #[test]
    fn minimum_levels() {
        assert_eq!(
            minimum_level(&ConvShape::new(56, 56, 64, 64, 3, 1)),
            ParamLevel::N8192
        );
        assert_eq!(
            minimum_level(&ConvShape::new(112, 112, 64, 64, 3, 1)),
            ParamLevel::N16384
        );
    }

    #[test]
    fn plan_fragments_large_maps() {
        let shape = ConvShape::new(224, 224, 3, 64, 3, 1);
        let p = plan(&shape, ParamLevel::N16384, true);
        assert!(p.input_cts >= 2, "fragmented input cts = {}", p.input_cts);
        assert_eq!(p.dependency, OutputDependency::AllInputs);
        assert_eq!(p.relu_elements, 224 * 224 * 64);
    }
}
