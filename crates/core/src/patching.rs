//! Structure patching and patch overlap tweaking (Sec. III of the paper).
//!
//! [`decompose`] slices an `H×W×C_i` input into pieces that each span all
//! input channels:
//!
//! * **Vanilla patching** ([`PatchMode::Vanilla`]): patches overlap by
//!   `k-1` columns/rows so every output window is fully contained in some
//!   patch; the client *selects* each output value from the patch that
//!   computed it correctly (Fig. 9).
//! * **Overlap tweaking** ([`PatchMode::Tweaked`]): patches overlap by
//!   only `max(k-2, 0)` and a small set of *auxiliary pieces* — seam
//!   strips and corner blocks — is added. The client *arithmetically
//!   assembles* its final share: patch and corner shares are added, strip
//!   shares subtracted (Fig. 10). By inclusion–exclusion, every input
//!   element contributes to every affected output position exactly once,
//!   so the assembled result equals the monolithic convolution while the
//!   patches stay small enough for the smallest rotation-capable HE
//!   parameters.
//!
//! [`assemble`] performs the client-side share assembly and is the
//! reference the HE pipeline is tested against.

use crate::layout::Piece;
use spot_tensor::conv::conv2d_full_positions;
use spot_tensor::tensor::{Kernel, Tensor};

/// Patch decomposition mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatchMode {
    /// Overlap `k-1`, selection-based assembly.
    Vanilla,
    /// Overlap `max(k-2, 0)` plus auxiliary seam pieces, arithmetic
    /// assembly — the SPOT contribution.
    Tweaked,
}

/// The overlap (shared columns/rows between adjacent patches) a mode
/// requires for a `k×k` kernel.
pub fn overlap_for(mode: PatchMode, k: usize) -> usize {
    match mode {
        PatchMode::Vanilla => k.saturating_sub(1),
        PatchMode::Tweaked => k.saturating_sub(2),
    }
}

/// A size class of pieces (all pieces in one ciphertext share dimensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PieceClass {
    /// Piece height.
    pub h: usize,
    /// Piece width.
    pub w: usize,
}

/// The decomposition of an input into pieces grouped by size class.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// The mode used.
    pub mode: PatchMode,
    /// Kernel size the overlap was chosen for.
    pub k: usize,
    /// Patch grid dimensions (rows, cols).
    pub grid: (usize, usize),
    /// Pieces grouped by class, main patches first.
    pub classes: Vec<(PieceClass, Vec<Piece>)>,
}

impl Decomposition {
    /// Total number of pieces.
    pub fn piece_count(&self) -> usize {
        self.classes.iter().map(|(_, p)| p.len()).sum()
    }

    /// Number of auxiliary (non-patch) pieces.
    pub fn aux_count(&self) -> usize {
        self.piece_count() - self.classes[0].1.len()
    }
}

fn grid_starts(extent: usize, piece: usize, overlap: usize) -> Vec<usize> {
    let stride = piece - overlap;
    assert!(stride > 0, "patch must be larger than the overlap");
    let mut starts = vec![0usize];
    while starts.last().unwrap() + piece < extent {
        starts.push(starts.last().unwrap() + stride);
    }
    starts
}

fn crop_piece(input: &Tensor, y0: usize, x0: usize, h: usize, w: usize, sign: i64) -> Piece {
    Piece {
        y0,
        x0,
        sign,
        data: input.crop(y0 as i64, x0 as i64, h, w),
    }
}

/// Decomposes `input` into pieces for a `k×k` kernel under the given
/// mode and patch size.
///
/// # Panics
///
/// Panics if the patch is not larger than the required overlap.
pub fn decompose(input: &Tensor, ph: usize, pw: usize, k: usize, mode: PatchMode) -> Decomposition {
    let v = overlap_for(mode, k);
    let h = input.height();
    let w = input.width();
    let rows = grid_starts(h, ph, v);
    let cols = grid_starts(w, pw, v);

    let mut patches = Vec::with_capacity(rows.len() * cols.len());
    for &y0 in &rows {
        for &x0 in &cols {
            patches.push(crop_piece(input, y0, x0, ph, pw, 1));
        }
    }
    let mut classes = vec![(PieceClass { h: ph, w: pw }, patches)];

    if mode == PatchMode::Tweaked && v > 0 {
        // Vertical seam strips: between horizontally adjacent patches,
        // spanning that patch-row's rows. Width v, height ph.
        let mut vsegs = Vec::new();
        for &y0 in &rows {
            for &x0 in &cols[1..] {
                vsegs.push(crop_piece(input, y0, x0, ph, v, -1));
            }
        }
        if !vsegs.is_empty() {
            classes.push((PieceClass { h: ph, w: v }, vsegs));
        }
        // Horizontal seam strips: height v, width pw.
        let mut hsegs = Vec::new();
        for &y0 in &rows[1..] {
            for &x0 in &cols {
                hsegs.push(crop_piece(input, y0, x0, v, pw, -1));
            }
        }
        if !hsegs.is_empty() {
            classes.push((PieceClass { h: v, w: pw }, hsegs));
        }
        // Corner pieces at seam intersections: v×v, sign +1.
        let mut corners = Vec::new();
        for &y0 in &rows[1..] {
            for &x0 in &cols[1..] {
                corners.push(crop_piece(input, y0, x0, v, v, 1));
            }
        }
        if !corners.is_empty() {
            classes.push((PieceClass { h: v, w: v }, corners));
        }
    }

    Decomposition {
        mode,
        k,
        grid: (rows.len(), cols.len()),
        classes,
    }
}

/// Assembles per-piece convolution outputs into the full result.
///
/// `piece_outputs` must be in the same order as the decomposition's
/// flattened piece list and contain, per piece, a tensor of
/// `C_o × class_h × class_w` — the zero-padded convolution of that piece
/// at every piece position.
///
/// For [`PatchMode::Tweaked`], outputs are summed with the piece signs.
/// For [`PatchMode::Vanilla`], each output position is *selected* from
/// the patch whose window fully covers it.
pub fn assemble(
    decomp: &Decomposition,
    piece_outputs: &[Tensor],
    out_h: usize,
    out_w: usize,
) -> Tensor {
    let c_out = piece_outputs[0].channels();
    let mut out = Tensor::zeros(c_out, out_h, out_w);
    let mut idx = 0usize;
    match decomp.mode {
        PatchMode::Tweaked => {
            for (class, pieces) in &decomp.classes {
                for piece in pieces {
                    let po = &piece_outputs[idx];
                    idx += 1;
                    for c in 0..c_out {
                        for y in 0..class.h {
                            let gy = piece.y0 + y;
                            if gy >= out_h {
                                break;
                            }
                            for x in 0..class.w {
                                let gx = piece.x0 + x;
                                if gx >= out_w {
                                    break;
                                }
                                *out.at_mut(c, gy, gx) += piece.sign * po.at(c, y, x);
                            }
                        }
                    }
                }
            }
        }
        PatchMode::Vanilla => {
            let margin = (decomp.k - 1) / 2;
            let (class, pieces) = &decomp.classes[0];
            for piece in pieces {
                let po = &piece_outputs[idx];
                idx += 1;
                for c in 0..c_out {
                    for y in 0..class.h {
                        let gy = piece.y0 + y;
                        if gy >= out_h {
                            break;
                        }
                        // Valid iff the kernel window around gy, clipped
                        // to the image, lies inside the patch.
                        let top_ok = gy < margin || y >= margin;
                        let bot_ok = gy + margin >= out_h || y + margin < class.h;
                        if !(top_ok && bot_ok) {
                            continue;
                        }
                        for x in 0..class.w {
                            let gx = piece.x0 + x;
                            if gx >= out_w {
                                break;
                            }
                            let left_ok = gx < margin || x >= margin;
                            let right_ok = gx + margin >= out_w || x + margin < class.w;
                            if !(left_ok && right_ok) {
                                continue;
                            }
                            // Overlapping patches write identical values.
                            *out.at_mut(c, gy, gx) = po.at(c, y, x);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Reference pipeline: decompose, convolve each piece in plaintext (with
/// zero padding), assemble. Must equal [`spot_tensor::conv::conv2d`] with
/// stride 1 — the property the HE path inherits.
pub fn reference_patched_conv(
    input: &Tensor,
    kernel: &Kernel,
    ph: usize,
    pw: usize,
    mode: PatchMode,
) -> Tensor {
    let decomp = decompose(input, ph, pw, kernel.k_h(), mode);
    let outputs: Vec<Tensor> = decomp
        .classes
        .iter()
        .flat_map(|(_, pieces)| pieces.iter())
        .map(|p| conv2d_full_positions(&p.data, kernel))
        .collect();
    assemble(&decomp, &outputs, input.height(), input.width())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_tensor::conv::conv2d;

    #[test]
    fn overlaps() {
        assert_eq!(overlap_for(PatchMode::Vanilla, 3), 2);
        assert_eq!(overlap_for(PatchMode::Tweaked, 3), 1);
        assert_eq!(overlap_for(PatchMode::Tweaked, 1), 0);
        assert_eq!(overlap_for(PatchMode::Vanilla, 5), 4);
        assert_eq!(overlap_for(PatchMode::Tweaked, 5), 3);
    }

    #[test]
    fn grid_covers_input() {
        let starts = grid_starts(8, 4, 1);
        // patches [0,4),[3,7),[6,10) cover 0..8
        assert_eq!(starts, vec![0, 3, 6]);
        let starts = grid_starts(8, 4, 2);
        assert_eq!(starts, vec![0, 2, 4]);
    }

    #[test]
    fn tweaked_matches_monolithic_3x3() {
        let input = Tensor::random(3, 8, 8, 10, 7);
        let kernel = Kernel::random(4, 3, 3, 3, 5, 8);
        let got = reference_patched_conv(&input, &kernel, 4, 4, PatchMode::Tweaked);
        let want = conv2d(&input, &kernel, 1);
        assert_eq!(got, want);
    }

    #[test]
    fn vanilla_matches_monolithic_3x3() {
        let input = Tensor::random(2, 9, 9, 10, 17);
        let kernel = Kernel::random(2, 2, 3, 3, 5, 18);
        let got = reference_patched_conv(&input, &kernel, 4, 4, PatchMode::Vanilla);
        let want = conv2d(&input, &kernel, 1);
        assert_eq!(got, want);
    }

    #[test]
    fn tweaked_matches_monolithic_1x1() {
        let input = Tensor::random(4, 6, 6, 10, 27);
        let kernel = Kernel::random(2, 4, 1, 1, 5, 28);
        let got = reference_patched_conv(&input, &kernel, 2, 2, PatchMode::Tweaked);
        let want = conv2d(&input, &kernel, 1);
        assert_eq!(got, want);
        // no aux pieces needed for 1x1 kernels
        let decomp = decompose(&input, 2, 2, 1, PatchMode::Tweaked);
        assert_eq!(decomp.aux_count(), 0);
    }

    #[test]
    fn tweaked_matches_monolithic_5x5() {
        let input = Tensor::random(2, 12, 12, 8, 37);
        let kernel = Kernel::random(2, 2, 5, 5, 4, 38);
        let got = reference_patched_conv(&input, &kernel, 6, 6, PatchMode::Tweaked);
        let want = conv2d(&input, &kernel, 1);
        assert_eq!(got, want);
    }

    #[test]
    fn tweaked_non_square_patches() {
        let input = Tensor::random(2, 10, 14, 10, 47);
        let kernel = Kernel::random(3, 2, 3, 3, 5, 48);
        let got = reference_patched_conv(&input, &kernel, 4, 2, PatchMode::Tweaked);
        let want = conv2d(&input, &kernel, 1);
        assert_eq!(got, want);
    }

    #[test]
    fn edge_patches_padded_beyond_image() {
        // 7x7 image with 4x4 patches overlap 1: grid starts 0,3,6 — last
        // patch extends past the image and is zero padded.
        let input = Tensor::random(1, 7, 7, 10, 57);
        let kernel = Kernel::random(1, 1, 3, 3, 5, 58);
        let got = reference_patched_conv(&input, &kernel, 4, 4, PatchMode::Tweaked);
        assert_eq!(got, conv2d(&input, &kernel, 1));
    }

    #[test]
    fn aux_piece_counts() {
        let input = Tensor::zeros(1, 8, 8);
        let d = decompose(&input, 4, 4, 3, PatchMode::Tweaked);
        // grid 3x3 patches, 3*2=6 vsegs, 2*3=6 hsegs, 2*2=4 corners
        assert_eq!(d.grid, (3, 3));
        assert_eq!(d.classes[0].1.len(), 9);
        assert_eq!(d.aux_count(), 6 + 6 + 4);
        // signs
        assert!(d.classes[1].1.iter().all(|p| p.sign == -1));
        assert!(d.classes[3].1.iter().all(|p| p.sign == 1));
    }

    #[test]
    fn vanilla_has_no_aux() {
        let input = Tensor::zeros(1, 8, 8);
        let d = decompose(&input, 4, 4, 3, PatchMode::Vanilla);
        assert_eq!(d.aux_count(), 0);
        assert_eq!(d.grid, (3, 3)); // starts 0,2,4,6? overlap 2 stride 2: 0,2,4 — covers 8? 4+4=8 ✓ starts 0,2,4
    }
}
