//! Lane-based SIMD slot layouts shared by every packing scheme.
//!
//! A BFV ciphertext's `N` slots form two rows ("lanes") of `R = N/2`
//! slots that row-rotations shift cyclically and independently. Every
//! packing in this crate fills each lane with an exact power-of-two block
//! structure so that the rotations a convolution needs are plain row
//! rotations:
//!
//! ```text
//! lane = [ block 0 | block 1 | ... | block B-1 ]       (B channel blocks)
//! block b = [ piece 0 | piece 1 | ... | piece G-1 ]    (G spatial pieces)
//! piece = S slots (row-major h×w, zero-padded to the power of two S)
//! ```
//!
//! Channel-major, piece-minor: rotating the lane by `d·G·S` cyclically
//! permutes the channel blocks (the MIMO diagonal alignment), and
//! rotating by a small spatial offset shifts every piece's pixels
//! simultaneously (the SISO kernel taps), with cross-piece leakage
//! removed by zeros in the kernel plaintexts.

use spot_tensor::tensor::Tensor;

/// A lane layout: `B` channel blocks × `G` pieces × `S` spatial slots,
/// with `B·G·S = R` exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneLayout {
    /// Slots per lane (`N/2`).
    pub lane_size: usize,
    /// Channel blocks per lane.
    pub blocks: usize,
    /// Spatial pieces per block.
    pub groups: usize,
    /// Slots per piece (power of two ≥ piece height × width).
    pub piece_slots: usize,
    /// Piece height.
    pub piece_h: usize,
    /// Piece width.
    pub piece_w: usize,
}

/// Rounds up to the next power of two (min 1).
pub fn next_pow2(x: usize) -> usize {
    x.max(1).next_power_of_two()
}

impl LaneLayout {
    /// Builds a layout for pieces of `piece_h × piece_w` with `blocks`
    /// channel blocks in a lane of `lane_size` slots.
    ///
    /// `groups` is derived to exactly fill the lane.
    ///
    /// # Panics
    ///
    /// Panics if the pieces do not fit (`blocks · S > lane_size`) or the
    /// lane size is not a multiple of `blocks · S`.
    pub fn new(lane_size: usize, blocks: usize, piece_h: usize, piece_w: usize) -> Self {
        let piece_slots = next_pow2(piece_h * piece_w);
        assert!(
            blocks * piece_slots <= lane_size,
            "pieces do not fit the lane: {blocks} blocks × {piece_slots} slots > {lane_size}"
        );
        assert_eq!(
            lane_size % (blocks * piece_slots),
            0,
            "lane not divisible by block structure"
        );
        let groups = lane_size / (blocks * piece_slots);
        Self {
            lane_size,
            blocks,
            groups,
            piece_slots,
            piece_h,
            piece_w,
        }
    }

    /// Slot index (within the lane) of `(block, group, y, x)`.
    #[inline]
    pub fn slot(&self, block: usize, group: usize, y: usize, x: usize) -> usize {
        debug_assert!(block < self.blocks && group < self.groups);
        debug_assert!(y < self.piece_h && x < self.piece_w);
        block * (self.groups * self.piece_slots) + group * self.piece_slots + y * self.piece_w + x
    }

    /// The rotation step that cyclically shifts channel blocks by `d`.
    pub fn block_rotation_step(&self, d: usize) -> i64 {
        (d * self.groups * self.piece_slots) as i64
    }

    /// Pieces a lane can carry in total (`groups`), i.e. how many spatial
    /// pieces of the full input are packed per lane.
    pub fn pieces_per_lane(&self) -> usize {
        self.groups
    }

    /// Useful (non-padding) slots per piece block.
    pub fn useful_piece_slots(&self) -> usize {
        self.piece_h * self.piece_w
    }
}

/// A spatial piece of the input: its global placement plus its data
/// across all channels (zero-padded to the piece dimensions).
#[derive(Debug, Clone)]
pub struct Piece {
    /// Global row of the piece's top-left corner (may be negative only
    /// for generality; pieces here always start in-bounds).
    pub y0: usize,
    /// Global column of the top-left corner.
    pub x0: usize,
    /// Inclusion–exclusion sign of this piece in the share assembly
    /// (`+1` for patches and corners, `-1` for seam strips).
    pub sign: i64,
    /// Piece data: `C_i × piece_h × piece_w`, zero-padded.
    pub data: Tensor,
}

/// Packs pieces into lane slot vectors.
///
/// Returns one `Vec<u64>` of `2 * lane_size` slots per ciphertext; pieces
/// are assigned lane-major (fill lane 0's groups, then lane 1's), and
/// channel `c` of a piece goes to block `c` (channels beyond `blocks`
/// would not fit and must be split by the caller).
///
/// Values are mapped into `Z_t` with negative values wrapped.
///
/// # Panics
///
/// Panics if a piece's channel count exceeds `layout.blocks` or its
/// dimensions exceed the layout's piece dimensions.
pub fn pack_pieces(layout: &LaneLayout, pieces: &[Piece], modulus: u64) -> Vec<Vec<u64>> {
    let per_ct = 2 * layout.groups;
    let mut out = Vec::new();
    for chunk in pieces.chunks(per_ct) {
        let mut slots = vec![0u64; 2 * layout.lane_size];
        for (idx, piece) in chunk.iter().enumerate() {
            let lane = idx / layout.groups;
            let group = idx % layout.groups;
            let t = &piece.data;
            assert!(
                t.channels() <= layout.blocks,
                "piece channels {} exceed layout blocks {}",
                t.channels(),
                layout.blocks
            );
            assert!(t.height() <= layout.piece_h && t.width() <= layout.piece_w);
            for c in 0..t.channels() {
                for y in 0..t.height() {
                    for x in 0..t.width() {
                        let v = t.at(c, y, x).rem_euclid(modulus as i64) as u64;
                        slots[lane * layout.lane_size + layout.slot(c, group, y, x)] = v;
                    }
                }
            }
        }
        out.push(slots);
    }
    out
}

/// Extracts the per-piece results from decoded output slot vectors.
///
/// `pieces_meta` carries the same ordering used by [`pack_pieces`];
/// `out_channels` is the number of meaningful output channel blocks.
/// Returns, per piece, a `Tensor` of `out_channels × piece_h × piece_w`
/// with values centered into `(-t/2, t/2]`.
pub fn unpack_pieces(
    layout: &LaneLayout,
    slot_vectors: &[Vec<u64>],
    piece_count: usize,
    out_channels: usize,
    modulus: u64,
) -> Vec<Tensor> {
    let per_ct = 2 * layout.groups;
    let mut out = Vec::with_capacity(piece_count);
    for p in 0..piece_count {
        let ct_idx = p / per_ct;
        let within = p % per_ct;
        let lane = within / layout.groups;
        let group = within % layout.groups;
        let slots = &slot_vectors[ct_idx];
        let t = Tensor::from_fn(out_channels, layout.piece_h, layout.piece_w, |c, y, x| {
            let v = slots[lane * layout.lane_size + layout.slot(c, group, y, x)];
            if v > modulus / 2 {
                v as i64 - modulus as i64
            } else {
                v as i64
            }
        });
        out.push(t);
    }
    out
}

/// Packs pieces with each piece's channels **split across both lanes**:
/// channel `c` goes to lane `c / blocks`, block `c % blocks`, so a piece
/// may span `2·blocks` channels and each ciphertext carries
/// `layout.groups` pieces. Used by SPOT to double the per-patch slot
/// budget to the full `N / C_i` the paper's Table VI assumes; the
/// cross-lane products are handled by the engine's column-swap version.
///
/// # Panics
///
/// Panics if a piece's channel count exceeds `2·blocks` or its
/// dimensions exceed the layout's piece dimensions.
pub fn pack_pieces_split(layout: &LaneLayout, pieces: &[Piece], modulus: u64) -> Vec<Vec<u64>> {
    let per_ct = layout.groups;
    let mut out = Vec::new();
    for chunk in pieces.chunks(per_ct) {
        let mut slots = vec![0u64; 2 * layout.lane_size];
        for (group, piece) in chunk.iter().enumerate() {
            let t = &piece.data;
            assert!(
                t.channels() <= 2 * layout.blocks,
                "piece channels {} exceed 2x layout blocks {}",
                t.channels(),
                layout.blocks
            );
            assert!(t.height() <= layout.piece_h && t.width() <= layout.piece_w);
            for c in 0..t.channels() {
                let lane = c / layout.blocks;
                let block = c % layout.blocks;
                for y in 0..t.height() {
                    for x in 0..t.width() {
                        let v = t.at(c, y, x).rem_euclid(modulus as i64) as u64;
                        slots[lane * layout.lane_size + layout.slot(block, group, y, x)] = v;
                    }
                }
            }
        }
        out.push(slots);
    }
    out
}

/// Inverse of [`pack_pieces_split`]: extracts per-piece tensors whose
/// channel `c` lives at lane `c / blocks`, block `c % blocks`.
pub fn unpack_pieces_split(
    layout: &LaneLayout,
    slot_vectors: &[Vec<u64>],
    piece_count: usize,
    out_channels: usize,
    modulus: u64,
) -> Vec<Tensor> {
    let per_ct = layout.groups;
    let mut out = Vec::with_capacity(piece_count);
    for p in 0..piece_count {
        let ct_idx = p / per_ct;
        let group = p % per_ct;
        let slots = &slot_vectors[ct_idx];
        let t = Tensor::from_fn(out_channels, layout.piece_h, layout.piece_w, |c, y, x| {
            let lane = c / layout.blocks;
            let block = c % layout.blocks;
            let v = slots[lane * layout.lane_size + layout.slot(block, group, y, x)];
            if v > modulus / 2 {
                v as i64 - modulus as i64
            } else {
                v as i64
            }
        });
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: u64 = 1_032_193;

    #[test]
    fn layout_geometry() {
        let l = LaneLayout::new(2048, 4, 4, 4);
        assert_eq!(l.piece_slots, 16);
        assert_eq!(l.groups, 2048 / (4 * 16));
        assert_eq!(l.slot(0, 0, 0, 0), 0);
        assert_eq!(l.slot(0, 0, 1, 0), 4);
        assert_eq!(l.slot(0, 1, 0, 0), 16);
        assert_eq!(l.slot(1, 0, 0, 0), l.groups * 16);
        assert_eq!(l.block_rotation_step(2), 2 * (l.groups * 16) as i64);
    }

    #[test]
    fn non_pow2_piece_dims_pad() {
        let l = LaneLayout::new(2048, 2, 3, 3);
        assert_eq!(l.piece_slots, 16); // 9 -> 16
        assert_eq!(l.useful_piece_slots(), 9);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let l = LaneLayout::new(256, 2, 2, 2);
        // groups = 256/(2*4) = 32, per_ct = 64 pieces
        let pieces: Vec<Piece> = (0..70)
            .map(|i| Piece {
                y0: 0,
                x0: 0,
                sign: 1,
                data: Tensor::from_fn(2, 2, 2, |c, y, x| {
                    (i as i64 * 100 + c as i64 * 10 + (y * 2 + x) as i64) - 50
                }),
            })
            .collect();
        let cts = pack_pieces(&l, &pieces, T);
        assert_eq!(cts.len(), 2); // 64 + 6
        let outs = unpack_pieces(&l, &cts, 70, 2, T);
        for (i, got) in outs.iter().enumerate() {
            assert_eq!(got, &pieces[i].data, "piece {i}");
        }
    }

    #[test]
    #[should_panic]
    fn oversized_piece_rejected() {
        let l = LaneLayout::new(64, 8, 2, 2);
        let p = Piece {
            y0: 0,
            x0: 0,
            sign: 1,
            data: Tensor::zeros(16, 2, 2),
        };
        let _ = pack_pieces(&l, &[p], T);
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(9), 16);
        assert_eq!(next_pow2(16), 16);
    }
}
