//! Patch size and cryptographic parameter selection (Table VI / VIII of
//! the paper).
//!
//! For a layer `(W, H, C_i, C_o)` and a slot budget, pick the largest
//! power-of-two patch `H'×W'` such that a full patch spanning all input
//! channels fits (`C_i_pad · H'·W' ≤ slots`), the patch exceeds the
//! tweaked overlap, and the patch is no larger than the feature map.
//! Smaller levels are preferred because HE operations are 2–10× cheaper
//! (Table IV).

use crate::layout::next_pow2;
use crate::patching::{overlap_for, PatchMode};
use spot_he::params::ParamLevel;
use spot_tensor::models::ConvShape;

/// The outcome of patch selection for one layer at one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchChoice {
    /// Parameter level.
    pub level: ParamLevel,
    /// Chosen patch `(H', W')`.
    pub patch: (usize, usize),
    /// Patches (pieces) packed per ciphertext.
    pub pieces_per_ct: usize,
    /// Fraction of slots carrying real values, in percent.
    pub utilization_pct: u32,
}

/// Selects a patch size given an explicit slot budget per packing unit.
///
/// `slots` is `N/2` for this implementation's lane-contained pieces, or
/// `N` to reproduce the paper's Table VI numbers (which treat the whole
/// ciphertext as one slot vector).
pub fn select_patch_with_slots(
    shape: &ConvShape,
    slots: usize,
    mode: PatchMode,
) -> Option<(usize, usize)> {
    let v = overlap_for(mode, shape.k_h.max(shape.k_w));
    let ci_pad = next_pow2(shape.c_in);
    if ci_pad > slots {
        return None;
    }
    let budget = (slots / ci_pad).max(1); // power of two
                                          // Patch must strictly exceed the overlap in both dims and not exceed
                                          // the (padded) feature map.
    let max_h = next_pow2(shape.height);
    let max_w = next_pow2(shape.width);
    let area = budget.min(max_h * max_w);
    if area < next_pow2((v + 1) * (v + 1)) {
        return None;
    }
    // Split the area into H'×W', H' ≥ W', as square as possible while
    // respecting the feature-map bounds.
    let log = area.trailing_zeros();
    let mut lh = log.div_ceil(2);
    let mut lw = log - lh;
    // clamp to feature-map bounds, shifting the excess to the other dim
    let (max_lh, max_lw) = (max_h.trailing_zeros(), max_w.trailing_zeros());
    if lh > max_lh {
        lw += lh - max_lh;
        lh = max_lh;
    }
    if lw > max_lw {
        lh = (lh + (lw - max_lw)).min(max_lh);
        lw = max_lw;
    }
    let (ph, pw) = (1usize << lh, 1usize << lw);
    if ph <= v || pw <= v {
        return None;
    }
    Some((ph, pw))
}

/// Selects the patch for a layer at a level (lane-contained pieces).
pub fn select_patch(shape: &ConvShape, level: ParamLevel, mode: PatchMode) -> Option<PatchChoice> {
    if !level.supports_rotation() {
        return None;
    }
    let ci_pad = next_pow2(shape.c_in);
    // Channels split across the two lanes give each patch the full
    // N / C_i slot budget of the paper's Table VI (single-channel inputs
    // stay lane-contained).
    let budget_slots = if ci_pad >= 2 {
        level.degree()
    } else {
        level.degree() / 2
    };
    let patch = select_patch_with_slots(shape, budget_slots, mode)?;
    let s = next_pow2(patch.0 * patch.1);
    let lane = level.degree() / 2;
    let lane_blocks = (ci_pad / 2).max(1);
    let per_ct = (lane / (lane_blocks * s)).max(1);
    Some(PatchChoice {
        level,
        patch,
        pieces_per_ct: per_ct,
        utilization_pct: ((patch.0 * patch.1 * shape.c_in * 100) / (s * ci_pad)) as u32,
    })
}

/// Picks the smallest (fastest) rotation-capable level at which SPOT can
/// run the layer, with its patch.
pub fn best_level(shape: &ConvShape, mode: PatchMode) -> Option<PatchChoice> {
    ParamLevel::ALL
        .into_iter()
        .filter(|l| l.supports_rotation())
        .find_map(|l| select_patch(shape, l, mode))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(w: usize, h: usize, ci: usize, co: usize) -> ConvShape {
        ConvShape::new(w, h, ci, co, 3, 1)
    }

    #[test]
    fn paper_table6_selection_full_ct_budget() {
        // Reproduce the paper's Table VI with the full-N slot budget.
        // (W H Ci Co) at S'=4096 → paper: 8*8, 8*4, 4*4, 2*4
        let cases = [
            (shape(56, 56, 64, 64), 4096, (8, 8)),
            (shape(28, 28, 128, 128), 4096, (8, 4)),
            (shape(14, 14, 256, 256), 4096, (4, 4)),
            (shape(7, 7, 512, 512), 4096, (4, 2)),
            // S'=8192 → 16*8, 8*8, 8*4, 4*4
            (shape(56, 56, 64, 64), 8192, (16, 8)),
            (shape(28, 28, 128, 128), 8192, (8, 8)),
            (shape(14, 14, 256, 256), 8192, (8, 4)),
            (shape(7, 7, 512, 512), 8192, (4, 4)),
            // S'=16384 → 16*16, 16*8, 8*8, 8*4
            (shape(56, 56, 64, 64), 16384, (16, 16)),
            (shape(28, 28, 128, 128), 16384, (16, 8)),
            (shape(14, 14, 256, 256), 16384, (8, 8)),
            (shape(7, 7, 512, 512), 16384, (8, 4)),
        ];
        for (s, slots, want) in cases {
            let got = select_patch_with_slots(&s, slots, PatchMode::Tweaked).unwrap();
            assert_eq!(
                got.0 * got.1,
                want.0 * want.1,
                "shape {s} slots {slots}: got {got:?}, paper {want:?}"
            );
        }
    }

    #[test]
    fn patch_never_exceeds_feature_map() {
        let s = shape(7, 7, 64, 64);
        let (ph, pw) = select_patch_with_slots(&s, 16384, PatchMode::Tweaked).unwrap();
        assert!(ph <= 8 && pw <= 8);
    }

    #[test]
    fn infeasible_when_channels_exceed_budget() {
        // 2048 channels × minimum 2x2 patch > 4096 slots
        let s = shape(7, 7, 2048, 512);
        assert_eq!(select_patch_with_slots(&s, 4096, PatchMode::Tweaked), None);
        assert!(select_patch_with_slots(&s, 16384, PatchMode::Tweaked).is_some());
    }

    #[test]
    fn best_level_prefers_smallest() {
        let s = shape(14, 14, 16, 16);
        let c = best_level(&s, PatchMode::Tweaked).unwrap();
        assert_eq!(c.level, ParamLevel::N4096);
        // deep layer with many channels needs a bigger level
        let s = shape(7, 7, 2048, 512);
        let c = best_level(&s, PatchMode::Tweaked).unwrap();
        assert!(c.level > ParamLevel::N4096);
    }

    #[test]
    fn vanilla_needs_larger_patches() {
        // overlap 2 needs patch > 2 per dim: a 2x2 patch is rejected
        let s = shape(7, 7, 512, 512);
        let tweaked = select_patch_with_slots(&s, 2048, PatchMode::Tweaked);
        let vanilla = select_patch_with_slots(&s, 2048, PatchMode::Vanilla);
        assert!(tweaked.is_some());
        assert_eq!(
            vanilla, None,
            "vanilla cannot fit 512 channels at 2048 slots"
        );
    }

    #[test]
    fn utilization_reported() {
        let s = shape(14, 14, 256, 256);
        let c = select_patch(&s, ParamLevel::N8192, PatchMode::Tweaked).unwrap();
        assert!(c.utilization_pct > 50);
        assert!(c.pieces_per_ct >= 1);
    }
}
