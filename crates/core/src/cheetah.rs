//! Cheetah-style coefficient-encoding convolution (Huang et al., USENIX
//! Security '22) — the second baseline the paper compares against.
//!
//! Instead of SIMD slots, the input is packed into *polynomial
//! coefficients*; one ciphertext–plaintext ring multiplication then
//! computes an entire multi-channel convolution with **zero rotations**
//! (the negacyclic product's coefficient at the right index accumulates
//! the full weighted sum). The price:
//!
//! * only a sparse subset of output coefficients is useful, so the
//!   server must *extract* each useful coefficient (as an LWE
//!   ciphertext), inflating downstream traffic and processing — the
//!   paper's explanation for why Cheetah's advantage collapses on tiny
//!   clients (Table II);
//! * output values still depend on **all** input ciphertexts (partial
//!   products summed across channel chunks), so the linear computation
//!   stall remains.
//!
//! The functional path really computes convolutions through the
//! coefficient encoding on our BFV ciphertexts and is tested against the
//! plaintext reference; extraction is modelled by its traffic/compute
//! cost (per DESIGN.md §3 the masked RLWE ciphertext stands in for the
//! extracted LWE batch in the functional path).
//!
//! The drivers here are thin wrappers over the session layer
//! ([`crate::session`]): client and server run as separate state
//! machines over an in-process transport exchanging real wire frames.

use crate::channelwise::SecureConvResult;
use crate::executor::Executor;
use crate::patching::PatchMode;
use crate::session::{run_in_process, ExecBackend, SchemeKind};
use crate::stream::{StreamConfig, StreamStats};
use rand::Rng;
use spot_he::context::Context;
use spot_he::evaluator::OpCounts;
use spot_he::keys::KeyGenerator;
use spot_he::params::ParamLevel;
use spot_pipeline::plan::{ConvPlan, OutputDependency};
use spot_tensor::models::ConvShape;
use spot_tensor::tensor::{Kernel, Tensor};
use std::sync::Arc;

/// Bytes per extracted output element (an LWE ciphertext after modulus
/// switching and seed compression, amortized) — drives the downstream
/// blow-up the paper attributes to Cheetah.
pub const LWE_BYTES_PER_ELEMENT: u64 = 16;

/// Geometry of the coefficient packing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheetahGeometry {
    /// Padded channel stride in coefficients (`(H+k_h-1)·(W+k_w-1)`).
    pub channel_coeffs: usize,
    /// Input channels per ciphertext.
    pub channels_per_ct: usize,
    /// Number of input ciphertexts.
    pub input_cts: usize,
    /// Number of output (RLWE) ciphertexts before extraction.
    pub output_cts: usize,
}

/// Computes the packing geometry.
///
/// The functional encoding places chunk channels ascending and kernels
/// descending, so the useful products land at channel offset
/// `(chunk-1)·channel_coeffs` and the total degree stays below `N` when
/// `(2·chunk-1)·channel_coeffs ≤ N`.
pub fn geometry(shape: &ConvShape, level: ParamLevel) -> CheetahGeometry {
    let n = level.degree();
    let hp = shape.height + shape.k_h - 1;
    let wp = shape.width + shape.k_w - 1;
    let s_ch = hp * wp;
    let max_chunk = if s_ch > n { 0 } else { (n / s_ch).div_ceil(2) };
    let channels_per_ct = max_chunk.max(1).min(shape.c_in.max(1));
    let (input_cts, output_cts) = if max_chunk == 0 {
        // feature map larger than the ring: fragment (planning only)
        let per_channel = s_ch.div_ceil(n);
        (shape.c_in * per_channel, shape.c_out * per_channel)
    } else {
        (shape.c_in.div_ceil(channels_per_ct), shape.c_out)
    };
    CheetahGeometry {
        channel_coeffs: s_ch,
        channels_per_ct,
        input_cts,
        output_cts,
    }
}

/// Executes the Cheetah-style secure convolution (functional path) on a
/// single thread.
///
/// # Panics
///
/// Panics if the feature map does not fit the ring
/// (`(H+k-1)(W+k-1) > N`); large maps are handled by the planner only.
pub fn execute<R: Rng>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    input: &Tensor,
    kernel: &Kernel,
    stride: usize,
    rng: &mut R,
) -> SecureConvResult {
    execute_with(ctx, keygen, input, kernel, stride, &Executor::serial(), rng)
}

/// Executes the Cheetah-style secure convolution with the per-output-
/// channel ring products fanned across `executor`'s worker pool.
///
/// Masking randomness is drawn sequentially in output-channel order on
/// the server side, so results are bit-identical for every thread
/// count.
///
/// # Panics
///
/// Panics if the feature map does not fit the ring
/// (`(H+k-1)(W+k-1) > N`); large maps are handled by the planner only.
pub fn execute_with<R: Rng>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    input: &Tensor,
    kernel: &Kernel,
    stride: usize,
    executor: &Executor,
    rng: &mut R,
) -> SecureConvResult {
    run_in_process(
        ctx,
        keygen,
        input,
        kernel,
        stride,
        (0, 0),
        PatchMode::Vanilla,
        SchemeKind::Cheetah,
        &ExecBackend::Phased(*executor),
        rng,
    )
    .expect("in-process cheetah session")
    .result
}

/// Executes the Cheetah-style secure convolution as a streamed upload:
/// chunk ciphertexts flow through a bounded in-process transport, but
/// every output channel's ring products sum over **all** chunks
/// ([`OutputDependency::AllInputs`]), so the server's workers idle for
/// the whole upload span — Cheetah keeps the linear computation stall
/// despite its rotation-free convolution.
///
/// Client and server randomness are split from `rng` exactly as in the
/// phased driver, so shares and op counts are bit-identical to
/// [`execute_with`] for any worker count and channel capacity, given
/// the same rng seed.
///
/// # Panics
///
/// Panics if the feature map does not fit the ring
/// (`(H+k-1)(W+k-1) > N`); large maps are handled by the planner only.
pub fn execute_streaming<R: Rng + Send>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    input: &Tensor,
    kernel: &Kernel,
    stride: usize,
    config: &StreamConfig,
    rng: &mut R,
) -> (SecureConvResult, StreamStats) {
    let outcome = run_in_process(
        ctx,
        keygen,
        input,
        kernel,
        stride,
        (0, 0),
        PatchMode::Vanilla,
        SchemeKind::Cheetah,
        &ExecBackend::Streaming(*config),
        rng,
    )
    .expect("in-process cheetah session");
    let stats = outcome
        .stream
        .expect("streaming backend reports stall stats");
    (outcome.result, stats)
}

/// The smallest level Cheetah can use for a shape (the feature map plus
/// kernel halo must fit the ring).
pub fn minimum_level(shape: &ConvShape) -> ParamLevel {
    let s_ch = (shape.height + shape.k_h - 1) * (shape.width + shape.k_w - 1);
    for level in ParamLevel::ALL {
        if s_ch <= level.degree() && level.supports_rotation() {
            // Cheetah needs no rotations, but key-switching material for
            // relinearization-free ops still wants ≥ 2 RNS primes; its
            // published parameters use N = 4096.
            return level;
        }
    }
    ParamLevel::N16384
}

/// Builds the Cheetah execution plan for the simulator.
pub fn plan(shape: &ConvShape, level: ParamLevel, with_relu: bool) -> ConvPlan {
    let geo = geometry(shape, level);
    let out_elements = shape.output_elements() as u64;
    let per_ct = OpCounts {
        // one ring product per output channel per input ciphertext
        mult_plain: shape.c_out as u64,
        ..OpCounts::default()
    };
    let finalize = OpCounts {
        // chunk accumulation + masking + extraction work (charged as
        // cheap add-equivalents, one per 8 output elements)
        add: (geo.input_cts.saturating_sub(1) as u64) * shape.c_out as u64
            + shape.c_out as u64
            + out_elements / 8,
        ..OpCounts::default()
    };
    let params = spot_he::params::EncryptionParams::new(level);
    ConvPlan {
        scheme: "Cheetah (coefficient)",
        level,
        input_cts: geo.input_cts,
        // extracted LWE batches repacked: downstream dominated by
        // extra_downstream_bytes; keep RLWE count modest
        output_cts: geo.output_cts.min(geo.input_cts.max(1) * 4).max(1),
        per_ct_ops: per_ct,
        finalize_ops: finalize,
        dependency: OutputDependency::AllInputs,
        extra_downstream_bytes: out_elements * LWE_BYTES_PER_ELEMENT,
        // client-side LWE decryption/processing per extracted element
        client_extra_s: out_elements as f64 * 1.2e-6,
        assembly_elements: out_elements,
        relu_elements: if with_relu {
            shape.output_elements()
        } else {
            0
        },
        ciphertext_bytes: params.ciphertext_bytes(),
        useful_input_slots: (geo.channels_per_ct * shape.width * shape.height).min(level.degree()),
        // extraction leaves one useful value per LWE ciphertext — the
        // memory-utilization penalty of Fig. 11
        useful_output_slots: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spot_he::params::EncryptionParams;
    use spot_tensor::conv::conv2d;

    fn ctx4096() -> Arc<Context> {
        Context::new(EncryptionParams::new(ParamLevel::N4096))
    }

    #[test]
    fn geometry_counts() {
        let shape = ConvShape::new(8, 8, 16, 8, 3, 1);
        let geo = geometry(&shape, ParamLevel::N4096);
        assert_eq!(geo.channel_coeffs, 100);
        assert_eq!(geo.channels_per_ct, 16);
        assert_eq!(geo.input_cts, 1);
        assert_eq!(geo.output_cts, 8);
    }

    #[test]
    fn cheetah_matches_reference_3x3() {
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(700);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(4, 8, 8, 8, 71);
        let kernel = Kernel::random(4, 4, 3, 3, 4, 72);
        let res = execute(&ctx, &kg, &input, &kernel, 1, &mut rng);
        assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 1));
        // zero rotations — Cheetah's defining property
        assert_eq!(res.counts.rotate, 0);
    }

    #[test]
    fn cheetah_matches_reference_multi_chunk() {
        // 16x16 map → s_ch = 18*18 = 324; chunk = (4096/324+1)/2 = 6;
        // 16 channels → 3 input cts
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(800);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(16, 16, 16, 4, 81);
        let kernel = Kernel::random(2, 16, 3, 3, 3, 82);
        let res = execute(&ctx, &kg, &input, &kernel, 1, &mut rng);
        assert!(res.input_cts > 1);
        assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 1));
    }

    #[test]
    fn cheetah_1x1_and_stride() {
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(900);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(4, 8, 8, 8, 91);
        let kernel = Kernel::random(4, 4, 1, 1, 4, 92);
        let res = execute(&ctx, &kg, &input, &kernel, 2, &mut rng);
        assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 2));
    }

    #[test]
    fn minimum_levels() {
        assert_eq!(
            minimum_level(&ConvShape::new(56, 56, 64, 64, 3, 1)),
            ParamLevel::N4096
        );
        assert_eq!(
            minimum_level(&ConvShape::new(112, 112, 64, 64, 3, 1)),
            ParamLevel::N16384
        );
    }

    #[test]
    fn plan_has_dependency_and_extraction_cost() {
        let shape = ConvShape::new(28, 28, 128, 128, 3, 1);
        let p = plan(&shape, ParamLevel::N4096, true);
        assert_eq!(p.dependency, OutputDependency::AllInputs);
        assert!(p.extra_downstream_bytes > 1_000_000);
        assert_eq!(p.per_ct_ops.rotate, 0);
    }
}
