//! Cheetah-style coefficient-encoding convolution (Huang et al., USENIX
//! Security '22) — the second baseline the paper compares against.
//!
//! Instead of SIMD slots, the input is packed into *polynomial
//! coefficients*; one ciphertext–plaintext ring multiplication then
//! computes an entire multi-channel convolution with **zero rotations**
//! (the negacyclic product's coefficient at the right index accumulates
//! the full weighted sum). The price:
//!
//! * only a sparse subset of output coefficients is useful, so the
//!   server must *extract* each useful coefficient (as an LWE
//!   ciphertext), inflating downstream traffic and processing — the
//!   paper's explanation for why Cheetah's advantage collapses on tiny
//!   clients (Table II);
//! * output values still depend on **all** input ciphertexts (partial
//!   products summed across channel chunks), so the linear computation
//!   stall remains.
//!
//! The functional path below really computes convolutions through the
//! coefficient encoding on our BFV ciphertexts and is tested against the
//! plaintext reference; extraction is modelled by its traffic/compute
//! cost (per DESIGN.md §3 the masked RLWE ciphertext stands in for the
//! extracted LWE batch in the functional path).

use crate::channelwise::SecureConvResult;
use crate::executor::Executor;
use crate::stream::{run_stream_barrier, StreamConfig, StreamStats};
use rand::Rng;
use spot_he::ciphertext::Ciphertext;
use spot_he::context::Context;
use spot_he::encoding::Plaintext;
use spot_he::encryptor::{Decryptor, Encryptor};
use spot_he::evaluator::{Evaluator, OpCounts};
use spot_he::keys::KeyGenerator;
use spot_he::params::ParamLevel;
use spot_pipeline::plan::{ConvPlan, OutputDependency};
use spot_tensor::models::ConvShape;
use spot_tensor::tensor::{Kernel, Tensor};
use std::sync::Arc;

/// Bytes per extracted output element (an LWE ciphertext after modulus
/// switching and seed compression, amortized) — drives the downstream
/// blow-up the paper attributes to Cheetah.
pub const LWE_BYTES_PER_ELEMENT: u64 = 16;

/// Geometry of the coefficient packing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheetahGeometry {
    /// Padded channel stride in coefficients (`(H+k_h-1)·(W+k_w-1)`).
    pub channel_coeffs: usize,
    /// Input channels per ciphertext.
    pub channels_per_ct: usize,
    /// Number of input ciphertexts.
    pub input_cts: usize,
    /// Number of output (RLWE) ciphertexts before extraction.
    pub output_cts: usize,
}

/// Computes the packing geometry.
///
/// The functional encoding places chunk channels ascending and kernels
/// descending, so the useful products land at channel offset
/// `(chunk-1)·channel_coeffs` and the total degree stays below `N` when
/// `(2·chunk-1)·channel_coeffs ≤ N`.
pub fn geometry(shape: &ConvShape, level: ParamLevel) -> CheetahGeometry {
    let n = level.degree();
    let hp = shape.height + shape.k_h - 1;
    let wp = shape.width + shape.k_w - 1;
    let s_ch = hp * wp;
    let max_chunk = if s_ch > n { 0 } else { (n / s_ch).div_ceil(2) };
    let channels_per_ct = max_chunk.max(1).min(shape.c_in.max(1));
    let (input_cts, output_cts) = if max_chunk == 0 {
        // feature map larger than the ring: fragment (planning only)
        let per_channel = s_ch.div_ceil(n);
        (shape.c_in * per_channel, shape.c_out * per_channel)
    } else {
        (shape.c_in.div_ceil(channels_per_ct), shape.c_out)
    };
    CheetahGeometry {
        channel_coeffs: s_ch,
        channels_per_ct,
        input_cts,
        output_cts,
    }
}

/// Executes the Cheetah-style secure convolution (functional path) on a
/// single thread.
///
/// # Panics
///
/// Panics if the feature map does not fit the ring
/// (`(H+k-1)(W+k-1) > N`); large maps are handled by the planner only.
pub fn execute<R: Rng>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    input: &Tensor,
    kernel: &Kernel,
    stride: usize,
    rng: &mut R,
) -> SecureConvResult {
    execute_with(ctx, keygen, input, kernel, stride, &Executor::serial(), rng)
}

/// Executes the Cheetah-style secure convolution with the per-output-
/// channel ring products fanned across `executor`'s worker pool.
///
/// Masking randomness is drawn sequentially in output-channel order on
/// the calling thread, so results are bit-identical for every thread
/// count.
///
/// # Panics
///
/// Panics if the feature map does not fit the ring
/// (`(H+k-1)(W+k-1) > N`); large maps are handled by the planner only.
pub fn execute_with<R: Rng>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    input: &Tensor,
    kernel: &Kernel,
    stride: usize,
    executor: &Executor,
    rng: &mut R,
) -> SecureConvResult {
    let shape = ConvShape {
        width: input.width(),
        height: input.height(),
        c_in: input.channels(),
        c_out: kernel.out_channels(),
        k_h: kernel.k_h(),
        k_w: kernel.k_w(),
        stride,
    };
    let level = ctx.params().level();
    let geo = geometry(&shape, level);
    assert!(
        geo.channel_coeffs <= ctx.degree(),
        "feature map does not fit the ring at {level}"
    );
    let n = ctx.degree();
    let t = ctx.params().plain_modulus();
    let hp = shape.height + shape.k_h - 1;
    let wp = shape.width + shape.k_w - 1;
    let s_ch = hp * wp;

    let encryptor = Encryptor::new(ctx, keygen.public_key(rng));
    let decryptor = Decryptor::new(ctx, keygen.secret_key().clone());
    let evaluator = Evaluator::new(ctx);
    let mut counts = OpCounts::default();

    // --- client: coefficient-pack and encrypt chunks of channels ---
    let all_channels: Vec<usize> = (0..input.channels()).collect();
    let chunks: Vec<&[usize]> = all_channels.chunks(geo.channels_per_ct).collect();
    let mut input_cts = Vec::with_capacity(chunks.len());
    for chunk in &chunks {
        let mut coeffs = vec![0u64; n];
        for (local, &c) in chunk.iter().enumerate() {
            for y in 0..shape.height {
                for x in 0..shape.width {
                    coeffs[local * s_ch + y * wp + x] =
                        input.at(c, y, x).rem_euclid(t as i64) as u64;
                }
            }
        }
        input_cts.push(encryptor.encrypt(&Plaintext::from_coeffs(coeffs), rng));
        counts.encrypt += 1;
    }

    // --- server: one ring product per (output channel, chunk), summed
    // over chunks; chunks are padded identically so every product's
    // useful coefficients sit at the same offset ---
    let chunk_cap = geo.channels_per_ct;
    let oh = shape.out_height();
    let ow = shape.out_width();
    let mut client_share = Tensor::zeros(shape.c_out, oh, ow);
    let mut server_share = Tensor::zeros(shape.c_out, oh, ow);
    // Parallel phase: the per-output-channel ring products consume no
    // randomness, so they can run on any thread in any order.
    let out_channels: Vec<usize> = (0..shape.c_out).collect();
    let accumulated = executor.run(&out_channels, |_, &o| {
        let mut c_local = OpCounts::default();
        let mut acc: Option<spot_he::ciphertext::Ciphertext> = None;
        for (ci_idx, chunk) in chunks.iter().enumerate() {
            let mut wcoeffs = vec![0u64; n];
            for (local, &c) in chunk.iter().enumerate() {
                for u in 0..shape.k_h {
                    for v in 0..shape.k_w {
                        let w = kernel.at(o, c, u, v).rem_euclid(t as i64) as u64;
                        let idx = (chunk_cap - 1 - local) * s_ch
                            + (shape.k_h - 1 - u) * wp
                            + (shape.k_w - 1 - v);
                        wcoeffs[idx] = w;
                    }
                }
            }
            let prod =
                evaluator.multiply_plain(&input_cts[ci_idx], &Plaintext::from_coeffs(wcoeffs));
            c_local.mult_plain += 1;
            match &mut acc {
                None => acc = Some(prod),
                Some(a) => {
                    evaluator.add_inplace(a, &prod);
                    c_local.add += 1;
                }
            }
        }
        (acc.expect("at least one chunk"), c_local)
    });
    // Sequential phase: masking randomness in fixed output-channel order.
    mask_and_extract(
        ctx,
        &evaluator,
        &decryptor,
        accumulated,
        &shape,
        chunk_cap,
        &mut counts,
        &mut client_share,
        &mut server_share,
        rng,
    );

    SecureConvResult {
        client_share,
        server_share,
        counts,
        input_cts: chunks.len(),
        output_cts: shape.c_out,
        modulus: t,
    }
}

/// Masks each accumulated output ciphertext, decrypts, and extracts the
/// strided output coefficients — the sequential tail shared by the
/// phased and streaming drivers. Mask randomness is drawn from `rng` in
/// output-channel order.
#[allow(clippy::too_many_arguments)]
fn mask_and_extract<R: Rng>(
    ctx: &Arc<Context>,
    evaluator: &Evaluator,
    decryptor: &Decryptor,
    accumulated: Vec<(Ciphertext, OpCounts)>,
    shape: &ConvShape,
    chunk_cap: usize,
    counts: &mut OpCounts,
    client_share: &mut Tensor,
    server_share: &mut Tensor,
    rng: &mut R,
) {
    let n = ctx.degree();
    let t = ctx.params().plain_modulus();
    let wp = shape.width + shape.k_w - 1;
    let s_ch = (shape.height + shape.k_h - 1) * wp;
    let ph = (shape.k_h - 1) / 2;
    let pw = (shape.k_w - 1) / 2;
    let stride = shape.stride;
    let oh = shape.out_height();
    let ow = shape.out_width();
    for (o, (out_ct, c_local)) in accumulated.into_iter().enumerate() {
        counts.merge(&c_local);
        // mask and return (stands in for LWE extraction)
        let r: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t)).collect();
        let masked = evaluator.sub_plain(&out_ct, &Plaintext::from_coeffs(r.clone()));
        counts.add += 1;
        let decoded = decryptor.decrypt(&masked);
        counts.decrypt += 1;
        let dc = decoded.coeffs();
        let base = (chunk_cap - 1) * s_ch;
        for y in 0..oh {
            for x in 0..ow {
                let gy = y * stride;
                let gx = x * stride;
                let idx = base + (gy + ph) * wp + (gx + pw);
                let cv = dc[idx];
                *client_share.at_mut(o, y, x) = if cv > t / 2 {
                    cv as i64 - t as i64
                } else {
                    cv as i64
                };
                *server_share.at_mut(o, y, x) = r[idx] as i64;
            }
        }
    }
}

/// Executes the Cheetah-style secure convolution as a streamed upload
/// through [`crate::stream::run_stream_barrier`]: chunk ciphertexts
/// flow through the bounded channel, but every output channel's ring
/// products sum over **all** chunks
/// ([`OutputDependency::AllInputs`]), so the server's workers idle for
/// the whole upload span — Cheetah keeps the linear computation stall
/// despite its rotation-free convolution.
///
/// Randomness is drawn in exactly the phased order (public key and
/// chunk encryptions on the producer thread; masks on the caller's
/// thread after the fan-out), so shares and op counts are bit-identical
/// to [`execute_with`] for any worker count and channel capacity, given
/// the same rng seed.
///
/// # Panics
///
/// Panics if the feature map does not fit the ring
/// (`(H+k-1)(W+k-1) > N`); large maps are handled by the planner only.
pub fn execute_streaming<R: Rng + Send>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    input: &Tensor,
    kernel: &Kernel,
    stride: usize,
    config: &StreamConfig,
    rng: &mut R,
) -> (SecureConvResult, StreamStats) {
    let shape = ConvShape {
        width: input.width(),
        height: input.height(),
        c_in: input.channels(),
        c_out: kernel.out_channels(),
        k_h: kernel.k_h(),
        k_w: kernel.k_w(),
        stride,
    };
    let level = ctx.params().level();
    let geo = geometry(&shape, level);
    assert!(
        geo.channel_coeffs <= ctx.degree(),
        "feature map does not fit the ring at {level}"
    );
    let n = ctx.degree();
    let t = ctx.params().plain_modulus();
    let wp = shape.width + shape.k_w - 1;
    let s_ch = geo.channel_coeffs;
    let chunk_cap = geo.channels_per_ct;

    let decryptor = Decryptor::new(ctx, keygen.secret_key().clone());
    let evaluator = Evaluator::new(ctx);
    let mut counts = OpCounts::default();

    let all_channels: Vec<usize> = (0..input.channels()).collect();
    let chunks: Vec<&[usize]> = all_channels.chunks(geo.channels_per_ct).collect();
    let chunks_ref = &chunks;
    let evaluator_ref = &evaluator;
    let rng_ref = &mut *rng;

    let mut accumulated: Vec<(Ciphertext, OpCounts)> = Vec::with_capacity(shape.c_out);
    let stats = run_stream_barrier(
        config,
        shape.c_out,
        // Producer: public key, then coefficient-pack and encrypt each
        // channel chunk — all rng draws in phased order.
        move |feeder| {
            let encryptor = Encryptor::new(ctx, keygen.public_key(rng_ref));
            for chunk in chunks_ref {
                let mut coeffs = vec![0u64; n];
                for (local, &c) in chunk.iter().enumerate() {
                    for y in 0..shape.height {
                        for x in 0..shape.width {
                            coeffs[local * s_ch + y * wp + x] =
                                input.at(c, y, x).rem_euclid(t as i64) as u64;
                        }
                    }
                }
                feeder.push(encryptor.encrypt(&Plaintext::from_coeffs(coeffs), rng_ref));
            }
        },
        // Server job (after the barrier): output channel `o`'s ring
        // product summed over every chunk ciphertext.
        |o, inputs: &[Ciphertext]| {
            let mut c_local = OpCounts::default();
            let mut acc: Option<Ciphertext> = None;
            for (ci_idx, chunk) in chunks_ref.iter().enumerate() {
                let mut wcoeffs = vec![0u64; n];
                for (local, &c) in chunk.iter().enumerate() {
                    for u in 0..shape.k_h {
                        for v in 0..shape.k_w {
                            let w = kernel.at(o, c, u, v).rem_euclid(t as i64) as u64;
                            let idx = (chunk_cap - 1 - local) * s_ch
                                + (shape.k_h - 1 - u) * wp
                                + (shape.k_w - 1 - v);
                            wcoeffs[idx] = w;
                        }
                    }
                }
                let prod =
                    evaluator_ref.multiply_plain(&inputs[ci_idx], &Plaintext::from_coeffs(wcoeffs));
                c_local.mult_plain += 1;
                match &mut acc {
                    None => acc = Some(prod),
                    Some(a) => {
                        evaluator_ref.add_inplace(a, &prod);
                        c_local.add += 1;
                    }
                }
            }
            (acc.expect("at least one chunk"), c_local)
        },
        |_, r| accumulated.push(r),
    );
    counts.encrypt += stats.input_items as u64;

    // Masks are drawn here, after the producer's reborrowed rng is
    // released — the same position in the rng sequence as the phased
    // driver's tail.
    let oh = shape.out_height();
    let ow = shape.out_width();
    let mut client_share = Tensor::zeros(shape.c_out, oh, ow);
    let mut server_share = Tensor::zeros(shape.c_out, oh, ow);
    mask_and_extract(
        ctx,
        &evaluator,
        &decryptor,
        accumulated,
        &shape,
        chunk_cap,
        &mut counts,
        &mut client_share,
        &mut server_share,
        rng,
    );

    let result = SecureConvResult {
        client_share,
        server_share,
        counts,
        input_cts: chunks.len(),
        output_cts: shape.c_out,
        modulus: t,
    };
    (result, stats)
}

/// The smallest level Cheetah can use for a shape (the feature map plus
/// kernel halo must fit the ring).
pub fn minimum_level(shape: &ConvShape) -> ParamLevel {
    let s_ch = (shape.height + shape.k_h - 1) * (shape.width + shape.k_w - 1);
    for level in ParamLevel::ALL {
        if s_ch <= level.degree() && level.supports_rotation() {
            // Cheetah needs no rotations, but key-switching material for
            // relinearization-free ops still wants ≥ 2 RNS primes; its
            // published parameters use N = 4096.
            return level;
        }
    }
    ParamLevel::N16384
}

/// Builds the Cheetah execution plan for the simulator.
pub fn plan(shape: &ConvShape, level: ParamLevel, with_relu: bool) -> ConvPlan {
    let geo = geometry(shape, level);
    let out_elements = shape.output_elements() as u64;
    let per_ct = OpCounts {
        // one ring product per output channel per input ciphertext
        mult_plain: shape.c_out as u64,
        ..OpCounts::default()
    };
    let finalize = OpCounts {
        // chunk accumulation + masking + extraction work (charged as
        // cheap add-equivalents, one per 8 output elements)
        add: (geo.input_cts.saturating_sub(1) as u64) * shape.c_out as u64
            + shape.c_out as u64
            + out_elements / 8,
        ..OpCounts::default()
    };
    let params = spot_he::params::EncryptionParams::new(level);
    ConvPlan {
        scheme: "Cheetah (coefficient)",
        level,
        input_cts: geo.input_cts,
        // extracted LWE batches repacked: downstream dominated by
        // extra_downstream_bytes; keep RLWE count modest
        output_cts: geo.output_cts.min(geo.input_cts.max(1) * 4).max(1),
        per_ct_ops: per_ct,
        finalize_ops: finalize,
        dependency: OutputDependency::AllInputs,
        extra_downstream_bytes: out_elements * LWE_BYTES_PER_ELEMENT,
        // client-side LWE decryption/processing per extracted element
        client_extra_s: out_elements as f64 * 1.2e-6,
        assembly_elements: out_elements,
        relu_elements: if with_relu {
            shape.output_elements()
        } else {
            0
        },
        ciphertext_bytes: params.ciphertext_bytes(),
        useful_input_slots: (geo.channels_per_ct * shape.width * shape.height).min(level.degree()),
        // extraction leaves one useful value per LWE ciphertext — the
        // memory-utilization penalty of Fig. 11
        useful_output_slots: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spot_he::params::EncryptionParams;
    use spot_tensor::conv::conv2d;

    fn ctx4096() -> Arc<Context> {
        Context::new(EncryptionParams::new(ParamLevel::N4096))
    }

    #[test]
    fn geometry_counts() {
        let shape = ConvShape::new(8, 8, 16, 8, 3, 1);
        let geo = geometry(&shape, ParamLevel::N4096);
        assert_eq!(geo.channel_coeffs, 100);
        assert_eq!(geo.channels_per_ct, 16);
        assert_eq!(geo.input_cts, 1);
        assert_eq!(geo.output_cts, 8);
    }

    #[test]
    fn cheetah_matches_reference_3x3() {
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(700);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(4, 8, 8, 8, 71);
        let kernel = Kernel::random(4, 4, 3, 3, 4, 72);
        let res = execute(&ctx, &kg, &input, &kernel, 1, &mut rng);
        assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 1));
        // zero rotations — Cheetah's defining property
        assert_eq!(res.counts.rotate, 0);
    }

    #[test]
    fn cheetah_matches_reference_multi_chunk() {
        // 16x16 map → s_ch = 18*18 = 324; chunk = (4096/324+1)/2 = 6;
        // 16 channels → 3 input cts
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(800);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(16, 16, 16, 4, 81);
        let kernel = Kernel::random(2, 16, 3, 3, 3, 82);
        let res = execute(&ctx, &kg, &input, &kernel, 1, &mut rng);
        assert!(res.input_cts > 1);
        assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 1));
    }

    #[test]
    fn cheetah_1x1_and_stride() {
        let ctx = ctx4096();
        let mut rng = StdRng::seed_from_u64(900);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(4, 8, 8, 8, 91);
        let kernel = Kernel::random(4, 4, 1, 1, 4, 92);
        let res = execute(&ctx, &kg, &input, &kernel, 2, &mut rng);
        assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 2));
    }

    #[test]
    fn minimum_levels() {
        assert_eq!(
            minimum_level(&ConvShape::new(56, 56, 64, 64, 3, 1)),
            ParamLevel::N4096
        );
        assert_eq!(
            minimum_level(&ConvShape::new(112, 112, 64, 64, 3, 1)),
            ParamLevel::N16384
        );
    }

    #[test]
    fn plan_has_dependency_and_extraction_cost() {
        let shape = ConvShape::new(28, 28, 128, 128, 3, 1);
        let p = plan(&shape, ParamLevel::N4096, true);
        assert_eq!(p.dependency, OutputDependency::AllInputs);
        assert!(p.extra_downstream_bytes > 1_000_000);
        assert_eq!(p.per_ct_ops.rotate, 0);
    }
}
