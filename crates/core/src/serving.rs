//! Multi-tenant serving layer: N concurrent sessions over one shared
//! model and one bounded worker pool.
//!
//! The single-client stack ([`crate::session`], [`crate::twoparty`])
//! assumes one process, one connection. This module turns it into a
//! serving layer:
//!
//! * [`ModelContext`] — the per-model immutable state every session
//!   shares: the HE context, the model weights, and the
//!   [`SharedKernelCaches`] holding the NTT-domain kernel plaintexts,
//!   so lifted kernels are built **once per model**, not once per
//!   connection. Galois keys are deliberately *not* here: they are
//!   client key material and stay per-session by cryptographic
//!   necessity.
//! * [`WorkerPool`] — a slot semaphore bounding the *extra* executor
//!   threads live across all sessions. Every session always owns its
//!   connection thread (worker 0), so a claim never blocks and
//!   sessions can never deadlock waiting on each other; results stay
//!   bit-identical at any grant because the [`Executor`] reassembles
//!   job order.
//! * [`SpotServer`] — admission control (max sessions, per-session
//!   ciphertext budget via [`ServeOptions::max_batch`]) and the
//!   per-session run loop: install a [`SessionCounters`] sink, derive
//!   the session's mask seed from the accept order via
//!   [`session_seed`], run the two-party server, and on failure send
//!   the typed [`WireMessage::Error`] frame so the client learns *why*
//!   instead of seeing a dead socket. A failing session never touches
//!   its neighbours.
//! * [`TenantGateway`] — cross-session batching. Ciphertexts under
//!   different secret keys cannot share SIMD slots, so coalescing
//!   happens where the key is shared: logical clients of one tenant
//!   submit through a gateway whose [`BatchAssembler`] packs queued
//!   inferences into shared-slot batches before opening one upstream
//!   session per batch.

use crate::error::SpotError;
use crate::executor::Executor;
use crate::inference::TinyCnn;
use crate::patching::PatchMode;
use crate::session::{ExecBackend, SchemeKind, ServeOptions, SharedKernelCaches};
use crate::stream::{BatchAssembler, StreamConfig};
use crate::twoparty::{run_client_batch, run_server_with, ServerReport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_he::context::Context;
use spot_he::keys::KeyGenerator;
use spot_pipeline::device::DeviceProfile;
use spot_proto::transport::TransportStats;
use spot_proto::{error_code, Transport, WireMessage};
use spot_tensor::tensor::Tensor;
use spot_trace::{log_info, log_warn, metrics, Cat, Counter, CounterSnapshot, SessionCounters};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Shared per-model state
// ---------------------------------------------------------------------

/// The immutable state one served model contributes to every session:
/// HE execution parameters, encoded weights, and the shared NTT-domain
/// kernel caches. Hand an `Arc<ModelContext>` to the server and every
/// connection of that model reuses the same lifted kernel plaintexts.
#[derive(Debug)]
pub struct ModelContext {
    id: String,
    ctx: Arc<Context>,
    cnn: TinyCnn,
    caches: SharedKernelCaches,
}

impl ModelContext {
    /// Wraps a model (weights + HE context) for serving.
    pub fn new(id: impl Into<String>, ctx: Arc<Context>, cnn: TinyCnn) -> Arc<Self> {
        Arc::new(Self {
            id: id.into(),
            ctx,
            cnn,
            caches: SharedKernelCaches::new(),
        })
    }

    /// The model id sessions are keyed by.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The HE context every session of this model runs under.
    pub fn context(&self) -> &Arc<Context> {
        &self.ctx
    }

    /// The model weights.
    pub fn cnn(&self) -> &TinyCnn {
        &self.cnn
    }

    /// The model-wide kernel caches.
    pub fn caches(&self) -> &SharedKernelCaches {
        &self.caches
    }
}

// ---------------------------------------------------------------------
// Bounded worker pool
// ---------------------------------------------------------------------

/// A slot semaphore bounding the extra executor threads live across
/// all sessions — the "one bounded pool" the sessions multiplex over,
/// instead of each spawning its own full-width executor.
///
/// A claim **never blocks**: the session's own thread always counts as
/// worker 0, and only the extra threads come from the pool (first
/// come, first served). Under load late sessions degrade to serial
/// execution instead of oversubscribing the host, and because the
/// [`Executor`] orders results deterministically the grant width never
/// changes any session's bytes or shares.
#[derive(Debug)]
pub struct WorkerPool {
    available: Mutex<usize>,
    total: usize,
}

impl WorkerPool {
    /// A pool with `total` grantable extra worker slots (0 = every
    /// session runs serial on its connection thread).
    pub fn new(total: usize) -> Arc<Self> {
        Arc::new(Self {
            available: Mutex::new(total),
            total,
        })
    }

    /// Total extra slots the pool was built with.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Extra slots currently unclaimed.
    pub fn available(&self) -> usize {
        *self.available.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Claims up to `want - 1` extra slots for a session that would
    /// like `want` threads, returning immediately with whatever is
    /// free. The claim releases its slots on drop.
    pub fn claim(self: &Arc<Self>, want: usize) -> WorkerClaim {
        let wanted_extra = want.max(1) - 1;
        let mut avail = self.available.lock().unwrap_or_else(|p| p.into_inner());
        let extra = wanted_extra.min(*avail);
        *avail -= extra;
        drop(avail);
        WorkerClaim {
            pool: Arc::clone(self),
            extra,
        }
    }
}

/// A session's slice of the [`WorkerPool`]; slots return on drop.
#[derive(Debug)]
pub struct WorkerClaim {
    pool: Arc<WorkerPool>,
    extra: usize,
}

impl WorkerClaim {
    /// Threads this session may run: its own plus the granted extras.
    pub fn threads(&self) -> usize {
        1 + self.extra
    }
}

impl Drop for WorkerClaim {
    fn drop(&mut self) {
        let mut avail = self
            .pool
            .available
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        *avail += self.extra;
    }
}

// ---------------------------------------------------------------------
// Serving configuration & admission control
// ---------------------------------------------------------------------

/// Serving-layer policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingConfig {
    /// Concurrent-session cap; connection N+1 is refused with a typed
    /// `SERVER_FULL` wire error instead of queueing or OOMing.
    pub max_sessions: usize,
    /// Per-session ciphertext-memory budget, expressed as the largest
    /// `Setup` batch admitted (see [`ServeOptions::max_batch`]).
    /// `None` = only the layer's own SIMD capacity limits the batch.
    pub max_batch: Option<usize>,
    /// Threads a session asks the [`WorkerPool`] for.
    pub threads_per_session: usize,
    /// Extra worker slots shared by all sessions ([`WorkerPool::new`]).
    pub pool_workers: usize,
    /// Serve with the streaming backend (convolve on arrival) instead
    /// of the phased one.
    pub streaming: bool,
    /// Streaming-queue depth per session (ignored when phased).
    pub channel_capacity: usize,
    /// Base seed; session `i` masks with [`session_seed`]`(base, i)`.
    pub base_seed: u64,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            max_sessions: 16,
            max_batch: None,
            threads_per_session: 1,
            pool_workers: 0,
            streaming: false,
            channel_capacity: 2,
            base_seed: 1312,
        }
    }
}

impl ServingConfig {
    /// Derives the admission budget from a device profile: the batch
    /// cap is the number of `ciphertext_bytes`-sized objects the
    /// profile's remaining memory can hold per session, and the
    /// streaming queue depth is bounded the same way. Thread asks
    /// follow the profile's core count.
    pub fn for_device(profile: &DeviceProfile, ciphertext_bytes: usize) -> Self {
        let budget = profile.ciphertext_capacity(ciphertext_bytes);
        Self {
            max_batch: Some(budget.min(u8::MAX as usize)),
            threads_per_session: profile.threads,
            channel_capacity: budget.clamp(1, 8),
            ..Self::default()
        }
    }
}

/// Monotonic serving totals ([`SpotServer::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServingStats {
    /// Sessions completed successfully.
    pub served: usize,
    /// Connections refused by admission control.
    pub rejected: usize,
    /// Admitted sessions that failed mid-protocol.
    pub failed: usize,
}

#[derive(Debug, Default)]
struct StatsCells {
    served: AtomicUsize,
    rejected: AtomicUsize,
    failed: AtomicUsize,
}

/// The server's live-registry handles, registered once at construction
/// so every series exists (at zero) from the first `/metrics` scrape,
/// before any session has run.
#[derive(Debug)]
struct ServerMetrics {
    active: Arc<metrics::Gauge>,
    served: Arc<metrics::Counter>,
    rejected: Arc<metrics::Counter>,
    failed: Arc<metrics::Counter>,
    session_wall_ns: Arc<metrics::Histogram>,
    kernel_cache_builds: Arc<metrics::Counter>,
    kernel_cache_hits: Arc<metrics::Counter>,
    // Pipeline-overlap view of each streamed session, from the server's
    // own StreamStats: efficiency is worker busy / (busy + idle) in
    // parts-per-million (registry values are integers), idle/blocked in
    // thread-nanoseconds.
    overlap_efficiency_ppm: Arc<metrics::Histogram>,
    overlap_server_idle_ns: Arc<metrics::Histogram>,
    overlap_client_blocked_ns: Arc<metrics::Histogram>,
}

impl ServerMetrics {
    fn new() -> Self {
        let reg = metrics::global();
        Self {
            active: reg.gauge("spot_sessions_active", &[]),
            served: reg.counter("spot_sessions_served", &[]),
            rejected: reg.counter("spot_sessions_rejected", &[]),
            failed: reg.counter("spot_sessions_failed", &[]),
            session_wall_ns: reg.histogram("spot_session_wall_ns", &[]),
            kernel_cache_builds: reg.counter("spot_kernel_cache_builds", &[]),
            kernel_cache_hits: reg.counter("spot_kernel_cache_hits", &[]),
            overlap_efficiency_ppm: reg.histogram("spot_overlap_efficiency_ppm", &[]),
            overlap_server_idle_ns: reg.histogram("spot_overlap_server_idle_ns", &[]),
            overlap_client_blocked_ns: reg.histogram("spot_overlap_client_blocked_ns", &[]),
        }
    }

    /// Folds one finished session's [`CounterSnapshot`] into the
    /// registry: the kernel-cache split gets first-class series, and
    /// every typed trace counter is mirrored as
    /// `spot_server_ops{op="<name>"}` — the documented bridge between
    /// the per-session snapshot and the live `/metrics` view.
    fn absorb_session(&self, counters: &CounterSnapshot) {
        if !metrics::enabled() {
            return;
        }
        self.kernel_cache_builds
            .inc(counters.get(Counter::KernelCacheBuild));
        self.kernel_cache_hits
            .inc(counters.get(Counter::KernelCacheHit));
        let reg = metrics::global();
        for c in Counter::ALL {
            let n = counters.get(c);
            if n > 0 {
                reg.counter("spot_server_ops", &[("op", c.name())]).inc(n);
            }
        }
    }
}

// ---------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------

/// Everything one finished (or refused) session reports back.
#[derive(Debug)]
pub struct SessionReport {
    /// Session id in accept order (`u64::MAX` for a refused
    /// connection, which consumes no id).
    pub id: u64,
    /// The server mask seed the session ran with.
    pub seed: u64,
    /// The two-party outcome, or why the session ended early.
    pub result: Result<ServerReport, SpotError>,
    /// This session's slice of the trace counters (HE ops, wire
    /// bytes/frames, queue stalls), attributed via [`SessionCounters`].
    pub counters: CounterSnapshot,
    /// Transport accounting for the session's connection.
    pub traffic: TransportStats,
    /// Wall-clock from accept to teardown.
    pub wall: Duration,
}

/// One streamed session's pipeline-overlap summary, kept in a bounded
/// ring on the server for the admin `/pipeline` view. Derived entirely
/// from the server's own [`crate::stream::StreamStats`] — no client
/// trace required — so it is available live, per session, the moment
/// the session finishes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineSummary {
    /// Session id (accept order).
    pub id: u64,
    /// End-to-end session wall time, milliseconds.
    pub wall_ms: f64,
    /// Ciphertexts streamed client → server.
    pub input_items: usize,
    /// Results streamed server → client.
    pub output_items: usize,
    /// Worker threads the session ran with.
    pub server_threads: usize,
    /// Worker thread-seconds computing.
    pub server_busy_s: f64,
    /// Worker thread-seconds stalled waiting for ciphertexts — the
    /// paper's "linear computation stall".
    pub server_idle_s: f64,
    /// Producer time blocked on channel backpressure.
    pub client_blocked_s: f64,
    /// Server-side overlap efficiency: busy / (busy + idle), in [0, 1].
    pub efficiency: f64,
}

impl PipelineSummary {
    fn from_report(id: u64, wall: Duration, report: &ServerReport) -> Option<Self> {
        let s = &report.stream;
        if s.input_items == 0 {
            return None; // phased session: no streaming pipeline to attribute
        }
        let busy = s.server_busy_s;
        let idle = s.server_idle_s;
        let efficiency = if busy + idle > 0.0 {
            (busy / (busy + idle)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        Some(Self {
            id,
            wall_ms: wall.as_secs_f64() * 1e3,
            input_items: s.input_items,
            output_items: s.output_items,
            server_threads: s.server_threads,
            server_busy_s: busy,
            server_idle_s: idle,
            client_blocked_s: s.client_blocked_s,
            efficiency,
        })
    }
}

/// Ring capacity for [`SpotServer::pipeline_recent`].
const PIPELINE_RING: usize = 32;

/// A concurrent inference server for one [`ModelContext`].
///
/// [`SpotServer::serve_connection`] is designed to be called from one
/// thread per accepted connection (or per [`spot_proto::MemTransport`]
/// end); the server itself holds only shared state and is `Sync`.
#[derive(Debug)]
pub struct SpotServer {
    model: Arc<ModelContext>,
    config: ServingConfig,
    pool: Arc<WorkerPool>,
    active: AtomicUsize,
    next_id: AtomicU64,
    stats: StatsCells,
    metrics: ServerMetrics,
    // Admitted, still-running sessions: id -> admission instant. Feeds
    // the admin endpoint's `/sessions` view.
    in_flight: Mutex<BTreeMap<u64, Instant>>,
    // Last PIPELINE_RING streamed sessions' overlap summaries, newest
    // last. Feeds the admin endpoint's `/pipeline` view.
    pipeline: Mutex<std::collections::VecDeque<PipelineSummary>>,
}

impl SpotServer {
    /// A server for `model` under the given policy.
    pub fn new(model: Arc<ModelContext>, config: ServingConfig) -> Self {
        Self {
            model,
            config,
            pool: WorkerPool::new(config.pool_workers),
            active: AtomicUsize::new(0),
            next_id: AtomicU64::new(0),
            stats: StatsCells::default(),
            metrics: ServerMetrics::new(),
            in_flight: Mutex::new(BTreeMap::new()),
            pipeline: Mutex::new(std::collections::VecDeque::new()),
        }
    }

    /// The served model.
    pub fn model(&self) -> &Arc<ModelContext> {
        &self.model
    }

    /// The serving policy.
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// Sessions currently admitted and running.
    pub fn active_sessions(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// The shared worker pool (admin introspection).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Whether the server would currently degrade new work: sessions at
    /// the admission cap (the next connection is refused), or a
    /// non-empty worker pool fully claimed (new sessions run serial).
    /// This is the `/healthz` "overloaded" predicate.
    pub fn overloaded(&self) -> bool {
        self.active_sessions() >= self.config.max_sessions
            || (self.pool.total() > 0 && self.pool.available() == 0)
    }

    /// `(id, time since admission)` for every in-flight session, in id
    /// order (the admin endpoint's `/sessions` view).
    pub fn session_info(&self) -> Vec<(u64, Duration)> {
        let in_flight = self.in_flight.lock().unwrap_or_else(|p| p.into_inner());
        in_flight
            .iter()
            .map(|(&id, t0)| (id, t0.elapsed()))
            .collect()
    }

    /// The overlap summaries of the most recent streamed sessions
    /// (oldest first, at most 32) — the admin `/pipeline` view. Phased
    /// sessions stream nothing and are not recorded.
    pub fn pipeline_recent(&self) -> Vec<PipelineSummary> {
        let ring = self.pipeline.lock().unwrap_or_else(|p| p.into_inner());
        ring.iter().copied().collect()
    }

    /// Monotonic serving totals so far.
    pub fn stats(&self) -> ServingStats {
        ServingStats {
            served: self.stats.served.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            failed: self.stats.failed.load(Ordering::Relaxed),
        }
    }

    /// Runs one client connection to completion on the calling thread.
    ///
    /// Admission first: at the session cap the connection is refused
    /// with a typed `SERVER_FULL` error frame and no session id is
    /// consumed. Admitted sessions get an id in admission order, the
    /// mask seed [`session_seed`]`(base_seed, id)`, a per-session
    /// counter sink, and a worker-pool claim; a protocol failure sends
    /// the typed error frame back (best effort) and is contained to
    /// this session.
    pub fn serve_connection(&self, transport: &dyn Transport) -> SessionReport {
        let t0 = Instant::now();
        // Reserve a slot or refuse — CAS loop so two racing accepts
        // can't both squeeze past the cap.
        let mut cur = self.active.load(Ordering::Acquire);
        loop {
            if cur >= self.config.max_sessions {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                self.metrics.rejected.inc(1);
                let detail = format!("at capacity ({} sessions)", self.config.max_sessions);
                log_warn!("serving", "rejecting connection: {detail}");
                let _ = transport.send(&WireMessage::Error {
                    code: error_code::SERVER_FULL,
                    detail: detail.clone(),
                });
                transport.close_tx();
                return SessionReport {
                    id: u64::MAX,
                    seed: 0,
                    result: Err(SpotError::Rejected {
                        code: error_code::SERVER_FULL,
                        detail,
                    }),
                    counters: CounterSnapshot::default(),
                    traffic: transport.stats(),
                    wall: t0.elapsed(),
                };
            }
            match self.active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let seed = session_seed(self.config.base_seed, id);
        self.metrics.active.add(1);
        self.in_flight
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(id, t0);

        // Attribute every counter this thread (and its pool workers)
        // touches to this session.
        let sink = SessionCounters::new(id);
        let prev_sink = spot_trace::set_session_counters(Some(Arc::clone(&sink)));
        spot_trace::set_thread_label(format!("session-{id}"));
        let span = spot_trace::span(Cat::Server, "session").arg("session", id);

        let claim = self.pool.claim(self.config.threads_per_session);
        let ex = Executor::new(claim.threads());
        let backend = if self.config.streaming {
            ExecBackend::Streaming(StreamConfig::new(ex, self.config.channel_capacity))
        } else {
            ExecBackend::Phased(ex)
        };
        let opts = ServeOptions {
            shared: Some(self.model.caches()),
            max_batch: self.config.max_batch,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let result = run_server_with(
            self.model.context(),
            transport,
            self.model.cnn(),
            &backend,
            opts,
            &mut rng,
        );
        drop(claim);
        drop(span);

        match &result {
            Ok(_) => {
                self.stats.served.fetch_add(1, Ordering::Relaxed);
                self.metrics.served.inc(1);
                log_info!("serving", "session {id} done");
            }
            Err(e) => {
                // Tell the client why before hanging up (best effort —
                // the transport may already be gone).
                let (code, detail) = wire_error_for(e);
                let _ = transport.send(&WireMessage::Error { code, detail });
                transport.close_tx();
                self.stats.failed.fetch_add(1, Ordering::Relaxed);
                self.metrics.failed.inc(1);
                log_warn!("serving", "session {id} failed: {e}");
            }
        }
        spot_trace::set_session_counters(prev_sink);
        self.in_flight
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&id);
        self.metrics.active.sub(1);
        self.active.fetch_sub(1, Ordering::AcqRel);
        let counters = sink.snapshot();
        self.metrics.absorb_session(&counters);
        let wall = t0.elapsed();
        self.metrics.session_wall_ns.observe(wall.as_nanos() as u64);
        if let Ok(report) = &result {
            if let Some(summary) = PipelineSummary::from_report(id, wall, report) {
                self.metrics
                    .overlap_efficiency_ppm
                    .observe((summary.efficiency * 1e6) as u64);
                self.metrics
                    .overlap_server_idle_ns
                    .observe((summary.server_idle_s * 1e9) as u64);
                self.metrics
                    .overlap_client_blocked_ns
                    .observe((summary.client_blocked_s * 1e9) as u64);
                let mut ring = self.pipeline.lock().unwrap_or_else(|p| p.into_inner());
                if ring.len() == PIPELINE_RING {
                    ring.pop_front();
                }
                ring.push_back(summary);
            }
        }
        SessionReport {
            id,
            seed,
            result,
            counters,
            traffic: transport.stats(),
            wall,
        }
    }
}

/// Maps a session failure to the typed wire error sent to the client.
fn wire_error_for(e: &SpotError) -> (u16, String) {
    match e {
        SpotError::Rejected { code, detail } => (*code, detail.clone()),
        other => (error_code::PROTOCOL, other.to_string()),
    }
}

/// The deterministic per-session mask seed: a splitmix64-style mix of
/// the server's base seed and the session id, so any session can be
/// replayed solo (same seed, same masks, bit-identical shares) without
/// the sessions that ran beside it.
pub fn session_seed(base: u64, session_id: u64) -> u64 {
    let mut z = base ^ session_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// Cross-session batching: the tenant gateway
// ---------------------------------------------------------------------

/// One queued inference's result cell: filled by the gateway
/// dispatcher, awaited by the submitting logical client.
#[derive(Debug, Default)]
pub struct RequestSlot {
    cell: Mutex<Option<Result<Tensor, SpotError>>>,
    done: Condvar,
}

impl RequestSlot {
    fn complete(&self, result: Result<Tensor, SpotError>) {
        let mut cell = self.cell.lock().unwrap_or_else(|p| p.into_inner());
        *cell = Some(result);
        self.done.notify_all();
    }

    /// Blocks until the inference this slot tracks has finished.
    pub fn wait(&self) -> Result<Tensor, SpotError> {
        let mut cell = self.cell.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = cell.take() {
                return result;
            }
            cell = self.done.wait(cell).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// Coalesces queued inferences from many logical clients of one
/// tenant into shared SIMD-slot batches.
///
/// SIMD-slot sharing requires one secret key per ciphertext, so
/// *cross-client* batching is only sound where clients share a key —
/// a tenant gateway (an app backend fanning in its users' requests).
/// Requests [`TenantGateway::submit`]ted here queue in a
/// [`BatchAssembler`] (full batch releases immediately, a partial one
/// at the latency cap) and a dispatcher thread drives each batch
/// through one upstream session, demuxing per-image results back to
/// the [`RequestSlot`]s in submission order.
#[derive(Debug)]
pub struct TenantGateway {
    asm: BatchAssembler<(Tensor, Arc<RequestSlot>)>,
}

impl TenantGateway {
    /// A gateway batching up to `capacity` requests, holding a partial
    /// batch at most `latency_cap` past its oldest request.
    pub fn new(capacity: usize, latency_cap: Duration) -> Self {
        Self {
            asm: BatchAssembler::new(capacity, latency_cap),
        }
    }

    /// Queues one inference; the returned slot resolves when its batch
    /// has been served.
    pub fn submit(&self, input: Tensor) -> Result<Arc<RequestSlot>, SpotError> {
        let slot = Arc::new(RequestSlot::default());
        self.asm.submit((input, Arc::clone(&slot)))?;
        Ok(slot)
    }

    /// Requests queued but not yet dispatched.
    pub fn queued(&self) -> usize {
        self.asm.queued()
    }

    /// Stops accepting requests; the dispatcher drains what's queued
    /// and returns.
    pub fn close(&self) {
        self.asm.close();
    }

    /// The gateway's dispatcher loop: drains batches until the gateway
    /// is closed, opening one upstream connection per batch via
    /// `connect` and running the tenant's client session over it.
    /// Returns the number of batches dispatched. A failed batch fails
    /// only its own slots; later batches still run.
    #[allow(clippy::too_many_arguments)]
    pub fn run_dispatcher<F>(
        &self,
        ctx: &Arc<Context>,
        keygen: &KeyGenerator,
        cnn: &TinyCnn,
        scheme: SchemeKind,
        patch: (usize, usize),
        mode: PatchMode,
        mut connect: F,
        rng: &mut StdRng,
    ) -> Result<usize, SpotError>
    where
        F: FnMut() -> Result<Box<dyn Transport>, SpotError>,
    {
        let mut batches = 0usize;
        while let Some(batch) = self.asm.next_batch()? {
            batches += 1;
            let (inputs, slots): (Vec<Tensor>, Vec<Arc<RequestSlot>>) = batch.into_iter().unzip();
            let outcome = connect().and_then(|transport| {
                run_client_batch(
                    ctx,
                    keygen,
                    transport.as_ref(),
                    &inputs,
                    cnn,
                    scheme,
                    patch,
                    mode,
                    rng,
                )
            });
            match outcome {
                Ok(outputs) => {
                    for (slot, out) in slots.iter().zip(outputs) {
                        slot.complete(Ok(out));
                    }
                }
                Err(e) => {
                    for slot in &slots {
                        slot.complete(Err(e.clone()));
                    }
                }
            }
        }
        Ok(batches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_pool_grants_and_releases() {
        let pool = WorkerPool::new(3);
        let a = pool.claim(3); // wants 3 threads -> 2 extra
        assert_eq!(a.threads(), 3);
        assert_eq!(pool.available(), 1);
        let b = pool.claim(4); // only 1 extra left
        assert_eq!(b.threads(), 2);
        assert_eq!(pool.available(), 0);
        let c = pool.claim(2); // pool dry -> serial, never blocks
        assert_eq!(c.threads(), 1);
        drop(a);
        assert_eq!(pool.available(), 2);
        drop(b);
        drop(c);
        assert_eq!(pool.available(), 3);
    }

    #[test]
    fn session_seed_is_stable_and_spreads() {
        assert_eq!(session_seed(1312, 0), session_seed(1312, 0));
        let seeds: std::collections::HashSet<u64> =
            (0..64).map(|i| session_seed(1312, i)).collect();
        assert_eq!(seeds.len(), 64, "session seeds collide");
        assert_ne!(session_seed(1312, 1), session_seed(99, 1));
    }

    #[test]
    fn request_slot_resolves_across_threads() {
        let slot = Arc::new(RequestSlot::default());
        let s = Arc::clone(&slot);
        let t = std::thread::spawn(move || s.wait());
        std::thread::sleep(Duration::from_millis(10));
        slot.complete(Ok(Tensor::from_vec(1, 1, 1, vec![7])));
        let got = t.join().unwrap().unwrap();
        assert_eq!(got.data(), &[7]);
    }

    #[test]
    fn pipeline_summary_attributes_stall() {
        let mut report = ServerReport {
            counts: Default::default(),
            stream: crate::stream::StreamStats::default(),
            input_cts: 4,
            output_cts: 4,
            batch: 1,
        };
        // Phased run: nothing streamed, nothing to attribute.
        assert!(PipelineSummary::from_report(0, Duration::from_millis(5), &report).is_none());
        report.stream.input_items = 4;
        report.stream.output_items = 4;
        report.stream.server_threads = 2;
        report.stream.server_busy_s = 3.0;
        report.stream.server_idle_s = 1.0;
        report.stream.client_blocked_s = 0.25;
        let s = PipelineSummary::from_report(7, Duration::from_millis(5), &report).unwrap();
        assert_eq!(s.id, 7);
        assert_eq!(s.input_items, 4);
        assert!((s.efficiency - 0.75).abs() < 1e-12);
        assert!((s.client_blocked_s - 0.25).abs() < 1e-12);
        assert!((s.wall_ms - 5.0).abs() < 0.5);
    }

    #[test]
    fn device_profile_budget_feeds_admission() {
        let profile = DeviceProfile::iot_k27();
        let cfg = ServingConfig::for_device(&profile, 1 << 20);
        let budget = profile.ciphertext_capacity(1 << 20);
        assert_eq!(cfg.max_batch, Some(budget.min(255)));
        assert!(cfg.channel_capacity >= 1);
    }
}
