//! The generic lane-MIMO homomorphic convolution engine.
//!
//! Both the channel-wise baseline (CrypTFlow2-style SISO/MIMO, Sec. III-A
//! of the paper) and SPOT's structure-patching convolution reduce to the
//! same primitive: given one packed ciphertext whose lanes hold channel
//! blocks in a [`LaneLayout`], compute for each *output group* the sum
//! over kernel taps and block diagonals
//!
//! ```text
//! out_g = Σ_d rotate_blocks( Σ_tap rotate(ct, tap) ⊙ P_{g,d,tap}, d )
//! ```
//!
//! with the kernel plaintexts `P` carrying the tap weights *and* the
//! boundary masks (zeros wherever a rotation would pull a value from a
//! neighbouring piece, channel block, or padding slot). The engine also
//! handles the cross-lane products channel-wise packing needs (one
//! column-swap per input ciphertext) and the block-folding used when
//! `C_o < C_i` (Fig. 7 (b)).

use crate::layout::LaneLayout;
use parking_lot::RwLock;
use spot_he::ciphertext::Ciphertext;
use spot_he::context::Context;
use spot_he::encoding::{galois_elt_column_swap, galois_elt_from_step, BatchEncoder};
use spot_he::evaluator::{Evaluator, OpCounts};
use spot_he::keys::{GaloisKeys, KeyGenerator};
use spot_he::poly::Poly;
use spot_tensor::tensor::Kernel;
use std::collections::HashMap;
use std::sync::Arc;

/// Channel assignment for one ciphertext: `map[lane][block]` is the
/// input-channel index held by that block (`None` = padding).
pub type ChannelMap = Vec<Vec<Option<usize>>>;

/// One output group: `out_ch[lane][block]` is the output channel the
/// block of the result ciphertext should hold (`None` = unused).
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// Output-channel assignment per lane and block.
    pub out_ch: Vec<Vec<Option<usize>>>,
}

/// Everything [`HeConvEngine::conv_one_ct`] needs to describe one
/// layer's convolution besides the ciphertext itself. Borrowing the
/// per-layer structures keeps the per-ciphertext call cheap and lets
/// the same request be shared across executor worker threads.
#[derive(Debug, Clone, Copy)]
pub struct ConvRequest<'a> {
    /// The lane layout the ciphertext was packed with.
    pub layout: &'a LaneLayout,
    /// Channel maps per ciphertext version. One entry means both lanes
    /// hold the same channels (patch packing); two entries trigger the
    /// column-swapped cross-lane products (channel-wise).
    pub in_maps: &'a [ChannelMap],
    /// The output groups, one result ciphertext each.
    pub groups: &'a [GroupSpec],
    /// Number of block diagonals (`= blocks` when `C_o ≥ C_i`;
    /// `= C_o_pad` with folding when `C_o < C_i`).
    pub diagonals: usize,
    /// Block-shift amounts folded into the result by rotate-and-add
    /// after diagonal alignment (empty when `C_o ≥ C_i`).
    pub fold_steps: &'a [usize],
    /// The convolution kernel.
    pub kernel: &'a Kernel,
    /// Discriminates kernel-plaintext cache entries when one engine
    /// serves several distinct `(in_maps, groups, kernel)` configurations
    /// — channel-wise packing uses the input-ciphertext index here.
    /// Requests with equal tags must be otherwise identical.
    pub cache_tag: usize,
}

/// Cache key for one lifted kernel plaintext:
/// `(cache_tag, version, group, diagonal, tap)`. The baby-step
/// pre-rotation is a function of the diagonal under a fixed BSGS split,
/// so it needs no key component of its own.
type KernelKey = (usize, usize, usize, usize, usize);

/// A shareable NTT-domain kernel plaintext cache. Cache entries are a
/// function of the layer geometry and the *model's* kernel weights only
/// — never of any client key material — so a serving process hosting
/// many concurrent sessions of the same model hands each session's
/// engine a clone of one per-model `KernelCache` and pays the
/// encode+lift cost once per model instead of once per connection.
/// Clones share storage (`Arc`); [`KernelCache::default`] is empty.
#[derive(Debug, Clone, Default)]
pub struct KernelCache {
    entries: Arc<RwLock<HashMap<KernelKey, Option<Arc<Poly>>>>>,
}

impl KernelCache {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of kernel plaintext combinations cached so far (including
    /// recorded all-zero combinations).
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Drops every cached entry.
    pub fn clear(&self) {
        self.entries.write().clear();
    }

    /// Looks up `key`, building and inserting it on a miss. The build
    /// runs under the write lock (double-checked after acquiring it),
    /// so concurrent sessions racing on a cold entry build it exactly
    /// once — the property the per-model cache-miss counter in
    /// `BENCH_serving.json` certifies.
    fn get_or_build(
        &self,
        key: KernelKey,
        build: impl FnOnce() -> Option<Arc<Poly>>,
    ) -> Option<Arc<Poly>> {
        if let Some(hit) = self.entries.read().get(&key) {
            spot_trace::count(spot_trace::Counter::KernelCacheHit, 1);
            return hit.clone();
        }
        let mut entries = self.entries.write();
        if let Some(hit) = entries.get(&key) {
            spot_trace::count(spot_trace::Counter::KernelCacheHit, 1);
            return hit.clone();
        }
        spot_trace::count(spot_trace::Counter::KernelCacheBuild, 1);
        let entry = build();
        entries.insert(key, entry.clone());
        entry
    }
}

/// The engine: HE context plus the Galois keys a convolution needs.
#[derive(Debug)]
pub struct HeConvEngine {
    ctx: Arc<Context>,
    encoder: BatchEncoder,
    evaluator: Evaluator,
    galois: Arc<GaloisKeys>,
    /// Whether the baby-step/giant-step alignment optimization is used
    /// (SPOT yes; the CrypTFlow2 baseline follows its published
    /// output-rotation algorithm without it).
    use_bsgs: bool,
    /// Lazily populated NTT-domain kernel plaintexts: once a
    /// `(tag, version, group, diagonal, tap)` combination has been
    /// encoded and lifted, every later ciphertext through the same layer
    /// multiplies against the cached `Poly` with zero encode/NTT work.
    /// `None` records "this combination is all-zero, skip the multiply".
    /// May be shared across engines (and sessions) of the same model.
    kernel_cache: KernelCache,
    cache_enabled: bool,
}

/// The kernel taps of a `k_h × k_w` window with "same" padding
/// convention: offsets `(dy, dx)` and their kernel indices.
pub fn kernel_taps(k_h: usize, k_w: usize) -> Vec<(i64, i64, usize, usize)> {
    let ph = (k_h - 1) / 2;
    let pw = (k_w - 1) / 2;
    let mut taps = Vec::with_capacity(k_h * k_w);
    for kh in 0..k_h {
        for kw in 0..k_w {
            taps.push((kh as i64 - ph as i64, kw as i64 - pw as i64, kh, kw));
        }
    }
    taps
}

/// Chooses the baby-step/giant-step split for the diagonal alignment:
/// minimizes total rotations
/// `versions·(kk·b − 1) + groups·(D/b − 1)` over power-of-two `b | D`.
///
/// Returns `(baby, giants)` with `baby · giants = D`.
pub fn bsgs_split(diagonals: usize, groups: usize, versions: usize, kk: usize) -> (usize, usize) {
    debug_assert!(diagonals.is_power_of_two());
    let mut best = (1usize, usize::MAX);
    let mut b = 1usize;
    while b <= diagonals {
        let cost =
            versions * (kk * b).saturating_sub(1) + groups * (diagonals / b).saturating_sub(1);
        if cost < best.1 {
            best = (b, cost);
        }
        b *= 2;
    }
    (best.0, diagonals / best.0)
}

/// The sorted, deduplicated Galois elements a convolution over the
/// given layout needs: one per non-zero kernel-tap row rotation, the
/// baby and giant block-alignment steps (under the same BSGS split
/// [`HeConvEngine::conv_one_ct`] will choose), the fold steps, and
/// optionally the column swap. Letting both parties compute this from
/// the layer geometry is what allows the client to generate exactly the
/// keys the server will use.
#[allow(clippy::too_many_arguments)]
pub fn required_elements(
    layout: &LaneLayout,
    k_h: usize,
    k_w: usize,
    diagonals: usize,
    groups: usize,
    fold_steps: &[usize],
    column_swap: bool,
    use_bsgs: bool,
) -> Vec<usize> {
    let n = 2 * layout.lane_size;
    let versions = if column_swap { 2 } else { 1 };
    let (baby, giants) = if use_bsgs {
        bsgs_split(diagonals, groups.max(1), versions, k_h * k_w)
    } else {
        (1, diagonals)
    };
    let mut elements = Vec::new();
    for (dy, dx, _, _) in kernel_taps(k_h, k_w) {
        let step = dy * layout.piece_w as i64 + dx;
        if step != 0 {
            elements.push(galois_elt_from_step(step, n));
        }
    }
    for b in 1..baby {
        elements.push(galois_elt_from_step(layout.block_rotation_step(b), n));
    }
    for j in 1..giants {
        elements.push(galois_elt_from_step(
            layout.block_rotation_step(j * baby),
            n,
        ));
    }
    for &f in fold_steps {
        elements.push(galois_elt_from_step(layout.block_rotation_step(f), n));
    }
    if column_swap {
        elements.push(galois_elt_column_swap(n));
    }
    elements.sort_unstable();
    elements.dedup();
    elements
}

impl HeConvEngine {
    /// Builds an engine with Galois keys covering the rotations needed
    /// for the given layout, kernel window, diagonal count, fold steps,
    /// and optionally the column swap.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: rand::Rng>(
        ctx: &Arc<Context>,
        keygen: &KeyGenerator,
        layout: &LaneLayout,
        k_h: usize,
        k_w: usize,
        diagonals: usize,
        groups: usize,
        fold_steps: &[usize],
        column_swap: bool,
        use_bsgs: bool,
        rng: &mut R,
    ) -> Self {
        let elements = required_elements(
            layout,
            k_h,
            k_w,
            diagonals,
            groups,
            fold_steps,
            column_swap,
            use_bsgs,
        );
        let galois = Arc::new(keygen.galois_keys(&elements, rng));
        Self::with_keys(ctx, galois, use_bsgs)
    }

    /// Builds an engine around externally supplied Galois keys — the
    /// server session path, where the keys arrive over the wire and must
    /// cover at least the elements [`required_elements`] reports for the
    /// layer the engine will run.
    pub fn with_keys(ctx: &Arc<Context>, galois: Arc<GaloisKeys>, use_bsgs: bool) -> Self {
        Self::with_shared_cache(ctx, galois, use_bsgs, KernelCache::new())
    }

    /// Like [`HeConvEngine::with_keys`], but backed by an externally
    /// owned [`KernelCache`]. The serving layer passes one cache per
    /// model so every session's engine shares the already-lifted kernel
    /// plaintexts; the Galois keys stay per-engine because they are
    /// client key material.
    pub fn with_shared_cache(
        ctx: &Arc<Context>,
        galois: Arc<GaloisKeys>,
        use_bsgs: bool,
        cache: KernelCache,
    ) -> Self {
        Self {
            ctx: Arc::clone(ctx),
            encoder: BatchEncoder::new(ctx),
            evaluator: Evaluator::new(ctx),
            galois,
            use_bsgs,
            kernel_cache: cache,
            cache_enabled: true,
        }
    }

    /// Enables or disables the NTT-domain kernel plaintext cache
    /// (enabled by default; benchmarks use the disabled path to measure
    /// the per-ciphertext encoding cost it removes). Disabling clears
    /// any cached entries — including those of other engines sharing
    /// the same [`KernelCache`].
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
        if !enabled {
            self.kernel_cache.clear();
        }
    }

    /// Number of kernel plaintext combinations cached so far (including
    /// recorded all-zero combinations).
    pub fn kernel_cache_len(&self) -> usize {
        self.kernel_cache.len()
    }

    /// The HE context.
    pub fn context(&self) -> &Arc<Context> {
        &self.ctx
    }

    /// The batch encoder.
    pub fn encoder(&self) -> &BatchEncoder {
        &self.encoder
    }

    /// The evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// The Galois keys held by the engine.
    pub fn galois_keys(&self) -> &GaloisKeys {
        &self.galois
    }

    /// Builds the kernel plaintext for `(group, diagonal, tap)` under the
    /// given channel maps. `in_maps` has one entry per ciphertext version
    /// (the original and, for channel-wise packing, the column-swapped
    /// copy); version `v`'s plaintext uses `in_maps[v]`.
    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::needless_range_loop)]
    fn kernel_plaintext(
        &self,
        layout: &LaneLayout,
        in_map: &ChannelMap,
        group: &GroupSpec,
        d: usize,
        pre_rot: usize,
        dy: i64,
        dx: i64,
        kh: usize,
        kw: usize,
        kernel: &Kernel,
    ) -> Option<spot_he::encoding::Plaintext> {
        let t = self.ctx.params().plain_modulus();
        let r = layout.lane_size;
        let mut slots = vec![0u64; 2 * r];
        let mut any = false;
        for lane in 0..2 {
            for b in 0..layout.blocks {
                let Some(in_c) = in_map[lane][b] else {
                    continue;
                };
                if in_c >= kernel.in_channels() {
                    continue;
                }
                let out_block = (b + layout.blocks - d) % layout.blocks;
                let Some(out_c) = group.out_ch[lane][out_block] else {
                    continue;
                };
                if out_c >= kernel.out_channels() {
                    continue;
                }
                let w = kernel.at(out_c, in_c, kh, kw);
                if w == 0 {
                    continue;
                }
                let wf = w.rem_euclid(t as i64) as u64;
                for y in 0..layout.piece_h {
                    let ty = y as i64 + dy;
                    if ty < 0 || ty >= layout.piece_h as i64 {
                        continue;
                    }
                    for x in 0..layout.piece_w {
                        let tx = x as i64 + dx;
                        if tx < 0 || tx >= layout.piece_w as i64 {
                            continue;
                        }
                        for g in 0..layout.groups {
                            let pos = (layout.slot(b, g, y, x) + r - pre_rot % r) % r;
                            slots[lane * r + pos] = wf;
                            any = true;
                        }
                    }
                }
            }
        }
        if any {
            Some(self.encoder.encode(&slots))
        } else {
            None
        }
    }

    /// Returns the lifted (NTT-domain) kernel plaintext for one
    /// `(version, group, diagonal, tap)` combination, consulting the
    /// cache when enabled. `None` means the combination is all-zero and
    /// the multiply can be skipped entirely.
    #[allow(clippy::too_many_arguments)]
    fn lifted_kernel(
        &self,
        req: &ConvRequest<'_>,
        vi: usize,
        gi: usize,
        d: usize,
        pre: usize,
        ti: usize,
        dy: i64,
        dx: i64,
        kh: usize,
        kw: usize,
    ) -> Option<Arc<Poly>> {
        let build = || {
            self.kernel_plaintext(
                req.layout,
                &req.in_maps[vi],
                &req.groups[gi],
                d,
                pre,
                dy,
                dx,
                kh,
                kw,
                req.kernel,
            )
            .map(|pt| Arc::new(pt.lift(&self.ctx)))
        };
        if !self.cache_enabled {
            return build();
        }
        let key: KernelKey = (req.cache_tag, vi, gi, d, ti);
        self.kernel_cache.get_or_build(key, build)
    }

    /// Runs the lane-MIMO convolution of one input ciphertext (see
    /// [`ConvRequest`] for the per-layer structure description).
    ///
    /// Returns one ciphertext per group. HE operations are recorded in
    /// `counts`.
    #[allow(clippy::needless_range_loop)]
    pub fn conv_one_ct(
        &self,
        ct: &Ciphertext,
        req: &ConvRequest<'_>,
        counts: &mut OpCounts,
    ) -> Vec<Ciphertext> {
        let (layout, in_maps, groups) = (req.layout, req.in_maps, req.groups);
        let (diagonals, fold_steps) = (req.diagonals, req.fold_steps);
        assert!(!in_maps.is_empty() && in_maps.len() <= 2);
        assert!(diagonals >= 1 && layout.blocks % diagonals == 0);
        let ev = &self.evaluator;
        let taps = kernel_taps(req.kernel.k_h(), req.kernel.k_w());
        let (baby, giants) = if self.use_bsgs {
            bsgs_split(diagonals, groups.len(), in_maps.len(), taps.len())
        } else {
            (1, diagonals)
        };

        // Ciphertext versions: original and (for cross-lane) column swap.
        let mut versions = vec![ct.clone()];
        if in_maps.len() == 2 {
            versions.push(ev.rotate_columns(ct, &self.galois));
            counts.rotate += 1;
        }

        // Pre-rotate every version by every tap and baby step (shared
        // across output groups and giant steps — the BSGS trade).
        let mut rotated: Vec<Vec<Vec<Ciphertext>>> = Vec::with_capacity(versions.len());
        for v in &versions {
            let mut per_tap = Vec::with_capacity(taps.len());
            for &(dy, dx, _, _) in &taps {
                let step = dy * layout.piece_w as i64 + dx;
                let base = if step == 0 {
                    v.clone()
                } else {
                    counts.rotate += 1;
                    ev.rotate_rows(v, step, &self.galois)
                };
                let mut per_baby = Vec::with_capacity(baby);
                for b in 0..baby {
                    if b == 0 {
                        per_baby.push(base.clone());
                    } else {
                        counts.rotate += 1;
                        per_baby.push(ev.rotate_rows(
                            &base,
                            layout.block_rotation_step(b),
                            &self.galois,
                        ));
                    }
                }
                per_tap.push(per_baby);
            }
            rotated.push(per_tap);
        }

        let mut outputs = Vec::with_capacity(groups.len());
        for (gi, _group) in groups.iter().enumerate() {
            let mut acc_total: Option<Ciphertext> = None;
            for j in 0..giants {
                let mut acc_j: Option<Ciphertext> = None;
                for b in 0..baby {
                    let d = j * baby + b;
                    if d >= diagonals {
                        break;
                    }
                    for vi in 0..in_maps.len() {
                        for (ti, &(dy, dx, kh, kw)) in taps.iter().enumerate() {
                            // plaintext for diagonal d, pre-rotated left
                            // by b blocks so the single giant rotation
                            // completes the alignment
                            let pre = b * layout.groups * layout.piece_slots;
                            let Some(lifted) =
                                self.lifted_kernel(req, vi, gi, d, pre, ti, dy, dx, kh, kw)
                            else {
                                continue;
                            };
                            let prod = ev.multiply_lifted(&rotated[vi][ti][b], &lifted);
                            counts.mult_plain += 1;
                            match &mut acc_j {
                                None => acc_j = Some(prod),
                                Some(a) => {
                                    ev.add_inplace(a, &prod);
                                    counts.add += 1;
                                }
                            }
                        }
                    }
                }
                let Some(mut acc_j) = acc_j else { continue };
                if j > 0 {
                    acc_j =
                        ev.rotate_rows(&acc_j, layout.block_rotation_step(j * baby), &self.galois);
                    counts.rotate += 1;
                }
                match &mut acc_total {
                    None => acc_total = Some(acc_j),
                    Some(a) => {
                        ev.add_inplace(a, &acc_j);
                        counts.add += 1;
                    }
                }
            }
            let mut out = acc_total.unwrap_or_else(|| {
                // All-zero kernel for this group: a zero ciphertext is a
                // multiply of the input by an all-zero plaintext.
                let zero = self.encoder.encode(&vec![0u64; self.ctx.degree()]);
                counts.mult_plain += 1;
                ev.multiply_plain(ct, &zero)
            });
            // Fold partial sums across block strides (C_o < C_i case).
            for &f in fold_steps {
                let rot = ev.rotate_rows(&out, layout.block_rotation_step(f), &self.galois);
                counts.rotate += 1;
                ev.add_inplace(&mut out, &rot);
                counts.add += 1;
            }
            outputs.push(out);
        }
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taps_centered() {
        let taps = kernel_taps(3, 3);
        assert_eq!(taps.len(), 9);
        assert!(taps.contains(&(0, 0, 1, 1)));
        assert!(taps.contains(&(-1, -1, 0, 0)));
        assert!(taps.contains(&(1, 1, 2, 2)));
        let taps1 = kernel_taps(1, 1);
        assert_eq!(taps1, vec![(0, 0, 0, 0)]);
    }

    #[test]
    fn bsgs_split_is_optimal_and_exact() {
        for d in [1usize, 2, 8, 64, 256] {
            for groups in [1usize, 2, 4, 16] {
                for versions in [1usize, 2] {
                    let (baby, giants) = bsgs_split(d, groups, versions, 9);
                    assert_eq!(baby * giants, d, "split must cover all diagonals");
                    // cost of the chosen split is minimal over all pow2 splits
                    let cost = |b: usize| {
                        versions * (9 * b).saturating_sub(1) + groups * (d / b).saturating_sub(1)
                    };
                    let chosen = cost(baby);
                    let mut b = 1;
                    while b <= d {
                        assert!(chosen <= cost(b), "d={d} g={groups}: {baby} vs {b}");
                        b *= 2;
                    }
                }
            }
        }
    }

    #[test]
    fn bsgs_degenerates_for_single_diagonal() {
        assert_eq!(bsgs_split(1, 8, 2, 9), (1, 1));
    }

    #[test]
    fn taps_even_kernel() {
        // 2x2 kernel: padding (k-1)/2 = 0, offsets 0..2
        let taps = kernel_taps(2, 2);
        assert_eq!(taps.len(), 4);
        assert!(taps.contains(&(0, 0, 0, 0)));
        assert!(taps.contains(&(1, 1, 1, 1)));
    }
}
