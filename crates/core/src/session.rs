//! Client/server session state machines over the typed wire protocol.
//!
//! This module splits every secure-convolution scheme into two halves
//! that talk *only* through a [`Transport`]:
//!
//! * [`ClientConv`] — the tiny client: packs and encrypts the input,
//!   streams ciphertexts up, then decrypts the masked results into its
//!   additive share ([`ClientConv::send_all`] /
//!   [`ClientConv::absorb_all`]).
//! * [`serve_conv`] — the server: reads the [`ConvSetup`] hello,
//!   validates the client's rotation keys, convolves under HE (phased
//!   or streamed per [`ExecBackend`]), and returns masked results while
//!   keeping its own additive share.
//!
//! The same session code runs over [`MemTransport`] (in-process, used
//! by every scheme's `execute*` entry point through
//! [`run_in_process`]) and `TcpTransport` (two real OS processes) —
//! messages, byte counts, and shares are identical by construction.
//!
//! # Determinism contract
//!
//! Each party draws randomness from its own seeded rng in a fixed
//! order: the client draws its public key, then rotation keys, then
//! every encryption in upload order; the server draws only result
//! masks, in result order (the streaming consumer runs on one thread
//! in index order). Parallel phases are pure. Shares are therefore
//! bit-identical across backends, thread counts, channel capacities,
//! and transports.

use crate::channelwise::{self, SecureConvResult};
use crate::cheetah;
use crate::error::SpotError;
use crate::executor::Executor;
use crate::heconv::{
    required_elements, ChannelMap, ConvRequest, GroupSpec, HeConvEngine, KernelCache,
};
use crate::layout::{pack_pieces, pack_pieces_split, LaneLayout};
use crate::patching::{decompose, Decomposition, PatchMode};
use crate::spot::{self, Blocking};
use crate::stream::{run_stream, run_stream_barrier, StreamConfig, StreamStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spot_he::ciphertext::Ciphertext;
use spot_he::context::Context;
use spot_he::encoding::{BatchEncoder, BatchLayout, Plaintext};
use spot_he::encryptor::{Decryptor, Encryptor};
use spot_he::evaluator::{Evaluator, OpCounts};
use spot_he::keys::{GaloisKeys, KeyGenerator};
use spot_he::params::ParamLevel;
use spot_he::serial::{galois_keys_from_bytes, galois_keys_to_bytes};
use spot_proto::channel::TrafficStats;
use spot_proto::{ConvSetup, MemTransport, Transport, WireMessage};
use spot_tensor::models::ConvShape;
use spot_tensor::tensor::{Kernel, Tensor};
use spot_trace::Cat;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------
// Typed layer specification ↔ wire setup
// ---------------------------------------------------------------------

/// The secure-convolution scheme a session runs (wire discriminants
/// match [`ConvSetup::scheme`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// CrypTFlow2/GAZELLE-style channel-wise packing.
    Channelwise,
    /// Cheetah-style coefficient encoding.
    Cheetah,
    /// SPOT structure patching.
    Spot,
}

impl SchemeKind {
    /// Wire discriminant.
    pub fn code(self) -> u8 {
        match self {
            SchemeKind::Channelwise => 0,
            SchemeKind::Cheetah => 1,
            SchemeKind::Spot => 2,
        }
    }

    /// Parses a wire discriminant.
    pub fn from_code(code: u8) -> Result<Self, SpotError> {
        match code {
            0 => Ok(SchemeKind::Channelwise),
            1 => Ok(SchemeKind::Cheetah),
            2 => Ok(SchemeKind::Spot),
            other => Err(SpotError::Protocol(format!("unknown scheme code {other}"))),
        }
    }

    /// Human-readable name (used for trace span labels).
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Channelwise => "channelwise",
            SchemeKind::Cheetah => "cheetah",
            SchemeKind::Spot => "spot",
        }
    }
}

fn mode_code(mode: PatchMode) -> u8 {
    match mode {
        PatchMode::Vanilla => 0,
        PatchMode::Tweaked => 1,
    }
}

fn mode_from_code(code: u8) -> Result<PatchMode, SpotError> {
    match code {
        0 => Ok(PatchMode::Vanilla),
        1 => Ok(PatchMode::Tweaked),
        other => Err(SpotError::Protocol(format!(
            "unknown patch mode code {other}"
        ))),
    }
}

fn level_code(level: ParamLevel) -> u8 {
    (level.degree().trailing_zeros() as u8) - 11
}

fn level_from_code(code: u8) -> Result<ParamLevel, SpotError> {
    if code > 8 {
        return Err(SpotError::Protocol(format!(
            "unknown parameter level code {code}"
        )));
    }
    ParamLevel::ALL
        .into_iter()
        .find(|l| l.degree() == 1usize << (11 + code as usize))
        .ok_or_else(|| SpotError::Protocol(format!("unknown parameter level code {code}")))
}

/// One convolution layer as the session layer sees it: scheme, shape,
/// and (for SPOT) the patch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerSpec {
    /// Scheme to run.
    pub scheme: SchemeKind,
    /// Layer shape (input dims, channels, kernel, stride).
    pub shape: ConvShape,
    /// SPOT main patch size `(ph, pw)`; ignored by the baselines.
    pub patch: (usize, usize),
    /// SPOT decomposition mode; ignored by the baselines.
    pub mode: PatchMode,
}

/// Largest accepted dimension in a [`ConvSetup`] (defensive bound so a
/// hostile hello cannot trigger huge allocations).
const MAX_DIM: u32 = 1 << 14;

impl LayerSpec {
    /// Encodes the spec as the wire hello for `level`.
    pub fn to_setup(&self, level: ParamLevel) -> ConvSetup {
        let spot = self.scheme == SchemeKind::Spot;
        ConvSetup {
            scheme: self.scheme.code(),
            mode: if spot { mode_code(self.mode) } else { 0 },
            level: level_code(level),
            // 0 keeps unbatched hellos byte-identical to the
            // pre-batching wire format (the byte was reserved-zero);
            // batched uploads overwrite it with the batch width.
            batch: 0,
            h: self.shape.height as u32,
            w: self.shape.width as u32,
            c_in: self.shape.c_in as u32,
            c_out: self.shape.c_out as u32,
            k_h: self.shape.k_h as u32,
            k_w: self.shape.k_w as u32,
            stride: self.shape.stride as u32,
            patch_h: if spot { self.patch.0 as u32 } else { 0 },
            patch_w: if spot { self.patch.1 as u32 } else { 0 },
            // 0 keeps the hello byte-identical to the pre-trace layout;
            // senders overwrite it with a wire trace id when wire trace
            // context is enabled.
            trace: 0,
        }
    }

    /// Decodes and validates a wire hello.
    pub fn from_setup(setup: &ConvSetup) -> Result<(Self, ParamLevel), SpotError> {
        let scheme = SchemeKind::from_code(setup.scheme)?;
        let level = level_from_code(setup.level)?;
        for (name, v) in [
            ("h", setup.h),
            ("w", setup.w),
            ("c_in", setup.c_in),
            ("c_out", setup.c_out),
            ("k_h", setup.k_h),
            ("k_w", setup.k_w),
            ("stride", setup.stride),
        ] {
            if v == 0 || v > MAX_DIM {
                return Err(SpotError::Protocol(format!(
                    "setup field {name} = {v} out of range 1..={MAX_DIM}"
                )));
            }
        }
        let (patch, mode) = if scheme == SchemeKind::Spot {
            for (name, v) in [("patch_h", setup.patch_h), ("patch_w", setup.patch_w)] {
                if v == 0 || v > MAX_DIM {
                    return Err(SpotError::Protocol(format!(
                        "setup field {name} = {v} out of range 1..={MAX_DIM}"
                    )));
                }
            }
            (
                (setup.patch_h as usize, setup.patch_w as usize),
                mode_from_code(setup.mode)?,
            )
        } else {
            ((0, 0), PatchMode::Vanilla)
        };
        let shape = ConvShape {
            width: setup.w as usize,
            height: setup.h as usize,
            c_in: setup.c_in as usize,
            c_out: setup.c_out as usize,
            k_h: setup.k_h as usize,
            k_w: setup.k_w as usize,
            stride: setup.stride as usize,
        };
        Ok((
            LayerSpec {
                scheme,
                shape,
                patch,
                mode,
            },
            level,
        ))
    }
}

// ---------------------------------------------------------------------
// Shared layer plan (both parties derive the same structure)
// ---------------------------------------------------------------------

/// Scheme-specific packing structure derived identically by both
/// parties from the [`LayerSpec`] alone (SPOT's piece structure depends
/// only on spatial dims, so a one-channel probe decomposition serves).
enum PlanDetail {
    Channelwise {
        geo: channelwise::ChannelwiseGeometry,
        layout: LaneLayout,
        groups: Vec<GroupSpec>,
    },
    Cheetah {
        geo: cheetah::CheetahGeometry,
    },
    Spot {
        blk: Blocking,
        probe: Decomposition,
        layouts: Vec<LaneLayout>,
        /// Ciphertexts per class, classes in decomposition order.
        class_cts: Vec<usize>,
        groups: Vec<GroupSpec>,
        in_maps: Vec<ChannelMap>,
        input_cts: usize,
    },
}

fn plan_layer(spec: &LayerSpec, level: ParamLevel) -> Result<PlanDetail, SpotError> {
    let shape = &spec.shape;
    let lane = level.degree() / 2;
    match spec.scheme {
        SchemeKind::Channelwise => {
            if crate::layout::next_pow2(shape.width * shape.height) > lane {
                return Err(SpotError::Protocol(format!(
                    "channel of {}x{} does not fit a lane of {lane} slots",
                    shape.height, shape.width
                )));
            }
            let geo = channelwise::geometry(shape, level);
            let layout = LaneLayout::new(lane, geo.blocks_per_lane, shape.height, shape.width);
            let groups = (0..geo.output_cts)
                .map(|k| channelwise::group_spec(&geo, k, shape.c_out))
                .collect();
            Ok(PlanDetail::Channelwise {
                geo,
                layout,
                groups,
            })
        }
        SchemeKind::Cheetah => {
            let geo = cheetah::geometry(shape, level);
            if geo.channel_coeffs > level.degree() {
                return Err(SpotError::Protocol(format!(
                    "feature map does not fit the ring at {level}"
                )));
            }
            Ok(PlanDetail::Cheetah { geo })
        }
        SchemeKind::Spot => {
            let blk = spot::blocking(shape.c_in, shape.c_out);
            // Piece structure depends only on spatial dims: probe with a
            // single zero channel (both parties derive it identically).
            let probe = decompose(
                &Tensor::zeros(1, shape.height, shape.width),
                spec.patch.0,
                spec.patch.1,
                shape.k_h,
                spec.mode,
            );
            let mut layouts = Vec::with_capacity(probe.classes.len());
            let mut class_cts = Vec::with_capacity(probe.classes.len());
            let mut input_cts = 0usize;
            for (class, pieces) in &probe.classes {
                if blk.ci_pad * crate::layout::next_pow2(class.h * class.w) > lane {
                    return Err(SpotError::Protocol(format!(
                        "piece of {}x{} with {} padded channels does not fit a lane of {lane} slots",
                        class.h, class.w, blk.ci_pad
                    )));
                }
                let layout = LaneLayout::new(lane, blk.lane_blocks, class.h, class.w);
                let per_ct = if blk.split {
                    layout.groups
                } else {
                    2 * layout.groups
                };
                let cts = pieces.len().div_ceil(per_ct);
                class_cts.push(cts);
                input_cts += cts;
                layouts.push(layout);
            }
            let groups = spot::spot_group_specs(&blk, shape.c_out);
            let in_maps = spot::spot_in_maps(&blk, shape.c_in);
            Ok(PlanDetail::Spot {
                blk,
                probe,
                layouts,
                class_cts,
                groups,
                in_maps,
                input_cts,
            })
        }
    }
}

/// Galois elements the server will need for this layer (empty for
/// Cheetah's rotation-free products).
fn galois_elements(spec: &LayerSpec, detail: &PlanDetail) -> Vec<usize> {
    let shape = &spec.shape;
    match detail {
        PlanDetail::Channelwise { geo, layout, .. } => required_elements(
            layout,
            shape.k_h,
            shape.k_w,
            geo.blocks_per_lane,
            geo.output_cts,
            &[],
            geo.both_lanes,
            false,
        ),
        PlanDetail::Cheetah { .. } => Vec::new(),
        PlanDetail::Spot { blk, layouts, .. } => {
            let mut union = Vec::new();
            for layout in layouts {
                union.extend(required_elements(
                    layout,
                    shape.k_h,
                    shape.k_w,
                    blk.diagonals,
                    blk.out_groups,
                    &blk.fold_steps,
                    blk.split,
                    true,
                ));
            }
            union.sort_unstable();
            union.dedup();
            union
        }
    }
}

// ---------------------------------------------------------------------
// Cross-image batching structure
// ---------------------------------------------------------------------

/// Largest batch width the wire hello can carry.
const MAX_BATCH: usize = u8::MAX as usize;

/// Batch layout for channel-wise packing: one image occupies group
/// position 0 across both lanes and every channel block, so every
/// further group position can carry another queued image.
fn channelwise_batch_layout(layout: &LaneLayout) -> BatchLayout {
    BatchLayout::new(
        layout.lane_size,
        layout.blocks,
        layout.groups,
        layout.piece_slots,
        1,
        false,
    )
}

/// Batch layout for one SPOT piece class: an image's pieces occupy the
/// first `pieces` positions of the class ciphertext (lane-major whole
/// pieces, or one group per piece when channels split across lanes).
/// When the class spills over several ciphertexts (`pieces` exceeds the
/// position count), each ciphertext is fully occupied by the single
/// image, so the stride clamps to the whole position space: capacity 1,
/// pack/unpack the identity. [`plan_batch_capacity`] independently
/// forces batch 1 for such layers.
fn spot_batch_layout(blk: &Blocking, layout: &LaneLayout, pieces: usize) -> BatchLayout {
    let positions = if blk.split {
        layout.groups
    } else {
        2 * layout.groups
    };
    BatchLayout::new(
        layout.lane_size,
        layout.blocks,
        layout.groups,
        layout.piece_slots,
        pieces.clamp(1, positions),
        !blk.split,
    )
}

/// How many queued images one session can coalesce into shared
/// ciphertexts. The masked kernel plaintexts already confine every
/// group position's convolution to its own piece region, so spare
/// positions carry further images with the per-batch rotation and
/// key-switch counts unchanged. Cheetah's coefficient packing shares
/// no slots; its batches run as sequential images inside one session,
/// bounded only by the wire field.
fn plan_batch_capacity(detail: &PlanDetail) -> usize {
    match detail {
        PlanDetail::Channelwise { layout, .. } => {
            channelwise_batch_layout(layout).capacity().min(MAX_BATCH)
        }
        PlanDetail::Cheetah { .. } => MAX_BATCH,
        PlanDetail::Spot {
            blk,
            probe,
            layouts,
            class_cts,
            ..
        } => {
            let mut cap = MAX_BATCH;
            for (ci, (_class, pieces)) in probe.classes.iter().enumerate() {
                if pieces.is_empty() {
                    continue;
                }
                if class_cts[ci] != 1 {
                    // A class spilling over one ciphertext has no spare
                    // positions to scatter another image into.
                    return 1;
                }
                cap = cap.min(spot_batch_layout(blk, &layouts[ci], pieces.len()).capacity());
            }
            cap.max(1)
        }
    }
}

// ---------------------------------------------------------------------
// Execution backend
// ---------------------------------------------------------------------

/// How a secure convolution's server work is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecBackend {
    /// Two sequential phases: receive every ciphertext, then fan the
    /// convolutions across the executor pool.
    Phased(Executor),
    /// Real pipelining via [`crate::stream`]: uploads stream through a
    /// bounded channel overlapped with server convolution.
    Streaming(StreamConfig),
}

// ---------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------

fn msg_name(msg: &WireMessage) -> &'static str {
    match msg {
        WireMessage::Setup(_) => "Setup",
        WireMessage::PublicKey(_) => "PublicKey",
        WireMessage::GaloisKeys(_) => "GaloisKeys",
        WireMessage::PackedCt { .. } => "PackedCt",
        WireMessage::AuxCt { .. } => "AuxCt",
        WireMessage::MaskedResult { .. } => "MaskedResult",
        WireMessage::OtRound { .. } => "OtRound",
        WireMessage::ShareReveal { .. } => "ShareReveal",
        WireMessage::LayerBarrier { .. } => "LayerBarrier",
        WireMessage::Teardown => "Teardown",
        WireMessage::Error { .. } => "Error",
        WireMessage::ClockProbe { .. } => "ClockProbe",
    }
}

fn unexpected(got: &WireMessage, want: &str) -> SpotError {
    // A typed server rejection surfaces as itself rather than as a
    // generic wrong-message error, wherever the client was in its
    // receive loop when the rejection frame arrived.
    if let WireMessage::Error { code, detail } = got {
        return SpotError::Rejected {
            code: *code,
            detail: detail.clone(),
        };
    }
    SpotError::Protocol(format!("expected {want}, got {}", msg_name(got)))
}

fn centered(v: u64, t: u64) -> i64 {
    if v > t / 2 {
        v as i64 - t as i64
    } else {
        v as i64
    }
}

/// Receives the serialized input ciphertext with global index `j`
/// (class 0 rides in `PackedCt`, SPOT seam classes in `AuxCt`),
/// validating class and sequence number but deferring deserialization
/// to the caller — SPOT's streaming worker decodes on the pool so the
/// ingest thread goes straight back to the socket.
fn recv_input_blob(
    transport: &dyn Transport,
    j: usize,
    want_class: usize,
) -> Result<Vec<u8>, SpotError> {
    let msg = transport.recv()?;
    let (class, seq, blob) = match msg {
        WireMessage::PackedCt { seq, blob } => (0usize, seq, blob),
        WireMessage::AuxCt { class, seq, blob } => (class as usize, seq, blob),
        other => return Err(unexpected(&other, "PackedCt/AuxCt")),
    };
    if class != want_class || seq as usize != j {
        return Err(SpotError::Protocol(format!(
            "input ciphertext out of order: got class {class} seq {seq}, want class {want_class} seq {j}"
        )));
    }
    Ok(blob)
}

/// [`recv_input_blob`] plus immediate deserialization, for the phased
/// and all-input (barrier) paths where decode time is part of the
/// upload span anyway.
fn recv_input_ct(
    transport: &dyn Transport,
    ctx: &Arc<Context>,
    j: usize,
    want_class: usize,
) -> Result<Ciphertext, SpotError> {
    let blob = recv_input_blob(transport, j, want_class)?;
    Ok(Ciphertext::try_from_bytes(ctx, &blob)?)
}

fn draw_mask<R: Rng>(rng: &mut R, degree: usize, t: u64) -> Vec<u64> {
    (0..degree).map(|_| rng.gen_range(0..t)).collect()
}

/// Result-mask source for one served image: the session rng for
/// unbatched layers (preserving the canonical draw order), or one
/// per-image rng split off the session rng so every image's masks match
/// an unbatched run seeded with that image's seed.
enum MaskRng<'a, R: Rng> {
    Session(&'a mut R),
    Image(&'a mut StdRng),
}

impl<R: Rng> MaskRng<'_, R> {
    fn draw(&mut self, degree: usize, t: u64) -> Vec<u64> {
        match self {
            MaskRng::Session(r) => draw_mask(&mut **r, degree, t),
            MaskRng::Image(r) => draw_mask(&mut **r, degree, t),
        }
    }
}

/// One image's channel-wise packing for input ciphertext `j`: both
/// lanes, channel blocks at group position 0 (the single-image layout
/// [`channelwise_batch_layout`] interleaves into).
fn channelwise_image_slots(
    geo: &channelwise::ChannelwiseGeometry,
    layout: &LaneLayout,
    shape: &ConvShape,
    input: &Tensor,
    j: usize,
    t: u64,
    n: usize,
) -> Vec<u64> {
    let lane = n / 2;
    let mut slots = vec![0u64; n];
    let map = channelwise::channel_map(geo, j, shape.c_in);
    for (lane_idx, row) in map.iter().enumerate() {
        for (b, ch) in row.iter().enumerate() {
            let Some(c) = *ch else { continue };
            for y in 0..shape.height {
                for x in 0..shape.width {
                    slots[lane_idx * lane + layout.slot(b, 0, y, x)] =
                        input.at(c, y, x).rem_euclid(t as i64) as u64;
                }
            }
        }
    }
    slots
}

/// One image's Cheetah coefficient packing for the channel subset
/// `chunk`.
fn cheetah_chunk_coeffs(
    shape: &ConvShape,
    input: &Tensor,
    chunk: &[usize],
    t: u64,
    n: usize,
) -> Vec<u64> {
    let hp = shape.height + shape.k_h - 1;
    let wp = shape.width + shape.k_w - 1;
    let s_ch = hp * wp;
    let mut coeffs = vec![0u64; n];
    for (local, &c) in chunk.iter().enumerate() {
        for y in 0..shape.height {
            for x in 0..shape.width {
                coeffs[local * s_ch + y * wp + x] = input.at(c, y, x).rem_euclid(t as i64) as u64;
            }
        }
    }
    coeffs
}

// ---------------------------------------------------------------------
// Client session
// ---------------------------------------------------------------------

/// How the client paces its input upload relative to the server's
/// setup acknowledgement (the `LayerBarrier` the server sends once the
/// rotation keys are validated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UploadPacing {
    /// Push everything immediately. Correct for the phased in-process
    /// driver, where the server only starts consuming after the whole
    /// upload is queued (waiting for an ack would deadlock).
    Eager,
    /// Hold input ciphertexts until the server acknowledges the setup
    /// and keys. This keeps the upload inside the server's measured
    /// stall window — a tiny client cannot usefully transmit before
    /// the server is ready to consume, and pre-buffering would let the
    /// transport hide the upload span the stall accounting reports.
    AwaitAck,
}

/// Summary of a completed client upload phase.
#[derive(Debug, Clone, Copy)]
pub struct ClientSendSummary {
    /// Encryptions performed.
    pub encrypt: u64,
    /// Input ciphertexts sent.
    pub input_cts: usize,
}

/// The client's completed download phase: its additive output share.
#[derive(Debug, Clone)]
pub struct ClientShare {
    /// The client's additive share of the (strided) output tensor.
    pub share: Tensor,
    /// Decryptions performed.
    pub decrypt: u64,
    /// Masked result ciphertexts absorbed.
    pub output_cts: usize,
}

/// The client's completed download phase for a batched upload: one
/// additive output share per image, in submission order.
#[derive(Debug, Clone)]
pub struct ClientBatchShare {
    /// Per-image additive shares of the (strided) output tensors.
    pub shares: Vec<Tensor>,
    /// Decryptions performed (per batch, not per image).
    pub decrypt: u64,
    /// Masked result ciphertexts absorbed (per batch, not per image).
    pub output_cts: usize,
}

/// Client half of one secure-convolution layer.
///
/// Construct once per layer, then drive the two phases:
/// [`ClientConv::send_all`] (hello, keys, encrypted upload) and
/// [`ClientConv::absorb_all`] (masked results → additive share). The
/// halves are independent, so over a socket transport they can run on
/// two threads to overlap upload with download.
pub struct ClientConv<'a> {
    ctx: Arc<Context>,
    keygen: &'a KeyGenerator,
    spec: LayerSpec,
    detail: PlanDetail,
    elements: Vec<usize>,
}

impl<'a> ClientConv<'a> {
    /// Plans the layer client-side.
    pub fn new(
        ctx: &Arc<Context>,
        keygen: &'a KeyGenerator,
        spec: LayerSpec,
    ) -> Result<Self, SpotError> {
        let detail = plan_layer(&spec, ctx.params().level())?;
        let elements = galois_elements(&spec, &detail);
        Ok(Self {
            ctx: Arc::clone(ctx),
            keygen,
            spec,
            detail,
            elements,
        })
    }

    /// Number of input ciphertexts the upload phase will send.
    pub fn input_cts(&self) -> usize {
        match &self.detail {
            PlanDetail::Channelwise { geo, .. } => geo.input_cts,
            PlanDetail::Cheetah { geo } => geo.input_cts,
            PlanDetail::Spot { input_cts, .. } => *input_cts,
        }
    }

    /// Number of masked result ciphertexts the download phase expects.
    pub fn output_cts(&self) -> usize {
        match &self.detail {
            PlanDetail::Channelwise { geo, .. } => geo.output_cts,
            PlanDetail::Cheetah { .. } => self.spec.shape.c_out,
            PlanDetail::Spot { blk, input_cts, .. } => input_cts * blk.out_groups,
        }
    }

    /// Upload phase: sends the layer hello, public-key-independent
    /// rotation keys, and every packed input ciphertext. Draws the
    /// public key first, then rotation keys, then encryptions in upload
    /// order — the canonical client rng sequence. With
    /// [`UploadPacing::AwaitAck`] the input ciphertexts are held until
    /// the server's setup acknowledgement arrives on the downlink.
    pub fn send_all<R: Rng>(
        &self,
        transport: &dyn Transport,
        input: &Tensor,
        pacing: UploadPacing,
        rng: &mut R,
    ) -> Result<ClientSendSummary, SpotError> {
        // When wire trace context is on, the hello carries a trace id
        // that the server echoes into its serve span — the merge tool
        // pairs the two layer spans by this value.
        let trace_id = spot_trace::next_wire_trace_id();
        let mut span = spot_trace::span_owned(Cat::Session, || {
            format!("send_all {}", self.spec.scheme.name())
        })
        .arg("input_cts", self.input_cts() as u64);
        if trace_id != 0 {
            span = span.arg("trace", trace_id);
        }
        let _span = span;
        let shape = &self.spec.shape;
        if input.channels() != shape.c_in
            || input.height() != shape.height
            || input.width() != shape.width
        {
            return Err(SpotError::Protocol(format!(
                "input tensor {}x{}x{} does not match layer spec {}x{}x{}",
                input.channels(),
                input.height(),
                input.width(),
                shape.c_in,
                shape.height,
                shape.width
            )));
        }
        let mut setup = self.spec.to_setup(self.ctx.params().level());
        setup.trace = trace_id;
        transport.send(&WireMessage::Setup(setup))?;
        let encryptor = Encryptor::new(&self.ctx, self.keygen.public_key(rng));
        if !self.elements.is_empty() {
            let gk = self.keygen.galois_keys(&self.elements, rng);
            transport.send(&WireMessage::GaloisKeys(galois_keys_to_bytes(&gk)))?;
        }
        if pacing == UploadPacing::AwaitAck {
            let msg = transport.recv()?;
            let WireMessage::LayerBarrier { .. } = msg else {
                return Err(unexpected(&msg, "LayerBarrier"));
            };
        }
        let t = self.ctx.params().plain_modulus();
        let n = self.ctx.degree();
        let mut encrypt = 0u64;
        let mut seq = 0u32;
        match &self.detail {
            PlanDetail::Channelwise { geo, layout, .. } => {
                let encoder = BatchEncoder::new(&self.ctx);
                for j in 0..geo.input_cts {
                    let slots = channelwise_image_slots(geo, layout, shape, input, j, t, n);
                    let ct = encryptor.encrypt(&encoder.encode(&slots), rng);
                    encrypt += 1;
                    transport.send(&WireMessage::PackedCt {
                        seq,
                        blob: ct.to_bytes(),
                    })?;
                    seq += 1;
                }
            }
            PlanDetail::Cheetah { geo } => {
                let all_channels: Vec<usize> = (0..shape.c_in).collect();
                for chunk in all_channels.chunks(geo.channels_per_ct) {
                    let coeffs = cheetah_chunk_coeffs(shape, input, chunk, t, n);
                    let ct = encryptor.encrypt(&Plaintext::from_coeffs(coeffs), rng);
                    encrypt += 1;
                    transport.send(&WireMessage::PackedCt {
                        seq,
                        blob: ct.to_bytes(),
                    })?;
                    seq += 1;
                }
            }
            PlanDetail::Spot { blk, layouts, .. } => {
                let encoder = BatchEncoder::new(&self.ctx);
                let decomp = decompose(
                    input,
                    self.spec.patch.0,
                    self.spec.patch.1,
                    shape.k_h,
                    self.spec.mode,
                );
                for (ci, (_class, pieces)) in decomp.classes.iter().enumerate() {
                    let layout = &layouts[ci];
                    let packed = if blk.split {
                        pack_pieces_split(layout, pieces, t)
                    } else {
                        pack_pieces(layout, pieces, t)
                    };
                    for slots in &packed {
                        let ct = encryptor.encrypt(&encoder.encode(slots), rng);
                        encrypt += 1;
                        let blob = ct.to_bytes();
                        let msg = if ci == 0 {
                            WireMessage::PackedCt { seq, blob }
                        } else {
                            WireMessage::AuxCt {
                                class: ci as u16,
                                seq,
                                blob,
                            }
                        };
                        transport.send(&msg)?;
                        seq += 1;
                    }
                }
            }
        }
        Ok(ClientSendSummary {
            encrypt,
            input_cts: seq as usize,
        })
    }

    /// How many queued images this layer can coalesce into one upload:
    /// the spare SIMD-slot positions of the layer's packing (Cheetah
    /// batches as sequential images bounded only by the wire field).
    pub fn batch_capacity(&self) -> usize {
        plan_batch_capacity(&self.detail)
    }

    /// Upload phase for a batch of images sharing one session: the
    /// slot-packed schemes interleave every image's packing into the
    /// same ciphertexts ([`BatchLayout::pack_images`]), so the upload —
    /// and the server's rotations and key-switches — stay those of a
    /// single image. A one-image batch delegates to
    /// [`ClientConv::send_all`] and is wire-identical to it.
    pub fn send_all_batched<R: Rng>(
        &self,
        transport: &dyn Transport,
        inputs: &[Tensor],
        pacing: UploadPacing,
        rng: &mut R,
    ) -> Result<ClientSendSummary, SpotError> {
        let batch = inputs.len();
        if batch <= 1 {
            let input = inputs
                .first()
                .ok_or_else(|| SpotError::Protocol("empty input batch".into()))?;
            return self.send_all(transport, input, pacing, rng);
        }
        let cap = self.batch_capacity().min(MAX_BATCH);
        if batch > cap {
            return Err(SpotError::Protocol(format!(
                "batch of {batch} images exceeds layer capacity {cap}"
            )));
        }
        let trace_id = spot_trace::next_wire_trace_id();
        let mut span = spot_trace::span_owned(Cat::Session, || {
            format!("send_all_batched {}", self.spec.scheme.name())
        })
        .arg("batch", batch as u64);
        if trace_id != 0 {
            span = span.arg("trace", trace_id);
        }
        let _span = span;
        let shape = &self.spec.shape;
        for input in inputs {
            if input.channels() != shape.c_in
                || input.height() != shape.height
                || input.width() != shape.width
            {
                return Err(SpotError::Protocol(format!(
                    "input tensor {}x{}x{} does not match layer spec {}x{}x{}",
                    input.channels(),
                    input.height(),
                    input.width(),
                    shape.c_in,
                    shape.height,
                    shape.width
                )));
            }
        }
        let mut setup = self.spec.to_setup(self.ctx.params().level());
        setup.batch = batch as u8;
        setup.trace = trace_id;
        transport.send(&WireMessage::Setup(setup))?;
        let encryptor = Encryptor::new(&self.ctx, self.keygen.public_key(rng));
        if !self.elements.is_empty() {
            let gk = self.keygen.galois_keys(&self.elements, rng);
            transport.send(&WireMessage::GaloisKeys(galois_keys_to_bytes(&gk)))?;
        }
        if pacing == UploadPacing::AwaitAck {
            let msg = transport.recv()?;
            let WireMessage::LayerBarrier { .. } = msg else {
                return Err(unexpected(&msg, "LayerBarrier"));
            };
        }
        let t = self.ctx.params().plain_modulus();
        let n = self.ctx.degree();
        let mut encrypt = 0u64;
        let mut seq = 0u32;
        match &self.detail {
            PlanDetail::Channelwise { geo, layout, .. } => {
                let encoder = BatchEncoder::new(&self.ctx);
                let blayout = channelwise_batch_layout(layout);
                for j in 0..geo.input_cts {
                    let rows: Vec<Vec<u64>> = inputs
                        .iter()
                        .map(|img| channelwise_image_slots(geo, layout, shape, img, j, t, n))
                        .collect();
                    let slots = blayout.pack_images(&rows);
                    let ct = encryptor.encrypt(&encoder.encode(&slots), rng);
                    encrypt += 1;
                    transport.send(&WireMessage::PackedCt {
                        seq,
                        blob: ct.to_bytes(),
                    })?;
                    seq += 1;
                }
            }
            PlanDetail::Cheetah { geo } => {
                // Coefficient packing shares no slots: a batch is the
                // images in sequence over one session (keys and setup
                // amortize; rotations are already zero here).
                let all_channels: Vec<usize> = (0..shape.c_in).collect();
                for img in inputs {
                    for chunk in all_channels.chunks(geo.channels_per_ct) {
                        let coeffs = cheetah_chunk_coeffs(shape, img, chunk, t, n);
                        let ct = encryptor.encrypt(&Plaintext::from_coeffs(coeffs), rng);
                        encrypt += 1;
                        transport.send(&WireMessage::PackedCt {
                            seq,
                            blob: ct.to_bytes(),
                        })?;
                        seq += 1;
                    }
                }
            }
            PlanDetail::Spot {
                blk,
                probe,
                layouts,
                class_cts,
                ..
            } => {
                let encoder = BatchEncoder::new(&self.ctx);
                // The capacity check above guarantees every non-empty
                // class packs into exactly one ciphertext per image.
                let mut per_image: Vec<Vec<Vec<Vec<u64>>>> = inputs
                    .iter()
                    .map(|img| {
                        let decomp = decompose(
                            img,
                            self.spec.patch.0,
                            self.spec.patch.1,
                            shape.k_h,
                            self.spec.mode,
                        );
                        decomp
                            .classes
                            .iter()
                            .enumerate()
                            .map(|(ci, (_class, pieces))| {
                                let layout = &layouts[ci];
                                if blk.split {
                                    pack_pieces_split(layout, pieces, t)
                                } else {
                                    pack_pieces(layout, pieces, t)
                                }
                            })
                            .collect()
                    })
                    .collect();
                for (ci, (_class, pieces)) in probe.classes.iter().enumerate() {
                    if class_cts[ci] == 0 {
                        continue;
                    }
                    let blayout = spot_batch_layout(blk, &layouts[ci], pieces.len());
                    let rows: Vec<Vec<u64>> = per_image
                        .iter_mut()
                        .map(|classes| classes[ci].pop().expect("one ciphertext per class"))
                        .collect();
                    let slots = blayout.pack_images(&rows);
                    let ct = encryptor.encrypt(&encoder.encode(&slots), rng);
                    encrypt += 1;
                    let blob = ct.to_bytes();
                    let msg = if ci == 0 {
                        WireMessage::PackedCt { seq, blob }
                    } else {
                        WireMessage::AuxCt {
                            class: ci as u16,
                            seq,
                            blob,
                        }
                    };
                    transport.send(&msg)?;
                    seq += 1;
                }
            }
        }
        Ok(ClientSendSummary {
            encrypt,
            input_cts: seq as usize,
        })
    }

    /// Download phase: receives every masked result, decrypts, and
    /// assembles the client's additive share. Needs no randomness, so
    /// it can run concurrently with [`ClientConv::send_all`] over a
    /// socket transport.
    pub fn absorb_all(&self, transport: &dyn Transport) -> Result<ClientShare, SpotError> {
        let expected = self.output_cts();
        let _span = spot_trace::span_owned(Cat::Session, || {
            format!("absorb_all {}", self.spec.scheme.name())
        })
        .arg("output_cts", expected as u64);
        let (mut decoded, decrypt) = self.receive_decoded(transport, expected)?;
        let share = self.share_from_decoded(&mut decoded);
        Ok(ClientShare {
            share,
            decrypt,
            output_cts: expected,
        })
    }

    /// Receives `expected` masked results (any order, validated by
    /// sequence number), decrypts and decodes each into its slot/coeff
    /// values. Returns the rows in sequence order plus the decryption
    /// count.
    fn receive_decoded(
        &self,
        transport: &dyn Transport,
        expected: usize,
    ) -> Result<(Vec<Vec<u64>>, u64), SpotError> {
        let decryptor = Decryptor::new(&self.ctx, self.keygen.secret_key().clone());
        let coeff_encoded = matches!(self.detail, PlanDetail::Cheetah { .. });
        let encoder = BatchEncoder::new(&self.ctx);
        let mut decoded: Vec<Option<Vec<u64>>> = vec![None; expected];
        let mut decrypt = 0u64;
        // An eagerly-pacing client never consumed the server's setup
        // acknowledgement during `send_all`; it is the first downlink
        // message, ahead of the masked results.
        let mut first = Some(transport.recv()?);
        if matches!(first, Some(WireMessage::LayerBarrier { .. })) {
            first = None;
        }
        for _ in 0..expected {
            let msg = match first.take() {
                Some(m) => m,
                None => transport.recv()?,
            };
            let WireMessage::MaskedResult { seq, blob } = msg else {
                return Err(unexpected(&msg, "MaskedResult"));
            };
            let slot = decoded
                .get_mut(seq as usize)
                .ok_or_else(|| {
                    SpotError::Protocol(format!(
                        "result seq {seq} out of range (expected {expected} results)"
                    ))
                })?
                .as_mut();
            if slot.is_some() {
                return Err(SpotError::Protocol(format!("duplicate result seq {seq}")));
            }
            let ct = Ciphertext::try_from_bytes(&self.ctx, &blob)?;
            let plain = decryptor.decrypt(&ct);
            decrypt += 1;
            let values = if coeff_encoded {
                plain.coeffs().to_vec()
            } else {
                encoder.decode(&plain)
            };
            decoded[seq as usize] = Some(values);
        }
        let decoded: Vec<Vec<u64>> = decoded
            .into_iter()
            .map(|d| d.expect("all sequence numbers seen"))
            .collect();
        Ok((decoded, decrypt))
    }

    /// Assembles one image's additive share from its decoded result
    /// rows (in sequence order; SPOT rows are consumed in place).
    fn share_from_decoded(&self, decoded: &mut [Vec<u64>]) -> Tensor {
        let t = self.ctx.params().plain_modulus();
        let shape = &self.spec.shape;
        let oh = shape.out_height();
        let ow = shape.out_width();
        match &self.detail {
            PlanDetail::Channelwise { layout, groups, .. } => {
                let lane = self.ctx.degree() / 2;
                let mut share = Tensor::zeros(shape.c_out, oh, ow);
                for (k, values) in decoded.iter().enumerate() {
                    for (lane_idx, row) in groups[k].out_ch.iter().enumerate() {
                        for (b, ch) in row.iter().enumerate() {
                            let Some(o) = *ch else { continue };
                            for y in 0..oh {
                                for x in 0..ow {
                                    let idx = lane_idx * lane
                                        + layout.slot(b, 0, y * shape.stride, x * shape.stride);
                                    *share.at_mut(o, y, x) = centered(values[idx], t);
                                }
                            }
                        }
                    }
                }
                share
            }
            PlanDetail::Cheetah { geo } => {
                let wp = shape.width + shape.k_w - 1;
                let s_ch = geo.channel_coeffs;
                let base = (geo.channels_per_ct - 1) * s_ch;
                let ph = (shape.k_h - 1) / 2;
                let pw = (shape.k_w - 1) / 2;
                let mut share = Tensor::zeros(shape.c_out, oh, ow);
                for (o, values) in decoded.iter().enumerate() {
                    for y in 0..oh {
                        for x in 0..ow {
                            let idx = base + (y * shape.stride + ph) * wp + (x * shape.stride + pw);
                            *share.at_mut(o, y, x) = centered(values[idx], t);
                        }
                    }
                }
                share
            }
            PlanDetail::Spot {
                blk,
                probe,
                layouts,
                class_cts,
                groups,
                ..
            } => {
                let out_groups = groups.len();
                let mut client_pieces: Vec<Tensor> = Vec::new();
                let mut j = 0usize;
                for (ci, (class, pieces)) in probe.classes.iter().enumerate() {
                    let mut group_slots: Vec<Vec<Vec<u64>>> = vec![Vec::new(); out_groups];
                    for _ in 0..class_cts[ci] {
                        for (g, gs) in group_slots.iter_mut().enumerate() {
                            gs.push(std::mem::take(&mut decoded[j * out_groups + g]));
                        }
                        j += 1;
                    }
                    client_pieces.extend(spot::unpack_class_share(
                        blk,
                        &layouts[ci],
                        pieces.len(),
                        class.h,
                        class.w,
                        shape.c_out,
                        t,
                        &group_slots,
                    ));
                }
                let full =
                    crate::patching::assemble(probe, &client_pieces, shape.height, shape.width);
                Tensor::from_fn(shape.c_out, oh, ow, |c, y, x| {
                    full.at(c, y * shape.stride, x * shape.stride)
                })
            }
        }
    }

    /// Download phase for a batched upload: receives the shared masked
    /// results, then demultiplexes each image's slot positions
    /// ([`BatchLayout::unpack_image`]) before running the ordinary
    /// single-image share assembly. Image `b`'s share is bit-identical
    /// to an unbatched run whose server mask rng was seeded with image
    /// `b`'s per-image seed. A one-image batch delegates to
    /// [`ClientConv::absorb_all`].
    pub fn absorb_all_batched(
        &self,
        transport: &dyn Transport,
        batch: usize,
    ) -> Result<ClientBatchShare, SpotError> {
        if batch <= 1 {
            let one = self.absorb_all(transport)?;
            return Ok(ClientBatchShare {
                shares: vec![one.share],
                decrypt: one.decrypt,
                output_cts: one.output_cts,
            });
        }
        let expected = match &self.detail {
            // Sequential images: every image has its own result cts.
            PlanDetail::Cheetah { .. } => batch * self.spec.shape.c_out,
            // Shared ciphertexts: the result count is that of one image.
            _ => self.output_cts(),
        };
        let _span = spot_trace::span_owned(Cat::Session, || {
            format!("absorb_all_batched {}", self.spec.scheme.name())
        })
        .arg("output_cts", expected as u64)
        .arg("batch", batch as u64);
        let (decoded, decrypt) = self.receive_decoded(transport, expected)?;
        let shares = match &self.detail {
            PlanDetail::Channelwise { layout, .. } => {
                let blayout = channelwise_batch_layout(layout);
                (0..batch)
                    .map(|b| {
                        let mut img: Vec<Vec<u64>> = decoded
                            .iter()
                            .map(|row| blayout.unpack_image(row, b))
                            .collect();
                        self.share_from_decoded(&mut img)
                    })
                    .collect()
            }
            PlanDetail::Cheetah { .. } => {
                let c_out = self.spec.shape.c_out;
                let mut shares = Vec::with_capacity(batch);
                let mut rows = decoded.into_iter();
                for _ in 0..batch {
                    let mut img: Vec<Vec<u64>> = rows.by_ref().take(c_out).collect();
                    shares.push(self.share_from_decoded(&mut img));
                }
                shares
            }
            PlanDetail::Spot {
                blk,
                probe,
                layouts,
                class_cts,
                groups,
                ..
            } => {
                let blayouts: Vec<BatchLayout> = layouts
                    .iter()
                    .zip(&probe.classes)
                    .map(|(lay, (_class, pieces))| spot_batch_layout(blk, lay, pieces.len()))
                    .collect();
                let out_groups = groups.len();
                // Result row index → class, mirroring the send order:
                // each class ct contributes `out_groups` result rows.
                let row_class: Vec<usize> = class_cts
                    .iter()
                    .enumerate()
                    .flat_map(|(ci, &cnt)| std::iter::repeat_n(ci, cnt * out_groups))
                    .collect();
                (0..batch)
                    .map(|b| {
                        let mut img: Vec<Vec<u64>> = decoded
                            .iter()
                            .enumerate()
                            .map(|(row, values)| blayouts[row_class[row]].unpack_image(values, b))
                            .collect();
                        self.share_from_decoded(&mut img)
                    })
                    .collect()
            }
        };
        Ok(ClientBatchShare {
            shares,
            decrypt,
            output_cts: expected,
        })
    }
}

// ---------------------------------------------------------------------
// Server session
// ---------------------------------------------------------------------

/// Per-model NTT-domain kernel caches, shared across every serving
/// session of that model and keyed by [`LayerSpec`]. Channel-wise
/// layers use a single [`KernelCache`] (the per-input `cache_tag`
/// already separates entries); SPOT layers use one per patch class
/// (each class runs `cache_tag = 0` against its own layout); Cheetah
/// caches nothing. Cache contents depend only on the layer geometry
/// and the model's kernel weights — no client key material — which is
/// what makes cross-session sharing safe.
#[derive(Debug, Default)]
pub struct SharedKernelCaches {
    by_layer: parking_lot::Mutex<HashMap<LayerSpec, Vec<KernelCache>>>,
}

impl SharedKernelCaches {
    /// An empty cache set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-class caches for `spec`, creating them on first use.
    /// Clones share storage, so every session of the model converges
    /// on the same lifted plaintexts.
    fn class_caches(&self, spec: &LayerSpec, classes: usize) -> Vec<KernelCache> {
        let mut map = self.by_layer.lock();
        let caches = map.entry(*spec).or_default();
        while caches.len() < classes {
            caches.push(KernelCache::new());
        }
        caches[..classes].to_vec()
    }

    /// Total cached kernel plaintext combinations across all layers.
    pub fn total_entries(&self) -> usize {
        self.by_layer
            .lock()
            .values()
            .flat_map(|caches| caches.iter())
            .map(KernelCache::len)
            .sum()
    }
}

/// Server-side knobs for one [`serve_conv_with`] call. The default is
/// exactly the single-tenant [`serve_conv`] behaviour: private caches,
/// no batch cap beyond the layer's SIMD capacity.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeOptions<'a> {
    /// Model-wide kernel caches to share across sessions (`None` =
    /// build a fresh private cache for this call).
    pub shared: Option<&'a SharedKernelCaches>,
    /// Admission control: largest `Setup` batch this session's
    /// ciphertext-memory budget admits. A hello above it is refused
    /// with [`SpotError::Rejected`] (`error_code::OVER_BUDGET`) before
    /// any ciphertext is received, so the server never OOMs trying.
    pub max_batch: Option<usize>,
}

/// Outcome of one served convolution layer.
#[derive(Debug)]
pub struct ServerConvSummary {
    /// The server's additive share of the (strided) output tensor
    /// (image 0 of a batched layer).
    pub server_share: Tensor,
    /// Server shares of batched images 1.. (empty for an unbatched
    /// layer).
    pub extra_shares: Vec<Tensor>,
    /// HE operations performed on the server (per batch, not per
    /// image — slot batching leaves these unchanged as the batch
    /// width grows).
    pub counts: OpCounts,
    /// Input ciphertexts received.
    pub input_cts: usize,
    /// Masked result ciphertexts sent.
    pub output_cts: usize,
    /// Streaming stall accounting (None for the phased backend).
    pub stream: Option<StreamStats>,
}

/// Server half of one secure-convolution layer: reads the hello,
/// validates keys, convolves (phased or streamed), masks results back,
/// and keeps the server's additive share. Draws only result masks from
/// `rng`, in result order.
pub fn serve_conv<R: Rng>(
    ctx: &Arc<Context>,
    transport: &dyn Transport,
    kernel: &Kernel,
    backend: &ExecBackend,
    rng: &mut R,
) -> Result<ServerConvSummary, SpotError> {
    serve_conv_with(
        ctx,
        transport,
        kernel,
        backend,
        ServeOptions::default(),
        rng,
    )
}

/// [`serve_conv`] with serving-layer options: shared per-model kernel
/// caches and a per-session batch budget (see [`ServeOptions`]).
pub fn serve_conv_with<R: Rng>(
    ctx: &Arc<Context>,
    transport: &dyn Transport,
    kernel: &Kernel,
    backend: &ExecBackend,
    opts: ServeOptions<'_>,
    rng: &mut R,
) -> Result<ServerConvSummary, SpotError> {
    let msg = transport.recv()?;
    let WireMessage::Setup(setup) = msg else {
        return Err(unexpected(&msg, "Setup"));
    };
    let (spec, level) = LayerSpec::from_setup(&setup)?;
    let mut span = spot_trace::span_owned(Cat::Session, || {
        format!("serve_conv {}", spec.scheme.name())
    });
    if setup.trace != 0 {
        // Echo the client's wire trace id into this span so the merge
        // tool can pair the server layer with the client layer exactly.
        span = span.arg("trace", setup.trace);
    }
    let _span = span;
    if level != ctx.params().level() {
        return Err(SpotError::Protocol(format!(
            "client level {level} does not match server context {}",
            ctx.params().level()
        )));
    }
    let shape = &spec.shape;
    if kernel.out_channels() != shape.c_out
        || kernel.in_channels() != shape.c_in
        || kernel.k_h() != shape.k_h
        || kernel.k_w() != shape.k_w
    {
        return Err(SpotError::Protocol(format!(
            "kernel {}x{}x{}x{} does not match layer spec {}x{}x{}x{}",
            kernel.out_channels(),
            kernel.in_channels(),
            kernel.k_h(),
            kernel.k_w(),
            shape.c_out,
            shape.c_in,
            shape.k_h,
            shape.k_w
        )));
    }
    let detail = plan_layer(&spec, level)?;
    let batch = (setup.batch as usize).max(1);
    let cap = plan_batch_capacity(&detail);
    if batch > cap {
        return Err(SpotError::Protocol(format!(
            "batch of {batch} images exceeds layer capacity {cap}"
        )));
    }
    if let Some(max) = opts.max_batch {
        if batch > max {
            return Err(SpotError::Rejected {
                code: spot_proto::error_code::OVER_BUDGET,
                detail: format!(
                    "batch of {batch} images exceeds the session ciphertext budget ({max})"
                ),
            });
        }
    }
    let elements = galois_elements(&spec, &detail);
    let galois = if elements.is_empty() {
        Arc::new(GaloisKeys::default())
    } else {
        let msg = transport.recv()?;
        let WireMessage::GaloisKeys(blob) = msg else {
            return Err(unexpected(&msg, "GaloisKeys"));
        };
        let gk = galois_keys_from_bytes(ctx, &blob)?;
        for &e in &elements {
            if !gk.contains(e) {
                return Err(SpotError::Protocol(format!(
                    "client rotation keys miss required galois element {e}"
                )));
            }
        }
        Arc::new(gk)
    };
    // Flow control: acknowledge the setup + key material before the
    // client commits bandwidth to the upload. A paced client
    // ([`UploadPacing::AwaitAck`]) holds its input ciphertexts until
    // this arrives, so the upload lands inside the server's measured
    // stall window instead of pre-buffering in the transport while the
    // server is still deserializing rotation keys.
    transport.send(&WireMessage::LayerBarrier { layer: 0 })?;
    // A batched layer splits one rng per image off the session rng (a
    // fixed `batch` draws, before any mask), so image `b`'s masks — and
    // therefore both parties' shares — are bit-identical to an
    // unbatched run whose server rng was seeded with seed `b`. An
    // unbatched layer draws nothing here, keeping the canonical
    // mask-only rng order.
    let mut batch_rngs: Vec<StdRng> = if batch > 1 {
        (0..batch)
            .map(|_| StdRng::seed_from_u64(rng.gen()))
            .collect()
    } else {
        Vec::new()
    };
    // One kernel cache per patch class (channel-wise: a single class).
    // With `opts.shared` these come from the per-model pool, so every
    // session multiplies against the same lifted plaintexts.
    let classes = match &detail {
        PlanDetail::Channelwise { .. } => 1,
        PlanDetail::Cheetah { .. } => 0,
        PlanDetail::Spot { layouts, .. } => layouts.len(),
    };
    let caches: Vec<KernelCache> = match opts.shared {
        Some(shared) => shared.class_caches(&spec, classes),
        None => (0..classes).map(|_| KernelCache::new()).collect(),
    };
    // Live-registry serve latency, labeled by scheme. The Instant is
    // only taken when metrics are on, and only successful serves are
    // recorded — error paths would pollute the latency series.
    let serve_start = spot_trace::metrics::enabled().then(Instant::now);
    let result = match detail {
        PlanDetail::Channelwise {
            geo,
            layout,
            groups,
        } => serve_channelwise(
            ctx,
            transport,
            kernel,
            &spec,
            &geo,
            &layout,
            &groups,
            galois,
            caches.into_iter().next().expect("one channelwise cache"),
            backend,
            batch,
            &mut batch_rngs,
            rng,
        ),
        PlanDetail::Cheetah { geo } => serve_cheetah(
            ctx,
            transport,
            kernel,
            &spec,
            &geo,
            backend,
            batch,
            &mut batch_rngs,
            rng,
        ),
        PlanDetail::Spot {
            blk,
            probe,
            layouts,
            class_cts,
            groups,
            in_maps,
            input_cts,
        } => serve_spot(
            ctx,
            transport,
            kernel,
            &spec,
            &blk,
            &probe,
            &layouts,
            &class_cts,
            &groups,
            &in_maps,
            input_cts,
            galois,
            caches,
            backend,
            batch,
            &mut batch_rngs,
            rng,
        ),
    };
    if let (Some(t0), Ok(_)) = (serve_start, &result) {
        spot_trace::metrics::global()
            .histogram("spot_conv_serve_ns", &[("scheme", spec.scheme.name())])
            .record(t0.elapsed().as_nanos() as u64);
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn serve_channelwise<R: Rng>(
    ctx: &Arc<Context>,
    transport: &dyn Transport,
    kernel: &Kernel,
    spec: &LayerSpec,
    geo: &channelwise::ChannelwiseGeometry,
    layout: &LaneLayout,
    groups: &[GroupSpec],
    galois: Arc<GaloisKeys>,
    cache: KernelCache,
    backend: &ExecBackend,
    batch: usize,
    batch_rngs: &mut [StdRng],
    rng: &mut R,
) -> Result<ServerConvSummary, SpotError> {
    let shape = &spec.shape;
    let engine = HeConvEngine::with_shared_cache(ctx, galois, false, cache);
    let mut counts = OpCounts::default();

    let conv_one = |j: usize, ct: &Ciphertext| {
        let map = channelwise::channel_map(geo, j, shape.c_in);
        let mut in_maps = vec![map.clone()];
        if geo.both_lanes {
            in_maps.push(vec![map[1].clone(), map[0].clone()]);
        }
        let mut c = OpCounts::default();
        let partials = engine.conv_one_ct(
            ct,
            &ConvRequest {
                layout,
                in_maps: &in_maps,
                groups,
                diagonals: geo.blocks_per_lane,
                fold_steps: &[],
                kernel,
                cache_tag: j,
            },
            &mut c,
        );
        (partials, c)
    };

    let (per_ct, stream) = match backend {
        ExecBackend::Phased(ex) => {
            let mut cts = Vec::with_capacity(geo.input_cts);
            for j in 0..geo.input_cts {
                cts.push(recv_input_ct(transport, ctx, j, 0)?);
            }
            (ex.run(&cts, |j, ct| conv_one(j, ct)), None)
        }
        ExecBackend::Streaming(cfg) => {
            let mut per_ct = Vec::with_capacity(geo.input_cts);
            let stats = run_stream_barrier(
                cfg,
                geo.input_cts,
                |feeder| {
                    for j in 0..geo.input_cts {
                        feeder.push(recv_input_ct(transport, ctx, j, 0)?)?;
                    }
                    Ok(())
                },
                |j, inputs: &[Ciphertext]| conv_one(j, &inputs[j]),
                |_, r| {
                    per_ct.push(r);
                    Ok(())
                },
            )?;
            (per_ct, Some(stats))
        }
    };

    // Cross-ciphertext accumulation in input order, as a serial run.
    let mut out_cts: Vec<Option<Ciphertext>> = vec![None; geo.output_cts];
    for (partials, c) in per_ct {
        counts.merge(&c);
        for (k, p) in partials.into_iter().enumerate() {
            match &mut out_cts[k] {
                None => out_cts[k] = Some(p),
                Some(acc) => {
                    engine.evaluator().add_inplace(acc, &p);
                    counts.add += 1;
                }
            }
        }
    }

    // Mask, send, and keep the server shares (masks in output order;
    // for a batched layer each image's masks come from its own rng, in
    // the same per-image order as an unbatched run, and the shared
    // ciphertext is masked by their slot-scattered union).
    let t = ctx.params().plain_modulus();
    let lane = ctx.degree() / 2;
    let oh = shape.out_height();
    let ow = shape.out_width();
    let blayout = channelwise_batch_layout(layout);
    let mut shares: Vec<Tensor> = (0..batch)
        .map(|_| Tensor::zeros(shape.c_out, oh, ow))
        .collect();
    for (k, maybe_ct) in out_cts.into_iter().enumerate() {
        let ct = maybe_ct
            .ok_or_else(|| SpotError::Protocol(format!("output group {k} produced no result")))?;
        let rs: Vec<Vec<u64>> = if batch > 1 {
            batch_rngs
                .iter_mut()
                .map(|r| draw_mask(r, ctx.degree(), t))
                .collect()
        } else {
            vec![draw_mask(rng, ctx.degree(), t)]
        };
        let masked = if batch > 1 {
            let shared = blayout.scatter_masks(&rs);
            engine
                .evaluator()
                .sub_plain(&ct, &engine.encoder().encode(&shared))
        } else {
            engine
                .evaluator()
                .sub_plain(&ct, &engine.encoder().encode(&rs[0]))
        };
        counts.add += 1;
        transport.send(&WireMessage::MaskedResult {
            seq: k as u32,
            blob: masked.to_bytes(),
        })?;
        for (img, r) in rs.iter().enumerate() {
            for (lane_idx, row) in groups[k].out_ch.iter().enumerate() {
                for (b, ch) in row.iter().enumerate() {
                    let Some(o) = *ch else { continue };
                    for y in 0..oh {
                        for x in 0..ow {
                            let idx = lane_idx * lane
                                + layout.slot(b, 0, y * shape.stride, x * shape.stride);
                            *shares[img].at_mut(o, y, x) = r[idx] as i64;
                        }
                    }
                }
            }
        }
    }

    let mut shares = shares.into_iter();
    Ok(ServerConvSummary {
        server_share: shares.next().expect("batch >= 1"),
        extra_shares: shares.collect(),
        counts,
        input_cts: geo.input_cts,
        output_cts: geo.output_cts,
        stream,
    })
}

#[allow(clippy::too_many_arguments)]
fn serve_cheetah<R: Rng>(
    ctx: &Arc<Context>,
    transport: &dyn Transport,
    kernel: &Kernel,
    spec: &LayerSpec,
    geo: &cheetah::CheetahGeometry,
    backend: &ExecBackend,
    batch: usize,
    batch_rngs: &mut [StdRng],
    rng: &mut R,
) -> Result<ServerConvSummary, SpotError> {
    let shape = &spec.shape;
    let evaluator = Evaluator::new(ctx);
    let n = ctx.degree();
    let t = ctx.params().plain_modulus();
    let wp = shape.width + shape.k_w - 1;
    let s_ch = geo.channel_coeffs;
    let chunk_cap = geo.channels_per_ct;
    let all_channels: Vec<usize> = (0..shape.c_in).collect();
    let chunks: Vec<&[usize]> = all_channels.chunks(chunk_cap).collect();
    let input_cts = chunks.len();
    let mut counts = OpCounts::default();

    // One output channel's ring product summed over every chunk.
    let product_for = |o: usize, inputs: &[Ciphertext]| {
        let mut c_local = OpCounts::default();
        let mut acc: Option<Ciphertext> = None;
        for (ci_idx, chunk) in chunks.iter().enumerate() {
            let mut wcoeffs = vec![0u64; n];
            for (local, &c) in chunk.iter().enumerate() {
                for u in 0..shape.k_h {
                    for v in 0..shape.k_w {
                        let w = kernel.at(o, c, u, v).rem_euclid(t as i64) as u64;
                        let idx = (chunk_cap - 1 - local) * s_ch
                            + (shape.k_h - 1 - u) * wp
                            + (shape.k_w - 1 - v);
                        wcoeffs[idx] = w;
                    }
                }
            }
            let prod = evaluator.multiply_plain(&inputs[ci_idx], &Plaintext::from_coeffs(wcoeffs));
            c_local.mult_plain += 1;
            match &mut acc {
                None => acc = Some(prod),
                Some(a) => {
                    evaluator.add_inplace(a, &prod);
                    c_local.add += 1;
                }
            }
        }
        (acc.expect("at least one chunk"), c_local)
    };

    let oh = shape.out_height();
    let ow = shape.out_width();
    let ph = (shape.k_h - 1) / 2;
    let pw = (shape.k_w - 1) / 2;
    let base = (chunk_cap - 1) * s_ch;
    // Masks the accumulated product for output channel `o`, sends it,
    // and records the server's share — masks strictly in `seq` order.
    let absorb = |seq: u32,
                  o: usize,
                  (out_ct, c_local): (Ciphertext, OpCounts),
                  counts: &mut OpCounts,
                  server_share: &mut Tensor,
                  mask: &mut MaskRng<R>|
     -> Result<(), SpotError> {
        counts.merge(&c_local);
        let r = mask.draw(n, t);
        let masked = evaluator.sub_plain(&out_ct, &Plaintext::from_coeffs(r.clone()));
        counts.add += 1;
        transport.send(&WireMessage::MaskedResult {
            seq,
            blob: masked.to_bytes(),
        })?;
        for y in 0..oh {
            for x in 0..ow {
                let idx = base + (y * shape.stride + ph) * wp + (x * shape.stride + pw);
                *server_share.at_mut(o, y, x) = r[idx] as i64;
            }
        }
        Ok(())
    };

    // Coefficient packing shares no slots, so a batch is its images in
    // sequence over one session (sequence numbers keep counting); each
    // image's masks come from its own per-image rng.
    let mut shares: Vec<Tensor> = Vec::with_capacity(batch);
    let mut stream_acc: Option<StreamStats> = None;
    for b in 0..batch {
        let mut share_b = Tensor::zeros(shape.c_out, oh, ow);
        let mut mask = match batch_rngs.get_mut(b) {
            Some(r) => MaskRng::Image(r),
            None => MaskRng::Session(&mut *rng),
        };
        let seq_in = b * input_cts;
        let seq_out = (b * shape.c_out) as u32;
        match backend {
            ExecBackend::Phased(ex) => {
                let mut cts = Vec::with_capacity(input_cts);
                for j in 0..input_cts {
                    cts.push(recv_input_ct(transport, ctx, seq_in + j, 0)?);
                }
                let out_channels: Vec<usize> = (0..shape.c_out).collect();
                let accumulated = ex.run(&out_channels, |_, &o| product_for(o, &cts));
                for (o, acc) in accumulated.into_iter().enumerate() {
                    absorb(
                        seq_out + o as u32,
                        o,
                        acc,
                        &mut counts,
                        &mut share_b,
                        &mut mask,
                    )?;
                }
            }
            ExecBackend::Streaming(cfg) => {
                let counts_ref = &mut counts;
                let share_ref = &mut share_b;
                let mask_ref = &mut mask;
                let stats = run_stream_barrier(
                    cfg,
                    shape.c_out,
                    |feeder| {
                        for j in 0..input_cts {
                            feeder.push(recv_input_ct(transport, ctx, seq_in + j, 0)?)?;
                        }
                        Ok(())
                    },
                    |o, inputs: &[Ciphertext]| product_for(o, inputs),
                    |o, acc| absorb(seq_out + o as u32, o, acc, counts_ref, share_ref, mask_ref),
                )?;
                match &mut stream_acc {
                    None => stream_acc = Some(stats),
                    Some(acc) => acc.accumulate(&stats),
                }
            }
        }
        shares.push(share_b);
    }

    let mut shares = shares.into_iter();
    Ok(ServerConvSummary {
        server_share: shares.next().expect("batch >= 1"),
        extra_shares: shares.collect(),
        counts,
        input_cts: batch * input_cts,
        output_cts: batch * shape.c_out,
        stream: stream_acc,
    })
}

#[allow(clippy::too_many_arguments)]
fn serve_spot<R: Rng>(
    ctx: &Arc<Context>,
    transport: &dyn Transport,
    kernel: &Kernel,
    spec: &LayerSpec,
    blk: &Blocking,
    probe: &Decomposition,
    layouts: &[LaneLayout],
    class_cts: &[usize],
    groups: &[GroupSpec],
    in_maps: &[ChannelMap],
    input_cts: usize,
    galois: Arc<GaloisKeys>,
    caches: Vec<KernelCache>,
    backend: &ExecBackend,
    batch: usize,
    batch_rngs: &mut [StdRng],
    rng: &mut R,
) -> Result<ServerConvSummary, SpotError> {
    let shape = &spec.shape;
    let t = ctx.params().plain_modulus();
    let n = ctx.degree();
    let out_groups = groups.len();
    // Per-class batch layouts for scattering per-image masks into the
    // shared result ciphertexts (unused when the batch is one image).
    let blayouts: Vec<BatchLayout> = layouts
        .iter()
        .zip(&probe.classes)
        .map(|(lay, (_class, pieces))| spot_batch_layout(blk, lay, pieces.len()))
        .collect();
    // One engine per class: the layouts differ, so sharing the
    // NTT-domain kernel cache (keyed by `cache_tag` = 0 within a class)
    // across classes would collide. Each class's cache may itself be
    // shared with other sessions of the same model.
    debug_assert_eq!(caches.len(), layouts.len());
    let engines: Vec<HeConvEngine> = caches
        .into_iter()
        .map(|cache| HeConvEngine::with_shared_cache(ctx, Arc::clone(&galois), true, cache))
        .collect();
    // Global ciphertext index → class index.
    let ct_class: Vec<usize> = class_cts
        .iter()
        .enumerate()
        .flat_map(|(ci, &cnt)| std::iter::repeat_n(ci, cnt))
        .collect();
    debug_assert_eq!(ct_class.len(), input_cts);

    let conv_one = |ci: usize, ct: &Ciphertext| {
        let req = ConvRequest {
            layout: &layouts[ci],
            in_maps,
            groups,
            diagonals: blk.diagonals,
            fold_steps: &blk.fold_steps,
            kernel,
            cache_tag: 0,
        };
        let mut c = OpCounts::default();
        let outs = engines[ci].conv_one_ct(ct, &req, &mut c);
        (outs, c)
    };

    let mut counts = OpCounts::default();
    let mut server_pieces: Vec<Vec<Tensor>> = vec![Vec::new(); batch];
    let mut seq_out = 0u32;

    // Per-class consumer state: masks drawn per (ciphertext, group) in
    // global order — one draw per image at each event, so every image's
    // rng sees the unbatched order — and a completed class unpacks into
    // per-image piece shares.
    let mut group_server: Vec<Vec<Vec<Vec<u64>>>> = vec![vec![Vec::new(); out_groups]; batch];
    let mut seen_cts = 0usize;
    let absorb_ct = |ci: usize,
                     outs: Vec<Ciphertext>,
                     c: OpCounts,
                     counts: &mut OpCounts,
                     group_server: &mut Vec<Vec<Vec<Vec<u64>>>>,
                     seen_cts: &mut usize,
                     server_pieces: &mut Vec<Vec<Tensor>>,
                     seq_out: &mut u32,
                     batch_rngs: &mut [StdRng],
                     rng: &mut R|
     -> Result<(), SpotError> {
        counts.merge(&c);
        for (g, out_ct) in outs.into_iter().enumerate() {
            if batch > 1 {
                let rs: Vec<Vec<u64>> = batch_rngs.iter_mut().map(|r| draw_mask(r, n, t)).collect();
                let shared = blayouts[ci].scatter_masks(&rs);
                let masked = engines[ci]
                    .evaluator()
                    .sub_plain(&out_ct, &engines[ci].encoder().encode(&shared));
                counts.add += 1;
                transport.send(&WireMessage::MaskedResult {
                    seq: *seq_out,
                    blob: masked.to_bytes(),
                })?;
                *seq_out += 1;
                for (img, r) in rs.into_iter().enumerate() {
                    group_server[img][g].push(r);
                }
            } else {
                let r = draw_mask(rng, n, t);
                let masked = engines[ci]
                    .evaluator()
                    .sub_plain(&out_ct, &engines[ci].encoder().encode(&r));
                counts.add += 1;
                transport.send(&WireMessage::MaskedResult {
                    seq: *seq_out,
                    blob: masked.to_bytes(),
                })?;
                *seq_out += 1;
                group_server[0][g].push(r);
            }
        }
        *seen_cts += 1;
        if *seen_cts == class_cts[ci] {
            let (class, pieces) = &probe.classes[ci];
            for (img, gs) in group_server.iter_mut().enumerate() {
                server_pieces[img].extend(spot::unpack_class_share(
                    blk,
                    &layouts[ci],
                    pieces.len(),
                    class.h,
                    class.w,
                    shape.c_out,
                    t,
                    gs,
                ));
                for slots in gs.iter_mut() {
                    slots.clear();
                }
            }
            *seen_cts = 0;
        }
        Ok(())
    };

    let stream = match backend {
        ExecBackend::Phased(ex) => {
            // Receive the full upload, then convolve class by class.
            let mut class_data: Vec<Vec<Ciphertext>> = vec![Vec::new(); layouts.len()];
            for (j, &ci) in ct_class.iter().enumerate() {
                class_data[ci].push(recv_input_ct(transport, ctx, j, ci)?);
            }
            for (ci, cts) in class_data.iter().enumerate() {
                let convolved = ex.run(cts, |_, ct| conv_one(ci, ct));
                for (outs, c) in convolved {
                    absorb_ct(
                        ci,
                        outs,
                        c,
                        &mut counts,
                        &mut group_server,
                        &mut seen_cts,
                        &mut server_pieces,
                        &mut seq_out,
                        &mut *batch_rngs,
                        rng,
                    )?;
                }
            }
            None
        }
        ExecBackend::Streaming(cfg) => {
            let counts_ref = &mut counts;
            let group_server_ref = &mut group_server;
            let seen_ref = &mut seen_cts;
            let pieces_ref = &mut server_pieces;
            let seq_ref = &mut seq_out;
            let batch_rngs_ref = &mut *batch_rngs;
            let rng_ref = &mut *rng;
            let ct_class_ref = &ct_class;
            let conv_one_ref = &conv_one;
            let stats = run_stream(
                cfg,
                // Ingest: validate and forward each upload the moment
                // it arrives — SPOT's per-input dependency means
                // convolution starts immediately. Deserialization
                // happens on the worker pool so the ingest thread goes
                // straight back to the transport.
                |feeder| {
                    for (j, &ci) in ct_class_ref.iter().enumerate() {
                        feeder.push((ci, recv_input_blob(transport, j, ci)?))?;
                    }
                    Ok(())
                },
                |_, (ci, blob): (usize, Vec<u8>)| {
                    let ct = Ciphertext::try_from_bytes(ctx, &blob)?;
                    let (outs, c) = conv_one_ref(ci, &ct);
                    Ok::<_, SpotError>((ci, outs, c))
                },
                // Caller thread, in upload order: mask and return each
                // result, overlapped with ongoing uploads.
                |_, convolved| {
                    let (ci, outs, c) = convolved?;
                    absorb_ct(
                        ci,
                        outs,
                        c,
                        counts_ref,
                        group_server_ref,
                        seen_ref,
                        pieces_ref,
                        seq_ref,
                        batch_rngs_ref,
                        rng_ref,
                    )
                },
            )?;
            Some(stats)
        }
    };

    // Classes with zero pieces never trigger the unpack above; they
    // also contribute no pieces to the assembly, so nothing is lost.
    let mut shares = server_pieces.into_iter().map(|pieces| {
        let full = crate::patching::assemble(probe, &pieces, shape.height, shape.width);
        Tensor::from_fn(
            shape.c_out,
            shape.out_height(),
            shape.out_width(),
            |c, y, x| full.at(c, y * shape.stride, x * shape.stride),
        )
    });

    Ok(ServerConvSummary {
        server_share: shares.next().expect("batch >= 1"),
        extra_shares: shares.collect(),
        counts,
        input_cts,
        output_cts: input_cts * out_groups,
        stream,
    })
}

// ---------------------------------------------------------------------
// In-process combinator
// ---------------------------------------------------------------------

/// Result of an in-process client/server run: the merged functional
/// result plus per-direction traffic measured from the real serialized
/// frames.
#[derive(Debug)]
pub struct InProcessOutcome {
    /// Shares, merged op counts, and ciphertext counts.
    pub result: SecureConvResult,
    /// Streaming stall accounting (None for the phased backend).
    pub stream: Option<StreamStats>,
    /// Client → server traffic (framed wire bytes).
    pub uplink: TrafficStats,
    /// Server → client traffic (framed wire bytes).
    pub downlink: TrafficStats,
}

/// Result of an in-process batched client/server run: per-image shares
/// plus the per-batch operation counts and traffic.
#[derive(Debug)]
pub struct BatchConvOutcome {
    /// Each image's client share, in submission order.
    pub client_shares: Vec<Tensor>,
    /// Each image's server share, in submission order.
    pub server_shares: Vec<Tensor>,
    /// HE operations for the whole batch (slot batching leaves the
    /// rotation and key-switch counts at their single-image values).
    pub counts: OpCounts,
    /// Input ciphertexts uploaded for the whole batch.
    pub input_cts: usize,
    /// Masked result ciphertexts returned for the whole batch.
    pub output_cts: usize,
    /// Plaintext modulus the shares live in.
    pub modulus: u64,
    /// Streaming stall accounting (None for the phased backend).
    pub stream: Option<StreamStats>,
    /// Client → server traffic (framed wire bytes).
    pub uplink: TrafficStats,
    /// Server → client traffic (framed wire bytes).
    pub downlink: TrafficStats,
}

impl BatchConvOutcome {
    /// Per-image functional results. Operation and ciphertext counts
    /// are per batch and repeat on every image's result.
    pub fn into_results(self) -> Vec<SecureConvResult> {
        let counts = self.counts;
        let (input_cts, output_cts, modulus) = (self.input_cts, self.output_cts, self.modulus);
        self.client_shares
            .into_iter()
            .zip(self.server_shares)
            .map(|(client_share, server_share)| SecureConvResult {
                client_share,
                server_share,
                counts,
                input_cts,
                output_cts,
                modulus,
            })
            .collect()
    }
}

/// Runs one secure convolution with both parties in this process over a
/// [`MemTransport`], exchanging real serialized frames.
///
/// Client and server randomness is split deterministically from `rng`
/// (one seed draw each, in that order) so phased and streaming runs of
/// the same seed produce bit-identical shares. With the phased backend
/// the parties run sequentially on the calling thread; with the
/// streaming backend the client uploads from a second thread through a
/// bounded uplink sized to the stream config's channel capacity.
#[allow(clippy::too_many_arguments)]
pub fn run_in_process<R: Rng>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    input: &Tensor,
    kernel: &Kernel,
    stride: usize,
    patch: (usize, usize),
    mode: PatchMode,
    scheme: SchemeKind,
    backend: &ExecBackend,
    rng: &mut R,
) -> Result<InProcessOutcome, SpotError> {
    let mut out = run_in_process_batched(
        ctx,
        keygen,
        std::slice::from_ref(input),
        kernel,
        stride,
        patch,
        mode,
        scheme,
        backend,
        rng,
    )?;
    Ok(InProcessOutcome {
        result: SecureConvResult {
            client_share: out.client_shares.remove(0),
            server_share: out.server_shares.remove(0),
            counts: out.counts,
            input_cts: out.input_cts,
            output_cts: out.output_cts,
            modulus: out.modulus,
        },
        stream: out.stream,
        uplink: out.uplink,
        downlink: out.downlink,
    })
}

/// [`run_in_process`] over a batch of images coalesced into shared
/// ciphertexts (see [`ClientConv::send_all_batched`]). A one-image
/// batch is bit- and byte-identical to [`run_in_process`].
#[allow(clippy::too_many_arguments)]
pub fn run_in_process_batched<R: Rng>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    inputs: &[Tensor],
    kernel: &Kernel,
    stride: usize,
    patch: (usize, usize),
    mode: PatchMode,
    scheme: SchemeKind,
    backend: &ExecBackend,
    rng: &mut R,
) -> Result<BatchConvOutcome, SpotError> {
    let first = inputs
        .first()
        .ok_or_else(|| SpotError::Protocol("empty input batch".into()))?;
    let batch = inputs.len();
    let spec = LayerSpec {
        scheme,
        shape: ConvShape {
            width: first.width(),
            height: first.height(),
            c_in: first.channels(),
            c_out: kernel.out_channels(),
            k_h: kernel.k_h(),
            k_w: kernel.k_w(),
            stride,
        },
        patch,
        mode,
    };
    let client_seed = rng.gen::<u64>();
    let server_seed = rng.gen::<u64>();
    let client = ClientConv::new(ctx, keygen, spec)?;

    let (sent, mut server, share, client_transport) = match backend {
        ExecBackend::Phased(_) => {
            let (ct, st) = MemTransport::pair();
            let mut crng = StdRng::seed_from_u64(client_seed);
            let sent = client.send_all_batched(&ct, inputs, UploadPacing::Eager, &mut crng)?;
            let mut srng = StdRng::seed_from_u64(server_seed);
            let server = serve_conv(ctx, &st, kernel, backend, &mut srng)?;
            let share = client.absorb_all_batched(&ct, batch)?;
            (sent, server, share, ct)
        }
        ExecBackend::Streaming(cfg) => {
            let (ct, st) = MemTransport::pair_with_capacity(Some(cfg.channel_capacity), None);
            let ct_ref = &ct;
            let st_ref = &st;
            let client_ref = &client;
            let scope_result = crossbeam::thread::scope(|s| {
                let uploader = s.spawn(move |_| {
                    let t0 = Instant::now();
                    let r = client_ref.send_all_batched(
                        ct_ref,
                        inputs,
                        UploadPacing::AwaitAck,
                        &mut StdRng::seed_from_u64(client_seed),
                    );
                    // Always close: a server stuck in recv after a client
                    // failure sees Closed instead of blocking forever.
                    ct_ref.close_tx();
                    (r, t0.elapsed())
                });
                let mut srng = StdRng::seed_from_u64(server_seed);
                let server_res = serve_conv(ctx, st_ref, kernel, backend, &mut srng);
                if server_res.is_err() {
                    // Unblock a client stuck on the bounded uplink.
                    ct_ref.close_tx();
                    st_ref.close_tx();
                }
                let (client_res, client_wall) = uploader.join().expect("client thread panicked");
                (server_res, client_res, client_wall)
            });
            let (server_res, client_res, client_wall) = match scope_result {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            let mut server = server_res?;
            let sent = client_res?;
            // The barrier/stream stats measured the server's ingest loop
            // as "client"; substitute the real client thread's wall time
            // and the transport's measured send backpressure.
            if let Some(stats) = server.stream.as_mut() {
                let blocked = ct.stats().send_blocked.as_secs_f64();
                stats.client_blocked_s = blocked;
                stats.client_s = (client_wall.as_secs_f64() - blocked).max(0.0);
            }
            let share = client.absorb_all_batched(&ct, batch)?;
            (sent, server, share, ct)
        }
    };

    let mut counts = server.counts;
    counts.encrypt += sent.encrypt;
    counts.decrypt += share.decrypt;
    let mut server_shares = Vec::with_capacity(batch);
    server_shares.push(server.server_share);
    server_shares.append(&mut server.extra_shares);
    let tstats = client_transport.stats();
    Ok(BatchConvOutcome {
        client_shares: share.shares,
        server_shares,
        counts,
        input_cts: server.input_cts,
        output_cts: server.output_cts,
        modulus: ctx.params().plain_modulus(),
        stream: server.stream.take(),
        uplink: tstats.sent,
        downlink: tstats.received,
    })
}
