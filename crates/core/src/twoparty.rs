//! Two-party TinyCnn inference over a wire [`Transport`]: the client
//! holds the input, the server holds the model, and every byte between
//! them crosses the typed protocol — so the same code drives an
//! in-process [`MemTransport`](spot_proto::transport::MemTransport)
//! pair or two OS processes over framed TCP.
//!
//! Layer flow: each convolution runs as a client/server session
//! ([`ClientConv`] against [`serve_conv`]); each non-linearity is one
//! `OtRound` request/reply on additive shares; layer boundaries use
//! `ShareReveal`.
//!
//! **Demo simplification.** The non-linear rounds here stand in for the
//! OT-based DReLU/comparison protocols (simulated in-process by
//! [`spot_proto::relu`]): the client sends its additive share, the
//! server reconstructs the value, applies the function, and re-shares
//! with fresh randomness. This reveals post-conv activations to the
//! server and is **not private** — it exercises the wire protocol,
//! session state machines, and traffic accounting end to end while
//! keeping the demo dependency-free. The mid-network `ShareReveal`
//! mirrors the in-process driver, which also reconstructs between
//! layers ("the client re-encrypts its share and the server adds its
//! own — the arithmetic is identical").

use crate::error::SpotError;
use crate::inference::TinyCnn;
use crate::patching::PatchMode;
use crate::session::{
    serve_conv_with, ClientConv, ExecBackend, LayerSpec, SchemeKind, ServeOptions, UploadPacing,
};
use crate::stream::StreamStats;
use rand::Rng;
use spot_he::context::Context;
use spot_he::evaluator::OpCounts;
use spot_he::keys::KeyGenerator;
use spot_proto::transport::Transport;
use spot_proto::wire::WireMessage;
use spot_tensor::models::ConvShape;
use spot_tensor::tensor::Tensor;
use spot_trace::{clocksync, metrics, Cat};
use std::sync::{Arc, OnceLock};

/// `OtRound` op code for ReLU on shares.
pub const OP_RELU: u8 = 1;
/// `OtRound` op code for 2×2 max-pooling on shares.
pub const OP_MAXPOOL: u8 = 2;

/// Trace label for an `OtRound` op code.
fn op_name(op: u8) -> &'static str {
    match op {
        OP_RELU => "relu",
        OP_MAXPOOL => "maxpool",
        _ => "ot",
    }
}

fn encode_share(vals: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_share(blob: &[u8]) -> Result<Vec<u64>, SpotError> {
    if !blob.len().is_multiple_of(8) {
        return Err(SpotError::Protocol(format!(
            "share payload length {} not a multiple of 8",
            blob.len()
        )));
    }
    Ok(blob
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8 bytes")))
        .collect())
}

fn centered(v: u64, t: u64) -> i64 {
    if v > t / 2 {
        v as i64 - t as i64
    } else {
        v as i64
    }
}

fn tensor_to_mod(tensor: &Tensor, t: u64) -> Vec<u64> {
    tensor
        .data()
        .iter()
        .map(|&v| v.rem_euclid(t as i64) as u64)
        .collect()
}

/// One interactive non-linear round from the client's side: send this
/// party's share, receive the re-shared result.
fn client_round(
    transport: &dyn Transport,
    op: u8,
    round: u16,
    payload: Vec<u8>,
) -> Result<Vec<u64>, SpotError> {
    let _span = spot_trace::span_owned(Cat::Session, || format!("{} round", op_name(op)))
        .arg("round", round as u64);
    transport.send(&WireMessage::OtRound {
        op,
        round,
        blob: payload,
    })?;
    let msg = transport.recv()?;
    let WireMessage::OtRound {
        op: rop,
        round: rround,
        blob,
    } = msg
    else {
        return Err(SpotError::Protocol("expected OtRound reply".into()));
    };
    if rop != op || rround != round {
        return Err(SpotError::Protocol(format!(
            "OtRound reply mismatch: got op {rop} round {rround}, want op {op} round {round}"
        )));
    }
    decode_share(&blob)
}

/// Receives the server's `ShareReveal` and reconstructs the centered
/// values from the two additive shares.
fn client_reveal(
    transport: &dyn Transport,
    client_share: &[u64],
    t: u64,
) -> Result<Vec<i64>, SpotError> {
    let msg = transport.recv()?;
    let WireMessage::ShareReveal { blob } = msg else {
        return Err(SpotError::Protocol("expected ShareReveal".into()));
    };
    let server_share = decode_share(&blob)?;
    if server_share.len() != client_share.len() {
        return Err(SpotError::Protocol(format!(
            "ShareReveal length {} does not match client share {}",
            server_share.len(),
            client_share.len()
        )));
    }
    Ok(client_share
        .iter()
        .zip(&server_share)
        .map(|(&c, &s)| centered((c + s) % t, t))
        .collect())
}

/// One secure convolution session from the client's side carrying a
/// whole batch of images, uploading and absorbing concurrently so a
/// socket transport never deadlocks on full buffers in both
/// directions. A one-image batch produces byte-identical traffic to
/// the original single-image session.
fn client_conv_batch<R: Rng + Send>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    transport: &dyn Transport,
    inputs: &[Tensor],
    spec: LayerSpec,
    rng: &mut R,
) -> Result<Vec<Tensor>, SpotError> {
    let conv = ClientConv::new(ctx, keygen, spec)?;
    let conv_ref = &conv;
    let scope_result = crossbeam::thread::scope(|s| {
        let uploader = s.spawn(move |_| {
            // Eager pacing: TCP's own flow control paces a real link,
            // and the concurrent absorber below must own every recv.
            spot_trace::set_thread_label("uploader");
            let sent = conv_ref.send_all_batched(transport, inputs, UploadPacing::Eager, rng);
            spot_trace::flush_thread();
            sent
        });
        let share = conv_ref.absorb_all_batched(transport, inputs.len());
        let sent = uploader.join().expect("upload thread panicked");
        (sent, share)
    });
    let (sent, share) = match scope_result {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    };
    sent?;
    Ok(share?.shares)
}

/// Client half of the two-party TinyCnn demo. `arch` provides the
/// layer *shapes* only — the kernel weights it carries are never read,
/// they live with the server.
///
/// Returns the reconstructed network output.
#[allow(clippy::too_many_arguments)]
pub fn run_client<R: Rng + Send>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    transport: &dyn Transport,
    input: &Tensor,
    arch: &TinyCnn,
    scheme: SchemeKind,
    patch: (usize, usize),
    mode: PatchMode,
    rng: &mut R,
) -> Result<Tensor, SpotError> {
    let mut outputs = run_client_batch(
        ctx,
        keygen,
        transport,
        std::slice::from_ref(input),
        arch,
        scheme,
        patch,
        mode,
        rng,
    )?;
    Ok(outputs.remove(0))
}

/// Client half of the two-party TinyCnn demo over a *batch* of queued
/// inputs: both convolutions run as single batched HE sessions (shared
/// ciphertexts, so rotations and key-switches amortize across the
/// batch), while the non-linear rounds stay per image.
///
/// Per-image OT round numbering is `b` (ReLU 1), `batch + b`
/// (max-pool), `2·batch + b` (ReLU 2), which degenerates to the
/// classic `0, 1, 2` sequence at `batch = 1` — a one-image batch is
/// byte-identical on the wire to [`run_client`]'s historic traffic.
///
/// Returns the reconstructed network output per image, in submission
/// order.
#[allow(clippy::too_many_arguments)]
pub fn run_client_batch<R: Rng + Send>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    transport: &dyn Transport,
    inputs: &[Tensor],
    arch: &TinyCnn,
    scheme: SchemeKind,
    patch: (usize, usize),
    mode: PatchMode,
    rng: &mut R,
) -> Result<Vec<Tensor>, SpotError> {
    match run_client_batch_inner(
        ctx, keygen, transport, inputs, arch, scheme, patch, mode, rng,
    ) {
        // A transport failure mid-upload can mean the server refused
        // the session and hung up before we got to read the typed
        // error frame — drain the receive side so the caller sees the
        // refusal, not just a broken pipe.
        Err(SpotError::Proto(e)) => Err(surface_rejection(transport, SpotError::Proto(e))),
        other => other,
    }
}

/// Drains up to a few pending frames looking for a typed
/// [`WireMessage::Error`]; returns it as [`SpotError::Rejected`], or
/// the original failure if the server never sent one.
fn surface_rejection(transport: &dyn Transport, fallback: SpotError) -> SpotError {
    for _ in 0..8 {
        match transport.recv() {
            Ok(WireMessage::Error { code, detail }) => {
                return SpotError::Rejected { code, detail };
            }
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    fallback
}

#[allow(clippy::too_many_arguments)]
fn run_client_batch_inner<R: Rng + Send>(
    ctx: &Arc<Context>,
    keygen: &KeyGenerator,
    transport: &dyn Transport,
    inputs: &[Tensor],
    arch: &TinyCnn,
    scheme: SchemeKind,
    patch: (usize, usize),
    mode: PatchMode,
    rng: &mut R,
) -> Result<Vec<Tensor>, SpotError> {
    if inputs.is_empty() {
        return Err(SpotError::Protocol("empty input batch".into()));
    }
    let batch = inputs.len();
    let t = ctx.params().plain_modulus();
    let spec_for = |input: &Tensor, c_out: usize, k: usize| LayerSpec {
        scheme,
        shape: ConvShape {
            width: input.width(),
            height: input.height(),
            c_in: input.channels(),
            c_out,
            k_h: k,
            k_w: k,
            stride: 1,
        },
        patch,
        mode,
    };

    // conv1 under HE, one batched session for all images.
    let spec1 = spec_for(&inputs[0], arch.conv1.out_channels(), arch.conv1.k_h());
    let shares1 = client_conv_batch(ctx, keygen, transport, inputs, spec1, rng)?;
    let (c1, h1, w1) = (
        shares1[0].channels(),
        shares1[0].height(),
        shares1[0].width(),
    );

    // ReLU, then 2×2 max-pool, on shares — per image, then the layer
    // boundary reveal reconstructs each mid tensor in turn.
    let mut mids = Vec::with_capacity(batch);
    for (b, share1) in shares1.iter().enumerate() {
        let c = client_round(
            transport,
            OP_RELU,
            b as u16,
            encode_share(&tensor_to_mod(share1, t)),
        )?;
        let mut pooled = Vec::with_capacity(12 + c.len() * 8);
        for d in [c1 as u32, h1 as u32, w1 as u32] {
            pooled.extend_from_slice(&d.to_le_bytes());
        }
        pooled.extend_from_slice(&encode_share(&c));
        let c = client_round(transport, OP_MAXPOOL, (batch + b) as u16, pooled)?;
        let mid_vals = client_reveal(transport, &c, t)?;
        mids.push(Tensor::from_vec(c1, h1 / 2, w1 / 2, mid_vals));
    }

    // conv2 under HE (batched), ReLU, final reveal per image.
    let spec2 = spec_for(&mids[0], arch.conv2.out_channels(), arch.conv2.k_h());
    let shares2 = client_conv_batch(ctx, keygen, transport, &mids, spec2, rng)?;
    let (c2, h2, w2) = (
        shares2[0].channels(),
        shares2[0].height(),
        shares2[0].width(),
    );
    let mut outputs = Vec::with_capacity(batch);
    for (b, share2) in shares2.iter().enumerate() {
        let c = client_round(
            transport,
            OP_RELU,
            (2 * batch + b) as u16,
            encode_share(&tensor_to_mod(share2, t)),
        )?;
        let out_vals = client_reveal(transport, &c, t)?;
        outputs.push(Tensor::from_vec(c2, h2, w2, out_vals));
    }

    // Clock-alignment handshake, only when wire trace context is on
    // (it adds frames, so the plain byte stream stays untouched) and
    // best-effort: any failure just leaves the trace without an
    // estimate. Runs right before Teardown, when both pipes are idle.
    if spot_trace::wire_context_enabled() {
        let est = clocksync::run_probe(clocksync::PROBE_ROUNDS, |seq| {
            transport
                .send(&WireMessage::ClockProbe {
                    seq,
                    t_rx_ns: 0,
                    t_tx_ns: 0,
                })
                .ok()?;
            match transport.recv() {
                Ok(WireMessage::ClockProbe {
                    seq: echoed,
                    t_rx_ns,
                    t_tx_ns,
                }) if echoed == seq => Some((t_rx_ns, t_tx_ns)),
                _ => None,
            }
        });
        if let Some(est) = est {
            clocksync::record(&est);
        }
    }

    transport.send(&WireMessage::Teardown)?;
    transport.close_tx();
    Ok(outputs)
}

/// Server-side outcome of a two-party TinyCnn run.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// HE operation counts over both convolution layers (totals for the
    /// whole batch; divide by [`batch`](Self::batch) for per-image
    /// amortized figures).
    pub counts: OpCounts,
    /// Accumulated stall accounting (zero for the phased backend).
    pub stream: StreamStats,
    /// Input ciphertexts received across all conv layers.
    pub input_cts: usize,
    /// Masked result ciphertexts sent across all conv layers.
    pub output_cts: usize,
    /// Images carried by the batched convolution sessions (1 for a
    /// classic single-image run).
    pub batch: usize,
}

/// Expects the next message to be the given non-linear round; returns
/// the client's share payload.
fn server_expect_round(
    transport: &dyn Transport,
    op: u8,
    round: u16,
) -> Result<Vec<u8>, SpotError> {
    let msg = transport.recv()?;
    let WireMessage::OtRound {
        op: rop,
        round: rround,
        blob,
    } = msg
    else {
        return Err(SpotError::Protocol("expected OtRound".into()));
    };
    if rop != op || rround != round {
        return Err(SpotError::Protocol(format!(
            "OtRound out of order: got op {rop} round {rround}, want op {op} round {round}"
        )));
    }
    Ok(blob)
}

/// Re-shares `values` (signed, centered) with fresh randomness: the
/// server keeps the drawn share and returns the client's half.
fn reshare<R: Rng>(values: &[i64], t: u64, rng: &mut R) -> (Vec<u64>, Vec<u64>) {
    let mut server = Vec::with_capacity(values.len());
    let mut client = Vec::with_capacity(values.len());
    for &y in values {
        let ym = y.rem_euclid(t as i64) as u64;
        let s = rng.gen_range(0..t);
        server.push(s);
        client.push((ym + t - s) % t);
    }
    (server, client)
}

/// One ReLU round from the server's side: reconstruct, clamp, reshare.
/// Returns the server's fresh share of the result.
// Live-registry latency of one full nonlinear round (recv share →
// compute → reshare → send), per protocol.
fn relu_round_hist() -> &'static metrics::Histogram {
    static H: OnceLock<Arc<metrics::Histogram>> = OnceLock::new();
    H.get_or_init(|| metrics::global().histogram("spot_relu_round_ns", &[]))
}

fn maxpool_round_hist() -> &'static metrics::Histogram {
    static H: OnceLock<Arc<metrics::Histogram>> = OnceLock::new();
    H.get_or_init(|| metrics::global().histogram("spot_maxpool_round_ns", &[]))
}

fn server_relu_round<R: Rng>(
    transport: &dyn Transport,
    round: u16,
    server_share: &[u64],
    t: u64,
    rng: &mut R,
) -> Result<Vec<u64>, SpotError> {
    let _span = spot_trace::span(Cat::Session, "relu round").arg("round", round as u64);
    let _timer = relu_round_hist().start_timer();
    let blob = server_expect_round(transport, OP_RELU, round)?;
    let client_share = decode_share(&blob)?;
    if client_share.len() != server_share.len() {
        return Err(SpotError::Protocol(format!(
            "relu share length {} does not match server share {}",
            client_share.len(),
            server_share.len()
        )));
    }
    let relu: Vec<i64> = client_share
        .iter()
        .zip(server_share)
        .map(|(&c, &s)| centered((c + s) % t, t).max(0))
        .collect();
    let (srv, cli) = reshare(&relu, t, rng);
    transport.send(&WireMessage::OtRound {
        op: OP_RELU,
        round,
        blob: encode_share(&cli),
    })?;
    Ok(srv)
}

/// One 2×2 max-pool round from the server's side (client payload is
/// prefixed with the tensor dims, validated against `dims`). Returns
/// the server's fresh share of the pooled result.
fn server_maxpool_round<R: Rng>(
    transport: &dyn Transport,
    round: u16,
    dims: (usize, usize, usize),
    server_share: &[u64],
    t: u64,
    rng: &mut R,
) -> Result<Vec<u64>, SpotError> {
    let _span = spot_trace::span(Cat::Session, "maxpool round").arg("round", round as u64);
    let _timer = maxpool_round_hist().start_timer();
    let blob = server_expect_round(transport, OP_MAXPOOL, round)?;
    if blob.len() < 12 {
        return Err(SpotError::Protocol("maxpool payload too short".into()));
    }
    let dim = |i: usize| {
        u32::from_le_bytes(blob[i * 4..i * 4 + 4].try_into().expect("4-byte dim")) as usize
    };
    let (pc, ph, pw) = (dim(0), dim(1), dim(2));
    let client_share = decode_share(&blob[12..])?;
    if (pc, ph, pw) != dims || client_share.len() != pc * ph * pw {
        return Err(SpotError::Protocol(format!(
            "maxpool dims {pc}x{ph}x{pw} (len {}) do not match layer {}x{}x{}",
            client_share.len(),
            dims.0,
            dims.1,
            dims.2
        )));
    }
    let vals: Vec<i64> = client_share
        .iter()
        .zip(server_share)
        .map(|(&c, &s)| centered((c + s) % t, t))
        .collect();
    let pooled = spot_tensor::conv::maxpool2(&Tensor::from_vec(pc, ph, pw, vals));
    let (srv, cli) = reshare(pooled.data(), t, rng);
    transport.send(&WireMessage::OtRound {
        op: OP_MAXPOOL,
        round,
        blob: encode_share(&cli),
    })?;
    Ok(srv)
}

/// Server half of the two-party TinyCnn demo: serves both convolution
/// sessions, evaluates the non-linear rounds on reconstructed values
/// (see the module-level demo-simplification note), and reveals its
/// share at layer boundaries.
///
/// The batch width is learned from the client's conv1 `Setup` (the
/// session layer returns one server share per batched image); the
/// non-linear rounds then run per image with the round numbering
/// described on [`run_client_batch`].
pub fn run_server<R: Rng>(
    ctx: &Arc<Context>,
    transport: &dyn Transport,
    cnn: &TinyCnn,
    backend: &ExecBackend,
    rng: &mut R,
) -> Result<ServerReport, SpotError> {
    run_server_with(ctx, transport, cnn, backend, ServeOptions::default(), rng)
}

/// [`run_server`] with serving-layer options ([`ServeOptions`]): shared
/// per-model kernel caches and the per-session batch budget, applied to
/// both convolution layers.
pub fn run_server_with<R: Rng>(
    ctx: &Arc<Context>,
    transport: &dyn Transport,
    cnn: &TinyCnn,
    backend: &ExecBackend,
    opts: ServeOptions<'_>,
    rng: &mut R,
) -> Result<ServerReport, SpotError> {
    let t = ctx.params().plain_modulus();
    let mut report = ServerReport {
        counts: OpCounts::default(),
        stream: StreamStats::default(),
        input_cts: 0,
        output_cts: 0,
        batch: 1,
    };
    let absorb = |summary: crate::session::ServerConvSummary, report: &mut ServerReport| {
        report.counts.merge(&summary.counts);
        if let Some(s) = &summary.stream {
            report.stream.accumulate(s);
        }
        report.input_cts += summary.input_cts;
        report.output_cts += summary.output_cts;
        let mut shares = vec![summary.server_share];
        shares.extend(summary.extra_shares);
        shares
    };

    // conv1 — the batch width arrives with the client's Setup.
    let shares1 = absorb(
        serve_conv_with(ctx, transport, &cnn.conv1, backend, opts, rng)?,
        &mut report,
    );
    let batch = shares1.len();
    report.batch = batch;
    let (c1, h1, w1) = (
        shares1[0].channels(),
        shares1[0].height(),
        shares1[0].width(),
    );

    // Per image: ReLU, 2×2 max-pool, then the layer-boundary reveal so
    // the client can re-encrypt its mid tensor for conv2.
    for (b, s1) in shares1.iter().enumerate() {
        let server_share = tensor_to_mod(s1, t);
        let server_share = server_relu_round(transport, b as u16, &server_share, t, rng)?;
        let server_share = server_maxpool_round(
            transport,
            (batch + b) as u16,
            (c1, h1, w1),
            &server_share,
            t,
            rng,
        )?;
        transport.send(&WireMessage::ShareReveal {
            blob: encode_share(&server_share),
        })?;
        spot_trace::instant(Cat::Session, "share reveal");
    }

    // conv2 — same batch width.
    let shares2 = absorb(
        serve_conv_with(ctx, transport, &cnn.conv2, backend, opts, rng)?,
        &mut report,
    );
    if shares2.len() != batch {
        return Err(SpotError::Protocol(format!(
            "conv2 batch {} does not match conv1 batch {batch}",
            shares2.len()
        )));
    }

    // Per image: ReLU round, then the final reveal.
    for (b, s2) in shares2.iter().enumerate() {
        let server_share = tensor_to_mod(s2, t);
        let server_share =
            server_relu_round(transport, (2 * batch + b) as u16, &server_share, t, rng)?;
        transport.send(&WireMessage::ShareReveal {
            blob: encode_share(&server_share),
        })?;
        spot_trace::instant(Cat::Session, "share reveal");
    }

    // Orderly teardown; a tracing client interleaves clock-alignment
    // probes first, which we echo back stamped on this process's trace
    // clock (receive time first, transmit time as late as possible).
    loop {
        let msg = transport.recv()?;
        match msg {
            WireMessage::Teardown => break,
            WireMessage::ClockProbe { seq, .. } => {
                let t_rx_ns = spot_trace::trace_now_ns();
                transport.send(&WireMessage::ClockProbe {
                    seq,
                    t_rx_ns,
                    t_tx_ns: spot_trace::trace_now_ns(),
                })?;
            }
            _ => return Err(SpotError::Protocol("expected Teardown".into())),
        }
    }
    transport.close_tx();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::stream::StreamConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spot_he::params::{EncryptionParams, ParamLevel};
    use spot_proto::transport::MemTransport;

    fn run_pair(backend: ExecBackend, scheme: SchemeKind) -> (Tensor, Tensor) {
        let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
        let cnn = TinyCnn::new(7);
        let input = Tensor::random(2, 8, 8, 5, 9);
        let want = cnn.forward_plain(&input);
        let (ct, st) = MemTransport::pair();
        let ctx_s = Arc::clone(&ctx);
        let cnn_s = cnn.clone();
        let server = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(1312);
            run_server(&ctx_s, &st, &cnn_s, &backend, &mut rng)
        });
        let mut rng = StdRng::seed_from_u64(99);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let got = run_client(
            &ctx,
            &kg,
            &ct,
            &input,
            &cnn,
            scheme,
            (4, 4),
            PatchMode::Tweaked,
            &mut rng,
        )
        .expect("client run");
        let report = server.join().expect("server thread").expect("server run");
        assert!(report.input_cts > 0);
        assert!(report.counts.mult_plain > 0);
        (got, want)
    }

    #[test]
    fn twoparty_tiny_cnn_matches_plain_all_schemes() {
        for scheme in [
            SchemeKind::Channelwise,
            SchemeKind::Cheetah,
            SchemeKind::Spot,
        ] {
            let (got, want) = run_pair(ExecBackend::Phased(Executor::serial()), scheme);
            assert_eq!(got, want, "scheme {scheme:?}");
        }
    }

    #[test]
    fn twoparty_streaming_backend_matches_plain() {
        let cfg = StreamConfig::new(Executor::new(2), 2);
        let (got, want) = run_pair(ExecBackend::Streaming(cfg), SchemeKind::Spot);
        assert_eq!(got, want);
    }

    #[test]
    fn twoparty_batched_matches_plain_per_image() {
        let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
        let cnn = TinyCnn::new(7);
        let inputs: Vec<Tensor> = (0..3).map(|b| Tensor::random(2, 8, 8, 5, 9 + b)).collect();
        let want: Vec<Tensor> = inputs.iter().map(|i| cnn.forward_plain(i)).collect();
        let (ct, st) = MemTransport::pair();
        let ctx_s = Arc::clone(&ctx);
        let cnn_s = cnn.clone();
        let backend = ExecBackend::Phased(Executor::serial());
        let server = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(1312);
            run_server(&ctx_s, &st, &cnn_s, &backend, &mut rng)
        });
        let mut rng = StdRng::seed_from_u64(99);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let got = run_client_batch(
            &ctx,
            &kg,
            &ct,
            &inputs,
            &cnn,
            SchemeKind::Spot,
            (4, 4),
            PatchMode::Tweaked,
            &mut rng,
        )
        .expect("client batch run");
        let report = server.join().expect("server thread").expect("server run");
        assert_eq!(report.batch, 3);
        assert_eq!(got, want);
    }
}
