//! Streaming runtime acceptance tests.
//!
//! 1. **Determinism** — for every scheme, the streamed execution's
//!    shares and operation counts are bit-identical to the phased
//!    driver's for the same rng seed, at 1 and 8 server worker threads
//!    and small channel capacities (so backpressure actually engages).
//! 2. **Stall accounting sanity** — on a single-thread server, SPOT's
//!    measured server idle (the paper's linear computation stall) is
//!    strictly less than channel-wise packing's on the same layer,
//!    because SPOT convolves each ciphertext as it arrives while the
//!    channel-wise barrier parks the worker for the whole upload.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_core::executor::Executor;
use spot_core::inference::{run_conv_backend, run_conv_backend_batched, ExecBackend, Scheme};
use spot_core::patching::PatchMode;
use spot_core::stream::StreamConfig;
use spot_core::{channelwise, spot};
use spot_he::context::Context;
use spot_he::keys::KeyGenerator;
use spot_he::params::{EncryptionParams, ParamLevel};
use spot_tensor::tensor::{Kernel, Tensor};
use std::sync::Arc;

fn ctx4096() -> Arc<Context> {
    Context::new(EncryptionParams::new(ParamLevel::N4096))
}

/// Runs one scheme phased and streamed from the same seed and asserts
/// bit-identical results.
fn assert_streaming_matches_phased(scheme: Scheme, threads: usize, channel_capacity: usize) {
    let ctx = ctx4096();
    let mut keyrng = StdRng::seed_from_u64(9000);
    let keygen = KeyGenerator::new(&ctx, &mut keyrng);
    let input = Tensor::random(4, 8, 8, 8, 17);
    let kernel = Kernel::random(4, 4, 3, 3, 4, 18);

    let mut rng_a = StdRng::seed_from_u64(4242);
    let (phased, none) = run_conv_backend(
        &ctx,
        &keygen,
        &input,
        &kernel,
        1,
        (4, 4),
        PatchMode::Tweaked,
        scheme,
        &ExecBackend::Phased(Executor::new(threads)),
        &mut rng_a,
    );
    assert!(none.is_none());

    let mut rng_b = StdRng::seed_from_u64(4242);
    let cfg = StreamConfig::new(Executor::new(threads), channel_capacity);
    let (streamed, stats) = run_conv_backend(
        &ctx,
        &keygen,
        &input,
        &kernel,
        1,
        (4, 4),
        PatchMode::Tweaked,
        scheme,
        &ExecBackend::Streaming(cfg),
        &mut rng_b,
    );
    let stats = stats.expect("streaming backend reports stats");

    let tag = format!("{} threads={threads} cap={channel_capacity}", scheme.name());
    assert_eq!(phased.client_share, streamed.client_share, "{tag}");
    assert_eq!(phased.server_share, streamed.server_share, "{tag}");
    assert_eq!(phased.counts, streamed.counts, "{tag}");
    assert_eq!(phased.input_cts, streamed.input_cts, "{tag}");
    assert_eq!(phased.output_cts, streamed.output_cts, "{tag}");
    assert_eq!(stats.input_items, streamed.input_cts, "{tag}");
    assert_eq!(stats.channel_capacity, channel_capacity, "{tag}");
    assert!(stats.wall_s > 0.0, "{tag}");
}

#[test]
fn spot_streaming_deterministic_1_thread() {
    assert_streaming_matches_phased(Scheme::Spot, 1, 1);
}

#[test]
fn spot_streaming_deterministic_8_threads() {
    assert_streaming_matches_phased(Scheme::Spot, 8, 2);
}

#[test]
fn channelwise_streaming_deterministic_1_thread() {
    assert_streaming_matches_phased(Scheme::CrypTFlow2, 1, 1);
}

#[test]
fn channelwise_streaming_deterministic_8_threads() {
    assert_streaming_matches_phased(Scheme::CrypTFlow2, 8, 2);
}

/// A batched session is deterministic across backends too: per-image
/// shares and the whole-batch counts are bit-identical between the
/// phased driver and the streamed one for the same seed.
fn assert_batched_streaming_matches_phased(threads: usize, channel_capacity: usize) {
    let ctx = ctx4096();
    let mut keyrng = StdRng::seed_from_u64(9000);
    let keygen = KeyGenerator::new(&ctx, &mut keyrng);
    let inputs: Vec<Tensor> = (0..3u64)
        .map(|b| Tensor::random(2, 8, 8, 5, 17 + b))
        .collect();
    let kernel = Kernel::random(4, 2, 3, 3, 4, 18);

    let mut rng_a = StdRng::seed_from_u64(4242);
    let (phased, none) = run_conv_backend_batched(
        &ctx,
        &keygen,
        &inputs,
        &kernel,
        1,
        (4, 4),
        PatchMode::Tweaked,
        Scheme::Spot,
        &ExecBackend::Phased(Executor::new(threads)),
        &mut rng_a,
    );
    assert!(none.is_none());

    let mut rng_b = StdRng::seed_from_u64(4242);
    let cfg = StreamConfig::new(Executor::new(threads), channel_capacity);
    let (streamed, stats) = run_conv_backend_batched(
        &ctx,
        &keygen,
        &inputs,
        &kernel,
        1,
        (4, 4),
        PatchMode::Tweaked,
        Scheme::Spot,
        &ExecBackend::Streaming(cfg),
        &mut rng_b,
    );
    stats.expect("streaming backend reports stats");

    let tag = format!("batched threads={threads} cap={channel_capacity}");
    assert_eq!(phased.len(), inputs.len(), "{tag}");
    assert_eq!(streamed.len(), inputs.len(), "{tag}");
    for (b, (p, s)) in phased.iter().zip(&streamed).enumerate() {
        assert_eq!(p.client_share, s.client_share, "{tag} image {b}");
        assert_eq!(p.server_share, s.server_share, "{tag} image {b}");
        assert_eq!(p.counts, s.counts, "{tag} image {b}");
    }
}

#[test]
fn spot_batched_streaming_deterministic_1_thread() {
    assert_batched_streaming_matches_phased(1, 1);
}

#[test]
fn spot_batched_streaming_deterministic_8_threads() {
    assert_batched_streaming_matches_phased(8, 2);
}

#[test]
fn cheetah_streaming_deterministic_1_thread() {
    assert_streaming_matches_phased(Scheme::Cheetah, 1, 1);
}

#[test]
fn cheetah_streaming_deterministic_8_threads() {
    assert_streaming_matches_phased(Scheme::Cheetah, 8, 2);
}

/// Streamed results also reconstruct to the true convolution (guards
/// against phased and streamed agreeing on a wrong answer).
#[test]
fn streamed_results_reconstruct_correctly() {
    let ctx = ctx4096();
    let mut rng = StdRng::seed_from_u64(31000);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let input = Tensor::random(4, 8, 8, 8, 71);
    let kernel = Kernel::random(4, 4, 3, 3, 4, 72);
    let want = spot_tensor::conv::conv2d(&input, &kernel, 1);
    for scheme in Scheme::ALL {
        let cfg = StreamConfig::new(Executor::new(4), 2);
        let (res, _) = run_conv_backend(
            &ctx,
            &keygen,
            &input,
            &kernel,
            1,
            (4, 4),
            PatchMode::Tweaked,
            scheme,
            &ExecBackend::Streaming(cfg),
            &mut rng,
        );
        assert_eq!(res.reconstruct(), want, "scheme {}", scheme.name());
    }
}

/// The measured stall comparison of the paper, scaled down to a
/// test-sized Table-I-class layer (16×16 map, C_i = 32 → two
/// channel-wise input ciphertexts at N4096): on a single-thread server
/// with the same tiny-client channel budget, SPOT's per-input streaming
/// keeps the worker busy during the upload while the channel-wise
/// barrier parks it until the last ciphertext lands.
#[test]
fn spot_server_idle_below_channelwise_on_table1_layer() {
    let ctx = ctx4096();
    let mut keyrng = StdRng::seed_from_u64(5150);
    let keygen = KeyGenerator::new(&ctx, &mut keyrng);
    let input = Tensor::random(32, 16, 16, 4, 81);
    let kernel = Kernel::random(4, 32, 3, 3, 3, 82);
    let cfg = StreamConfig::new(Executor::serial(), 2);

    let mut rng = StdRng::seed_from_u64(6100);
    let (cw_res, cw_stats) =
        channelwise::execute_streaming(&ctx, &keygen, &input, &kernel, 1, &cfg, &mut rng);
    assert!(
        cw_res.input_cts >= 2,
        "layer must need several uploads to expose the stall, got {}",
        cw_res.input_cts
    );

    let mut rng = StdRng::seed_from_u64(6200);
    let (spot_res, spot_stats) = spot::execute_streaming(
        &ctx,
        &keygen,
        &input,
        &kernel,
        1,
        (4, 4),
        PatchMode::Tweaked,
        &cfg,
        &mut rng,
    );
    assert!(spot_res.input_cts >= 2);

    assert!(
        spot_stats.server_idle_s < cw_stats.server_idle_s,
        "SPOT measured server idle {:.4}s must be below channel-wise {:.4}s",
        spot_stats.server_idle_s,
        cw_stats.server_idle_s
    );
}
