//! Cross-transport determinism: one secure-convolution session run
//! over an in-memory `MemTransport` pair and over a real TCP loopback
//! socket must produce bit-identical client/server shares, operation
//! counts, and framed traffic accounting — for every scheme, both
//! execution backends, at 1 and 8 server worker threads.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_core::executor::Executor;
use spot_core::patching::PatchMode;
use spot_core::session::{
    serve_conv, ClientConv, ExecBackend, LayerSpec, SchemeKind, UploadPacing,
};
use spot_core::stream::StreamConfig;
use spot_he::context::Context;
use spot_he::keys::KeyGenerator;
use spot_he::params::{EncryptionParams, ParamLevel};
use spot_proto::channel::TrafficStats;
use spot_proto::transport::{MemTransport, TcpTransport, Transport};
use spot_tensor::models::ConvShape;
use spot_tensor::tensor::{Kernel, Tensor};
use std::net::TcpListener;
use std::sync::Arc;

const CLIENT_SEED: u64 = 71;
const SERVER_SEED: u64 = 1312;

/// Everything a session run produces that must not depend on the
/// transport carrying it.
#[derive(Debug)]
struct Outcome {
    client_share: Tensor,
    server_share: Tensor,
    input_cts: usize,
    output_cts: usize,
    rotations: u64,
    client_up: TrafficStats,
    client_down: TrafficStats,
}

fn run_session(
    ctx: &Arc<Context>,
    spec: LayerSpec,
    kernel: &Kernel,
    input: &Tensor,
    backend: &ExecBackend,
    client_t: &dyn Transport,
    server_t: &dyn Transport,
) -> Outcome {
    let mut crng = StdRng::seed_from_u64(CLIENT_SEED);
    let keygen = KeyGenerator::new(ctx, &mut crng);
    let conv = ClientConv::new(ctx, &keygen, spec).expect("plan");
    let (share, summary) = std::thread::scope(|s| {
        let client = s.spawn(|| {
            conv.send_all(client_t, input, UploadPacing::Eager, &mut crng)
                .expect("send_all");
            conv.absorb_all(client_t).expect("absorb_all")
        });
        let mut srng = StdRng::seed_from_u64(SERVER_SEED);
        let summary = serve_conv(ctx, server_t, kernel, backend, &mut srng).expect("serve_conv");
        (client.join().expect("client thread"), summary)
    });
    let stats = client_t.stats();
    Outcome {
        client_share: share.share,
        server_share: summary.server_share,
        input_cts: summary.input_cts,
        output_cts: summary.output_cts,
        rotations: summary.counts.rotate,
        client_up: stats.sent,
        client_down: stats.received,
    }
}

fn run_mem(
    ctx: &Arc<Context>,
    spec: LayerSpec,
    kernel: &Kernel,
    input: &Tensor,
    backend: &ExecBackend,
) -> Outcome {
    let (client_t, server_t) = MemTransport::pair();
    run_session(ctx, spec, kernel, input, backend, &client_t, &server_t)
}

fn run_tcp(
    ctx: &Arc<Context>,
    spec: LayerSpec,
    kernel: &Kernel,
    input: &Tensor,
    backend: &ExecBackend,
) -> Outcome {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let accept = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        TcpTransport::from_stream(stream).expect("server transport")
    });
    let client_t = TcpTransport::connect(addr.to_string()).expect("connect loopback");
    let server_t = accept.join().expect("accept thread");
    run_session(ctx, spec, kernel, input, backend, &client_t, &server_t)
}

fn assert_transport_invariant(scheme: SchemeKind, backend: &ExecBackend, tag: &str) {
    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let spec = LayerSpec {
        scheme,
        shape: ConvShape::new(8, 8, 3, 2, 3, 1),
        patch: (4, 4),
        mode: PatchMode::Tweaked,
    };
    let input = Tensor::random(3, 8, 8, 6, 23);
    let kernel = Kernel::random(2, 3, 3, 3, 3, 24);

    let mem = run_mem(&ctx, spec, &kernel, &input, backend);
    let tcp = run_tcp(&ctx, spec, &kernel, &input, backend);

    assert_eq!(
        mem.client_share, tcp.client_share,
        "{tag}: client share differs Mem vs Tcp"
    );
    assert_eq!(
        mem.server_share, tcp.server_share,
        "{tag}: server share differs Mem vs Tcp"
    );
    assert_eq!(mem.input_cts, tcp.input_cts, "{tag}: input cts differ");
    assert_eq!(mem.output_cts, tcp.output_cts, "{tag}: output cts differ");
    assert_eq!(
        mem.rotations, tcp.rotations,
        "{tag}: rotation count differs"
    );
    assert_eq!(
        (mem.client_up.bytes, mem.client_up.messages),
        (tcp.client_up.bytes, tcp.client_up.messages),
        "{tag}: uplink traffic differs"
    );
    assert_eq!(
        (mem.client_down.bytes, mem.client_down.messages),
        (tcp.client_down.bytes, tcp.client_down.messages),
        "{tag}: downlink traffic differs"
    );

    // The shares reconstruct: same plaintext conv both ways, so the
    // invariant is not vacuously comparing garbage.
    assert_eq!(
        (
            mem.client_share.channels(),
            mem.client_share.height(),
            mem.client_share.width()
        ),
        (
            mem.server_share.channels(),
            mem.server_share.height(),
            mem.server_share.width()
        ),
        "{tag}: share shape mismatch"
    );
}

fn all_backends(threads: usize) -> Vec<(ExecBackend, String)> {
    vec![
        (
            ExecBackend::Phased(Executor::new(threads)),
            format!("phased/{threads}t"),
        ),
        (
            ExecBackend::Streaming(StreamConfig::new(Executor::new(threads), 2)),
            format!("streaming/{threads}t"),
        ),
    ]
}

#[test]
fn mem_and_tcp_agree_single_thread() {
    for scheme in [
        SchemeKind::Spot,
        SchemeKind::Channelwise,
        SchemeKind::Cheetah,
    ] {
        for (backend, name) in all_backends(1) {
            assert_transport_invariant(scheme, &backend, &format!("{scheme:?}/{name}"));
        }
    }
}

#[test]
fn mem_and_tcp_agree_eight_threads() {
    for scheme in [
        SchemeKind::Spot,
        SchemeKind::Channelwise,
        SchemeKind::Cheetah,
    ] {
        for (backend, name) in all_backends(8) {
            assert_transport_invariant(scheme, &backend, &format!("{scheme:?}/{name}"));
        }
    }
}
