//! Multi-tenant serving acceptance tests.
//!
//! 1. **Concurrency is invisible in the shares** — a client served as
//!    one of N ≥ 8 concurrent sessions sharing one [`SharedKernelCaches`]
//!    produces client and server shares bit-identical to the same
//!    client served alone with private caches, over both `MemTransport`
//!    and framed TCP, with cross-image batching active inside each
//!    session.
//! 2. **Kernel caches build once per model** — across N concurrent
//!    full-pipeline sessions through a [`SpotServer`], the summed
//!    `KernelCacheBuild` counter equals a solo session's builds and
//!    every later session hits.
//! 3. **Cross-session coalescing** — requests from distinct logical
//!    clients of one tenant ride shared SIMD-slot batches: 6 queued
//!    requests at batch cap 3 cost exactly 2 upstream sessions and
//!    still reconstruct to the plaintext forward pass.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_core::executor::Executor;
use spot_core::inference::TinyCnn;
use spot_core::patching::PatchMode;
use spot_core::serving::{session_seed, ModelContext, ServingConfig, SpotServer, TenantGateway};
use spot_core::session::{
    serve_conv_with, ClientConv, ExecBackend, LayerSpec, SchemeKind, ServeOptions,
    SharedKernelCaches, UploadPacing,
};
use spot_he::context::Context;
use spot_he::keys::KeyGenerator;
use spot_he::params::{EncryptionParams, ParamLevel};
use spot_proto::transport::{MemTransport, TcpTransport};
use spot_tensor::models::ConvShape;
use spot_tensor::tensor::{Kernel, Tensor};
use spot_trace::Counter;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

const SESSIONS: usize = 8;

fn test_spec(scheme: SchemeKind) -> LayerSpec {
    LayerSpec {
        scheme,
        shape: ConvShape {
            width: 8,
            height: 8,
            c_in: 2,
            c_out: 4,
            k_h: 3,
            k_w: 3,
            stride: 1,
        },
        patch: (4, 4),
        mode: PatchMode::Tweaked,
    }
}

fn test_kernel() -> Kernel {
    Kernel::random(4, 2, 3, 3, 3, 41)
}

/// Per-client inputs: a 2-image batch so cross-image SIMD batching is
/// active inside every session.
fn client_inputs(client: usize) -> Vec<Tensor> {
    (0..2u64)
        .map(|b| Tensor::random(2, 8, 8, 5, 500 + 10 * client as u64 + b))
        .collect()
}

/// One full conv session (upload, serve, absorb) over the given
/// transport halves; returns (client shares, server shares).
fn run_session(
    ctx: &Arc<Context>,
    client: usize,
    spec: LayerSpec,
    kernel: &Kernel,
    transports: (&dyn spot_proto::Transport, &dyn spot_proto::Transport),
    server_seed: u64,
    opts: ServeOptions<'_>,
) -> (Vec<Tensor>, Vec<Tensor>) {
    let (ct, st) = transports;
    let inputs = client_inputs(client);
    let mut keyrng = StdRng::seed_from_u64(9000 + client as u64);
    let kg = KeyGenerator::new(ctx, &mut keyrng);
    let conv = ClientConv::new(ctx, &kg, spec).expect("client conv");
    let mut crng = StdRng::seed_from_u64(777 + client as u64);
    let (shares, summary) = std::thread::scope(|s| {
        let server = s.spawn(|| {
            let mut srng = StdRng::seed_from_u64(server_seed);
            let backend = ExecBackend::Phased(Executor::serial());
            serve_conv_with(ctx, st, kernel, &backend, opts, &mut srng).expect("serve")
        });
        conv.send_all_batched(ct, &inputs, UploadPacing::Eager, &mut crng)
            .expect("upload");
        let shares = conv.absorb_all_batched(ct, inputs.len()).expect("absorb");
        (shares, server.join().expect("server thread"))
    });
    let mut server_shares = vec![summary.server_share];
    server_shares.extend(summary.extra_shares);
    (shares.shares, server_shares)
}

/// N concurrent sessions over `MemTransport`, all feeding one shared
/// kernel cache, must produce shares bit-identical to each client's
/// solo run with private caches and the same derived seed.
#[test]
fn concurrent_mem_sessions_match_solo_shares() {
    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let kernel = test_kernel();
    let spec = test_spec(SchemeKind::Spot);
    let shared = SharedKernelCaches::new();

    let concurrent: Vec<(Vec<Tensor>, Vec<Tensor>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|client| {
                let ctx = Arc::clone(&ctx);
                let kernel = &kernel;
                let shared = &shared;
                s.spawn(move || {
                    let (ct, st) = MemTransport::pair();
                    run_session(
                        &ctx,
                        client,
                        spec,
                        kernel,
                        (&ct, &st),
                        session_seed(1312, client as u64),
                        ServeOptions {
                            shared: Some(shared),
                            max_batch: None,
                        },
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread"))
            .collect()
    });
    assert!(shared.total_entries() > 0, "shared caches never populated");

    for (client, concurrent_shares) in concurrent.iter().enumerate() {
        let (ct, st) = MemTransport::pair();
        let solo = run_session(
            &ctx,
            client,
            spec,
            &kernel,
            (&ct, &st),
            session_seed(1312, client as u64),
            ServeOptions::default(),
        );
        assert_eq!(
            *concurrent_shares, solo,
            "client {client}: concurrent shares diverge from solo run"
        );
    }
}

/// The same bit-identity holds when the N concurrent sessions run over
/// framed TCP on loopback.
#[test]
fn concurrent_tcp_sessions_match_solo_shares() {
    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let kernel = test_kernel();
    let spec = test_spec(SchemeKind::Spot);
    let shared = SharedKernelCaches::new();
    // Accept order is racy under concurrent connects, so every session
    // uses the same server seed; solo baselines reuse it below.
    let server_seed = 1312u64;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    let concurrent: Vec<(usize, Vec<Tensor>)> = std::thread::scope(|s| {
        let acceptor = s.spawn(|| {
            let mut served = Vec::new();
            std::thread::scope(|inner| {
                let mut sessions = Vec::new();
                for _ in 0..SESSIONS {
                    let (stream, _) = listener.accept().expect("accept");
                    let ctx = Arc::clone(&ctx);
                    let kernel = &kernel;
                    let shared = &shared;
                    sessions.push(inner.spawn(move || {
                        let st = TcpTransport::from_stream(stream).expect("wrap");
                        let mut srng = StdRng::seed_from_u64(server_seed);
                        let backend = ExecBackend::Phased(Executor::serial());
                        let summary = serve_conv_with(
                            &ctx,
                            &st,
                            kernel,
                            &backend,
                            ServeOptions {
                                shared: Some(shared),
                                max_batch: None,
                            },
                            &mut srng,
                        )
                        .expect("serve");
                        let mut server_shares = vec![summary.server_share];
                        server_shares.extend(summary.extra_shares);
                        server_shares
                    }));
                }
                for h in sessions {
                    served.push(h.join().expect("tcp session"));
                }
            });
            served
        });

        let clients: Vec<_> = (0..SESSIONS)
            .map(|client| {
                let ctx = Arc::clone(&ctx);
                s.spawn(move || {
                    let ct = TcpTransport::connect(addr.to_string()).expect("connect");
                    let inputs = client_inputs(client);
                    let mut keyrng = StdRng::seed_from_u64(9000 + client as u64);
                    let kg = KeyGenerator::new(&ctx, &mut keyrng);
                    let conv = ClientConv::new(&ctx, &kg, spec).expect("client conv");
                    let mut crng = StdRng::seed_from_u64(777 + client as u64);
                    conv.send_all_batched(&ct, &inputs, UploadPacing::Eager, &mut crng)
                        .expect("upload");
                    let shares = conv.absorb_all_batched(&ct, inputs.len()).expect("absorb");
                    (client, shares.shares)
                })
            })
            .collect();
        let client_shares: Vec<_> = clients
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        acceptor.join().expect("acceptor");
        client_shares
    });

    for (client, tcp_shares) in &concurrent {
        let (ct, st) = MemTransport::pair();
        let (solo_client_shares, _) = run_session(
            &ctx,
            *client,
            spec,
            &kernel,
            (&ct, &st),
            server_seed,
            ServeOptions::default(),
        );
        assert_eq!(
            *tcp_shares, solo_client_shares,
            "client {client}: TCP concurrent shares diverge from solo Mem run"
        );
    }
}

/// Full-pipeline sessions through the [`SpotServer`]: every concurrent
/// client reconstructs the plaintext forward pass, kernel caches are
/// built once per model (not once per session), and the admission
/// counters stay clean.
#[test]
fn spot_server_builds_kernel_caches_once_per_model() {
    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let cnn = TinyCnn::new(7);

    // Solo baseline: how many cache builds does one session cost?
    let solo_builds = {
        let model = ModelContext::new("tinycnn-solo", Arc::clone(&ctx), cnn.clone());
        let server = SpotServer::new(model, ServingConfig::default());
        assert!(serve_one_mem_client(&server, &ctx, &cnn, 0));
        let builds = server.model().caches().total_entries();
        assert!(builds > 0, "solo session built no kernels");
        builds
    };

    let model = ModelContext::new("tinycnn-7", Arc::clone(&ctx), cnn.clone());
    let server = SpotServer::new(
        model,
        ServingConfig {
            max_sessions: SESSIONS,
            pool_workers: 2,
            ..ServingConfig::default()
        },
    );

    let reports: Vec<(u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|client| {
                let server = &server;
                let ctx = Arc::clone(&ctx);
                let cnn = &cnn;
                s.spawn(move || {
                    let (ct, st) = MemTransport::pair();
                    let (ok, counters) = std::thread::scope(|inner| {
                        let session = inner.spawn(|| {
                            let report = server.serve_connection(&st);
                            report.result.as_ref().expect("session result");
                            report.counters
                        });
                        let ok = mem_client_matches(&ctx, cnn, &ct, client);
                        (ok, session.join().expect("session thread"))
                    });
                    assert!(ok, "client {client} output mismatch");
                    (
                        counters.get(Counter::KernelCacheBuild),
                        counters.get(Counter::KernelCacheHit),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    let total_builds: u64 = reports.iter().map(|(b, _)| b).sum();
    let total_hits: u64 = reports.iter().map(|(_, h)| h).sum();
    assert_eq!(
        total_builds as usize, solo_builds,
        "kernel caches were rebuilt across sessions"
    );
    assert!(
        total_hits >= total_builds * (SESSIONS as u64 - 1),
        "later sessions did not hit the shared cache (hits {total_hits}, builds {total_builds})"
    );
    let stats = server.stats();
    assert_eq!(
        (stats.served, stats.failed, stats.rejected),
        (SESSIONS, 0, 0)
    );
}

/// Six single-request clients of one tenant at batch cap 3 coalesce
/// into exactly two upstream sessions, and every request still
/// reconstructs to the plaintext forward pass.
#[test]
fn tenant_gateway_coalesces_across_clients() {
    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let cnn = TinyCnn::new(7);
    let model = ModelContext::new("tinycnn-7", Arc::clone(&ctx), cnn.clone());
    let server = SpotServer::new(model, ServingConfig::default());

    let gateway = TenantGateway::new(3, Duration::from_millis(5));
    // Queue all six requests *before* the dispatcher starts, so the
    // batch split (3 + 3 -> 2 sessions) is deterministic.
    let requests: Vec<(Tensor, Tensor)> = (0..6u64)
        .map(|i| {
            let input = Tensor::random(2, 8, 8, 5, 900 + i);
            let want = cnn.forward_plain(&input);
            (input, want)
        })
        .collect();
    let slots: Vec<_> = requests
        .iter()
        .map(|(input, _)| gateway.submit(input.clone()).expect("submit"))
        .collect();
    gateway.close();

    let mut rng = StdRng::seed_from_u64(7000);
    let kg = KeyGenerator::new(&ctx, &mut rng);
    let batches = std::thread::scope(|s| {
        let dispatcher = s.spawn(|| {
            let mut drng = StdRng::seed_from_u64(7001);
            gateway.run_dispatcher(
                &ctx,
                &kg,
                &cnn,
                SchemeKind::Spot,
                (4, 4),
                PatchMode::Tweaked,
                || {
                    let (ct, st) = MemTransport::pair();
                    let server = &server;
                    s.spawn(move || {
                        server.serve_connection(&st);
                    });
                    Ok(Box::new(ct) as Box<dyn spot_proto::Transport>)
                },
                &mut drng,
            )
        });
        dispatcher
            .join()
            .expect("dispatcher")
            .expect("dispatch loop")
    });

    assert_eq!(batches, 2, "6 requests at cap 3 should form 2 batches");
    for (i, ((_, want), slot)) in requests.iter().zip(&slots).enumerate() {
        let got = slot.wait().expect("request result");
        assert_eq!(got, *want, "request {i} diverges from plaintext forward");
    }
    let stats = server.stats();
    assert_eq!(stats.served, 2, "coalescing should cost 2 sessions, not 6");
    assert_eq!((stats.failed, stats.rejected), (0, 0));
}

/// Runs one full-pipeline client against `server` over a fresh
/// `MemTransport` pair; returns whether the output matched plain.
fn serve_one_mem_client(
    server: &SpotServer,
    ctx: &Arc<Context>,
    cnn: &TinyCnn,
    client: usize,
) -> bool {
    let (ct, st) = MemTransport::pair();
    std::thread::scope(|s| {
        let session = s.spawn(|| {
            let report = server.serve_connection(&st);
            report.result.as_ref().expect("session result");
        });
        let ok = mem_client_matches(ctx, cnn, &ct, client);
        session.join().expect("session thread");
        ok
    })
}

/// Full-pipeline client run over an existing transport; true when the
/// reconstructed output equals the plaintext forward pass.
fn mem_client_matches(
    ctx: &Arc<Context>,
    cnn: &TinyCnn,
    transport: &MemTransport,
    client: usize,
) -> bool {
    let input = Tensor::random(2, 8, 8, 5, 300 + client as u64);
    let want = cnn.forward_plain(&input);
    let mut rng = StdRng::seed_from_u64(99 + client as u64);
    let kg = KeyGenerator::new(ctx, &mut rng);
    let out = spot_core::twoparty::run_client_batch(
        ctx,
        &kg,
        transport,
        std::slice::from_ref(&input),
        cnn,
        SchemeKind::Spot,
        (4, 4),
        PatchMode::Tweaked,
        &mut rng,
    )
    .expect("client run");
    out[0] == want
}
