//! Cross-party merge determinism: splitting one traced session into its
//! client and server halves and merging them back must yield the same
//! merged-timeline span multiset and the same per-layer overlap
//! structure — layer set, wire-trace-id matches, flow-arrow counts —
//! whether the session ran over Mem or TCP, on 1 or 8 server threads.
//! Wall-clock attribution (busy/idle nanoseconds, efficiency) is
//! scheduling-dependent by design and excluded. Tracing itself — wire
//! context included, which appends the trace id to the setup frame —
//! must leave the computed share bit-identical to an untraced run.
//!
//! All tests share the process-global trace sink, so they serialize on
//! one lock and reset state around each scenario.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_core::executor::Executor;
use spot_core::patching::PatchMode;
use spot_core::session::{
    serve_conv, ClientConv, ExecBackend, LayerSpec, SchemeKind, UploadPacing,
};
use spot_core::stream::StreamConfig;
use spot_he::context::Context;
use spot_he::keys::KeyGenerator;
use spot_he::params::{EncryptionParams, ParamLevel};
use spot_proto::transport::{MemTransport, TcpTransport, Transport};
use spot_tensor::models::ConvShape;
use spot_tensor::tensor::{Kernel, Tensor};
use spot_trace::correlate::{self, MergeReport, Merged, PartyTrace};
use spot_trace::Phase;
use std::collections::BTreeMap;
use std::net::TcpListener;
use std::sync::{Arc, Mutex};

static LOCK: Mutex<()> = Mutex::new(());

/// Span names whose presence depends on scheduling (a worker only
/// records `idle` when it actually waited).
const SCHEDULING_SPANS: &[&str] = &["idle", "blocked (channel full)"];

struct MergedRun {
    merged: Merged,
    share: Tensor,
}

fn fixture(scheme: SchemeKind) -> (Arc<Context>, LayerSpec, Kernel, Tensor) {
    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let spec = LayerSpec {
        scheme,
        shape: ConvShape::new(8, 8, 3, 2, 3, 1),
        patch: (4, 4),
        mode: PatchMode::Tweaked,
    };
    let input = Tensor::random(3, 8, 8, 6, 23);
    let kernel = Kernel::random(2, 3, 3, 3, 3, 24);
    (ctx, spec, kernel, input)
}

fn transports(tcp: bool) -> (Box<dyn Transport>, Box<dyn Transport>) {
    if tcp {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        let accept = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            TcpTransport::from_stream(stream).expect("server transport")
        });
        let client = TcpTransport::connect(addr.to_string()).expect("connect loopback");
        (Box::new(client), Box::new(accept.join().expect("accept")))
    } else {
        let (c, s) = MemTransport::pair();
        (Box::new(c), Box::new(s))
    }
}

/// Runs one client/server session (client on a labeled thread), splits
/// the recorded events into per-party traces by thread id, and merges
/// them back — the in-process equivalent of the two-process
/// `spot-client --trace` / `spot-server --trace` / `trace_merge` flow.
fn run_traced(scheme: SchemeKind, threads: usize, tcp: bool) -> MergedRun {
    let (ctx, spec, kernel, input) = fixture(scheme);
    let backend = ExecBackend::Streaming(StreamConfig::new(Executor::new(threads), 2));
    let (client_t, server_t) = transports(tcp);

    spot_trace::reset();
    spot_trace::enable();
    spot_trace::enable_wire_context();
    let mut crng = StdRng::seed_from_u64(71);
    let keygen = KeyGenerator::new(&ctx, &mut crng);
    let conv = ClientConv::new(&ctx, &keygen, spec).expect("plan");
    let share = std::thread::scope(|s| {
        let client = s.spawn(|| {
            spot_trace::set_thread_label("client");
            conv.send_all(client_t.as_ref(), &input, UploadPacing::Eager, &mut crng)
                .expect("send_all");
            let share = conv.absorb_all(client_t.as_ref()).expect("absorb_all");
            spot_trace::flush_thread();
            share
        });
        let mut srng = StdRng::seed_from_u64(1312);
        serve_conv(&ctx, server_t.as_ref(), &kernel, &backend, &mut srng).expect("serve_conv");
        client.join().expect("client thread")
    });
    let events = spot_trace::take_events();
    let names = spot_trace::thread_names();
    spot_trace::disable_wire_context();
    spot_trace::disable();

    // The thread-name registry accumulates across runs (reset() keeps
    // it), so find the client thread by the span it recorded, not by
    // label — each run's scoped client thread has a fresh tid.
    let client_tid = events
        .iter()
        .find(|e| e.name.as_str().starts_with("send_all"))
        .map(|e| e.tid)
        .expect("client send_all span recorded");
    let (cev, sev): (Vec<_>, Vec<_>) = events.into_iter().partition(|e| e.tid == client_tid);
    let party = |events: Vec<spot_trace::Event>| {
        let threads = names
            .iter()
            .filter(|(t, _)| events.iter().any(|e| e.tid == *t))
            .cloned()
            .collect();
        PartyTrace { events, threads }
    };
    let merged = correlate::merge(&party(cev), &party(sev));
    MergedRun {
        merged,
        share: share.share,
    }
}

/// Same session with the trace layer fully off (no sink, no wire
/// context, setup frames keep their 40-byte payload).
fn run_untraced(scheme: SchemeKind, threads: usize) -> Tensor {
    let (ctx, spec, kernel, input) = fixture(scheme);
    let backend = ExecBackend::Streaming(StreamConfig::new(Executor::new(threads), 2));
    let (client_t, server_t) = transports(false);
    spot_trace::reset();
    let mut crng = StdRng::seed_from_u64(71);
    let keygen = KeyGenerator::new(&ctx, &mut crng);
    let conv = ClientConv::new(&ctx, &keygen, spec).expect("plan");
    let share = std::thread::scope(|s| {
        let client = s.spawn(|| {
            conv.send_all(client_t.as_ref(), &input, UploadPacing::Eager, &mut crng)
                .expect("send_all");
            conv.absorb_all(client_t.as_ref()).expect("absorb_all")
        });
        let mut srng = StdRng::seed_from_u64(1312);
        serve_conv(&ctx, server_t.as_ref(), &kernel, &backend, &mut srng).expect("serve_conv");
        client.join().expect("client thread")
    });
    share.share
}

/// Span-name multiset of the merged timeline, read back through the
/// Chrome-trace parser (so the export → parse → multiset path is the
/// one `trace_merge` exercises), minus the scheduling-dependent spans.
fn merged_span_multiset(merged: &Merged) -> BTreeMap<String, usize> {
    let party = correlate::parse_chrome_trace(&merged.json).expect("merged JSON parses back");
    let mut m = BTreeMap::new();
    for e in &party.events {
        if !matches!(e.phase, Phase::Span { .. }) {
            continue;
        }
        let name = e.name.as_str();
        if SCHEDULING_SPANS.contains(&name) {
            continue;
        }
        *m.entry(format!("{}/{}", e.cat.name(), name)).or_insert(0) += 1;
    }
    m
}

/// The deterministic part of the attribution: layer labels, whether
/// each layer matched by wire trace id, per-layer and total flow
/// counts. The nanosecond columns are wall-clock and excluded.
fn layer_structure(report: &MergeReport) -> (Vec<(String, bool, usize)>, usize) {
    (
        report
            .layers
            .iter()
            .map(|l| (l.label.clone(), l.trace != 0, l.flows))
            .collect(),
        report.flows.len(),
    )
}

#[test]
fn merged_timeline_deterministic_across_threads_and_transports() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let base = run_traced(SchemeKind::Spot, 1, false);
    spot_trace::json::validate(&base.merged.json).expect("merged trace is valid JSON");
    let base_spans = merged_span_multiset(&base.merged);
    let base_layers = layer_structure(&base.merged.report);
    assert!(!base_spans.is_empty(), "merged timeline recorded no spans");
    assert_eq!(
        base.merged.report.layers.len(),
        1,
        "one conv layer attributed"
    );
    let layer = &base.merged.report.layers[0];
    assert_ne!(layer.trace, 0, "layer matched by wire-propagated trace id");
    assert!(layer.flows > 0, "layer window contains flow arrows");
    assert!(layer.window_ns > 0, "layer window has extent");

    for (tag, run) in [
        ("mem/8t", run_traced(SchemeKind::Spot, 8, false)),
        ("tcp/1t", run_traced(SchemeKind::Spot, 1, true)),
        ("tcp/8t", run_traced(SchemeKind::Spot, 8, true)),
    ] {
        assert_eq!(
            base.share, run.share,
            "{tag}: merge-traced run perturbed the computed share"
        );
        assert_eq!(
            base_spans,
            merged_span_multiset(&run.merged),
            "{tag}: merged span multiset differs from mem/1t"
        );
        assert_eq!(
            base_layers,
            layer_structure(&run.merged.report),
            "{tag}: per-layer overlap structure differs from mem/1t"
        );
    }
}

#[test]
fn tracing_on_or_off_leaves_share_bit_identical() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for scheme in [SchemeKind::Spot, SchemeKind::Channelwise] {
        let untraced = run_untraced(scheme, 2);
        let traced = run_traced(scheme, 2, false);
        assert_eq!(
            untraced, traced.share,
            "{scheme:?}: tracing (with wire context) changed the share"
        );
        assert_eq!(
            traced.merged.report.layers.len(),
            1,
            "{scheme:?}: merge attributed the layer"
        );
    }
}
