//! The metrics registry must observe without perturbing: with metrics
//! enabled, a session computes the same shares, and every
//! scheduling-independent series (wire byte/frame totals, conv/stream
//! work counts) is bit-identical across worker thread counts (1 vs 8)
//! and transports (Mem vs TCP loopback), for every scheme.
//! Timing-valued series (`*_ns` sums, bucket contents) and
//! backpressure counters are scheduling-dependent by design and are
//! compared by sample count only, or excluded.
//!
//! All tests share the process-global registry, so they serialize on
//! one lock and reset it around each scenario.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_core::executor::Executor;
use spot_core::patching::PatchMode;
use spot_core::session::{
    serve_conv, ClientConv, ExecBackend, LayerSpec, SchemeKind, UploadPacing,
};
use spot_core::stream::StreamConfig;
use spot_he::context::Context;
use spot_he::keys::KeyGenerator;
use spot_he::params::{EncryptionParams, ParamLevel};
use spot_proto::transport::{MemTransport, TcpTransport, Transport};
use spot_tensor::models::ConvShape;
use spot_tensor::tensor::{Kernel, Tensor};
use spot_trace::metrics;
use std::net::TcpListener;
use std::sync::{Arc, Mutex};

static LOCK: Mutex<()> = Mutex::new(());

struct MetricsRun {
    snap: metrics::MetricsSnapshot,
    client_share: Tensor,
}

/// The scheduling-independent view of a run's registry: exact counter
/// totals for the wire rollups (blocked-time excluded) and sample
/// counts — not sums or buckets — for the latency histograms.
fn deterministic_series(snap: &metrics::MetricsSnapshot, scheme: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for name in [
        "spot_wire_tx_bytes",
        "spot_wire_tx_frames",
        "spot_wire_rx_bytes",
        "spot_wire_rx_frames",
    ] {
        out.push((name.to_string(), snap.counter(name, &[])));
    }
    for (name, labels) in [
        ("spot_conv_serve_ns", vec![("scheme", scheme)]),
        ("spot_stream_conv_ns", vec![]),
        ("spot_stream_queue_blocked_ns", vec![]),
    ] {
        let count = snap.histogram(name, &labels).map(|h| h.count).unwrap_or(0);
        out.push((format!("{name}(count)"), count));
    }
    out
}

fn run_session(
    ctx: &Arc<Context>,
    spec: LayerSpec,
    kernel: &Kernel,
    input: &Tensor,
    backend: &ExecBackend,
    client_t: &dyn Transport,
    server_t: &dyn Transport,
) -> MetricsRun {
    metrics::global().reset();
    metrics::enable();
    let baseline = metrics::global().snapshot();
    let mut crng = StdRng::seed_from_u64(71);
    let keygen = KeyGenerator::new(ctx, &mut crng);
    let conv = ClientConv::new(ctx, &keygen, spec).expect("plan");
    let share = std::thread::scope(|s| {
        let client = s.spawn(|| {
            conv.send_all(client_t, input, UploadPacing::Eager, &mut crng)
                .expect("send_all");
            conv.absorb_all(client_t).expect("absorb_all")
        });
        let mut srng = StdRng::seed_from_u64(1312);
        serve_conv(ctx, server_t, kernel, backend, &mut srng).expect("serve_conv");
        client.join().expect("client thread")
    });
    let snap = metrics::global().snapshot().delta(&baseline);
    metrics::disable();
    MetricsRun {
        snap,
        client_share: share.share,
    }
}

fn run_mem(scheme: SchemeKind, threads: usize) -> MetricsRun {
    let (ctx, spec, kernel, input) = fixture(scheme);
    let backend = ExecBackend::Streaming(StreamConfig::new(Executor::new(threads), 2));
    let (client_t, server_t) = MemTransport::pair();
    run_session(&ctx, spec, &kernel, &input, &backend, &client_t, &server_t)
}

fn run_tcp(scheme: SchemeKind, threads: usize) -> MetricsRun {
    let (ctx, spec, kernel, input) = fixture(scheme);
    let backend = ExecBackend::Streaming(StreamConfig::new(Executor::new(threads), 2));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let accept = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        TcpTransport::from_stream(stream).expect("server transport")
    });
    let client_t = TcpTransport::connect(addr.to_string()).expect("connect loopback");
    let server_t = accept.join().expect("accept thread");
    run_session(&ctx, spec, &kernel, &input, &backend, &client_t, &server_t)
}

fn fixture(scheme: SchemeKind) -> (Arc<Context>, LayerSpec, Kernel, Tensor) {
    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let spec = LayerSpec {
        scheme,
        shape: ConvShape::new(8, 8, 3, 2, 3, 1),
        patch: (4, 4),
        mode: PatchMode::Tweaked,
    };
    let input = Tensor::random(3, 8, 8, 6, 23);
    let kernel = Kernel::random(2, 3, 3, 3, 3, 24);
    (ctx, spec, kernel, input)
}

#[test]
fn metrics_deterministic_across_threads_and_transports() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for scheme in [
        SchemeKind::Spot,
        SchemeKind::Channelwise,
        SchemeKind::Cheetah,
    ] {
        let scheme_name = match scheme {
            SchemeKind::Spot => "spot",
            SchemeKind::Channelwise => "channelwise",
            SchemeKind::Cheetah => "cheetah",
        };
        let base = run_mem(scheme, 1);
        let base_series = deterministic_series(&base.snap, scheme_name);
        assert!(
            base_series.iter().any(|(_, v)| *v > 0),
            "{scheme:?}: metered run registered nothing"
        );
        assert_eq!(
            base.snap
                .histogram("spot_conv_serve_ns", &[("scheme", scheme_name)])
                .map(|h| h.count),
            Some(1),
            "{scheme:?}: one serve_conv must record one latency sample"
        );
        for (tag, run) in [
            ("mem/8t", run_mem(scheme, 8)),
            ("tcp/1t", run_tcp(scheme, 1)),
            ("tcp/8t", run_tcp(scheme, 8)),
        ] {
            assert_eq!(
                base.client_share, run.client_share,
                "{scheme:?} {tag}: metrics collection perturbed the computed share"
            );
            assert_eq!(
                base_series,
                deterministic_series(&run.snap, scheme_name),
                "{scheme:?} {tag}: deterministic metric series differ from mem/1t"
            );
        }
    }
}

#[test]
fn disabled_registry_stays_empty_through_a_session() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    metrics::global().reset();
    metrics::disable();
    let (ctx, spec, kernel, input) = fixture(SchemeKind::Spot);
    let backend = ExecBackend::Streaming(StreamConfig::new(Executor::new(2), 2));
    let (client_t, server_t) = MemTransport::pair();
    let mut crng = StdRng::seed_from_u64(71);
    let keygen = KeyGenerator::new(&ctx, &mut crng);
    let conv = ClientConv::new(&ctx, &keygen, spec).expect("plan");
    std::thread::scope(|s| {
        let client = s.spawn(|| {
            conv.send_all(&client_t, &input, UploadPacing::Eager, &mut crng)
                .expect("send_all");
            conv.absorb_all(&client_t).expect("absorb_all")
        });
        let mut srng = StdRng::seed_from_u64(1312);
        serve_conv(&ctx, &server_t, &kernel, &backend, &mut srng).expect("serve_conv");
        client.join().expect("client thread")
    });
    let snap = metrics::global().snapshot();
    assert_eq!(
        snap.counter("spot_wire_tx_frames", &[]),
        0,
        "disabled registry must not accumulate wire counters"
    );
    assert!(
        snap.histogram("spot_conv_serve_ns", &[("scheme", "spot")])
            .map(|h| h.count)
            .unwrap_or(0)
            == 0,
        "disabled registry must not record serve latencies"
    );
}
