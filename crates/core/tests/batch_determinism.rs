//! Cross-image batching acceptance tests.
//!
//! 1. **Per-image bit-identity** — a batched session's client and
//!    server shares for image `b` are bit-identical to an unbatched
//!    run of that image whose server rng is seeded with the batch's
//!    per-image seed, for all three schemes, ragged batch widths and
//!    both ring sizes.
//! 2. **Amortization** — the whole batch performs exactly the
//!    rotation count of a single image (slot batching leaves the
//!    rotation schedule unchanged), so each image pays `1/B` of it.
//! 3. **Transport independence** — the same seeds produce the same
//!    shares over `MemTransport` and framed TCP.
//! 4. **Assembler integration** — a [`BatchAssembler`]-coalesced queue
//!    runs through the batched session and every image reconstructs to
//!    the true convolution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spot_core::executor::Executor;
use spot_core::patching::PatchMode;
use spot_core::session::{
    run_in_process_batched, serve_conv, ClientConv, ExecBackend, LayerSpec, SchemeKind,
    UploadPacing,
};
use spot_core::stream::BatchAssembler;
use spot_he::context::Context;
use spot_he::evaluator::OpCounts;
use spot_he::keys::KeyGenerator;
use spot_he::params::{EncryptionParams, ParamLevel};
use spot_proto::transport::{MemTransport, TcpTransport};
use spot_tensor::models::ConvShape;
use spot_tensor::tensor::{Kernel, Tensor};
use std::sync::Arc;
use std::time::Duration;

/// The low-occupancy test layer (2×8×8 → 4 channels) every scheme can
/// batch at least 3 wide on N4096.
fn test_spec(scheme: SchemeKind) -> LayerSpec {
    LayerSpec {
        scheme,
        shape: ConvShape {
            width: 8,
            height: 8,
            c_in: 2,
            c_out: 4,
            k_h: 3,
            k_w: 3,
            stride: 1,
        },
        patch: (4, 4),
        mode: PatchMode::Tweaked,
    }
}

fn test_inputs(batch: usize) -> Vec<Tensor> {
    (0..batch as u64)
        .map(|b| Tensor::random(2, 8, 8, 5, 40 + b))
        .collect()
}

fn test_kernel() -> Kernel {
    Kernel::random(4, 2, 3, 3, 3, 41)
}

/// One batched phased session over a `MemTransport` pair; returns
/// per-image client shares, per-image server shares and the
/// whole-batch operation counts.
fn run_batched(
    ctx: &Arc<Context>,
    kg: &KeyGenerator,
    inputs: &[Tensor],
    spec: LayerSpec,
    kernel: &Kernel,
    server_seed: u64,
) -> (Vec<Tensor>, Vec<Tensor>, OpCounts) {
    let (ct, st) = MemTransport::pair();
    let conv = ClientConv::new(ctx, kg, spec).expect("client conv");
    let mut crng = StdRng::seed_from_u64(777);
    conv.send_all_batched(&ct, inputs, UploadPacing::Eager, &mut crng)
        .expect("upload");
    let mut srng = StdRng::seed_from_u64(server_seed);
    let backend = ExecBackend::Phased(Executor::serial());
    let summary = serve_conv(ctx, &st, kernel, &backend, &mut srng).expect("serve");
    let shares = conv.absorb_all_batched(&ct, inputs.len()).expect("absorb");
    let mut server_shares = vec![summary.server_share];
    server_shares.extend(summary.extra_shares);
    (shares.shares, server_shares, summary.counts)
}

/// Replicates the per-image mask seeds a batched server draws: the
/// first `batch` u64s of its session rng, in image order.
fn batch_seeds(server_seed: u64, batch: usize) -> Vec<u64> {
    let mut r = StdRng::seed_from_u64(server_seed);
    (0..batch).map(|_| r.gen()).collect()
}

/// Reconstructs the output from its two additive shares mod `t`,
/// recentering to signed values.
fn reconstruct(client: &Tensor, server: &Tensor, t: u64) -> Tensor {
    let vals = client
        .data()
        .iter()
        .zip(server.data())
        .map(|(&c, &s)| {
            let v = ((c.rem_euclid(t as i64) + s.rem_euclid(t as i64)) % t as i64) as u64;
            if v > t / 2 {
                v as i64 - t as i64
            } else {
                v as i64
            }
        })
        .collect();
    Tensor::from_vec(client.channels(), client.height(), client.width(), vals)
}

fn assert_batched_matches_unbatched(scheme: SchemeKind, level: ParamLevel, batch: usize) {
    let ctx = Context::new(EncryptionParams::new(level));
    let mut keyrng = StdRng::seed_from_u64(9000);
    let kg = KeyGenerator::new(&ctx, &mut keyrng);
    let inputs = test_inputs(batch);
    let kernel = test_kernel();
    let spec = test_spec(scheme);
    let t = ctx.params().plain_modulus();
    let want = spot_tensor::conv::conv2d(&inputs[0], &kernel, 1);

    let server_seed = 3100;
    let (cs, ss, counts) = run_batched(&ctx, &kg, &inputs, spec, &kernel, server_seed);
    assert_eq!(cs.len(), batch);
    assert_eq!(ss.len(), batch);
    let tag = format!("{scheme:?} {level:?} batch={batch}");
    assert_eq!(reconstruct(&cs[0], &ss[0], t), want, "{tag}");

    let seeds = batch_seeds(server_seed, batch);
    for b in 0..batch {
        let (rcs, rss, rcounts) = run_batched(&ctx, &kg, &inputs[b..=b], spec, &kernel, seeds[b]);
        assert_eq!(cs[b], rcs[0], "{tag}: client share image {b}");
        assert_eq!(ss[b], rss[0], "{tag}: server share image {b}");
        if batch > 1 && !matches!(scheme, SchemeKind::Cheetah) {
            // The whole batch costs exactly one image's rotations:
            // per-image cost is 1/batch of the unbatched schedule.
            assert_eq!(counts.rotate, rcounts.rotate, "{tag}: rotations image {b}");
        }
    }
}

#[test]
fn channelwise_batched_bit_identical_ragged() {
    assert_batched_matches_unbatched(SchemeKind::Channelwise, ParamLevel::N4096, 3);
}

#[test]
fn cheetah_batched_bit_identical() {
    assert_batched_matches_unbatched(SchemeKind::Cheetah, ParamLevel::N4096, 2);
}

#[test]
fn spot_batched_bit_identical_ragged() {
    assert_batched_matches_unbatched(SchemeKind::Spot, ParamLevel::N4096, 3);
}

#[test]
fn spot_batched_bit_identical_large_ring() {
    assert_batched_matches_unbatched(SchemeKind::Spot, ParamLevel::N8192, 2);
}

/// Channel-wise rotations are non-trivial on this layer, so the 1/B
/// amortization claim above is not vacuous.
#[test]
fn channelwise_layer_actually_rotates() {
    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let mut keyrng = StdRng::seed_from_u64(9000);
    let kg = KeyGenerator::new(&ctx, &mut keyrng);
    let (_, _, counts) = run_batched(
        &ctx,
        &kg,
        &test_inputs(1),
        test_spec(SchemeKind::Channelwise),
        &test_kernel(),
        3100,
    );
    assert!(counts.rotate > 0, "layer performs no rotations");
}

/// The same server seed yields bit-identical per-image shares over
/// framed TCP and `MemTransport`.
#[test]
fn batched_shares_identical_over_tcp() {
    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let mut keyrng = StdRng::seed_from_u64(9000);
    let kg = KeyGenerator::new(&ctx, &mut keyrng);
    let inputs = test_inputs(3);
    let kernel = test_kernel();
    let spec = test_spec(SchemeKind::Spot);

    let (mem_cs, mem_ss, _) = run_batched(&ctx, &kg, &inputs, spec, &kernel, 555);

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let ctx_s = Arc::clone(&ctx);
    let kernel_s = kernel.clone();
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let transport = TcpTransport::from_stream(stream).expect("wrap stream");
        let mut rng = StdRng::seed_from_u64(555);
        let backend = ExecBackend::Phased(Executor::serial());
        serve_conv(&ctx_s, &transport, &kernel_s, &backend, &mut rng).expect("serve over tcp")
    });

    let transport = TcpTransport::connect(addr.to_string()).expect("connect");
    let conv = ClientConv::new(&ctx, &kg, spec).expect("client conv");
    let shares = std::thread::scope(|s| {
        let conv_ref = &conv;
        let tr = &transport;
        let inputs_ref = &inputs;
        let uploader = s.spawn(move || {
            let mut crng = StdRng::seed_from_u64(777);
            conv_ref.send_all_batched(tr, inputs_ref, UploadPacing::Eager, &mut crng)
        });
        let shares = conv_ref.absorb_all_batched(tr, inputs_ref.len());
        uploader.join().expect("upload thread").expect("upload");
        shares.expect("absorb")
    });
    let summary = server.join().expect("server thread");
    let mut tcp_ss = vec![summary.server_share];
    tcp_ss.extend(summary.extra_shares);

    assert_eq!(shares.shares, mem_cs);
    assert_eq!(tcp_ss, mem_ss);
}

/// Queue → assembler → batched session: every coalesced image
/// reconstructs to the true convolution and demuxes in submission
/// order.
#[test]
fn assembler_coalesced_batch_reconstructs_per_image() {
    let asm = BatchAssembler::new(4, Duration::from_millis(50));
    for input in test_inputs(3) {
        asm.submit(input).expect("submit");
    }
    asm.close();
    let batch = asm.next_batch().expect("drain").expect("one batch");
    assert_eq!(batch.len(), 3);

    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let mut rng = StdRng::seed_from_u64(12);
    let kg = KeyGenerator::new(&ctx, &mut rng);
    let kernel = test_kernel();
    let outcome = run_in_process_batched(
        &ctx,
        &kg,
        &batch,
        &kernel,
        1,
        (4, 4),
        PatchMode::Tweaked,
        SchemeKind::Spot,
        &ExecBackend::Phased(Executor::serial()),
        &mut rng,
    )
    .expect("batched session");
    let results = outcome.into_results();
    assert_eq!(results.len(), 3);
    for (i, res) in results.iter().enumerate() {
        let want = spot_tensor::conv::conv2d(&batch[i], &kernel, 1);
        assert_eq!(res.reconstruct(), want, "image {i}");
    }
    assert!(asm.next_batch().expect("closed").is_none());
}
