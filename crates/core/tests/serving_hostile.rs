//! Hostile-input containment tests for the serving layer: a
//! misbehaving client must fail **its own session only** — typed
//! rejection on the wire, clean accounting, and byte-identical service
//! for every well-behaved neighbor.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_core::error::SpotError;
use spot_core::inference::TinyCnn;
use spot_core::patching::PatchMode;
use spot_core::serving::{ModelContext, ServingConfig, SpotServer};
use spot_core::session::SchemeKind;
use spot_core::twoparty::run_client_batch;
use spot_he::context::Context;
use spot_he::keys::KeyGenerator;
use spot_he::params::{EncryptionParams, ParamLevel};
use spot_proto::transport::{MemTransport, TcpTransport, TransportStats};
use spot_proto::{error_code, Transport, WireMessage};
use spot_tensor::tensor::Tensor;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn test_stack() -> (Arc<Context>, TinyCnn) {
    (
        Context::new(EncryptionParams::new(ParamLevel::N4096)),
        TinyCnn::new(7),
    )
}

/// Full-pipeline client over `transport`; returns the outputs and the
/// client-side transport accounting.
fn well_behaved_client(
    ctx: &Arc<Context>,
    cnn: &TinyCnn,
    transport: &dyn Transport,
    client: usize,
) -> (Vec<Tensor>, TransportStats) {
    let input = Tensor::random(2, 8, 8, 5, 300 + client as u64);
    let mut rng = StdRng::seed_from_u64(99 + client as u64);
    let kg = KeyGenerator::new(ctx, &mut rng);
    let out = run_client_batch(
        ctx,
        &kg,
        transport,
        std::slice::from_ref(&input),
        cnn,
        SchemeKind::Spot,
        (4, 4),
        PatchMode::Tweaked,
        &mut rng,
    )
    .expect("well-behaved client");
    (out, transport.stats())
}

/// A protocol-violating first message fails only that session: the
/// victim gets a typed error, the concurrent neighbor's outputs match
/// the plaintext forward pass and its wire traffic is byte-identical
/// to a solo run against a fresh server.
#[test]
fn protocol_violation_is_contained_to_its_session() {
    let (ctx, cnn) = test_stack();

    // Solo baseline traffic for the neighbor.
    let solo_server = SpotServer::new(
        ModelContext::new("tinycnn-solo", Arc::clone(&ctx), cnn.clone()),
        ServingConfig::default(),
    );
    let (solo_out, solo_stats) = {
        let (ct, st) = MemTransport::pair();
        std::thread::scope(|s| {
            let session = s.spawn(|| solo_server.serve_connection(&st));
            let out = well_behaved_client(&ctx, &cnn, &ct, 1);
            session
                .join()
                .expect("session thread")
                .result
                .expect("solo session");
            out
        })
    };

    let server = SpotServer::new(
        ModelContext::new("tinycnn-7", Arc::clone(&ctx), cnn.clone()),
        ServingConfig::default(),
    );
    let ((), (out, stats)) = std::thread::scope(|s| {
        let attacker = s.spawn(|| {
            let (ct, st) = MemTransport::pair();
            std::thread::scope(|inner| {
                let session = inner.spawn(|| server.serve_connection(&st));
                // First frame is not a Setup: instant protocol violation.
                ct.send(&WireMessage::Teardown).expect("send");
                let report = session.join().expect("victim session thread");
                assert!(report.result.is_err(), "violating session must fail");
                // The typed error frame came back before the hangup.
                let reply = ct.recv().expect("typed error frame");
                assert!(
                    matches!(reply, WireMessage::Error { code, .. } if code == error_code::PROTOCOL),
                    "expected a PROTOCOL wire error, got {reply:?}"
                );
            });
        });
        let neighbor = s.spawn(|| {
            let (ct, st) = MemTransport::pair();
            std::thread::scope(|inner| {
                let session = inner.spawn(|| server.serve_connection(&st));
                let out = well_behaved_client(&ctx, &cnn, &ct, 1);
                session
                    .join()
                    .expect("session thread")
                    .result
                    .expect("neighbor session");
                out
            })
        });
        (
            attacker.join().expect("attacker"),
            neighbor.join().expect("neighbor"),
        )
    });

    assert_eq!(out, solo_out, "neighbor outputs diverge from solo run");
    assert_eq!(
        (stats.sent, stats.received.bytes, stats.received.messages),
        (
            solo_stats.sent,
            solo_stats.received.bytes,
            solo_stats.received.messages
        ),
        "neighbor wire traffic diverges from solo run"
    );
    let totals = server.stats();
    assert_eq!((totals.served, totals.failed, totals.rejected), (1, 1, 0));
}

/// Raw garbage bytes over TCP (bad version byte, bad tag, truncated
/// frame) kill only that connection; a concurrent well-formed session
/// completes and matches plain.
#[test]
fn malformed_tcp_frames_fail_only_their_session() {
    let (ctx, cnn) = test_stack();
    let server = Arc::new(SpotServer::new(
        ModelContext::new("tinycnn-7", Arc::clone(&ctx), cnn.clone()),
        ServingConfig::default(),
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    std::thread::scope(|s| {
        let acceptor = s.spawn(|| {
            std::thread::scope(|inner| {
                for _ in 0..2 {
                    let (stream, _) = listener.accept().expect("accept");
                    let server = Arc::clone(&server);
                    inner.spawn(move || {
                        let st = TcpTransport::from_stream(stream).expect("wrap");
                        server.serve_connection(&st)
                    });
                }
            });
        });

        // Hostile connection: not even a valid frame header.
        let mut raw = TcpStream::connect(addr).expect("connect hostile");
        raw.write_all(&[0xFF, 0xFF, 0xAA, 0x55, 0x00, 0x00, 0x00, 0x01, 0xCC])
            .expect("write garbage");
        raw.shutdown(std::net::Shutdown::Write).ok();

        // Well-formed neighbor completes regardless.
        let input = Tensor::random(2, 8, 8, 5, 303);
        let want = cnn.forward_plain(&input);
        let ct = TcpTransport::connect(addr.to_string()).expect("connect good");
        let mut rng = StdRng::seed_from_u64(102);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let out = run_client_batch(
            &ctx,
            &kg,
            &ct,
            std::slice::from_ref(&input),
            &cnn,
            SchemeKind::Spot,
            (4, 4),
            PatchMode::Tweaked,
            &mut rng,
        )
        .expect("well-formed client");
        assert_eq!(out[0], want);
        drop(raw);
        acceptor.join().expect("acceptor");
    });

    let totals = server.stats();
    assert_eq!((totals.served, totals.failed, totals.rejected), (1, 1, 0));
}

/// A `Setup` batch above the session's ciphertext budget is refused
/// with the typed `OVER_BUDGET` code, and the same client fits under
/// the budget with a smaller batch.
#[test]
fn over_budget_batch_is_rejected_with_typed_error() {
    let (ctx, cnn) = test_stack();
    let server = SpotServer::new(
        ModelContext::new("tinycnn-7", Arc::clone(&ctx), cnn.clone()),
        ServingConfig {
            max_batch: Some(2),
            ..ServingConfig::default()
        },
    );

    let inputs: Vec<Tensor> = (0..3u64)
        .map(|i| Tensor::random(2, 8, 8, 5, 310 + i))
        .collect();
    let err = {
        let (ct, st) = MemTransport::pair();
        std::thread::scope(|s| {
            let session = s.spawn(|| server.serve_connection(&st));
            let mut rng = StdRng::seed_from_u64(103);
            let kg = KeyGenerator::new(&ctx, &mut rng);
            let err = run_client_batch(
                &ctx,
                &kg,
                &ct,
                &inputs,
                &cnn,
                SchemeKind::Spot,
                (4, 4),
                PatchMode::Tweaked,
                &mut rng,
            )
            .expect_err("over-budget batch must fail");
            let report = session.join().expect("session thread");
            assert!(report.result.is_err());
            err
        })
    };
    match err {
        SpotError::Rejected { code, .. } => assert_eq!(code, error_code::OVER_BUDGET),
        other => panic!("expected typed OVER_BUDGET rejection, got {other}"),
    }

    // Under the budget the same server still serves.
    let (ct, st) = MemTransport::pair();
    std::thread::scope(|s| {
        let session = s.spawn(|| server.serve_connection(&st));
        let (out, _) = well_behaved_client(&ctx, &cnn, &ct, 4);
        let input = Tensor::random(2, 8, 8, 5, 304);
        assert_eq!(out[0], cnn.forward_plain(&input));
        session
            .join()
            .expect("session thread")
            .result
            .expect("in-budget session");
    });
    let totals = server.stats();
    assert_eq!((totals.served, totals.failed, totals.rejected), (1, 1, 0));
}

/// At the session cap the extra connection is refused with the typed
/// `SERVER_FULL` code and consumes no session id; a slot freeing up
/// admits the next client.
#[test]
fn server_full_rejects_with_typed_error() {
    let (ctx, cnn) = test_stack();
    let server = SpotServer::new(
        ModelContext::new("tinycnn-7", Arc::clone(&ctx), cnn.clone()),
        ServingConfig {
            max_sessions: 1,
            ..ServingConfig::default()
        },
    );

    // Occupy the only slot with a session that we hold open by not
    // sending anything yet, then probe with a second connection.
    let (ct_a, st_a) = MemTransport::pair();
    std::thread::scope(|s| {
        let session_a = s.spawn(|| server.serve_connection(&st_a));
        // Wait until the first session is admitted.
        while server.active_sessions() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let (ct_b, st_b) = MemTransport::pair();
        let refused = server.serve_connection(&st_b);
        assert_eq!(refused.id, u64::MAX, "a refused connection burns no id");
        match refused.result {
            Err(SpotError::Rejected { code, .. }) => assert_eq!(code, error_code::SERVER_FULL),
            other => panic!("expected SERVER_FULL, got {other:?}"),
        }
        let frame = ct_b.recv().expect("typed refusal frame");
        assert!(
            matches!(frame, WireMessage::Error { code, .. } if code == error_code::SERVER_FULL),
            "client must see the SERVER_FULL frame, got {frame:?}"
        );

        // The occupant still completes untouched.
        let (out, _) = well_behaved_client(&ctx, &cnn, &ct_a, 5);
        let input = Tensor::random(2, 8, 8, 5, 305);
        assert_eq!(out[0], cnn.forward_plain(&input));
        session_a
            .join()
            .expect("session a")
            .result
            .expect("occupant session");
    });

    // Slot freed: the next connection gets session id 1 (0 was the
    // occupant; the refusal consumed none).
    let (ct_c, st_c) = MemTransport::pair();
    std::thread::scope(|s| {
        let session_c = s.spawn(|| server.serve_connection(&st_c));
        let (out, _) = well_behaved_client(&ctx, &cnn, &ct_c, 6);
        let input = Tensor::random(2, 8, 8, 5, 306);
        assert_eq!(out[0], cnn.forward_plain(&input));
        let report = session_c.join().expect("session c");
        assert_eq!(report.id, 1);
        report.result.expect("post-refusal session");
    });
    let totals = server.stats();
    assert_eq!((totals.served, totals.failed, totals.rejected), (2, 0, 1));
}

/// A slow-loris connection (connects, never sends) times out under the
/// server's read deadline and fails alone; a concurrent full session
/// completes and matches plain.
#[test]
fn slow_loris_times_out_without_harming_neighbors() {
    let (ctx, cnn) = test_stack();
    let server = Arc::new(SpotServer::new(
        ModelContext::new("tinycnn-7", Arc::clone(&ctx), cnn.clone()),
        ServingConfig::default(),
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    std::thread::scope(|s| {
        let acceptor = s.spawn(|| {
            std::thread::scope(|inner| {
                for conn in 0..2 {
                    let (stream, _) = listener.accept().expect("accept");
                    let server = Arc::clone(&server);
                    inner.spawn(move || {
                        let st = TcpTransport::from_stream(stream).expect("wrap");
                        // The read deadline guards the first accepted
                        // connection (the loris, below); the neighbor
                        // runs without one so slow debug builds can't
                        // trip it mid-protocol.
                        if conn == 0 {
                            st.set_read_timeout(Some(Duration::from_millis(200)))
                                .expect("read timeout");
                        }
                        server.serve_connection(&st)
                    });
                }
            });
        });

        // The loris: connect first and go silent.
        let loris = TcpStream::connect(addr).expect("connect loris");
        std::thread::sleep(Duration::from_millis(100));

        // The neighbor does real work meanwhile.
        let input = Tensor::random(2, 8, 8, 5, 307);
        let want = cnn.forward_plain(&input);
        let ct = TcpTransport::connect(addr.to_string()).expect("connect good");
        let mut rng = StdRng::seed_from_u64(107);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let out = run_client_batch(
            &ctx,
            &kg,
            &ct,
            std::slice::from_ref(&input),
            &cnn,
            SchemeKind::Spot,
            (4, 4),
            PatchMode::Tweaked,
            &mut rng,
        )
        .expect("neighbor client");
        assert_eq!(out[0], want);

        acceptor.join().expect("acceptor");
        drop(loris);
    });

    let totals = server.stats();
    assert_eq!((totals.served, totals.failed, totals.rejected), (1, 1, 0));
}

/// Garbage (and worse: silence) on the admin port cannot wedge its
/// accept loop: after a binary-junk request, a non-GET request, and a
/// connect-then-hang client, a normal scrape still answers promptly
/// and `/healthz` reflects admission state.
#[test]
fn admin_port_survives_garbage_requests() {
    use spot_core::admin::AdminServer;
    use std::io::Read;

    let (ctx, cnn) = test_stack();
    let server = Arc::new(SpotServer::new(
        ModelContext::new("tinycnn-admin", ctx, cnn),
        ServingConfig::default(),
    ));
    let admin = AdminServer::bind("127.0.0.1:0", Arc::clone(&server)).expect("bind admin");
    let addr = admin.addr();

    let fetch = |request: &[u8]| -> String {
        let mut conn = TcpStream::connect(addr).expect("connect admin");
        conn.write_all(request).expect("send request");
        let mut body = String::new();
        conn.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout");
        conn.read_to_string(&mut body).expect("read response");
        body
    };

    // Hostile round 1: pure binary garbage.
    let garbage = fetch(&[0x00, 0xff, 0x13, 0x37, b'\n']);
    assert!(garbage.starts_with("HTTP/1.0 400"), "got: {garbage:?}");
    // Hostile round 2: a method we don't serve.
    let post = fetch(b"POST /metrics HTTP/1.1\r\n\r\n");
    assert!(post.starts_with("HTTP/1.0 400"), "got: {post:?}");
    // Hostile round 3: connect and say nothing; the handler thread
    // holds it alone while the accept loop moves on.
    let _loris = TcpStream::connect(addr).expect("connect loris");

    // The endpoint still answers a real scrape immediately.
    let metrics = fetch(b"GET /metrics HTTP/1.0\r\n\r\n");
    assert!(metrics.starts_with("HTTP/1.0 200"), "got: {metrics:?}");
    assert!(
        metrics.contains("spot_sessions_served"),
        "missing series in: {metrics:?}"
    );
    let health = fetch(b"GET /healthz HTTP/1.0\r\n\r\n");
    assert!(health.contains("ok"), "got: {health:?}");
    let sessions = fetch(b"GET /sessions HTTP/1.0\r\n\r\n");
    assert!(sessions.contains("\"active\": 0"), "got: {sessions:?}");
    let pipeline = fetch(b"GET /pipeline HTTP/1.0\r\n\r\n");
    assert!(pipeline.contains("\"pipeline\": []"), "got: {pipeline:?}");
    let missing = fetch(b"GET /nope HTTP/1.0\r\n\r\n");
    assert!(missing.starts_with("HTTP/1.0 404"), "got: {missing:?}");

    admin.shutdown();
}

/// `/healthz` flips to `overloaded` while sessions sit at the
/// admission cap and recovers once they drain.
#[test]
fn healthz_reflects_admission_saturation() {
    use spot_core::admin::AdminServer;
    use std::io::Read;

    let (ctx, cnn) = test_stack();
    let server = Arc::new(SpotServer::new(
        ModelContext::new("tinycnn-health", Arc::clone(&ctx), cnn.clone()),
        ServingConfig {
            max_sessions: 1,
            ..ServingConfig::default()
        },
    ));
    let admin = AdminServer::bind("127.0.0.1:0", Arc::clone(&server)).expect("bind admin");
    let addr = admin.addr();

    let health = || -> String {
        let mut conn = TcpStream::connect(addr).expect("connect admin");
        conn.write_all(b"GET /healthz HTTP/1.0\r\n\r\n")
            .expect("send");
        conn.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout");
        let mut body = String::new();
        conn.read_to_string(&mut body).expect("read");
        body
    };
    assert!(health().starts_with("HTTP/1.0 200"), "idle server is ok");

    // Fill the single admission slot with a session that waits for us.
    let (ct, st) = MemTransport::pair();
    std::thread::scope(|s| {
        let session = s.spawn(|| server.serve_connection(&st));
        // The session counts as active once it blocks in its first
        // recv; poll until admission reflects it.
        while server.active_sessions() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let saturated = health();
        assert!(
            saturated.starts_with("HTTP/1.0 503") && saturated.contains("overloaded"),
            "got: {saturated:?}"
        );
        // Release the session: close the client side so its recv errors.
        ct.close_tx();
        drop(ct);
        session.join().expect("session thread");
    });
    assert!(health().starts_with("HTTP/1.0 200"), "drained server is ok");
    admin.shutdown();
}
