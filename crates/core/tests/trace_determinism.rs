//! The trace layer must not perturb — or be perturbed by — the
//! execution it observes: a traced session produces the same span-name
//! multiset and the same deterministic counter totals across worker
//! thread counts (1 vs 8) and transports (Mem vs TCP loopback), for
//! every scheme. Conditional wait spans (`idle`, `blocked (channel
//! full)`) and timing/pool counters are scheduling-dependent by design
//! and are excluded; everything per-item or per-frame must match
//! exactly. The Chrome-trace export must also be valid JSON whose
//! parent links nest properly.
//!
//! All tests share the process-global trace sink, so they serialize on
//! one lock and reset state around each scenario.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_core::executor::Executor;
use spot_core::patching::PatchMode;
use spot_core::session::{
    serve_conv, ClientConv, ExecBackend, LayerSpec, SchemeKind, UploadPacing,
};
use spot_core::stream::StreamConfig;
use spot_he::context::Context;
use spot_he::keys::KeyGenerator;
use spot_he::params::{EncryptionParams, ParamLevel};
use spot_proto::transport::{MemTransport, TcpTransport, Transport};
use spot_tensor::models::ConvShape;
use spot_tensor::tensor::{Kernel, Tensor};
use spot_trace::{Counter, CounterSnapshot, Event, Phase};
use std::collections::BTreeMap;
use std::net::TcpListener;
use std::sync::{Arc, Mutex};

static LOCK: Mutex<()> = Mutex::new(());

/// Span names whose presence depends on scheduling: a worker only
/// records `idle` when it actually waited, a producer only records a
/// blocked span when the channel was full.
const SCHEDULING_SPANS: &[&str] = &["idle", "blocked (channel full)"];

/// Counters that are exact per run regardless of worker count or
/// transport. Excluded: pool hit/miss/recycle (cache state), the
/// `*_blocked_ns` timings, and the NTT counters (the NTT-domain kernel
/// cache may fill the same entry twice under concurrent first access).
const DETERMINISTIC_COUNTERS: &[Counter] = &[
    Counter::Rotate,
    Counter::KeySwitch,
    Counter::ModSwitch,
    Counter::Encrypt,
    Counter::Decrypt,
    Counter::AddOps,
    Counter::MultPlain,
    Counter::QueuePushed,
    Counter::QueuePopped,
    Counter::TxBytes,
    Counter::TxFrames,
    Counter::RxBytes,
    Counter::RxFrames,
];

struct TraceRun {
    events: Vec<Event>,
    counters: CounterSnapshot,
    client_share: Tensor,
}

fn span_multiset(events: &[Event]) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for e in events {
        if !matches!(e.phase, Phase::Span { .. }) {
            continue;
        }
        let name = e.name.as_str();
        if SCHEDULING_SPANS.contains(&name) {
            continue;
        }
        *m.entry(format!("{}/{}", e.cat.name(), name)).or_insert(0) += 1;
    }
    m
}

fn deterministic_counters(snap: &CounterSnapshot) -> Vec<(&'static str, u64)> {
    DETERMINISTIC_COUNTERS
        .iter()
        .map(|&c| (c.name(), snap.get(c)))
        .collect()
}

fn run_session(
    ctx: &Arc<Context>,
    spec: LayerSpec,
    kernel: &Kernel,
    input: &Tensor,
    backend: &ExecBackend,
    client_t: &dyn Transport,
    server_t: &dyn Transport,
) -> TraceRun {
    spot_trace::reset();
    spot_trace::enable();
    let baseline = spot_trace::counters();
    let mut crng = StdRng::seed_from_u64(71);
    let keygen = KeyGenerator::new(ctx, &mut crng);
    let conv = ClientConv::new(ctx, &keygen, spec).expect("plan");
    let share = std::thread::scope(|s| {
        let client = s.spawn(|| {
            conv.send_all(client_t, input, UploadPacing::Eager, &mut crng)
                .expect("send_all");
            let share = conv.absorb_all(client_t).expect("absorb_all");
            spot_trace::flush_thread();
            share
        });
        let mut srng = StdRng::seed_from_u64(1312);
        serve_conv(ctx, server_t, kernel, backend, &mut srng).expect("serve_conv");
        client.join().expect("client thread")
    });
    let counters = spot_trace::counters().delta(&baseline);
    let events = spot_trace::take_events();
    spot_trace::disable();
    TraceRun {
        events,
        counters,
        client_share: share.share,
    }
}

fn run_mem(scheme: SchemeKind, threads: usize) -> TraceRun {
    let (ctx, spec, kernel, input) = fixture(scheme);
    let backend = ExecBackend::Streaming(StreamConfig::new(Executor::new(threads), 2));
    let (client_t, server_t) = MemTransport::pair();
    run_session(&ctx, spec, &kernel, &input, &backend, &client_t, &server_t)
}

fn run_tcp(scheme: SchemeKind, threads: usize) -> TraceRun {
    let (ctx, spec, kernel, input) = fixture(scheme);
    let backend = ExecBackend::Streaming(StreamConfig::new(Executor::new(threads), 2));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let accept = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        TcpTransport::from_stream(stream).expect("server transport")
    });
    let client_t = TcpTransport::connect(addr.to_string()).expect("connect loopback");
    let server_t = accept.join().expect("accept thread");
    run_session(&ctx, spec, &kernel, &input, &backend, &client_t, &server_t)
}

fn fixture(scheme: SchemeKind) -> (Arc<Context>, LayerSpec, Kernel, Tensor) {
    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let spec = LayerSpec {
        scheme,
        shape: ConvShape::new(8, 8, 3, 2, 3, 1),
        patch: (4, 4),
        mode: PatchMode::Tweaked,
    };
    let input = Tensor::random(3, 8, 8, 6, 23);
    let kernel = Kernel::random(2, 3, 3, 3, 3, 24);
    (ctx, spec, kernel, input)
}

#[test]
fn trace_deterministic_across_threads_and_transports() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for scheme in [
        SchemeKind::Spot,
        SchemeKind::Channelwise,
        SchemeKind::Cheetah,
    ] {
        let base = run_mem(scheme, 1);
        let base_spans = span_multiset(&base.events);
        let base_counts = deterministic_counters(&base.counters);
        assert!(
            !base_spans.is_empty(),
            "{scheme:?}: traced run recorded no spans"
        );
        for (tag, run) in [
            ("mem/8t", run_mem(scheme, 8)),
            ("tcp/1t", run_tcp(scheme, 1)),
            ("tcp/8t", run_tcp(scheme, 8)),
        ] {
            assert_eq!(
                base.client_share, run.client_share,
                "{scheme:?} {tag}: tracing perturbed the computed share"
            );
            assert_eq!(
                base_spans,
                span_multiset(&run.events),
                "{scheme:?} {tag}: span-name multiset differs from mem/1t"
            );
            assert_eq!(
                base_counts,
                deterministic_counters(&run.counters),
                "{scheme:?} {tag}: deterministic counter totals differ from mem/1t"
            );
        }
    }
}

#[test]
fn chrome_export_is_valid_json_and_spans_nest() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let run = run_mem(SchemeKind::Spot, 2);
    assert!(!run.events.is_empty(), "traced run recorded no events");

    let threads = spot_trace::thread_names();
    let json = spot_trace::chrome::chrome_trace_json_with_threads(&run.events, &threads);
    spot_trace::json::validate(&json).expect("chrome trace export is valid JSON");

    // Every parent link must point at a span on the same thread whose
    // interval encloses the child's start.
    for e in &run.events {
        if e.parent == 0 {
            continue;
        }
        let parent = run
            .events
            .iter()
            .find(|p| p.id == e.parent && p.tid == e.tid && matches!(p.phase, Phase::Span { .. }))
            .unwrap_or_else(|| panic!("event {:?} has dangling parent {}", e.name, e.parent));
        assert!(
            parent.ts_ns <= e.ts_ns && e.ts_ns <= parent.end_ns(),
            "child {:?} at {} escapes parent {:?} [{}, {}]",
            e.name,
            e.ts_ns,
            parent.name,
            parent.ts_ns,
            parent.end_ns()
        );
    }

    // The session-level spans made it into the trace.
    let spans = span_multiset(&run.events);
    assert!(spans.keys().any(|k| k == "session/serve_conv spot"));
    assert!(spans.keys().any(|k| k == "session/send_all spot"));
    assert!(spans.keys().any(|k| k.starts_with("stream/conv #")));
}
