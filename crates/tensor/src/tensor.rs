//! Dense CHW tensors over `i64` (fixed-point integers).
//!
//! Secure inference operates on integers modulo the plaintext modulus, so
//! the plaintext reference pipeline uses `i64` fixed-point values rather
//! than floats; `spot_tensor::fixed` handles the scaling.

/// A dense 3-D tensor in CHW layout (channels, height, width).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tensor {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<i64>,
}

impl Tensor {
    /// Creates a zero tensor.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        Self {
            channels,
            height,
            width,
            data: vec![0i64; channels * height * width],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != channels * height * width`.
    pub fn from_vec(channels: usize, height: usize, width: usize, data: Vec<i64>) -> Self {
        assert_eq!(
            data.len(),
            channels * height * width,
            "tensor shape mismatch"
        );
        Self {
            channels,
            height,
            width,
            data,
        }
    }

    /// Fills a tensor by calling `f(c, h, w)` for each element.
    pub fn from_fn(
        channels: usize,
        height: usize,
        width: usize,
        mut f: impl FnMut(usize, usize, usize) -> i64,
    ) -> Self {
        let mut t = Self::zeros(channels, height, width);
        for c in 0..channels {
            for h in 0..height {
                for w in 0..width {
                    *t.at_mut(c, h, w) = f(c, h, w);
                }
            }
        }
        t
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, c: usize, h: usize, w: usize) -> i64 {
        debug_assert!(c < self.channels && h < self.height && w < self.width);
        self.data[(c * self.height + h) * self.width + w]
    }

    /// Element accessor with zero padding outside bounds (signed indices).
    #[inline]
    pub fn at_padded(&self, c: usize, h: i64, w: i64) -> i64 {
        if h < 0 || w < 0 || h >= self.height as i64 || w >= self.width as i64 {
            0
        } else {
            self.at(c, h as usize, w as usize)
        }
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, c: usize, h: usize, w: usize) -> &mut i64 {
        debug_assert!(c < self.channels && h < self.height && w < self.width);
        &mut self.data[(c * self.height + h) * self.width + w]
    }

    /// Flat data view.
    pub fn data(&self) -> &[i64] {
        &self.data
    }

    /// Mutable flat data view.
    pub fn data_mut(&mut self) -> &mut [i64] {
        &mut self.data
    }

    /// Extracts a spatial window `[h0, h0+height) × [w0, w0+width)` across
    /// all channels, zero-padding outside the tensor.
    pub fn crop(&self, h0: i64, w0: i64, height: usize, width: usize) -> Tensor {
        Tensor::from_fn(self.channels, height, width, |c, h, w| {
            self.at_padded(c, h0 + h as i64, w0 + w as i64)
        })
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(i64) -> i64) -> Tensor {
        Tensor {
            channels: self.channels,
            height: self.height,
            width: self.width,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            (self.channels, self.height, self.width),
            (other.channels, other.height, other.width),
            "tensor shape mismatch in add"
        );
        Tensor {
            channels: self.channels,
            height: self.height,
            width: self.width,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            (self.channels, self.height, self.width),
            (other.channels, other.height, other.width),
            "tensor shape mismatch in sub"
        );
        Tensor {
            channels: self.channels,
            height: self.height,
            width: self.width,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }

    /// Deterministic pseudo-random tensor with entries in `[-range, range]`
    /// (for tests and synthetic workloads).
    pub fn random(channels: usize, height: usize, width: usize, range: i64, seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        Tensor::from_fn(channels, height, width, |_, _, _| {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let v = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (v % (2 * range as u64 + 1)) as i64 - range
        })
    }
}

/// A convolution kernel bank in OIHW layout (out-channels, in-channels,
/// kernel height, kernel width).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    out_channels: usize,
    in_channels: usize,
    k_h: usize,
    k_w: usize,
    data: Vec<i64>,
}

impl Kernel {
    /// Creates a zero kernel bank.
    pub fn zeros(out_channels: usize, in_channels: usize, k_h: usize, k_w: usize) -> Self {
        Self {
            out_channels,
            in_channels,
            k_h,
            k_w,
            data: vec![0i64; out_channels * in_channels * k_h * k_w],
        }
    }

    /// Fills a kernel by calling `f(o, i, kh, kw)`.
    pub fn from_fn(
        out_channels: usize,
        in_channels: usize,
        k_h: usize,
        k_w: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> i64,
    ) -> Self {
        let mut k = Self::zeros(out_channels, in_channels, k_h, k_w);
        for o in 0..out_channels {
            for i in 0..in_channels {
                for a in 0..k_h {
                    for b in 0..k_w {
                        *k.at_mut(o, i, a, b) = f(o, i, a, b);
                    }
                }
            }
        }
        k
    }

    /// Deterministic pseudo-random kernel with entries in `[-range, range]`.
    pub fn random(
        out_channels: usize,
        in_channels: usize,
        k_h: usize,
        k_w: usize,
        range: i64,
        seed: u64,
    ) -> Self {
        let mut state = seed.wrapping_mul(0xD134_2543_DE82_EF95) | 1;
        Self::from_fn(out_channels, in_channels, k_h, k_w, |_, _, _, _| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let v = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (v % (2 * range as u64 + 1)) as i64 - range
        })
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Kernel height.
    pub fn k_h(&self) -> usize {
        self.k_h
    }

    /// Kernel width.
    pub fn k_w(&self) -> usize {
        self.k_w
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, o: usize, i: usize, kh: usize, kw: usize) -> i64 {
        self.data[((o * self.in_channels + i) * self.k_h + kh) * self.k_w + kw]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, o: usize, i: usize, kh: usize, kw: usize) -> &mut i64 {
        &mut self.data[((o * self.in_channels + i) * self.k_h + kh) * self.k_w + kw]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_layout() {
        let t = Tensor::from_fn(2, 3, 4, |c, h, w| (c * 100 + h * 10 + w) as i64);
        assert_eq!(t.at(1, 2, 3), 123);
        assert_eq!(t.at(0, 0, 0), 0);
        assert_eq!(t.data()[t.len() - 1], 123);
    }

    #[test]
    fn padded_access_is_zero_outside() {
        let t = Tensor::from_fn(1, 2, 2, |_, _, _| 7);
        assert_eq!(t.at_padded(0, -1, 0), 0);
        assert_eq!(t.at_padded(0, 0, 2), 0);
        assert_eq!(t.at_padded(0, 1, 1), 7);
    }

    #[test]
    fn crop_zero_pads() {
        let t = Tensor::from_fn(1, 2, 2, |_, h, w| (h * 2 + w) as i64 + 1);
        let c = t.crop(-1, -1, 3, 3);
        assert_eq!(c.at(0, 0, 0), 0); // outside
        assert_eq!(c.at(0, 1, 1), 1); // t[0,0]
        assert_eq!(c.at(0, 2, 2), 4); // t[1,1]
    }

    #[test]
    fn add_sub_inverse() {
        let a = Tensor::random(2, 4, 4, 100, 1);
        let b = Tensor::random(2, 4, 4, 100, 2);
        assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = Tensor::random(1, 8, 8, 50, 99);
        let b = Tensor::random(1, 8, 8, 50, 99);
        assert_eq!(a, b);
        assert!(a.data().iter().all(|&v| v.abs() <= 50));
        // not all equal
        assert!(a.data().iter().any(|&v| v != a.data()[0]));
    }

    #[test]
    fn kernel_layout() {
        let k = Kernel::from_fn(2, 3, 3, 3, |o, i, a, b| {
            (o * 1000 + i * 100 + a * 10 + b) as i64
        });
        assert_eq!(k.at(1, 2, 0, 1), 1201);
    }
}
