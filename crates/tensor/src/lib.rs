//! # spot-tensor — plaintext CNN substrate
//!
//! Tensors, reference convolution/activation/pooling math, fixed-point
//! encoding, and layer-by-layer specifications of the networks the SPOT
//! paper evaluates (ResNet-18/34/50/101, VGG-11/13/16). The reference
//! implementations here are the ground truth the homomorphic schemes in
//! `spot-core` are verified against.

#![warn(missing_docs)]

pub mod conv;
pub mod fixed;
pub mod models;
pub mod tensor;

pub use conv::{conv2d, relu};
pub use models::{ConvShape, Layer, Network};
pub use tensor::{Kernel, Tensor};
