//! Reference (plaintext) convolution and related layer math.
//!
//! These functions define the ground truth every HE convolution scheme in
//! `spot-core` is tested against.

use crate::tensor::{Kernel, Tensor};

/// 2-D convolution with "same" zero padding and the given stride.
///
/// Output spatial size is `ceil(H/stride) × ceil(W/stride)`; the kernel
/// center is aligned per the usual floor((k-1)/2) padding convention.
///
/// # Panics
///
/// Panics if the kernel's input channel count does not match the tensor.
pub fn conv2d(input: &Tensor, kernel: &Kernel, stride: usize) -> Tensor {
    assert_eq!(
        input.channels(),
        kernel.in_channels(),
        "input channels must match kernel"
    );
    assert!(stride >= 1, "stride must be >= 1");
    let h = input.height();
    let w = input.width();
    let oh = h.div_ceil(stride);
    let ow = w.div_ceil(stride);
    let pad_h = (kernel.k_h() - 1) / 2;
    let pad_w = (kernel.k_w() - 1) / 2;
    let mut out = Tensor::zeros(kernel.out_channels(), oh, ow);
    for o in 0..kernel.out_channels() {
        for y in 0..oh {
            for x in 0..ow {
                let mut acc = 0i64;
                for i in 0..input.channels() {
                    for kh in 0..kernel.k_h() {
                        for kw in 0..kernel.k_w() {
                            let ih = (y * stride + kh) as i64 - pad_h as i64;
                            let iw = (x * stride + kw) as i64 - pad_w as i64;
                            acc += kernel.at(o, i, kh, kw) * input.at_padded(i, ih, iw);
                        }
                    }
                }
                *out.at_mut(o, y, x) = acc;
            }
        }
    }
    out
}

/// Convolution of a *zero-padded piece* of a larger input: identical to
/// [`conv2d`] with stride 1 but computed over every output position of the
/// piece (used by the patching schemes' reference assembly).
pub fn conv2d_full_positions(input: &Tensor, kernel: &Kernel) -> Tensor {
    conv2d(input, kernel, 1)
}

/// ReLU activation.
pub fn relu(input: &Tensor) -> Tensor {
    input.map(|v| v.max(0))
}

/// 2×2 max pooling with stride 2 (truncating odd edges).
pub fn maxpool2(input: &Tensor) -> Tensor {
    let oh = input.height() / 2;
    let ow = input.width() / 2;
    Tensor::from_fn(input.channels(), oh, ow, |c, h, w| {
        let mut m = i64::MIN;
        for dh in 0..2 {
            for dw in 0..2 {
                m = m.max(input.at(c, 2 * h + dh, 2 * w + dw));
            }
        }
        m
    })
}

/// Global average pooling to a `C×1×1` tensor (integer division).
pub fn global_avgpool(input: &Tensor) -> Tensor {
    let area = (input.height() * input.width()) as i64;
    Tensor::from_fn(input.channels(), 1, 1, |c, _, _| {
        let mut s = 0i64;
        for h in 0..input.height() {
            for w in 0..input.width() {
                s += input.at(c, h, w);
            }
        }
        s / area
    })
}

/// Fully connected layer: `weights` is `out × in`, input is flattened.
///
/// # Panics
///
/// Panics if the weight matrix width differs from the input length.
pub fn fully_connected(input: &Tensor, weights: &[Vec<i64>]) -> Vec<i64> {
    let flat = input.data();
    weights
        .iter()
        .map(|row| {
            assert_eq!(row.len(), flat.len(), "FC weight width mismatch");
            row.iter().zip(flat).map(|(&a, &b)| a * b).sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_is_identity() {
        let input = Tensor::random(3, 5, 5, 10, 1);
        // 1x1 kernel, identity mapping channel i -> i
        let k = Kernel::from_fn(3, 3, 1, 1, |o, i, _, _| i64::from(o == i));
        let out = conv2d(&input, &k, 1);
        assert_eq!(out, input);
    }

    #[test]
    fn known_3x3_convolution() {
        // single channel 3x3 input, all-ones kernel: center output is sum.
        let input = Tensor::from_vec(1, 3, 3, (1..=9).collect());
        let k = Kernel::from_fn(1, 1, 3, 3, |_, _, _, _| 1);
        let out = conv2d(&input, &k, 1);
        assert_eq!(out.at(0, 1, 1), 45);
        // corner sees only the 2x2 sub-window
        assert_eq!(out.at(0, 0, 0), 1 + 2 + 4 + 5);
    }

    #[test]
    fn stride_two_subsamples() {
        let input = Tensor::from_fn(1, 4, 4, |_, h, w| (h * 4 + w) as i64);
        let k = Kernel::from_fn(1, 1, 1, 1, |_, _, _, _| 1);
        let out = conv2d(&input, &k, 2);
        assert_eq!(out.height(), 2);
        assert_eq!(out.width(), 2);
        assert_eq!(out.at(0, 0, 0), 0);
        assert_eq!(out.at(0, 1, 1), 10);
    }

    #[test]
    fn multi_channel_sums_channels() {
        let input = Tensor::from_fn(2, 2, 2, |c, _, _| (c + 1) as i64);
        let k = Kernel::from_fn(1, 2, 1, 1, |_, _, _, _| 1);
        let out = conv2d(&input, &k, 1);
        assert!(out.data().iter().all(|&v| v == 3));
    }

    #[test]
    fn conv_is_linear_in_input() {
        let a = Tensor::random(2, 6, 6, 20, 3);
        let b = Tensor::random(2, 6, 6, 20, 4);
        let k = Kernel::random(3, 2, 3, 3, 5, 5);
        let sum_then_conv = conv2d(&a.add(&b), &k, 1);
        let conv_then_sum = conv2d(&a, &k, 1).add(&conv2d(&b, &k, 1));
        assert_eq!(sum_then_conv, conv_then_sum);
    }

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_vec(1, 1, 4, vec![-5, 0, 3, -1]);
        assert_eq!(relu(&t).data(), &[0, 0, 3, 0]);
    }

    #[test]
    fn maxpool_takes_window_max() {
        let t = Tensor::from_vec(1, 2, 2, vec![1, 9, 3, 4]);
        assert_eq!(maxpool2(&t).at(0, 0, 0), 9);
    }

    #[test]
    fn global_avgpool_averages() {
        let t = Tensor::from_vec(1, 2, 2, vec![1, 2, 3, 6]);
        assert_eq!(global_avgpool(&t).at(0, 0, 0), 3);
    }

    #[test]
    fn fully_connected_dot_products() {
        let t = Tensor::from_vec(1, 1, 3, vec![1, 2, 3]);
        let w = vec![vec![1, 0, 0], vec![1, 1, 1]];
        assert_eq!(fully_connected(&t, &w), vec![1, 6]);
    }
}
