//! Layer-by-layer specifications of the CNNs the paper evaluates:
//! ResNet-18/34/50/101 (basic and bottleneck blocks) and VGG-11/13/16,
//! all at ImageNet resolution (3×224×224 input).
//!
//! These specs drive both the benchmark harness (which layer shapes to
//! time) and the end-to-end secure-inference driver.

/// The shape of one convolution layer — the `(W H C_i C_o)` quadruple the
/// paper's tables use, plus kernel size and stride.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Input feature-map width.
    pub width: usize,
    /// Input feature-map height.
    pub height: usize,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Stride.
    pub stride: usize,
}

impl ConvShape {
    /// Convenience constructor for a square-kernel layer.
    pub fn new(
        width: usize,
        height: usize,
        c_in: usize,
        c_out: usize,
        k: usize,
        stride: usize,
    ) -> Self {
        Self {
            width,
            height,
            c_in,
            c_out,
            k_h: k,
            k_w: k,
            stride,
        }
    }

    /// Number of input feature-map elements.
    pub fn input_elements(&self) -> usize {
        self.width * self.height * self.c_in
    }

    /// Output spatial width.
    pub fn out_width(&self) -> usize {
        self.width.div_ceil(self.stride)
    }

    /// Output spatial height.
    pub fn out_height(&self) -> usize {
        self.height.div_ceil(self.stride)
    }

    /// Number of output feature-map elements.
    pub fn output_elements(&self) -> usize {
        self.out_width() * self.out_height() * self.c_out
    }

    /// Number of multiply-accumulates of the plaintext convolution.
    pub fn macs(&self) -> u64 {
        (self.output_elements() * self.c_in * self.k_h * self.k_w) as u64
    }
}

impl std::fmt::Display for ConvShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} {} {} (k={}x{}, s={})",
            self.width, self.height, self.c_in, self.c_out, self.k_h, self.k_w, self.stride
        )
    }
}

/// A single layer of a network for secure-inference purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Convolution (computed under HE).
    Conv(ConvShape),
    /// ReLU over `elements` values (computed with OT on shares).
    Relu {
        /// Number of activation elements.
        elements: usize,
    },
    /// 2×2 max-pool over `elements` input values (OT-based comparisons).
    MaxPool {
        /// Number of input elements.
        elements: usize,
    },
    /// Global average pool over `elements` values (local on shares).
    AvgPool {
        /// Number of input elements.
        elements: usize,
    },
    /// Fully connected layer (HE dot products).
    Fc {
        /// Input width.
        inputs: usize,
        /// Output width.
        outputs: usize,
    },
}

/// A full network: ordered layers plus a display name.
#[derive(Debug, Clone)]
pub struct Network {
    name: &'static str,
    layers: Vec<Layer>,
}

impl Network {
    /// The network's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// All layers in order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Just the convolution shapes, in order.
    pub fn conv_shapes(&self) -> Vec<ConvShape> {
        self.layers
            .iter()
            .filter_map(|l| match l {
                Layer::Conv(s) => Some(*s),
                _ => None,
            })
            .collect()
    }

    /// Total ReLU elements across the network.
    pub fn relu_elements(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                Layer::Relu { elements } => *elements,
                _ => 0,
            })
            .sum()
    }
}

fn push_conv_relu(layers: &mut Vec<Layer>, s: ConvShape) {
    layers.push(Layer::Conv(s));
    layers.push(Layer::Relu {
        elements: s.output_elements(),
    });
}

/// A ResNet basic block: two 3×3 convolutions at the same channel width
/// (Table VIII's unit).
pub fn basic_block(size: usize, channels: usize) -> Vec<Layer> {
    let mut layers = Vec::new();
    push_conv_relu(
        &mut layers,
        ConvShape::new(size, size, channels, channels, 3, 1),
    );
    push_conv_relu(
        &mut layers,
        ConvShape::new(size, size, channels, channels, 3, 1),
    );
    layers
}

/// A ResNet bottleneck block: 1×1 reduce, 3×3, 1×1 expand
/// (Table VII's unit, labelled `(W H C_mid C_out)`).
pub fn bottleneck_block(size: usize, c_mid: usize, c_out: usize) -> Vec<Layer> {
    let mut layers = Vec::new();
    push_conv_relu(&mut layers, ConvShape::new(size, size, c_out, c_mid, 1, 1));
    push_conv_relu(&mut layers, ConvShape::new(size, size, c_mid, c_mid, 3, 1));
    push_conv_relu(&mut layers, ConvShape::new(size, size, c_mid, c_out, 1, 1));
    layers
}

fn resnet_stem(layers: &mut Vec<Layer>) {
    // 7×7/2 conv 3→64 at 224, then 3×3/2 max pool to 56×56.
    push_conv_relu(layers, ConvShape::new(224, 224, 3, 64, 7, 2));
    layers.push(Layer::MaxPool {
        elements: 112 * 112 * 64,
    });
}

fn resnet_basic(name: &'static str, blocks_per_stage: [usize; 4]) -> Network {
    let mut layers = Vec::new();
    resnet_stem(&mut layers);
    let stage_cfg = [(56usize, 64usize), (28, 128), (14, 256), (7, 512)];
    for (stage, &(size, ch)) in stage_cfg.iter().enumerate() {
        for block in 0..blocks_per_stage[stage] {
            if stage > 0 && block == 0 {
                // downsampling first block: 3×3/2 then 3×3
                push_conv_relu(
                    &mut layers,
                    ConvShape::new(size * 2, size * 2, ch / 2, ch, 3, 2),
                );
                push_conv_relu(&mut layers, ConvShape::new(size, size, ch, ch, 3, 1));
            } else {
                layers.extend(basic_block(size, ch));
            }
        }
    }
    layers.push(Layer::AvgPool {
        elements: 7 * 7 * 512,
    });
    layers.push(Layer::Fc {
        inputs: 512,
        outputs: 1000,
    });
    Network { name, layers }
}

fn resnet_bottleneck(name: &'static str, blocks_per_stage: [usize; 4]) -> Network {
    let mut layers = Vec::new();
    resnet_stem(&mut layers);
    let stage_cfg = [
        (56usize, 64usize, 256usize),
        (28, 128, 512),
        (14, 256, 1024),
        (7, 512, 2048),
    ];
    for (stage, &(size, c_mid, c_out)) in stage_cfg.iter().enumerate() {
        for block in 0..blocks_per_stage[stage] {
            if block == 0 {
                // Entry block: input channels differ (previous stage width).
                let c_in = if stage == 0 { 64 } else { c_out / 2 };
                let in_size = if stage == 0 { size } else { size * 2 };
                push_conv_relu(
                    &mut layers,
                    ConvShape::new(in_size, in_size, c_in, c_mid, 1, 1),
                );
                push_conv_relu(
                    &mut layers,
                    ConvShape {
                        width: in_size,
                        height: in_size,
                        c_in: c_mid,
                        c_out: c_mid,
                        k_h: 3,
                        k_w: 3,
                        stride: if stage == 0 { 1 } else { 2 },
                    },
                );
                push_conv_relu(&mut layers, ConvShape::new(size, size, c_mid, c_out, 1, 1));
            } else {
                layers.extend(bottleneck_block(size, c_mid, c_out));
            }
        }
    }
    layers.push(Layer::AvgPool {
        elements: 7 * 7 * 2048,
    });
    layers.push(Layer::Fc {
        inputs: 2048,
        outputs: 1000,
    });
    Network { name, layers }
}

/// ResNet-18 (basic blocks, 2-2-2-2).
pub fn resnet18() -> Network {
    resnet_basic("ResNet-18", [2, 2, 2, 2])
}

/// ResNet-34 (basic blocks, 3-4-6-3).
pub fn resnet34() -> Network {
    resnet_basic("ResNet-34", [3, 4, 6, 3])
}

/// ResNet-50 (bottleneck blocks, 3-4-6-3).
pub fn resnet50() -> Network {
    resnet_bottleneck("ResNet-50", [3, 4, 6, 3])
}

/// ResNet-101 (bottleneck blocks, 3-4-23-3).
pub fn resnet101() -> Network {
    resnet_bottleneck("ResNet-101", [3, 4, 23, 3])
}

fn vgg(name: &'static str, convs_per_stage: [usize; 5]) -> Network {
    let mut layers = Vec::new();
    let stage_cfg = [
        (224usize, 64usize),
        (112, 128),
        (56, 256),
        (28, 512),
        (14, 512),
    ];
    let mut prev_ch = 3usize;
    for (stage, &(size, ch)) in stage_cfg.iter().enumerate() {
        for _ in 0..convs_per_stage[stage] {
            push_conv_relu(&mut layers, ConvShape::new(size, size, prev_ch, ch, 3, 1));
            prev_ch = ch;
        }
        layers.push(Layer::MaxPool {
            elements: size * size * ch,
        });
    }
    layers.push(Layer::Fc {
        inputs: 7 * 7 * 512,
        outputs: 4096,
    });
    layers.push(Layer::Fc {
        inputs: 4096,
        outputs: 4096,
    });
    layers.push(Layer::Fc {
        inputs: 4096,
        outputs: 1000,
    });
    Network { name, layers }
}

/// VGG-11 (configuration A: 1-1-2-2-2 convolutions per stage).
pub fn vgg11() -> Network {
    vgg("VGG-11", [1, 1, 2, 2, 2])
}

/// VGG-13 (configuration B: 2-2-2-2-2).
pub fn vgg13() -> Network {
    vgg("VGG-13", [2, 2, 2, 2, 2])
}

/// VGG-16 (configuration D: 2-2-3-3-3).
pub fn vgg16() -> Network {
    vgg("VGG-16", [2, 2, 3, 3, 3])
}

/// The four bottleneck block shapes of Table VII: `(W H C_mid C_out)`.
pub fn table7_bottleneck_shapes() -> [(usize, usize, usize, usize); 4] {
    [
        (56, 56, 64, 256),
        (28, 28, 128, 512),
        (14, 14, 256, 1024),
        (7, 7, 512, 2048),
    ]
}

/// The four basic block shapes of Table VIII: `(W H C_i C_o)`.
pub fn table8_basic_shapes() -> [(usize, usize, usize, usize); 4] {
    [
        (56, 56, 64, 64),
        (28, 28, 128, 128),
        (14, 14, 256, 256),
        (7, 7, 512, 512),
    ]
}

/// The five VGG-16 block conv shapes of Table IX.
pub fn table9_vgg_shapes() -> [(usize, usize, usize, usize); 5] {
    [
        (224, 224, 64, 64),
        (112, 112, 128, 128),
        (56, 56, 256, 256),
        (28, 28, 512, 512),
        (14, 14, 512, 512),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_has_13_convs() {
        assert_eq!(vgg16().conv_shapes().len(), 13);
        assert_eq!(vgg11().conv_shapes().len(), 8);
        assert_eq!(vgg13().conv_shapes().len(), 10);
    }

    #[test]
    fn resnet_conv_counts() {
        // ResNet-18: stem + 2*2*4 stage convs = 17
        assert_eq!(resnet18().conv_shapes().len(), 17);
        // ResNet-34: stem + 2*(3+4+6+3) = 33
        assert_eq!(resnet34().conv_shapes().len(), 33);
        // ResNet-50: stem + 3*(3+4+6+3) = 49
        assert_eq!(resnet50().conv_shapes().len(), 49);
        // ResNet-101: stem + 3*(3+4+23+3) = 100
        assert_eq!(resnet101().conv_shapes().len(), 100);
    }

    #[test]
    fn vgg16_first_conv_is_224() {
        let s = vgg16().conv_shapes()[0];
        assert_eq!((s.width, s.height, s.c_in, s.c_out), (224, 224, 3, 64));
    }

    #[test]
    fn resnet50_contains_table7_shapes() {
        let shapes = resnet50().conv_shapes();
        // the 3×3 mid convolutions of each stage appear
        for (w, _h, c_mid, _c_out) in table7_bottleneck_shapes() {
            assert!(
                shapes
                    .iter()
                    .any(|s| s.width == w && s.c_in == c_mid && s.c_out == c_mid && s.k_h == 3),
                "missing {w}x{w} {c_mid}-channel 3x3 conv"
            );
        }
    }

    #[test]
    fn conv_shape_math() {
        let s = ConvShape::new(56, 56, 64, 256, 3, 1);
        assert_eq!(s.input_elements(), 56 * 56 * 64);
        assert_eq!(s.output_elements(), 56 * 56 * 256);
        assert_eq!(s.macs(), (56 * 56 * 256 * 64 * 9) as u64);
        let strided = ConvShape::new(224, 224, 3, 64, 7, 2);
        assert_eq!(strided.out_width(), 112);
    }

    #[test]
    fn blocks_have_expected_layer_counts() {
        assert_eq!(basic_block(56, 64).len(), 4); // 2 convs + 2 relus
        assert_eq!(bottleneck_block(56, 64, 256).len(), 6);
    }

    #[test]
    fn relu_elements_positive() {
        for net in [resnet18(), resnet50(), vgg16()] {
            assert!(net.relu_elements() > 1_000_000, "{}", net.name());
        }
    }
}
