//! Fixed-point encoding of real-valued network weights/activations.
//!
//! Secure inference runs over `Z_t` with `t ≈ 2^20`. Values are encoded
//! with a power-of-two scale; after each multiplication the scale doubles
//! and must be truncated back (done on secret shares in `spot-proto`).

/// A fixed-point scale: values are stored as `round(x * 2^frac_bits)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedScale {
    frac_bits: u32,
}

impl FixedScale {
    /// Creates a scale with the given fractional bit count.
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits >= 30` (would overflow the plaintext space
    /// after one multiplication).
    pub fn new(frac_bits: u32) -> Self {
        assert!(
            frac_bits < 30,
            "fractional bits too large for Z_t arithmetic"
        );
        Self { frac_bits }
    }

    /// Fractional bits.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// The multiplier `2^frac_bits`.
    pub fn factor(&self) -> i64 {
        1i64 << self.frac_bits
    }

    /// Encodes a real value.
    pub fn encode(&self, x: f64) -> i64 {
        (x * self.factor() as f64).round() as i64
    }

    /// Decodes an integer back to a real value.
    pub fn decode(&self, v: i64) -> f64 {
        v as f64 / self.factor() as f64
    }

    /// Decodes a value carrying a doubled scale (after one multiply).
    pub fn decode_product(&self, v: i64) -> f64 {
        v as f64 / (self.factor() as f64 * self.factor() as f64)
    }

    /// Truncates a product back to single scale (arithmetic shift, the
    /// plaintext analogue of the two-party truncation protocol).
    pub fn truncate(&self, v: i64) -> i64 {
        v >> self.frac_bits
    }
}

impl Default for FixedScale {
    /// 6 fractional bits — the precision regime CrypTFlow2-style
    /// inference uses with a 20-bit plaintext modulus.
    fn default() -> Self {
        Self::new(6)
    }
}

/// Maps a signed value into `Z_t` (two's-complement style).
pub fn to_field(v: i64, t: u64) -> u64 {
    v.rem_euclid(t as i64) as u64
}

/// Maps a `Z_t` element back to the centered signed value in
/// `(-t/2, t/2]`.
pub fn from_field(v: u64, t: u64) -> i64 {
    if v > t / 2 {
        v as i64 - t as i64
    } else {
        v as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let s = FixedScale::new(8);
        for x in [-3.5f64, 0.0, 0.125, 2.75] {
            assert!((s.decode(s.encode(x)) - x).abs() < 1.0 / 256.0);
        }
    }

    #[test]
    fn product_scale() {
        let s = FixedScale::new(8);
        let a = s.encode(1.5);
        let b = s.encode(2.0);
        assert!((s.decode_product(a * b) - 3.0).abs() < 0.01);
        assert!((s.decode(s.truncate(a * b)) - 3.0).abs() < 0.02);
    }

    #[test]
    fn field_roundtrip() {
        let t = 1_032_193u64;
        for v in [-500_000i64, -1, 0, 1, 500_000] {
            assert_eq!(from_field(to_field(v, t), t), v);
        }
    }

    #[test]
    fn field_wraps_negative() {
        let t = 97u64;
        assert_eq!(to_field(-1, t), 96);
        assert_eq!(from_field(96, t), -1);
    }
}
