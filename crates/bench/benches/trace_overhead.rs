//! Overhead of the `spot-trace` layer at instrumentation sites.
//!
//! The disabled path (tracing off, the default) must stay in the
//! low-single-nanosecond range — one relaxed atomic load and a branch —
//! because every HE op, pool take, and wire frame crosses it. The
//! enabled path is measured for reference (it allocates nothing for
//! static labels but does write thread-local event records).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use spot_trace::{count, metrics, span, Cat, Counter};

fn bench_disabled(c: &mut Criterion) {
    spot_trace::disable();
    spot_trace::reset();
    let mut group = c.benchmark_group("trace/disabled");
    group.bench_function("span", |b| {
        b.iter(|| {
            let s = span(Cat::He, black_box("bench"));
            black_box(&s);
        })
    });
    group.bench_function("span_owned", |b| {
        b.iter(|| {
            let s = spot_trace::span_owned(Cat::He, || format!("bench {}", black_box(1)));
            black_box(&s);
        })
    });
    group.bench_function("count", |b| {
        b.iter(|| count(black_box(Counter::NttFwd), black_box(1)))
    });
    group.bench_function("instant", |b| {
        b.iter(|| spot_trace::instant(Cat::He, black_box("bench")))
    });
    group.finish();
}

/// Disabled-path cost of the metrics registry at an instrumentation
/// site. The acceptance budget is <= 5 ns per site: `Counter::inc`,
/// `Histogram::observe`, and `Histogram::start_timer` must each be one
/// relaxed load and a branch when the registry switch is off (the
/// timer additionally must not touch `Instant::now`).
fn bench_metrics_disabled(c: &mut Criterion) {
    metrics::disable();
    let counter = metrics::global().counter("bench_disabled_total", &[]);
    let hist = metrics::global().histogram("bench_disabled_ns", &[]);
    let mut group = c.benchmark_group("metrics/disabled");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc(black_box(1))));
    group.bench_function("histogram_observe", |b| {
        b.iter(|| hist.observe(black_box(42)))
    });
    group.bench_function("histogram_start_timer", |b| {
        b.iter(|| {
            let t = hist.start_timer();
            black_box(&t);
        })
    });
    group.finish();
    assert_eq!(
        counter.get(),
        0,
        "disabled counter must not have accumulated"
    );
    assert_eq!(hist.count(), 0, "disabled histogram must not have recorded");
}

/// Enabled-path cost for reference: relaxed atomic adds, plus two
/// `Instant::now` calls for the RAII timer.
fn bench_metrics_enabled(c: &mut Criterion) {
    metrics::enable();
    let counter = metrics::global().counter("bench_enabled_total", &[]);
    let hist = metrics::global().histogram("bench_enabled_ns", &[]);
    let mut group = c.benchmark_group("metrics/enabled");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc(black_box(1))));
    group.bench_function("histogram_observe", |b| {
        b.iter(|| hist.observe(black_box(42)))
    });
    group.bench_function("histogram_start_timer", |b| {
        b.iter(|| {
            let t = hist.start_timer();
            black_box(&t);
        })
    });
    group.finish();
    metrics::disable();
    metrics::global().reset();
}

fn bench_enabled(c: &mut Criterion) {
    spot_trace::enable();
    let mut group = c.benchmark_group("trace/enabled");
    group.bench_function("span", |b| {
        b.iter(|| {
            let s = span(Cat::He, black_box("bench"));
            black_box(&s);
        })
    });
    group.bench_function("count", |b| {
        b.iter(|| count(black_box(Counter::NttFwd), black_box(1)))
    });
    group.finish();
    spot_trace::disable();
    spot_trace::reset();
}

criterion_group!(
    benches,
    bench_disabled,
    bench_metrics_disabled,
    bench_enabled,
    bench_metrics_enabled
);
criterion_main!(benches);
