//! Overhead of the `spot-trace` layer at instrumentation sites.
//!
//! The disabled path (tracing off, the default) must stay in the
//! low-single-nanosecond range — one relaxed atomic load and a branch —
//! because every HE op, pool take, and wire frame crosses it. The
//! enabled path is measured for reference (it allocates nothing for
//! static labels but does write thread-local event records).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use spot_trace::{count, span, Cat, Counter};

fn bench_disabled(c: &mut Criterion) {
    spot_trace::disable();
    spot_trace::reset();
    let mut group = c.benchmark_group("trace/disabled");
    group.bench_function("span", |b| {
        b.iter(|| {
            let s = span(Cat::He, black_box("bench"));
            black_box(&s);
        })
    });
    group.bench_function("span_owned", |b| {
        b.iter(|| {
            let s = spot_trace::span_owned(Cat::He, || format!("bench {}", black_box(1)));
            black_box(&s);
        })
    });
    group.bench_function("count", |b| {
        b.iter(|| count(black_box(Counter::NttFwd), black_box(1)))
    });
    group.bench_function("instant", |b| {
        b.iter(|| spot_trace::instant(Cat::He, black_box("bench")))
    });
    group.finish();
}

fn bench_enabled(c: &mut Criterion) {
    spot_trace::enable();
    let mut group = c.benchmark_group("trace/enabled");
    group.bench_function("span", |b| {
        b.iter(|| {
            let s = span(Cat::He, black_box("bench"));
            black_box(&s);
        })
    });
    group.bench_function("count", |b| {
        b.iter(|| count(black_box(Counter::NttFwd), black_box(1)))
    });
    group.finish();
    spot_trace::disable();
    spot_trace::reset();
}

criterion_group!(benches, bench_disabled, bench_enabled);
criterion_main!(benches);
