//! Ablation benchmarks over the design choices DESIGN.md calls out,
//! driven through the (cheap) planner + simulator:
//!
//! * overlap tweaking vs vanilla patching,
//! * patch-size sweep,
//! * parameter-level sweep,
//! * server thread-count sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use spot_core::inference::{plan_conv_at_level, Scheme};
use spot_core::patching::PatchMode;
use spot_core::{select, spot};
use spot_he::params::ParamLevel;
use spot_pipeline::device::DeviceProfile;
use spot_pipeline::sim::{simulate_conv, SimConfig};
use spot_tensor::models::ConvShape;

fn ablations(c: &mut Criterion) {
    let shape = ConvShape::new(28, 28, 128, 128, 3, 1);
    let cfg = SimConfig::with_client(DeviceProfile::iot_k27());

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    // Overlap tweaking vs vanilla patching (same level).
    for mode in [PatchMode::Tweaked, PatchMode::Vanilla] {
        let label = match mode {
            PatchMode::Tweaked => "overlap/tweaked",
            PatchMode::Vanilla => "overlap/vanilla",
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let choice = select::select_patch(&shape, ParamLevel::N8192, mode).unwrap();
                let plan = spot::plan(&shape, ParamLevel::N8192, choice.patch, mode, true);
                simulate_conv(&plan, &cfg).timing.total_s
            })
        });
    }

    // Patch-size sweep at a fixed level.
    for patch in [(4usize, 4usize), (8, 4), (8, 8)] {
        group.bench_function(format!("patch/{}x{}", patch.0, patch.1), |b| {
            b.iter(|| {
                let plan = spot::plan(&shape, ParamLevel::N8192, patch, PatchMode::Tweaked, true);
                simulate_conv(&plan, &cfg).timing.total_s
            })
        });
    }

    // Parameter-level sweep for SPOT.
    for level in [ParamLevel::N4096, ParamLevel::N8192, ParamLevel::N16384] {
        group.bench_function(format!("level/{level}"), |b| {
            b.iter(|| {
                plan_conv_at_level(&shape, Scheme::Spot, level, true)
                    .map(|p| simulate_conv(&p, &cfg).timing.total_s)
            })
        });
    }

    // Server thread-count sweep.
    for threads in [1usize, 4, 16] {
        group.bench_function(format!("server-threads/{threads}"), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::with_client(DeviceProfile::iot_k27());
                cfg.server.threads = threads;
                let p = plan_conv_at_level(&shape, Scheme::Spot, ParamLevel::N4096, true).unwrap();
                simulate_conv(&p, &cfg).timing.total_s
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
