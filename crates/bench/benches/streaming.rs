//! Criterion comparison of the phased two-phase driver (encrypt all →
//! convolve all) against the streaming pipeline runtime on a real
//! layer, for every scheme. The streamed SPOT run overlaps client
//! encryption with server convolution, so its wall time approaches
//! `max(client, server)` instead of their sum.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_core::executor::Executor;
use spot_core::inference::{run_conv_backend, ExecBackend, Scheme};
use spot_core::patching::PatchMode;
use spot_core::stream::StreamConfig;
use spot_he::prelude::*;
use spot_tensor::tensor::{Kernel, Tensor};

fn streaming_vs_phased(c: &mut Criterion) {
    let ctx = spot_he::context::Context::new(EncryptionParams::new(ParamLevel::N4096));
    let mut rng = StdRng::seed_from_u64(2);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let input = Tensor::random(8, 16, 16, 6, 1);
    let kernel = Kernel::random(8, 8, 3, 3, 4, 2);
    let threads = 4;
    let channel_capacity = 3; // tiny-client ciphertext budget

    let mut group = c.benchmark_group("streaming_vs_phased/16x16x8->8");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        group.bench_function(format!("{}/phased", scheme.name()), |b| {
            b.iter(|| {
                run_conv_backend(
                    &ctx,
                    &keygen,
                    &input,
                    &kernel,
                    1,
                    (4, 4),
                    PatchMode::Tweaked,
                    scheme,
                    &ExecBackend::Phased(Executor::new(threads)),
                    &mut rng,
                )
            })
        });
        group.bench_function(format!("{}/streamed", scheme.name()), |b| {
            b.iter(|| {
                run_conv_backend(
                    &ctx,
                    &keygen,
                    &input,
                    &kernel,
                    1,
                    (4, 4),
                    PatchMode::Tweaked,
                    scheme,
                    &ExecBackend::Streaming(StreamConfig::new(
                        Executor::new(threads),
                        channel_capacity,
                    )),
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, streaming_vs_phased);
criterion_main!(benches);
