//! Criterion benchmarks of the three secure-convolution schemes under
//! real HE on a scaled-down layer — the measured counterpart of the
//! per-block microbenchmarks (Tables VII–IX run through the calibrated
//! simulator; this measures the actual implementations).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_core::patching::PatchMode;
use spot_core::{channelwise, cheetah, spot};
use spot_he::prelude::*;
use spot_tensor::tensor::{Kernel, Tensor};

fn conv_schemes(c: &mut Criterion) {
    let ctx = spot_he::context::Context::new(EncryptionParams::new(ParamLevel::N4096));
    let mut rng = StdRng::seed_from_u64(2);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let input = Tensor::random(8, 8, 8, 6, 1);
    let kernel = Kernel::random(8, 8, 3, 3, 4, 2);

    let mut group = c.benchmark_group("secure-conv/8x8x8->8");
    group.sample_size(10);
    group.bench_function("channelwise", |b| {
        b.iter(|| channelwise::execute(&ctx, &keygen, &input, &kernel, 1, &mut rng))
    });
    group.bench_function("cheetah", |b| {
        b.iter(|| cheetah::execute(&ctx, &keygen, &input, &kernel, 1, &mut rng))
    });
    group.bench_function("spot-tweaked", |b| {
        b.iter(|| {
            spot::execute(
                &ctx,
                &keygen,
                &input,
                &kernel,
                1,
                (4, 4),
                PatchMode::Tweaked,
                &mut rng,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, conv_schemes);
criterion_main!(benches);
