//! Criterion benchmarks of the raw BFV primitives — the measured
//! counterpart of the paper's Table IV. Run with `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_he::prelude::*;

fn bench_level(c: &mut Criterion, level: ParamLevel) {
    let ctx = Context::new(EncryptionParams::new(level));
    let mut rng = StdRng::seed_from_u64(1);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let pk = keygen.public_key(&mut rng);
    let encoder = BatchEncoder::new(&ctx);
    let encryptor = Encryptor::new(&ctx, pk);
    let decryptor = Decryptor::new(&ctx, keygen.secret_key().clone());
    let evaluator = Evaluator::new(&ctx);
    let values: Vec<u64> = (0..ctx.degree() as u64)
        .map(|i| i % ctx.params().plain_modulus())
        .collect();
    let pt = encoder.encode(&values);
    let lifted = pt.lift(&ctx);
    let ct = encryptor.encrypt(&pt, &mut rng);
    let ct2 = encryptor.encrypt(&pt, &mut rng);

    let mut group = c.benchmark_group(format!("he/{level}"));
    group.sample_size(10);
    group.bench_function("encrypt", |b| {
        b.iter(|| encryptor.encrypt(&pt, &mut rng))
    });
    group.bench_function("decrypt", |b| b.iter(|| decryptor.decrypt(&ct)));
    group.bench_function("mult_plain", |b| {
        b.iter(|| evaluator.multiply_lifted(&ct, &lifted))
    });
    group.bench_function("add", |b| b.iter(|| evaluator.add(&ct, &ct2)));
    if level.supports_rotation() {
        let gk = keygen.galois_keys(&evaluator.galois_elements(&[1], false), &mut rng);
        group.bench_function("rotate", |b| {
            b.iter(|| evaluator.rotate_rows(&ct, 1, &gk))
        });
    }
    group.bench_function("encode", |b| b.iter(|| encoder.encode(&values)));
    group.finish();
}

fn he_ops(c: &mut Criterion) {
    bench_level(c, ParamLevel::N4096);
    bench_level(c, ParamLevel::N8192);
}

criterion_group!(benches, he_ops);
criterion_main!(benches);
