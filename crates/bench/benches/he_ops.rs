//! Criterion benchmarks of the raw BFV primitives — the measured
//! counterpart of the paper's Table IV. Run with `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_core::executor::Executor;
use spot_core::heconv::{ConvRequest, HeConvEngine};
use spot_core::layout::LaneLayout;
use spot_core::patching::PatchMode;
use spot_core::spot::{self as spot_exec, blocking, spot_group_specs, spot_in_maps};
use spot_he::evaluator::OpCounts;
use spot_he::prelude::*;
use spot_tensor::tensor::{Kernel, Tensor};

fn bench_level(c: &mut Criterion, level: ParamLevel) {
    let ctx = Context::new(EncryptionParams::new(level));
    let mut rng = StdRng::seed_from_u64(1);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let pk = keygen.public_key(&mut rng);
    let encoder = BatchEncoder::new(&ctx);
    let encryptor = Encryptor::new(&ctx, pk);
    let decryptor = Decryptor::new(&ctx, keygen.secret_key().clone());
    let evaluator = Evaluator::new(&ctx);
    let values: Vec<u64> = (0..ctx.degree() as u64)
        .map(|i| i % ctx.params().plain_modulus())
        .collect();
    let pt = encoder.encode(&values);
    let lifted = pt.lift(&ctx);
    let ct = encryptor.encrypt(&pt, &mut rng);
    let ct2 = encryptor.encrypt(&pt, &mut rng);

    let mut group = c.benchmark_group(format!("he/{level}"));
    group.sample_size(10);
    group.bench_function("encrypt", |b| b.iter(|| encryptor.encrypt(&pt, &mut rng)));
    group.bench_function("decrypt", |b| b.iter(|| decryptor.decrypt(&ct)));
    group.bench_function("mult_plain", |b| {
        b.iter(|| evaluator.multiply_lifted(&ct, &lifted))
    });
    group.bench_function("add", |b| b.iter(|| evaluator.add(&ct, &ct2)));
    if level.supports_rotation() {
        let gk = keygen.galois_keys(&evaluator.galois_elements(&[1], false), &mut rng);
        group.bench_function("rotate", |b| b.iter(|| evaluator.rotate_rows(&ct, 1, &gk)));
    }
    group.bench_function("encode", |b| b.iter(|| encoder.encode(&values)));
    group.finish();
}

/// Raw transform cost at each degree — the dominant term inside every
/// ciphertext operation, benchmarked in isolation so lazy-reduction
/// changes in the butterfly loops are directly visible.
fn bench_ntt(c: &mut Criterion, level: ParamLevel) {
    let ctx = Context::new(EncryptionParams::new(level));
    let n = ctx.degree();
    let tables = &ctx.ntt_tables()[0];
    let p = tables.modulus().value();
    let coeffs: Vec<u64> = (0..n as u64).map(|i| (i * 0x9e37_79b9 + 17) % p).collect();

    let mut group = c.benchmark_group(format!("ntt/{level}"));
    group.sample_size(20);
    group.bench_function("forward", |b| {
        let mut a = coeffs.clone();
        b.iter(|| {
            tables.forward(&mut a);
        })
    });
    group.bench_function("inverse", |b| {
        let mut a = coeffs.clone();
        b.iter(|| {
            tables.inverse(&mut a);
        })
    });
    group.finish();
}

/// The kernel-dispatch hot loops below the NTT: pointwise residue-row
/// multiply (the mult-plain core) and the two key-switch digit inner
/// loops (Barrett lift into a foreign modulus, fused digit×ksk
/// multiply-accumulate). Benchmarked per dispatched kernel table so
/// `SPOT_SIMD=off cargo bench` vs `cargo bench` isolates the SIMD win.
fn bench_kernel_loops(c: &mut Criterion, level: ParamLevel) {
    let ctx = Context::new(EncryptionParams::new(level));
    let n = ctx.degree();
    let tables = &ctx.ntt_tables()[0];
    let m = tables.modulus();
    let p = m.value();
    let a: Vec<u64> = (0..n as u64).map(|i| (i * 0x9e37_79b9 + 17) % p).collect();
    let b_row: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 3) % p).collect();
    let kernels = spot_he::arch::kernels();

    let mut group = c.benchmark_group(format!("kernels/{}/{level}", kernels.name));
    group.sample_size(20);
    group.bench_function("pointwise_mul", |b| {
        let mut d = a.clone();
        b.iter(|| (kernels.pointwise_mul)(m, &mut d, &b_row))
    });
    group.bench_function("keyswitch_digit_lift", |b| {
        // The digit lift reduces a residue row into a *different* (here
        // smaller) modulus, exactly like Evaluator::key_switch.
        let small = spot_he::modulus::Modulus::new((1u64 << 30) - 35);
        let mut d = vec![0u64; n];
        b.iter(|| (kernels.reduce)(&small, &mut d, &a))
    });
    group.bench_function("keyswitch_digit_madd", |b| {
        let mut acc = vec![0u64; n];
        b.iter(|| (kernels.pointwise_add_mul)(m, &mut acc, &a, &b_row))
    });
    group.finish();
}

/// Steady-state cost of one lane-MIMO convolution with and without the
/// NTT-domain kernel plaintext cache: the cached engine encodes and
/// lifts each kernel combination once, the uncached engine re-encodes
/// per ciphertext (the seed behaviour).
fn bench_conv_cache(c: &mut Criterion) {
    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let mut rng = StdRng::seed_from_u64(3);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let encryptor = Encryptor::new(&ctx, keygen.public_key(&mut rng));

    let (c_in, c_out, h, w) = (8usize, 8usize, 8usize, 8usize);
    let blk = blocking(c_in, c_out);
    let layout = LaneLayout::new(ctx.degree() / 2, blk.lane_blocks, h, w);
    let kernel = Kernel::random(c_out, c_in, 3, 3, 4, 11);
    let groups = spot_group_specs(&blk, c_out);
    let in_maps = spot_in_maps(&blk, c_in);
    let req = ConvRequest {
        layout: &layout,
        in_maps: &in_maps,
        groups: &groups,
        diagonals: blk.diagonals,
        fold_steps: &blk.fold_steps,
        kernel: &kernel,
        cache_tag: 0,
    };
    let mk_engine = |rng: &mut StdRng| {
        HeConvEngine::new(
            &ctx,
            &keygen,
            &layout,
            3,
            3,
            blk.diagonals,
            blk.out_groups,
            &blk.fold_steps,
            blk.split,
            true,
            rng,
        )
    };
    let cached = mk_engine(&mut rng);
    let mut uncached = mk_engine(&mut rng);
    uncached.set_cache_enabled(false);

    let values: Vec<u64> = (0..ctx.degree() as u64).map(|i| i % 97).collect();
    let encoder = BatchEncoder::new(&ctx);
    let ct = encryptor.encrypt(&encoder.encode(&values), &mut rng);

    let mut group = c.benchmark_group("conv/spot_8ch_8x8");
    group.sample_size(10);
    let mut counts = OpCounts::default();
    // Warm the cache outside the timed region: steady-state layers see
    // only hits.
    cached.conv_one_ct(&ct, &req, &mut counts);
    group.bench_function("one_ct_cached", |b| {
        b.iter(|| cached.conv_one_ct(&ct, &req, &mut counts))
    });
    group.bench_function("one_ct_uncached", |b| {
        b.iter(|| uncached.conv_one_ct(&ct, &req, &mut counts))
    });
    group.finish();
}

/// End-to-end SPOT secure convolution at 1 vs 4 server threads — the
/// executor's parallel phase covers the per-ciphertext conv work, so
/// this shows the real (not simulated) scaling of `execute_with`.
fn bench_executor_threads(c: &mut Criterion) {
    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let input = Tensor::random(8, 12, 12, 6, 21);
    let kernel = Kernel::random(8, 8, 3, 3, 4, 22);
    let mut kg_rng = StdRng::seed_from_u64(9);
    let keygen = KeyGenerator::new(&ctx, &mut kg_rng);

    let mut group = c.benchmark_group("conv/spot_e2e_8ch_12x12");
    group.sample_size(10);
    for threads in [1usize, 4] {
        let executor = Executor::new(threads);
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(10);
                spot_exec::execute_with(
                    &ctx,
                    &keygen,
                    &input,
                    &kernel,
                    1,
                    (6, 6),
                    PatchMode::Tweaked,
                    &executor,
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

fn he_ops(c: &mut Criterion) {
    bench_level(c, ParamLevel::N4096);
    bench_level(c, ParamLevel::N8192);
    bench_ntt(c, ParamLevel::N4096);
    bench_ntt(c, ParamLevel::N8192);
    bench_kernel_loops(c, ParamLevel::N4096);
    bench_kernel_loops(c, ParamLevel::N8192);
    bench_conv_cache(c);
    bench_executor_threads(c);
}

criterion_group!(benches, he_ops);
criterion_main!(benches);
