//! `--trace <path>` support shared by the demo binaries: drain the
//! process-wide [`spot_trace`] sink into a Chrome-trace JSON file
//! (loadable in Perfetto / `chrome://tracing`) and print the text
//! summary of spans and counters. The same module holds the reader
//! half (`read_trace`) the `trace_merge` tool uses to load both
//! parties' exports back.

use spot_trace::correlate::PartyTrace;
use spot_trace::CounterSnapshot;
use std::io::Write;
use std::path::Path;

/// Enables tracing — including wire-propagated trace context, so a
/// traced client stamps its `Setup` frames with trace ids and runs the
/// clock-sync probe at teardown — and returns the counter baseline to
/// delta against at dump time. Call once at startup when `--trace` is
/// given.
pub fn trace_begin() -> CounterSnapshot {
    spot_trace::enable_wire_context();
    spot_trace::counters()
}

/// Drops everything traced so far and returns a fresh counter
/// baseline. Used after a warm-up or reference run so the exported
/// trace covers only the run under observation.
pub fn trace_restart() -> CounterSnapshot {
    let _ = spot_trace::take_events();
    spot_trace::counters()
}

/// Validates `json` and writes it to `path`.
///
/// Panics if the export fails JSON validation or the file cannot be
/// written — a trace the user asked for must not vanish silently.
pub fn write_trace_json(path: &Path, json: &str) {
    if let Err(e) = spot_trace::json::validate(json) {
        panic!("trace export produced invalid JSON: {e}");
    }
    let mut f = std::fs::File::create(path)
        .unwrap_or_else(|e| panic!("cannot create trace file {}: {e}", path.display()));
    f.write_all(json.as_bytes())
        .and_then(|()| f.flush())
        .unwrap_or_else(|e| panic!("cannot write trace file {}: {e}", path.display()));
}

/// Drains every recorded event, exports Chrome-trace JSON to `path`
/// (validated before writing), and prints the span/counter text
/// summary. Returns the number of events written.
pub fn trace_finish(path: &Path, baseline: &CounterSnapshot) -> usize {
    let events = spot_trace::take_events();
    let threads = spot_trace::thread_names();
    let delta = spot_trace::counters().delta(baseline);
    let json = spot_trace::chrome::chrome_trace_json_with_threads(&events, &threads);
    write_trace_json(path, &json);
    println!(
        "trace: {} events, JSON OK -> {}",
        events.len(),
        path.display()
    );
    println!("{}", spot_trace::summary::text_summary(&events, &delta));
    events.len()
}

/// Reads a Chrome-trace JSON export back into a [`PartyTrace`].
pub fn read_trace(path: &Path) -> Result<PartyTrace, String> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read trace file {}: {e}", path.display()))?;
    spot_trace::correlate::parse_chrome_trace(&json).map_err(|e| format!("{}: {e}", path.display()))
}
