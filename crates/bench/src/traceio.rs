//! `--trace <path>` support shared by the demo binaries: drain the
//! process-wide [`spot_trace`] sink into a Chrome-trace JSON file
//! (loadable in Perfetto / `chrome://tracing`) and print the text
//! summary of spans and counters.

use spot_trace::CounterSnapshot;
use std::io::Write;
use std::path::Path;

/// Enables tracing and returns the counter baseline to delta against
/// at dump time. Call once at startup when `--trace` is given.
pub fn trace_begin() -> CounterSnapshot {
    spot_trace::enable();
    spot_trace::counters()
}

/// Drains every recorded event, exports Chrome-trace JSON to `path`
/// (validated before writing), and prints the span/counter text
/// summary. Returns the number of events written.
///
/// Panics if the export fails JSON validation or the file cannot be
/// written — a trace the user asked for must not vanish silently.
pub fn trace_finish(path: &Path, baseline: &CounterSnapshot) -> usize {
    let events = spot_trace::take_events();
    let threads = spot_trace::thread_names();
    let delta = spot_trace::counters().delta(baseline);
    let json = spot_trace::chrome::chrome_trace_json_with_threads(&events, &threads);
    if let Err(e) = spot_trace::json::validate(&json) {
        panic!("trace export produced invalid JSON: {e}");
    }
    let mut f = std::fs::File::create(path)
        .unwrap_or_else(|e| panic!("cannot create trace file {}: {e}", path.display()));
    f.write_all(json.as_bytes())
        .and_then(|()| f.flush())
        .unwrap_or_else(|e| panic!("cannot write trace file {}: {e}", path.display()));
    println!(
        "trace: {} events, JSON OK -> {}",
        events.len(),
        path.display()
    );
    println!("{}", spot_trace::summary::text_summary(&events, &delta));
    events.len()
}
