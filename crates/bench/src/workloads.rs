//! Block workloads matching the paper's Tables VII–IX rows, and helpers
//! to simulate them per scheme/device.

use spot_core::inference::{plan_conv, Scheme};
use spot_pipeline::device::DeviceProfile;
use spot_pipeline::plan::ConvPlan;
use spot_pipeline::sim::{simulate_layers, LayerTiming, SimConfig};
use spot_tensor::models::ConvShape;

/// A ResNet-50 bottleneck block labelled `(W H C_mid C_out)` (Table
/// VII): 1×1 reduce, 3×3, 1×1 expand — each followed by ReLU.
pub fn bottleneck_block_shapes(w: usize, h: usize, c_mid: usize, c_out: usize) -> Vec<ConvShape> {
    vec![
        ConvShape::new(w, h, c_out, c_mid, 1, 1),
        ConvShape::new(w, h, c_mid, c_mid, 3, 1),
        ConvShape::new(w, h, c_mid, c_out, 1, 1),
    ]
}

/// A ResNet-18 basic block labelled `(W H C_i C_o)` (Table VIII): two
/// 3×3 convolutions.
pub fn basic_block_shapes(w: usize, h: usize, c_i: usize, c_o: usize) -> Vec<ConvShape> {
    vec![
        ConvShape::new(w, h, c_i, c_o, 3, 1),
        ConvShape::new(w, h, c_o, c_o, 3, 1),
    ]
}

/// A VGG-16 block row `(W H C_i C_o)` (Table IX): one 3×3 convolution.
pub fn vgg_block_shapes(w: usize, h: usize, c_i: usize, c_o: usize) -> Vec<ConvShape> {
    vec![ConvShape::new(w, h, c_i, c_o, 3, 1)]
}

/// Result of simulating one block under one scheme on one device.
#[derive(Debug, Clone)]
pub struct BlockResult {
    /// Scheme.
    pub scheme: Scheme,
    /// Device name.
    pub device: &'static str,
    /// Timing breakdown.
    pub timing: LayerTiming,
    /// The per-layer plans (for op-count inspection).
    pub plans: Vec<ConvPlan>,
}

/// Simulates a block (list of conv shapes, each followed by ReLU) under
/// a scheme on a client device.
pub fn simulate_block(shapes: &[ConvShape], scheme: Scheme, client: DeviceProfile) -> BlockResult {
    let plans: Vec<ConvPlan> = shapes.iter().map(|s| plan_conv(s, scheme, true)).collect();
    let device = client.name;
    let cfg = SimConfig::with_client(client);
    let timing = simulate_layers(&plans, &cfg);
    BlockResult {
        scheme,
        device,
        timing,
        plans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_builders() {
        assert_eq!(bottleneck_block_shapes(56, 56, 64, 256).len(), 3);
        assert_eq!(basic_block_shapes(56, 56, 64, 64).len(), 2);
        assert_eq!(vgg_block_shapes(224, 224, 64, 64).len(), 1);
    }

    #[test]
    fn spot_wins_on_tiny_client_blocks() {
        let shapes = basic_block_shapes(14, 14, 256, 256);
        let cw = simulate_block(&shapes, Scheme::CrypTFlow2, DeviceProfile::iot_k27());
        let sp = simulate_block(&shapes, Scheme::Spot, DeviceProfile::iot_k27());
        assert!(
            sp.timing.total_s < cw.timing.total_s,
            "SPOT {} vs CrypTFlow2 {}",
            sp.timing.total_s,
            cw.timing.total_s
        );
    }
}
