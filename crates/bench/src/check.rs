//! Perf-regression gate machinery behind the `bench_check` binary and
//! `spot-loadgen --scrape`: parse the numbers we already emit
//! (`BENCH_*.json` baselines, Prometheus `/metrics` scrapes), flatten
//! them into `metric path -> value` maps, and diff two maps under a
//! tolerance.
//!
//! ## Flattening
//!
//! A JSON document flattens by joining object keys with `/`
//! (`latency_s.p99` in scenario 0 of `BENCH_serving.json` becomes
//! `scenarios/clients=16/latency_s/p99`). An array element that is an
//! object is keyed by its **string-valued fields** (and a `clients`
//! count, the one numeric identity our schemas use) so entry order
//! never matters: a heops row becomes
//! `entries/ntt_forward/N4096/avx2+scalar/mean_us`. Elements with no
//! identity fall back to their index. A Prometheus scrape flattens to
//! `name{labels}` keys verbatim.
//!
//! ## Direction
//!
//! A diff only flags what a human would call a regression, so each
//! metric's *direction* is inferred from its name: time-like names
//! (`*_us`, `*_ns`, `p50`/`p99`/`mean`/`wall_s`, ...) regress when they
//! grow, rate-like names (`*speedup*`, `*throughput*`, `*hits*`)
//! regress when they shrink, and identity-like names (`reps`,
//! `clients`, `matched`) are ignored. [`classify`] is the single
//! source of that rule.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

// ---------------------------------------------------------------------
// Minimal JSON value parser (the workspace is zero-dependency; this is
// the read-side twin of the hand-rolled writers in the bench binaries)
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as f64.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered by key.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid utf-8 in string")?,
                    );
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("bad array at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("bad object at byte {}", self.pos)),
            }
        }
    }
}

/// Parses a JSON document.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes after JSON at byte {}", p.pos));
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// Flattening to metric maps
// ---------------------------------------------------------------------

/// A flat `metric path -> value` view of a document.
pub type MetricMap = BTreeMap<String, f64>;

/// The identity key for an object array element: its string-valued
/// fields (plus `clients`, the one numeric identity our schemas use),
/// joined with `/` — or `None` when it has no such fields.
fn element_identity(members: &[(String, Json)]) -> Option<String> {
    let mut parts = Vec::new();
    for (k, v) in members {
        match v {
            Json::Str(s) => parts.push(s.clone()),
            Json::Num(n) if k == "clients" => parts.push(format!("clients={n}")),
            _ => {}
        }
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join("/"))
    }
}

fn flatten_into(prefix: &str, value: &Json, out: &mut MetricMap) {
    match value {
        Json::Num(n) => {
            out.insert(prefix.to_string(), *n);
        }
        Json::Obj(members) => {
            for (k, v) in members {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}/{k}")
                };
                flatten_into(&path, v, out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let segment = match item {
                    Json::Obj(members) => {
                        element_identity(members).unwrap_or_else(|| i.to_string())
                    }
                    _ => i.to_string(),
                };
                flatten_into(&format!("{prefix}/{segment}"), item, out);
            }
        }
        // Strings are identity, not measurements; bools/nulls carry no
        // magnitude to diff.
        Json::Str(_) | Json::Bool(_) | Json::Null => {}
    }
}

/// Flattens a parsed JSON document into a metric map (see module docs
/// for the path scheme).
pub fn flatten_json(doc: &Json) -> MetricMap {
    let mut out = MetricMap::new();
    flatten_into("", doc, &mut out);
    out
}

/// Parses Prometheus text exposition into a metric map keyed
/// `name{labels}` exactly as exposed (comment lines skipped).
pub fn parse_prometheus(text: &str) -> MetricMap {
    let mut out = MetricMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `name{labels} value` or `name value`; labels may hold spaces
        // inside quotes, so split at the last space.
        let Some(split) = line.rfind(' ') else {
            continue;
        };
        let (series, value) = line.split_at(split);
        if let Ok(v) = value.trim().parse::<f64>() {
            out.insert(series.trim().to_string(), v);
        }
    }
    // Histogram internals (`_sum`/`_count`/`_bucket`) are cumulative
    // volume, not a perf signal — a longer run always has more of them.
    // The comparable quantity is the mean sample, so derive a
    // `<base>_mean{labels}` series wherever a sum/count pair exists.
    let means: Vec<(String, f64)> = out
        .iter()
        .filter_map(|(key, &sum)| {
            let (name, labels) = key.split_once('{').unwrap_or((key, ""));
            let base = name.strip_suffix("_sum")?;
            let count_key = if labels.is_empty() {
                format!("{base}_count")
            } else {
                format!("{base}_count{{{labels}")
            };
            let count = *out.get(&count_key)?;
            (count > 0.0).then(|| {
                let mean_key = if labels.is_empty() {
                    format!("{base}_mean")
                } else {
                    format!("{base}_mean{{{labels}")
                };
                (mean_key, sum / count)
            })
        })
        .collect();
    out.extend(means);
    out
}

/// Parses either of the formats a baseline file can hold: a
/// `BENCH_*.json` document or saved Prometheus text.
pub fn parse_baseline(content: &str) -> Result<MetricMap, String> {
    if content.trim_start().starts_with('{') {
        Ok(flatten_json(&parse_json(content)?))
    } else {
        let map = parse_prometheus(content);
        if map.is_empty() {
            return Err("baseline is neither JSON nor Prometheus text".into());
        }
        Ok(map)
    }
}

// ---------------------------------------------------------------------
// Scraping
// ---------------------------------------------------------------------

/// Issues `GET path` against `addr` (a `host:port` admin endpoint) and
/// returns the response body.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((head, body)) if head.starts_with("HTTP/1.0 200") => Ok(body.to_string()),
        Some((head, _)) => Err(std::io::Error::other(format!(
            "GET {path}: {}",
            head.lines().next().unwrap_or("no status line")
        ))),
        None => Err(std::io::Error::other("malformed HTTP response")),
    }
}

// ---------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------

/// What growing means for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Time/size-like: bigger is worse.
    LowerIsBetter,
    /// Rate-like: smaller is worse.
    HigherIsBetter,
    /// Identity/count-like: not a perf signal, skipped.
    Neutral,
}

/// Infers a metric's direction from its flattened path (see module
/// docs).
pub fn classify(path: &str) -> Direction {
    let lower = path.to_ascii_lowercase();
    let has = |needles: &[&str]| needles.iter().any(|n| lower.contains(n));
    // Cumulative histogram components scale with run length, not
    // performance; the derived `_mean` series carries the signal.
    let series_name = lower.split('{').next().unwrap_or(&lower);
    if series_name.ends_with("_sum")
        || series_name.ends_with("_count")
        || series_name.ends_with("_bucket")
        || series_name.ends_with("_total")
    {
        return Direction::Neutral;
    }
    if has(&["speedup", "throughput", "rps", "hits", "efficiency"]) {
        Direction::HigherIsBetter
    } else if has(&[
        "_us", "_ns", "_ms", "_s/", "wall_s", "latency", "p50", "p90", "p99", "mean", "median",
        "min", "blocked", "stall",
    ]) || lower.ends_with("_s")
    {
        Direction::LowerIsBetter
    } else {
        Direction::Neutral
    }
}

/// One metric that moved past the tolerance in the bad direction.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Flattened metric path.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// `current / baseline` (worse-direction ratio > 1 + tolerance).
    pub ratio: f64,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.3} -> {:.3} ({:+.1}%)",
            self.metric,
            self.baseline,
            self.current,
            (self.current / self.baseline - 1.0) * 100.0
        )
    }
}

/// The outcome of one comparison run.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Metrics compared (present in both maps with a non-neutral
    /// direction and a nonzero baseline).
    pub compared: usize,
    /// Metrics that regressed past the tolerance.
    pub regressions: Vec<Regression>,
}

/// Diffs `current` against `baseline`: every shared, direction-bearing
/// metric whose worse-direction change exceeds `tolerance`
/// (e.g. `0.25` = 25%) is reported. Metrics only present on one side
/// are ignored — baselines age, scrapes carry extra series.
pub fn compare(baseline: &MetricMap, current: &MetricMap, tolerance: f64) -> CheckReport {
    let mut report = CheckReport::default();
    for (path, &base) in baseline {
        let Some(&cur) = current.get(path) else {
            continue;
        };
        let direction = classify(path);
        if direction == Direction::Neutral || base <= 0.0 {
            continue;
        }
        report.compared += 1;
        let worse_ratio = match direction {
            Direction::LowerIsBetter => cur / base,
            Direction::HigherIsBetter => base / cur.max(f64::MIN_POSITIVE),
            Direction::Neutral => unreachable!(),
        };
        if worse_ratio > 1.0 + tolerance {
            report.regressions.push(Regression {
                metric: path.clone(),
                baseline: base,
                current: cur,
                ratio: worse_ratio,
            });
        }
    }
    report
        .regressions
        .sort_by(|a, b| b.ratio.partial_cmp(&a.ratio).expect("finite ratios"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const BENCH_FIXTURE: &str = r#"{
        "schema": "spot-bench-heops/v1",
        "entries": [
            {"op": "ntt_forward", "level": "N4096", "kernel": "scalar", "reps": 200, "mean_us": 60.0, "min_us": 55.0},
            {"op": "rotate", "level": "N4096", "kernel": "scalar", "reps": 20, "mean_us": 1700.0, "min_us": 1650.0}
        ],
        "speedups": {"ntt_forward_N4096": 1.9}
    }"#;

    #[test]
    fn json_roundtrip_and_flatten() {
        let doc = parse_json(BENCH_FIXTURE).expect("parse fixture");
        let map = flatten_json(&doc);
        assert_eq!(map["entries/ntt_forward/N4096/scalar/mean_us"], 60.0);
        assert_eq!(map["entries/rotate/N4096/scalar/min_us"], 1650.0);
        assert_eq!(map["speedups/ntt_forward_N4096"], 1.9);
        // Identity-by-fields, not by index: a reordered file flattens
        // to the same map.
        let reordered = parse_json(
            &BENCH_FIXTURE.replace(
                r#"{"op": "ntt_forward", "level": "N4096", "kernel": "scalar", "reps": 200, "mean_us": 60.0, "min_us": 55.0},"#,
                "",
            )
            .replace(
                r#"{"op": "rotate", "level": "N4096", "kernel": "scalar", "reps": 20, "mean_us": 1700.0, "min_us": 1650.0}"#,
                r#"{"op": "rotate", "level": "N4096", "kernel": "scalar", "reps": 20, "mean_us": 1700.0, "min_us": 1650.0},
                   {"op": "ntt_forward", "level": "N4096", "kernel": "scalar", "reps": 200, "mean_us": 60.0, "min_us": 55.0}"#,
            ),
        )
        .expect("parse reordered");
        assert_eq!(map, flatten_json(&reordered));
    }

    #[test]
    fn injected_regression_is_flagged_and_tolerance_holds() {
        let base = flatten_json(&parse_json(BENCH_FIXTURE).expect("parse"));
        // 10% slower ntt mean: inside a 25% tolerance, outside 5%.
        let slower = BENCH_FIXTURE.replace("\"mean_us\": 60.0", "\"mean_us\": 66.0");
        let cur = flatten_json(&parse_json(&slower).expect("parse"));
        assert!(compare(&base, &cur, 0.25).regressions.is_empty());
        let report = compare(&base, &cur, 0.05);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(
            report.regressions[0].metric,
            "entries/ntt_forward/N4096/scalar/mean_us"
        );
        // A speedup *drop* is also a regression (higher-is-better).
        let slower_speedup = BENCH_FIXTURE.replace("1.9", "1.0");
        let cur = flatten_json(&parse_json(&slower_speedup).expect("parse"));
        let report = compare(&base, &cur, 0.25);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].metric, "speedups/ntt_forward_N4096");
    }

    #[test]
    fn faster_is_never_a_regression() {
        let base = flatten_json(&parse_json(BENCH_FIXTURE).expect("parse"));
        let faster = BENCH_FIXTURE
            .replace("\"mean_us\": 60.0", "\"mean_us\": 20.0")
            .replace("1.9", "5.0");
        let cur = flatten_json(&parse_json(&faster).expect("parse"));
        let report = compare(&base, &cur, 0.0);
        assert!(
            report.regressions.is_empty(),
            "got {:?}",
            report.regressions
        );
        assert!(report.compared > 0);
    }

    #[test]
    fn prometheus_text_parses_to_series_map() {
        let text = "# TYPE spot_sessions_served counter\n\
                    spot_sessions_served 16\n\
                    spot_conv_serve_ns_bucket{scheme=\"spot\",le=\"1023\"} 3\n\
                    spot_conv_serve_ns_sum{scheme=\"spot\"} 2800\n";
        let map = parse_prometheus(text);
        assert_eq!(map["spot_sessions_served"], 16.0);
        assert_eq!(
            map["spot_conv_serve_ns_bucket{scheme=\"spot\",le=\"1023\"}"],
            3.0
        );
        assert_eq!(map["spot_conv_serve_ns_sum{scheme=\"spot\"}"], 2800.0);
        assert!(parse_baseline(text).is_ok());
        assert!(parse_baseline("not a baseline").is_err());
    }

    #[test]
    fn direction_classification() {
        assert_eq!(
            classify("entries/rotate/N4096/scalar/mean_us"),
            Direction::LowerIsBetter
        );
        assert_eq!(
            classify("scenarios/clients=16/latency_s/p99"),
            Direction::LowerIsBetter
        );
        assert_eq!(
            classify("scenarios/clients=16/throughput_rps"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            classify("speedups/ntt_forward_N4096"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            classify("entries/rotate/N4096/scalar/reps"),
            Direction::Neutral
        );
        assert_eq!(classify("scenarios/clients=16/matched"), Direction::Neutral);
        // Overlap efficiency regresses when it falls; the idle/blocked
        // nanosecond components regress when they grow.
        assert_eq!(
            classify("layers/conv1 spot/spot_overlap_efficiency"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            classify("overall/spot_overlap_efficiency"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            classify("spot_overlap_server_idle_ns_mean"),
            Direction::LowerIsBetter
        );
        // Cumulative histogram internals scale with run length, never a
        // regression by themselves; the derived mean carries the signal.
        assert_eq!(
            classify("spot_conv_serve_ns_count{scheme=\"spot\"}"),
            Direction::Neutral
        );
        assert_eq!(
            classify("spot_conv_serve_ns_bucket{scheme=\"spot\",le=\"1023\"}"),
            Direction::Neutral
        );
        assert_eq!(classify("spot_session_wall_ns_sum"), Direction::Neutral);
        assert_eq!(
            classify("spot_conv_serve_ns_mean{scheme=\"spot\"}"),
            Direction::LowerIsBetter
        );
    }

    #[test]
    fn scraped_histograms_compare_by_mean_not_volume() {
        // Same mean latency but twice the samples (a longer run): no
        // regression. Double the mean at equal volume: flagged.
        let earlier = parse_prometheus(
            "spot_conv_serve_ns_sum{scheme=\"spot\"} 1000\n\
             spot_conv_serve_ns_count{scheme=\"spot\"} 10\n\
             spot_conv_serve_ns_bucket{scheme=\"spot\",le=\"+Inf\"} 10\n",
        );
        assert_eq!(earlier["spot_conv_serve_ns_mean{scheme=\"spot\"}"], 100.0);
        let longer = parse_prometheus(
            "spot_conv_serve_ns_sum{scheme=\"spot\"} 2000\n\
             spot_conv_serve_ns_count{scheme=\"spot\"} 20\n\
             spot_conv_serve_ns_bucket{scheme=\"spot\",le=\"+Inf\"} 20\n",
        );
        let report = compare(&earlier, &longer, 0.25);
        assert!(
            report.regressions.is_empty(),
            "got {:?}",
            report.regressions
        );
        let slower = parse_prometheus(
            "spot_conv_serve_ns_sum{scheme=\"spot\"} 2000\n\
             spot_conv_serve_ns_count{scheme=\"spot\"} 10\n\
             spot_conv_serve_ns_bucket{scheme=\"spot\",le=\"+Inf\"} 10\n",
        );
        let report = compare(&earlier, &slower, 0.25);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(
            report.regressions[0].metric,
            "spot_conv_serve_ns_mean{scheme=\"spot\"}"
        );
    }

    #[test]
    fn committed_baselines_parse() {
        for path in [
            "../../BENCH_heops.json",
            "../../BENCH_serving.json",
            "../../BENCH_pipeline.json",
        ] {
            let Ok(content) = std::fs::read_to_string(path) else {
                continue; // moved baselines are not this test's concern
            };
            let map = parse_baseline(&content).expect("baseline parses");
            assert!(!map.is_empty(), "{path} flattened to nothing");
        }
    }
}
