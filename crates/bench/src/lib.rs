//! # spot-bench — the harness regenerating every table and figure of the
//! SPOT paper.
//!
//! Each binary in `src/bin/` prints one table (`table1` … `table10`,
//! `fig11`, `fig6_timeline`) with the same rows/columns the paper
//! reports; see EXPERIMENTS.md for the paper-vs-measured record. The
//! shared machinery here builds block workloads, calibrates the real HE
//! operation costs of `spot-he` on the local machine, and wires scheme
//! plans into the pipeline simulator.

#![warn(missing_docs)]

pub mod calibrate;
pub mod check;
pub mod traceio;
pub mod workloads;

pub use calibrate::calibrate_he_costs;
pub use workloads::{
    basic_block_shapes, bottleneck_block_shapes, simulate_block, vgg_block_shapes, BlockResult,
};
