//! Live calibration of HE primitive costs on the local machine.
//!
//! Measures encrypt / decrypt / plaintext-mult / add / rotate of our BFV
//! implementation at each parameter level and returns a
//! [`HeCostTable`]. Used by `table4` to report real numbers next to the
//! paper's SEAL measurements; the simulator's embedded reference table
//! keeps deterministic output for the other tables.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_he::prelude::*;
use spot_pipeline::device::{HeCostTable, OpCosts};
use std::time::Instant;

fn time<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    // one warmup
    let _ = f();
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// Measures one parameter level. `reps` trades accuracy for runtime.
pub fn calibrate_level(level: ParamLevel, reps: usize) -> OpCosts {
    let ctx = Context::new(EncryptionParams::new(level));
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let pk = keygen.public_key(&mut rng);
    let encoder = BatchEncoder::new(&ctx);
    let encryptor = Encryptor::new(&ctx, pk);
    let decryptor = Decryptor::new(&ctx, keygen.secret_key().clone());
    let evaluator = Evaluator::new(&ctx);

    let values: Vec<u64> = (0..ctx.degree() as u64)
        .map(|i| i % ctx.params().plain_modulus())
        .collect();
    let pt = encoder.encode(&values);
    let lifted = pt.lift(&ctx);
    let ct = encryptor.encrypt(&pt, &mut rng);
    let ct2 = encryptor.encrypt(&pt, &mut rng);

    let encrypt = time(reps, || encryptor.encrypt(&pt, &mut rng));
    let decrypt = time(reps.min(4), || decryptor.decrypt(&ct));
    let mult_plain = time(reps, || evaluator.multiply_lifted(&ct, &lifted));
    let add = time(reps, || evaluator.add(&ct, &ct2));
    let rotate = if level.supports_rotation() {
        let gk = keygen.galois_keys(&evaluator.galois_elements(&[1], false), &mut rng);
        time(reps, || evaluator.rotate_rows(&ct, 1, &gk))
    } else {
        f64::INFINITY
    };
    OpCosts {
        encrypt,
        decrypt,
        mult_plain,
        add,
        rotate,
    }
}

/// Calibrates every level. With `quick`, uses few repetitions and skips
/// `N = 16384` (extrapolating 2× from `N = 8192`) to stay fast.
pub fn calibrate_he_costs(quick: bool) -> HeCostTable {
    let reps = if quick { 3 } else { 10 };
    let c2048 = calibrate_level(ParamLevel::N2048, reps);
    let c4096 = calibrate_level(ParamLevel::N4096, reps);
    let c8192 = calibrate_level(ParamLevel::N8192, reps);
    let c16384 = if quick {
        OpCosts {
            encrypt: c8192.encrypt * 2.2,
            decrypt: c8192.decrypt * 2.2,
            mult_plain: c8192.mult_plain * 2.1,
            add: c8192.add * 2.0,
            rotate: c8192.rotate * 2.8,
        }
    } else {
        calibrate_level(ParamLevel::N16384, reps.min(4))
    };
    HeCostTable::from_costs([c2048, c4096, c8192, c16384])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_calibration_is_monotone() {
        let t = calibrate_he_costs(true);
        let small = t.at(ParamLevel::N4096);
        let big = t.at(ParamLevel::N8192);
        assert!(small.mult_plain > 0.0);
        assert!(big.mult_plain > small.mult_plain * 1.2);
        assert!(big.encrypt > small.encrypt);
        assert!(small.rotate.is_finite());
        assert!(t.at(ParamLevel::N2048).rotate.is_infinite());
    }
}
