//! Cross-party trace merge: fuses the Chrome-trace exports of a
//! `spot-client` and a `spot-server` run into one Perfetto-loadable
//! timeline and prints the per-layer overlap attribution.
//!
//! ```text
//! trace_merge --client client.json --server server.json
//!             --out merged.json [--json report.json]
//! ```
//!
//! The merged timeline puts client lanes under pid 1 and server lanes
//! under pid 2, aligns the server clock using the clock-sync estimate
//! the client recorded at teardown, and draws flow arrows from every
//! tagged wire send to the receive that consumed it. The text report
//! (stdout) ends with the whole-session `overlap efficiency:` line the
//! CI smoke job greps; `--json` writes the `spot-bench-pipeline/v1`
//! report consumed by `bench_check` against `BENCH_pipeline.json`.

use spot_bench::traceio::{read_trace, write_trace_json};
use std::path::Path;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let usage = "usage: trace_merge --client CLIENT.json --server SERVER.json \
                 --out MERGED.json [--json REPORT.json]";
    let client_path = arg_value(&args, "--client").unwrap_or_else(|| panic!("{usage}"));
    let server_path = arg_value(&args, "--server").unwrap_or_else(|| panic!("{usage}"));
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| panic!("{usage}"));
    let json_path = arg_value(&args, "--json");

    let client = read_trace(Path::new(&client_path)).expect("client trace");
    let server = read_trace(Path::new(&server_path)).expect("server trace");
    let merged = spot_trace::correlate::merge(&client, &server);

    write_trace_json(Path::new(&out_path), &merged.json);
    println!(
        "trace_merge: merged {} client + {} server spans -> {out_path}",
        merged.report.client_spans, merged.report.server_spans
    );
    if let Some(path) = &json_path {
        let report_json = merged.report.to_json();
        write_trace_json(Path::new(path), &report_json);
        println!("trace_merge: report -> {path}");
    }
    print!("{}", merged.report.text());
}
