//! Load generator for the multi-tenant serving layer: simulates many
//! concurrent clients (optionally grouped into tenants whose requests
//! coalesce through a [`TenantGateway`]) against either an in-process
//! [`SpotServer`] (`--mem`) or a running `spot-server` over TCP
//! (`--connect ADDR`), and reports p50/p99 latency, throughput, and
//! the serving layer's kernel-cache and admission counters.
//!
//! ```text
//! spot-loadgen (--mem | --connect ADDR)
//!              [--clients N] [--requests R] [--tenants T] [--batch-cap B]
//!              [--latency-cap-ms MS] [--mode closed|open] [--interval-ms MS]
//!              [--concurrency C] [--scheme spot|channelwise|cheetah]
//!              [--seed S] [--max-sessions N] [--sweep 1,8,64] [--json PATH]
//!              [--scrape ADDR] [--trace out.json]
//! ```
//!
//! Latency percentiles (p50/p99/p99.9) come from the streaming
//! [`metrics::Histogram`] — fixed footprint however many requests a
//! sweep issues, mergeable across client threads, the same type the
//! server exposes on `/metrics`. `--scrape ADDR` polls a running
//! `spot-server --admin` endpoint after each scenario so
//! client-observed latency can be cross-checked against the
//! server-side view in one report.
//!
//! Every client verifies each reconstructed output against the
//! plaintext forward pass and prints `client I: output vs plain:
//! MATCH` (the serving-smoke CI job greps these), plus an `admission
//! rejects: N` total. Closed-loop clients wait for each result before
//! the next request; open-loop clients (tenant mode only) submit at a
//! fixed inter-arrival and wait at the end. `--sweep` (mem mode)
//! replays the scenario at several client counts against the **same**
//! server, demonstrating that kernel-cache builds happen once per
//! model, not per connection.
//!
//! The process exits non-zero on any output mismatch or protocol
//! error; admission rejects are reported but do not fail the run, so
//! capacity probing (`--max-sessions` below `--clients`) is usable.
//!
//! [`TenantGateway`]: spot_core::serving::TenantGateway
//! [`SpotServer`]: spot_core::serving::SpotServer

use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_bench::check::{http_get, parse_prometheus};
use spot_core::error::SpotError;
use spot_core::inference::TinyCnn;
use spot_core::patching::PatchMode;
use spot_core::serving::{ModelContext, ServingConfig, SessionReport, SpotServer, TenantGateway};
use spot_core::session::SchemeKind;
use spot_core::twoparty::run_client_batch;
use spot_he::context::Context;
use spot_he::keys::KeyGenerator;
use spot_he::params::{EncryptionParams, ParamLevel};
use spot_proto::transport::{MemTransport, TcpTransport};
use spot_proto::{error_code, Transport};
use spot_tensor::tensor::Tensor;
use spot_trace::{log_warn, metrics, Counter};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Counting semaphore bounding in-flight connections client-side.
struct Gate {
    free: Mutex<usize>,
    cv: Condvar,
}

impl Gate {
    fn new(slots: usize) -> Arc<Self> {
        Arc::new(Self {
            free: Mutex::new(slots),
            cv: Condvar::new(),
        })
    }

    fn acquire(&self) {
        let mut free = self.free.lock().expect("gate lock");
        while *free == 0 {
            free = self.cv.wait(free).expect("gate wait");
        }
        *free -= 1;
    }

    fn release(&self) {
        *self.free.lock().expect("gate lock") += 1;
        self.cv.notify_one();
    }
}

/// Where client sessions go: an in-process server (each connection is
/// a fresh `MemTransport` pair served on its own thread) or a TCP
/// address.
enum Upstream {
    Mem {
        server: Arc<SpotServer>,
        reports: Arc<Mutex<Vec<SessionReport>>>,
        handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    },
    Tcp {
        addr: String,
    },
}

impl Upstream {
    fn connect(&self) -> Result<Box<dyn Transport>, SpotError> {
        match self {
            Upstream::Mem {
                server,
                reports,
                handles,
            } => {
                let (client_end, server_end) = MemTransport::pair();
                let server = Arc::clone(server);
                let reports = Arc::clone(reports);
                let handle = std::thread::spawn(move || {
                    let report = server.serve_connection(&server_end);
                    reports.lock().expect("report lock").push(report);
                });
                handles.lock().expect("handle lock").push(handle);
                Ok(Box::new(client_end))
            }
            Upstream::Tcp { addr } => {
                let mut last = None;
                for _ in 0..100 {
                    match TcpTransport::connect(addr) {
                        Ok(t) => return Ok(Box::new(t)),
                        Err(e) => {
                            last = Some(e);
                            std::thread::sleep(Duration::from_millis(100));
                        }
                    }
                }
                Err(SpotError::Proto(last.expect("at least one attempt")))
            }
        }
    }

    /// Joins mem-mode server threads and drains their session reports.
    fn drain_reports(&self) -> Vec<SessionReport> {
        match self {
            Upstream::Mem {
                reports, handles, ..
            } => {
                for h in handles.lock().expect("handle lock").drain(..) {
                    let _ = h.join();
                }
                std::mem::take(&mut reports.lock().expect("report lock"))
            }
            Upstream::Tcp { .. } => Vec::new(),
        }
    }
}

#[derive(Debug, Default)]
struct ClientResult {
    matched: usize,
    mismatched: usize,
    errors: usize,
    rejects: usize,
    // Streaming latency histogram (nanoseconds): fixed footprint no
    // matter how many requests a sweep issues, and merges exactly with
    // the other clients' — the same type the server serves on /metrics.
    latency: metrics::Histogram,
}

impl ClientResult {
    fn absorb(&mut self, want: &Tensor, got: Result<Tensor, SpotError>, latency: Duration) {
        // record(), not observe(): this histogram is loadgen-owned and
        // counts regardless of the process-wide metrics switch.
        self.latency.record(latency.as_nanos() as u64);
        match got {
            Ok(out) if out == *want => self.matched += 1,
            Ok(_) => self.mismatched += 1,
            Err(SpotError::Rejected { code, .. }) if code == error_code::SERVER_FULL => {
                self.rejects += 1
            }
            Err(_) => self.errors += 1,
        }
    }
}

struct Scenario {
    clients: usize,
    requests: usize,
    tenants: usize,
    batch_cap: usize,
    latency_cap: Duration,
    open_loop: bool,
    interval: Duration,
    scheme: SchemeKind,
    seed: u64,
    concurrency: usize,
}

#[derive(Debug)]
struct ScenarioResult {
    clients: usize,
    total: usize,
    matched: usize,
    mismatched: usize,
    errors: usize,
    rejects: usize,
    wall_s: f64,
    p50_s: f64,
    p99_s: f64,
    p999_s: f64,
    mean_s: f64,
    throughput_rps: f64,
    cache_builds: u64,
    cache_hits: u64,
    sessions: usize,
    per_client_status: Vec<&'static str>,
}

fn client_input(seed: u64, client: usize, request: usize) -> Tensor {
    Tensor::random(
        2,
        8,
        8,
        5,
        seed ^ (client as u64).wrapping_mul(0x10001) ^ (request as u64).wrapping_mul(0x4D),
    )
}

/// One closed-loop client hitting the upstream directly (no tenant
/// gateway): a fresh session per request, its own key pair throughout.
#[allow(clippy::too_many_arguments)]
fn direct_client(
    ctx: &Arc<Context>,
    cnn: &TinyCnn,
    upstream: &Upstream,
    gate: &Gate,
    scenario: &Scenario,
    client: usize,
) -> ClientResult {
    let mut result = ClientResult::default();
    let mut rng = StdRng::seed_from_u64(99 + client as u64);
    let kg = KeyGenerator::new(ctx, &mut rng);
    for request in 0..scenario.requests {
        let input = client_input(scenario.seed, client, request);
        let want = cnn.forward_plain(&input);
        gate.acquire();
        let t0 = Instant::now();
        let got = upstream.connect().and_then(|transport| {
            run_client_batch(
                ctx,
                &kg,
                transport.as_ref(),
                std::slice::from_ref(&input),
                cnn,
                scenario.scheme,
                (4, 4),
                PatchMode::Tweaked,
                &mut rng,
            )
            .map(|mut outs| outs.remove(0))
        });
        let latency = t0.elapsed();
        gate.release();
        result.absorb(&want, got, latency);
    }
    result
}

/// One tenant-routed client: requests queue in the tenant's gateway
/// and coalesce with its siblings' into shared SIMD-slot batches.
fn tenant_client(
    cnn: &TinyCnn,
    gateway: &TenantGateway,
    scenario: &Scenario,
    client: usize,
) -> ClientResult {
    let mut result = ClientResult::default();
    if scenario.open_loop {
        let mut pending = Vec::new();
        for request in 0..scenario.requests {
            let input = client_input(scenario.seed, client, request);
            let want = cnn.forward_plain(&input);
            let t0 = Instant::now();
            match gateway.submit(input) {
                Ok(slot) => pending.push((t0, want, slot)),
                Err(e) => result.absorb(&want, Err(e), t0.elapsed()),
            }
            std::thread::sleep(scenario.interval);
        }
        for (t0, want, slot) in pending {
            let got = slot.wait();
            result.absorb(&want, got, t0.elapsed());
        }
    } else {
        for request in 0..scenario.requests {
            let input = client_input(scenario.seed, client, request);
            let want = cnn.forward_plain(&input);
            let t0 = Instant::now();
            let got = gateway.submit(input).and_then(|slot| slot.wait());
            result.absorb(&want, got, t0.elapsed());
        }
    }
    result
}

fn run_scenario(
    ctx: &Arc<Context>,
    cnn: &TinyCnn,
    upstream: &Upstream,
    scenario: &Scenario,
) -> ScenarioResult {
    let gate = Gate::new(if scenario.concurrency == 0 {
        scenario.clients.max(1)
    } else {
        scenario.concurrency
    });
    let t0 = Instant::now();
    let per_client: Vec<ClientResult> = if scenario.tenants == 0 {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..scenario.clients)
                .map(|client| {
                    let gate = Arc::clone(&gate);
                    s.spawn(move || direct_client(ctx, cnn, upstream, &gate, scenario, client))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client"))
                .collect()
        })
    } else {
        // Tenant mode: clients are dealt round-robin into gateways;
        // one dispatcher per tenant drives coalesced batches upstream.
        let gateways: Vec<Arc<TenantGateway>> = (0..scenario.tenants)
            .map(|_| Arc::new(TenantGateway::new(scenario.batch_cap, scenario.latency_cap)))
            .collect();
        std::thread::scope(|s| {
            let dispatchers: Vec<_> = gateways
                .iter()
                .enumerate()
                .map(|(t, gw)| {
                    let gw = Arc::clone(gw);
                    s.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(7000 + t as u64);
                        let kg = KeyGenerator::new(ctx, &mut rng);
                        gw.run_dispatcher(
                            ctx,
                            &kg,
                            cnn,
                            scenario.scheme,
                            (4, 4),
                            PatchMode::Tweaked,
                            || upstream.connect(),
                            &mut rng,
                        )
                    })
                })
                .collect();
            let clients: Vec<_> = (0..scenario.clients)
                .map(|client| {
                    let gw = Arc::clone(&gateways[client % scenario.tenants]);
                    s.spawn(move || tenant_client(cnn, &gw, scenario, client))
                })
                .collect();
            let results = clients
                .into_iter()
                .map(|h| h.join().expect("client"))
                .collect();
            for gw in &gateways {
                gw.close();
            }
            for d in dispatchers {
                d.join().expect("dispatcher").expect("dispatch loop");
            }
            results
        })
    };
    let wall_s = t0.elapsed().as_secs_f64();

    let reports = upstream.drain_reports();
    let cache_builds: u64 = reports
        .iter()
        .map(|r| r.counters.get(Counter::KernelCacheBuild))
        .sum();
    let cache_hits: u64 = reports
        .iter()
        .map(|r| r.counters.get(Counter::KernelCacheHit))
        .sum();

    let per_client_status: Vec<&'static str> = per_client
        .iter()
        .map(|c| {
            if c.mismatched > 0 {
                "MISMATCH"
            } else if c.errors > 0 {
                "ERROR"
            } else if c.rejects > 0 {
                "REJECTED"
            } else if c.matched > 0 {
                "MATCH"
            } else {
                "NO RESULT"
            }
        })
        .collect();
    // Fold every client thread's streaming histogram into one; the
    // quantiles come from bucket interpolation, never a sorted vector.
    let latency = per_client
        .iter()
        .map(|c| c.latency.snapshot())
        .fold(metrics::HistogramSnapshot::default(), |acc, h| {
            acc.merge(&h)
        });
    let total = latency.count as usize;
    const NS: f64 = 1e9;
    ScenarioResult {
        clients: scenario.clients,
        total,
        matched: per_client.iter().map(|c| c.matched).sum(),
        mismatched: per_client.iter().map(|c| c.mismatched).sum(),
        errors: per_client.iter().map(|c| c.errors).sum(),
        rejects: per_client.iter().map(|c| c.rejects).sum(),
        wall_s,
        p50_s: latency.quantile(0.50) / NS,
        p99_s: latency.quantile(0.99) / NS,
        p999_s: latency.quantile(0.999) / NS,
        mean_s: latency.mean() / NS,
        throughput_rps: if wall_s > 0.0 {
            total as f64 / wall_s
        } else {
            0.0
        },
        cache_builds,
        cache_hits,
        sessions: reports.len(),
        per_client_status,
    }
}

fn scenario_json(r: &ScenarioResult) -> String {
    format!(
        "{{\"clients\": {}, \"total_requests\": {}, \"matched\": {}, \"mismatched\": {}, \
         \"errors\": {}, \"admission_rejects\": {}, \"sessions\": {}, \
         \"latency_s\": {{\"p50\": {:.4}, \"p99\": {:.4}, \"p999\": {:.4}, \"mean\": {:.4}}}, \
         \"throughput_rps\": {:.4}, \"wall_s\": {:.4}, \
         \"kernel_cache_builds\": {}, \"kernel_cache_hits\": {}}}",
        r.clients,
        r.total,
        r.matched,
        r.mismatched,
        r.errors,
        r.rejects,
        r.sessions,
        r.p50_s,
        r.p99_s,
        r.p999_s,
        r.mean_s,
        r.throughput_rps,
        r.wall_s,
        r.cache_builds,
        r.cache_hits
    )
}

fn print_scenario(r: &ScenarioResult) {
    for (i, status) in r.per_client_status.iter().enumerate() {
        println!("client {i}: output vs plain: {status}");
    }
    println!("admission rejects: {}", r.rejects);
    println!(
        "spot-loadgen: {} requests over {} sessions in {:.3}s — p50 {:.3}s, p99 {:.3}s, \
         p99.9 {:.3}s, {:.3} req/s",
        r.total, r.sessions, r.wall_s, r.p50_s, r.p99_s, r.p999_s, r.throughput_rps
    );
    println!(
        "spot-loadgen: kernel cache — {} builds, {} hits",
        r.cache_builds, r.cache_hits
    );
}

/// Polls a `spot-server --admin` endpoint and prints the server-side
/// view next to what this process just observed: session totals and
/// the mean session wall time from `spot_session_wall_ns`, which
/// client-observed latency should bound from above (it adds connect
/// and key-generation time the server never sees).
fn scrape_and_crosscheck(addr: &str, r: &ScenarioResult) {
    let body = match http_get(addr, "/metrics") {
        Ok(b) => b,
        Err(e) => {
            log_warn!("loadgen", "scrape {addr} failed: {e}");
            return;
        }
    };
    let map = parse_prometheus(&body);
    let get = |k: &str| map.get(k).copied().unwrap_or(0.0);
    let served = get("spot_sessions_served");
    let rejected = get("spot_sessions_rejected");
    let wall_count = get("spot_session_wall_ns_count");
    let server_mean_s = if wall_count > 0.0 {
        get("spot_session_wall_ns_sum") / wall_count / 1e9
    } else {
        0.0
    };
    let conv_count: f64 = map
        .iter()
        .filter(|(k, _)| k.starts_with("spot_conv_serve_ns_count"))
        .map(|(_, v)| v)
        .sum();
    println!(
        "spot-loadgen: scrape {addr} — served {served}, rejected {rejected}, \
         {conv_count} convs; server mean session {server_mean_s:.3}s vs \
         client-observed mean {:.3}s",
        r.mean_s
    );
    if server_mean_s > 0.0 && r.mean_s > 0.0 && server_mean_s > r.mean_s {
        println!(
            "spot-loadgen: scrape cross-check SUSPECT — server-side session wall \
             exceeds client-observed latency"
        );
    } else {
        println!("spot-loadgen: scrape cross-check OK");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mem = args.iter().any(|a| a == "--mem");
    let addr = arg_value(&args, "--connect");
    assert!(
        mem != addr.is_some(),
        "pick exactly one of --mem or --connect ADDR"
    );
    let clients: usize = arg_value(&args, "--clients")
        .map(|v| v.parse().expect("--clients takes a number"))
        .unwrap_or(4);
    let requests: usize = arg_value(&args, "--requests")
        .map(|v| v.parse().expect("--requests takes a number"))
        .unwrap_or(1);
    let tenants: usize = arg_value(&args, "--tenants")
        .map(|v| v.parse().expect("--tenants takes a number"))
        .unwrap_or(0);
    let batch_cap: usize = arg_value(&args, "--batch-cap")
        .map(|v| v.parse().expect("--batch-cap takes a number"))
        .unwrap_or(3);
    let latency_cap_ms: u64 = arg_value(&args, "--latency-cap-ms")
        .map(|v| v.parse().expect("--latency-cap-ms takes a number"))
        .unwrap_or(50);
    let open_loop = match arg_value(&args, "--mode").as_deref().unwrap_or("closed") {
        "closed" => false,
        "open" => true,
        other => panic!("unknown mode {other:?} (use closed|open)"),
    };
    assert!(
        !open_loop || tenants > 0,
        "--mode open requires --tenants (open-loop submission goes through a gateway)"
    );
    let interval_ms: u64 = arg_value(&args, "--interval-ms")
        .map(|v| v.parse().expect("--interval-ms takes a number"))
        .unwrap_or(10);
    let concurrency: usize = arg_value(&args, "--concurrency")
        .map(|v| v.parse().expect("--concurrency takes a number"))
        .unwrap_or(0);
    let scheme = match arg_value(&args, "--scheme").as_deref().unwrap_or("spot") {
        "spot" => SchemeKind::Spot,
        "channelwise" => SchemeKind::Channelwise,
        "cheetah" => SchemeKind::Cheetah,
        other => panic!("unknown scheme {other:?} (use spot|channelwise|cheetah)"),
    };
    let seed: u64 = arg_value(&args, "--seed")
        .map(|v| v.parse().expect("--seed takes a number"))
        .unwrap_or(42);
    let max_sessions: usize = arg_value(&args, "--max-sessions")
        .map(|v| v.parse().expect("--max-sessions takes a number"))
        .unwrap_or(128);
    let sweep: Vec<usize> = arg_value(&args, "--sweep")
        .map(|v| {
            v.split(',')
                .map(|n| n.trim().parse().expect("--sweep takes numbers"))
                .collect()
        })
        .unwrap_or_default();
    assert!(
        sweep.is_empty() || mem,
        "--sweep needs --mem (one shared in-process server across scenarios)"
    );
    let json_path = arg_value(&args, "--json");
    let scrape_addr = arg_value(&args, "--scrape");
    assert!(
        scrape_addr.is_none() || !mem,
        "--scrape needs --connect (it polls a remote spot-server --admin endpoint)"
    );
    let trace_path = arg_value(&args, "--trace");
    let trace_baseline = trace_path
        .as_ref()
        .map(|_| spot_bench::traceio::trace_begin());

    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let cnn = TinyCnn::new(7);
    let upstream = if mem {
        let model = ModelContext::new("tinycnn-7", Arc::clone(&ctx), cnn.clone());
        let config = ServingConfig {
            max_sessions,
            ..ServingConfig::default()
        };
        Upstream::Mem {
            server: Arc::new(SpotServer::new(model, config)),
            reports: Arc::new(Mutex::new(Vec::new())),
            handles: Mutex::new(Vec::new()),
        }
    } else {
        Upstream::Tcp {
            addr: addr.expect("--connect checked above"),
        }
    };

    let client_counts = if sweep.is_empty() {
        vec![clients]
    } else {
        sweep
    };
    let mut results = Vec::new();
    for n in client_counts {
        let scenario = Scenario {
            clients: n,
            requests,
            tenants,
            batch_cap,
            latency_cap: Duration::from_millis(latency_cap_ms),
            open_loop,
            interval: Duration::from_millis(interval_ms),
            scheme,
            seed,
            concurrency,
        };
        println!(
            "spot-loadgen: scenario clients={n} requests={requests} tenants={tenants} \
             mode={} ({})",
            if open_loop { "open" } else { "closed" },
            if mem { "mem" } else { "tcp" }
        );
        let result = run_scenario(&ctx, &cnn, &upstream, &scenario);
        print_scenario(&result);
        if let Some(addr) = &scrape_addr {
            scrape_and_crosscheck(addr, &result);
        }
        results.push(result);
    }

    if let Some(path) = json_path {
        let body: Vec<String> = results.iter().map(scenario_json).collect();
        let json = format!(
            "{{\n  \"bench\": \"serving\",\n  \"params\": \"N4096\",\n  \"scheme\": \
             \"{scheme:?}\",\n  \"tenants\": {tenants},\n  \"batch_cap\": {batch_cap},\n  \
             \"scenarios\": [\n    {}\n  ]\n}}\n",
            body.join(",\n    ")
        );
        std::fs::write(&path, json).expect("write json");
        println!("spot-loadgen: wrote {path}");
    }

    if let (Some(path), Some(baseline)) = (&trace_path, &trace_baseline) {
        spot_bench::traceio::trace_finish(std::path::Path::new(path), baseline);
    }

    let bad = results
        .iter()
        .any(|r| r.mismatched > 0 || r.errors > 0 || r.matched == 0);
    if bad {
        std::process::exit(1);
    }
}
