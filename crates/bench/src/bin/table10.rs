//! Table X: total end-to-end execution time on full CNNs — ResNet
//! 101/50/34/18 and VGG 11/16 — for CrypTFlow2, Cheetah, and SPOT on
//! both tiny clients, with SPOT's speedup over the best baseline.

use spot_core::inference::{plan_network, Scheme};
use spot_pipeline::device::DeviceProfile;
use spot_pipeline::report::{secs, speedup, Table};
use spot_pipeline::sim::SimConfig;
use spot_tensor::models::{resnet101, resnet18, resnet34, resnet50, vgg11, vgg16, Network};

fn main() {
    let nets: Vec<Network> = vec![
        resnet101(),
        resnet50(),
        resnet34(),
        resnet18(),
        vgg11(),
        vgg16(),
    ];
    let mut table = Table::new(
        "Table X — total execution time on ResNet and VGG",
        &[
            "Network",
            "CF2 Nexus",
            "CF2 IoT",
            "Cheetah Nexus",
            "Cheetah IoT",
            "SPOT Nexus (speedup)",
            "SPOT IoT (speedup)",
        ],
    );
    for net in &nets {
        let mut cells = vec![net.name().to_string()];
        let mut best = [f64::INFINITY; 2];
        for scheme in [Scheme::CrypTFlow2, Scheme::Cheetah] {
            let plan = plan_network(net, scheme);
            for (di, dev) in [DeviceProfile::nexus6(), DeviceProfile::iot_k27()]
                .into_iter()
                .enumerate()
            {
                let t = plan.simulate(&SimConfig::with_client(dev)).total_s;
                best[di] = best[di].min(t);
                cells.push(secs(t));
            }
        }
        let plan = plan_network(net, Scheme::Spot);
        for (di, dev) in [DeviceProfile::nexus6(), DeviceProfile::iot_k27()]
            .into_iter()
            .enumerate()
        {
            let t = plan.simulate(&SimConfig::with_client(dev)).total_s;
            cells.push(format!("{} ({})", secs(t), speedup(best[di], t)));
        }
        table.row(&cells);
    }
    println!("{}", table.render());
    println!("Paper: SPOT end-to-end speedups of 1.62x-2.75x over the best baseline.");
}
