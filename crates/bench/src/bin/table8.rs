//! Table VIII: running-time microbenchmark on the basic blocks of
//! ResNet-18 — CrypTFlow2 vs Cheetah vs SPOT on both tiny clients.

use spot_bench::{basic_block_shapes, simulate_block};
use spot_core::inference::Scheme;
use spot_pipeline::device::DeviceProfile;
use spot_pipeline::report::{secs, speedup, Table};

fn main() {
    let blocks = [
        (56usize, 56usize, 64usize, 64usize),
        (28, 28, 128, 128),
        (14, 14, 256, 256),
        (7, 7, 512, 512),
    ];
    let mut table = Table::new(
        "Table VIII — basic blocks (ResNet-18): CrypTFlow2 / Cheetah / SPOT",
        &[
            "Block (W H Ci Co)",
            "CF2 Nexus",
            "CF2 IoT",
            "Cheetah Nexus",
            "Cheetah IoT",
            "SPOT Nexus (speedup)",
            "SPOT IoT (speedup)",
        ],
    );
    for (w, h, ci, co) in blocks {
        let shapes = basic_block_shapes(w, h, ci, co);
        let mut cells = vec![format!("{w} {h} {ci} {co}")];
        let mut best = [f64::INFINITY; 2];
        for scheme in [Scheme::CrypTFlow2, Scheme::Cheetah] {
            for (di, dev) in [DeviceProfile::nexus6(), DeviceProfile::iot_k27()]
                .into_iter()
                .enumerate()
            {
                let t = simulate_block(&shapes, scheme, dev).timing.total_s;
                best[di] = best[di].min(t);
                cells.push(secs(t));
            }
        }
        for (di, dev) in [DeviceProfile::nexus6(), DeviceProfile::iot_k27()]
            .into_iter()
            .enumerate()
        {
            let t = simulate_block(&shapes, Scheme::Spot, dev).timing.total_s;
            cells.push(format!("{} ({})", secs(t), speedup(best[di], t)));
        }
        table.row(&cells);
    }
    println!("{}", table.render());
    println!("Paper: SPOT speedups of 2.03x-2.90x across basic blocks.");
}
