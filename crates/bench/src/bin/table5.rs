//! Table V: complexity comparison (Permutation / SIMDMult / Add counts)
//! between CrypTFlow2's channel-wise convolution and SPOT — the
//! published formulas next to the counts recorded from real executions
//! of both schemes on this machine.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_core::complexity::{cryptflow2_formula, spot_formula};
use spot_core::patching::PatchMode;
use spot_core::{channelwise, spot};
use spot_he::context::Context;
use spot_he::keys::KeyGenerator;
use spot_he::params::{EncryptionParams, ParamLevel};
use spot_pipeline::report::Table;
use spot_tensor::tensor::{Kernel, Tensor};

fn main() {
    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let mut rng = StdRng::seed_from_u64(5);
    let keygen = KeyGenerator::new(&ctx, &mut rng);

    // A layer small enough to run under real HE: 16×16, 16→32 channels.
    let input = Tensor::random(16, 16, 16, 6, 1);
    let kernel = Kernel::random(32, 16, 3, 3, 3, 2);

    let cw = channelwise::execute(&ctx, &keygen, &input, &kernel, 1, &mut rng);
    let sp = spot::execute(
        &ctx,
        &keygen,
        &input,
        &kernel,
        1,
        (4, 4),
        PatchMode::Tweaked,
        &mut rng,
    );

    let geo = channelwise::geometry(
        &spot_tensor::models::ConvShape::new(16, 16, 16, 32, 3, 1),
        ParamLevel::N4096,
    );
    let cf_formula = cryptflow2_formula(geo.input_cts as u64, geo.channels_per_ct as u64, 32, 3, 3);
    let sp_formula = spot_formula(sp.input_cts as u64, 16, 32, 3, 3);

    let mut table = Table::new(
        "Table V — complexity: formulas vs recorded operation counts (16x16, Ci=16, Co=32, k=3)",
        &[
            "Method",
            "Perm (formula)",
            "Perm (measured)",
            "SIMDMult (f)",
            "SIMDMult (m)",
            "Add (f)",
            "Add (m)",
        ],
    );
    table.row(&[
        "CrypTFlow2".into(),
        cf_formula.perm.to_string(),
        cw.counts.rotate.to_string(),
        cf_formula.simd_mult.to_string(),
        cw.counts.mult_plain.to_string(),
        cf_formula.add.to_string(),
        cw.counts.add.to_string(),
    ]);
    table.row(&[
        "SPOT".into(),
        sp_formula.perm.to_string(),
        sp.counts.rotate.to_string(),
        sp_formula.simd_mult.to_string(),
        sp.counts.mult_plain.to_string(),
        sp_formula.add.to_string(),
        sp.counts.add.to_string(),
    ]);
    println!("{}", table.render());
    println!(
        "Notes: measured counts come from real HE executions. Our two-lane\n\
         layout shares alignment rotations across lanes, so measured Perm\n\
         sits slightly below the published formula; SPOT's measured counts\n\
         include the per-ciphertext output-masking additions and the\n\
         auxiliary seam-piece ciphertexts of overlap tweaking."
    );
}
