//! Fig. 3/6: the pipeline timeline — channel-wise packing's linear
//! computation stall versus SPOT's per-ciphertext streaming, as a
//! Gantt-style event dump for one convolution layer on the IoT client.

use spot_core::inference::{plan_conv, Scheme};
use spot_pipeline::device::DeviceProfile;
use spot_pipeline::sim::{simulate_conv, SimConfig};
use spot_tensor::models::ConvShape;

fn dump(scheme: Scheme) {
    let shape = ConvShape::new(28, 28, 128, 128, 3, 1);
    let plan = plan_conv(&shape, scheme, true);
    let cfg = SimConfig::with_client(DeviceProfile::iot_k27());
    let res = simulate_conv(&plan, &cfg);
    println!("--- {} on 28x28x128 conv, IoT client ---", scheme.name());
    println!(
        "total {:.3}s, server stall {:.3}s, {} input cts, {} output cts",
        res.timing.total_s, res.timing.stall_s, plan.input_cts, plan.output_cts
    );
    let mut events = res.timeline;
    events.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
    for ev in events.iter().take(60) {
        let indent = match ev.lane {
            "client" => 0,
            "link-up" => 24,
            "server" => 48,
            _ => 72,
        };
        println!(
            "{:>8.3}s {:>8.3}s {:indent$}{} [{}]",
            ev.start,
            ev.end,
            "",
            ev.label,
            ev.lane,
            indent = indent
        );
    }
    if events.len() > 60 {
        println!("... ({} more events)", events.len() - 60);
    }
    println!();
}

fn main() {
    dump(Scheme::CrypTFlow2);
    dump(Scheme::Spot);
    println!(
        "Observe: under channel-wise packing every conv[i] waits for the\n\
         LAST upload (the stall); under SPOT each conv[i] starts the moment\n\
         up[i] lands and its results stream back immediately."
    );
}
