//! Table VI: patch size (H'×W') selection for each layer shape and slot
//! budget S' ∈ {4096, 8192, 16384}.
//!
//! Two variants are printed: the paper's accounting (a full-`N` slot
//! vector per ciphertext) and this implementation's lane-contained
//! pieces (`N/2` slots per lane, two pieces per ciphertext) — the
//! per-ciphertext payload is identical.

use spot_core::patching::PatchMode;
use spot_core::select::select_patch_with_slots;
use spot_pipeline::report::Table;
use spot_tensor::models::ConvShape;

fn main() {
    let layers = [
        ConvShape::new(56, 56, 64, 64, 3, 1),
        ConvShape::new(28, 28, 128, 128, 3, 1),
        ConvShape::new(14, 14, 256, 256, 3, 1),
        ConvShape::new(7, 7, 512, 512, 3, 1),
    ];
    let budgets = [4096usize, 8192, 16384];
    let paper: [[&str; 3]; 4] = [
        ["8*8", "16*8", "16*16"],
        ["8*4", "8*8", "16*8"],
        ["4*4", "8*4", "8*8"],
        ["2*4", "4*4", "8*4"],
    ];

    let mut table = Table::new(
        "Table VI — patch size selection per layer and S' (ours | paper)",
        &[
            "Layer (W H Ci Co)",
            "S'=4096 (co_mod=109)",
            "S'=8192 (co_mod=218)",
            "S'=16384 (co_mod=438)",
        ],
    );
    for (li, shape) in layers.iter().enumerate() {
        let mut row = vec![format!(
            "{} {} {} {}",
            shape.width, shape.height, shape.c_in, shape.c_out
        )];
        for (bi, &slots) in budgets.iter().enumerate() {
            let ours = select_patch_with_slots(shape, slots, PatchMode::Tweaked)
                .map(|(h, w)| format!("{h}*{w}"))
                .unwrap_or_else(|| "-".into());
            row.push(format!("{ours} | {}", paper[li][bi]));
        }
        table.row(&row);
    }
    println!("{}", table.render());

    // Implementation view: split-lane packing gives each patch the full
    // N / C_i budget; report pieces per ciphertext and slot utilization.
    let mut impl_table = Table::new(
        "Implementation view — pieces/ct and slot utilization per level",
        &["Layer", "D=4096", "D=8192", "D=16384"],
    );
    for shape in &layers {
        let mut row = vec![format!(
            "{} {} {} {}",
            shape.width, shape.height, shape.c_in, shape.c_out
        )];
        for level in [
            spot_he::params::ParamLevel::N4096,
            spot_he::params::ParamLevel::N8192,
            spot_he::params::ParamLevel::N16384,
        ] {
            let cell = spot_core::select::select_patch(shape, level, PatchMode::Tweaked)
                .map(|c| format!("{} pc/ct, {}%", c.pieces_per_ct, c.utilization_pct))
                .unwrap_or_else(|| "-".into());
            row.push(cell);
        }
        impl_table.row(&row);
    }
    println!("{}", impl_table.render());
}
