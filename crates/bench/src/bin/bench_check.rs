//! Perf-regression gate: diff two benchmark artifacts under a
//! tolerance and exit nonzero when a metric moved the wrong way.
//!
//! ```text
//! bench_check --baseline BENCH_heops.json --current fresh.json [--tolerance 0.25]
//! bench_check --baseline metrics.prom --scrape 127.0.0.1:9100 [--warn-only]
//! ```
//!
//! `--baseline` and `--current` take `BENCH_*.json` files or saved
//! Prometheus text (auto-detected); `--scrape ADDR` fetches the current
//! side live from a running `spot-server --admin` endpoint. Tolerance
//! is a fraction (default `0.25` = 25%); direction is inferred per
//! metric (time-like regress up, throughput-like regress down — see
//! [`spot_bench::check`]). `--warn-only` reports but exits 0, for
//! noisy 1-core CI runners where absolute timings swing.
//!
//! Exit codes: `0` clean (or `--warn-only`), `1` regression(s) found,
//! `2` usage or I/O error.

use spot_bench::check::{compare, http_get, parse_baseline, parse_prometheus, MetricMap};
use std::process::ExitCode;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn load_file(path: &str) -> Result<MetricMap, String> {
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_baseline(&content).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let tolerance: f64 = arg_value(&args, "--tolerance")
        .map(|v| v.parse().expect("--tolerance takes a fraction, e.g. 0.25"))
        .unwrap_or(0.25);
    let warn_only = args.iter().any(|a| a == "--warn-only");

    let Some(baseline_path) = arg_value(&args, "--baseline") else {
        eprintln!("bench_check: --baseline PATH is required");
        return ExitCode::from(2);
    };
    let baseline = match load_file(&baseline_path) {
        Ok(map) => map,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::from(2);
        }
    };

    let current = match (arg_value(&args, "--current"), arg_value(&args, "--scrape")) {
        (Some(path), None) => match load_file(&path) {
            Ok(map) => map,
            Err(e) => {
                eprintln!("bench_check: {e}");
                return ExitCode::from(2);
            }
        },
        (None, Some(addr)) => match http_get(&addr, "/metrics") {
            Ok(body) => parse_prometheus(&body),
            Err(e) => {
                eprintln!("bench_check: scrape {addr} failed: {e}");
                return ExitCode::from(2);
            }
        },
        _ => {
            eprintln!("bench_check: pick exactly one of --current PATH or --scrape ADDR");
            return ExitCode::from(2);
        }
    };

    let report = compare(&baseline, &current, tolerance);
    println!(
        "bench_check: {} metrics compared against {baseline_path} (tolerance {:.0}%)",
        report.compared,
        tolerance * 100.0
    );
    if report.regressions.is_empty() {
        println!("bench_check: OK — no regressions");
        return ExitCode::SUCCESS;
    }
    for r in &report.regressions {
        println!("bench_check: REGRESSION {r}");
    }
    println!(
        "bench_check: {} regression(s) past {:.0}% tolerance{}",
        report.regressions.len(),
        tolerance * 100.0,
        if warn_only { " (warn-only)" } else { "" }
    );
    if warn_only {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
