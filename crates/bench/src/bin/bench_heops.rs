//! Machine-readable HE hot-loop baseline: `BENCH_heops.json`.
//!
//! Measures every operation the `crates/he/src/arch` kernel dispatch
//! accelerates — forward/inverse NTT, pointwise multiply, the
//! key-switch digit loops (Barrett lift + fused multiply-accumulate),
//! ciphertext rotation and one full lane-MIMO convolution — under both
//! the scalar reference kernels and the best runtime-detected SIMD
//! backend, **in the same process and run** (via `spot_he::arch::force`)
//! so the two columns are directly comparable.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p spot-bench --bin bench_heops            # human table
//! cargo run --release -p spot-bench --bin bench_heops -- --json  # BENCH_heops.json to stdout
//! ```
//!
//! The JSON schema is stable (`spot-bench-heops/v1`): consumers may rely
//! on `schema`, `host`,
//! `entries[].{op,level,kernel,reps,mean_us,median_us,min_us}` and
//! `speedups`. New fields may be added; existing ones won't change
//! meaning. The `conv_batched_b{B}` entries report one full in-process
//! SPOT conv session carrying `B` images *per image* (total / B), so
//! they read directly as throughput-per-image.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_core::executor::Executor;
use spot_core::heconv::{ConvRequest, HeConvEngine};
use spot_core::layout::LaneLayout;
use spot_core::patching::PatchMode;
use spot_core::session::{run_in_process_batched, ExecBackend, SchemeKind};
use spot_core::spot::{blocking, spot_group_specs, spot_in_maps};
use spot_he::arch;
use spot_he::evaluator::OpCounts;
use spot_he::prelude::*;
use spot_tensor::tensor::Tensor;
use std::time::Instant;

/// `(mean_us, median_us, min_us)` over `reps` timed calls after a
/// short warm-up pass (untimed, so cold caches and lazy init never
/// leak into the samples; the median is robust to scheduler spikes on
/// shared hardware).
fn time_us(reps: usize, mut f: impl FnMut()) -> (f64, f64, f64) {
    for _ in 0..(reps / 10).clamp(1, 5) {
        f();
    }
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_secs_f64() * 1e6);
    }
    let mean = samples.iter().sum::<f64>() / reps as f64;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = if reps % 2 == 1 {
        samples[reps / 2]
    } else {
        (samples[reps / 2 - 1] + samples[reps / 2]) / 2.0
    };
    (mean, median, min)
}

struct Entry {
    op: &'static str,
    level: &'static str,
    kernel: &'static str,
    reps: usize,
    mean_us: f64,
    median_us: f64,
    min_us: f64,
}

/// All measurements for one kernel backend (must already be forced).
fn measure_kernel(kernel: &'static str, entries: &mut Vec<Entry>) {
    let k = arch::kernels();
    assert_eq!(k.name, kernel, "backend must be forced before measuring");

    for (level, level_name, reps) in [
        (ParamLevel::N4096, "N4096", 200usize),
        (ParamLevel::N8192, "N8192", 100),
    ] {
        let ctx = Context::new(EncryptionParams::new(level));
        let n = ctx.degree();
        let tables = &ctx.ntt_tables()[0];
        let m = tables.modulus();
        let p = m.value();
        let coeffs: Vec<u64> = (0..n as u64).map(|i| (i * 0x9e37_79b9 + 17) % p).collect();

        let mut push = |op, reps, (mean_us, median_us, min_us)| {
            entries.push(Entry {
                op,
                level: level_name,
                kernel,
                reps,
                mean_us,
                median_us,
                min_us,
            })
        };

        let mut a = coeffs.clone();
        push(
            "ntt_forward",
            reps,
            time_us(reps, || tables.forward(&mut a)),
        );
        push(
            "ntt_inverse",
            reps,
            time_us(reps, || tables.inverse(&mut a)),
        );

        // Pointwise product of two residue rows (the mult-plain core).
        let b: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 3) % p).collect();
        let mut d = coeffs.clone();
        push(
            "pointwise_mul",
            reps,
            time_us(reps, || (arch::kernels().pointwise_mul)(m, &mut d, &b)),
        );

        let mut d2 = coeffs.clone();
        push(
            "pointwise_add",
            reps,
            time_us(reps, || (arch::kernels().pointwise_add)(m, &mut d2, &b)),
        );
        let s = p / 3;
        let ss = m.shoup(s);
        let mut d3 = coeffs.clone();
        push(
            "mul_scalar",
            reps,
            time_us(reps, || (arch::kernels().mul_scalar)(m, &mut d3, s, ss)),
        );

        // Key-switch digit inner loops: the Barrett lift of a residue
        // row into a smaller modulus, and the fused digit*ksk
        // multiply-accumulate.
        let small = spot_he::modulus::Modulus::new((1u64 << 30) - 35); // 2^30-35 is prime
        let mut lifted = vec![0u64; n];
        push(
            "keyswitch_digit_lift",
            reps,
            time_us(reps, || {
                (arch::kernels().reduce)(&small, &mut lifted, &coeffs)
            }),
        );
        let mut acc = vec![0u64; n];
        push(
            "keyswitch_digit_madd",
            reps,
            time_us(reps, || {
                (arch::kernels().pointwise_add_mul)(m, &mut acc, &coeffs, &b)
            }),
        );

        // Full rotation: Galois automorphism + key switch.
        let mut rng = StdRng::seed_from_u64(1);
        let keygen = KeyGenerator::new(&ctx, &mut rng);
        let encoder = BatchEncoder::new(&ctx);
        let encryptor = Encryptor::new(&ctx, keygen.public_key(&mut rng));
        let evaluator = Evaluator::new(&ctx);
        let values: Vec<u64> = (0..n as u64)
            .map(|i| i % ctx.params().plain_modulus())
            .collect();
        let ct = encryptor.encrypt(&encoder.encode(&values), &mut rng);
        if level.supports_rotation() {
            let rot_reps = reps / 10;
            let gk = keygen.galois_keys(&evaluator.galois_elements(&[1], false), &mut rng);
            push(
                "rotate",
                rot_reps,
                time_us(rot_reps, || {
                    std::hint::black_box(evaluator.rotate_rows(&ct, 1, &gk));
                }),
            );
        }
    }

    // One cached lane-MIMO convolution ciphertext (the serving hot path).
    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let mut rng = StdRng::seed_from_u64(3);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let encryptor = Encryptor::new(&ctx, keygen.public_key(&mut rng));
    let (c_in, c_out, h, w) = (8usize, 8usize, 8usize, 8usize);
    let blk = blocking(c_in, c_out);
    let layout = LaneLayout::new(ctx.degree() / 2, blk.lane_blocks, h, w);
    let kernel_t = spot_tensor::tensor::Kernel::random(c_out, c_in, 3, 3, 4, 11);
    let groups = spot_group_specs(&blk, c_out);
    let in_maps = spot_in_maps(&blk, c_in);
    let req = ConvRequest {
        layout: &layout,
        in_maps: &in_maps,
        groups: &groups,
        diagonals: blk.diagonals,
        fold_steps: &blk.fold_steps,
        kernel: &kernel_t,
        cache_tag: 0,
    };
    let engine = HeConvEngine::new(
        &ctx,
        &keygen,
        &layout,
        3,
        3,
        blk.diagonals,
        blk.out_groups,
        &blk.fold_steps,
        blk.split,
        true,
        &mut rng,
    );
    let encoder = BatchEncoder::new(&ctx);
    let values: Vec<u64> = (0..ctx.degree() as u64).map(|i| i % 97).collect();
    let ct = encryptor.encrypt(&encoder.encode(&values), &mut rng);
    let mut counts = OpCounts::default();
    engine.conv_one_ct(&ct, &req, &mut counts); // warm the kernel cache
    let reps = 10;
    let (mean_us, median_us, min_us) = time_us(reps, || {
        std::hint::black_box(engine.conv_one_ct(&ct, &req, &mut counts));
    });
    entries.push(Entry {
        op: "conv_one_ct",
        level: "N4096",
        kernel,
        reps,
        mean_us,
        median_us,
        min_us,
    });
}

/// Cross-image batching throughput: one full in-process SPOT conv
/// session carrying `B` images of a low-occupancy layer (2×8×8 → 4
/// channels fills well under half the N4096 slots), reported **per
/// image** (total session time / B). The rotation and key-switch
/// schedule runs once for the whole batch, so per-image time drops
/// roughly as 1/B.
fn measure_batched(kernel: &'static str, entries: &mut Vec<Entry>) {
    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let mut rng = StdRng::seed_from_u64(5);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let kernel_t = spot_tensor::tensor::Kernel::random(4, 2, 3, 3, 3, 7);
    let backend = ExecBackend::Phased(Executor::serial());
    for (b, op) in [
        (1usize, "conv_batched_b1"),
        (2, "conv_batched_b2"),
        (4, "conv_batched_b4"),
    ] {
        let inputs: Vec<Tensor> = (0..b as u64)
            .map(|i| Tensor::random(2, 8, 8, 5, 9 + i))
            .collect();
        let reps = 5;
        let (mean_us, median_us, min_us) = time_us(reps, || {
            let mut r = StdRng::seed_from_u64(11);
            std::hint::black_box(
                run_in_process_batched(
                    &ctx,
                    &keygen,
                    &inputs,
                    &kernel_t,
                    1,
                    (4, 4),
                    PatchMode::Tweaked,
                    SchemeKind::Spot,
                    &backend,
                    &mut r,
                )
                .expect("batched conv session"),
            );
        });
        entries.push(Entry {
            op,
            level: "N4096",
            kernel,
            reps,
            mean_us: mean_us / b as f64,
            median_us: median_us / b as f64,
            min_us: min_us / b as f64,
        });
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn emit_json(dispatched: &str, entries: &[Entry]) {
    let avail: Vec<&str> = arch::available().iter().map(|k| k.name).collect();
    println!("{{");
    println!("  \"schema\": \"spot-bench-heops/v1\",");
    println!(
        "  \"generated_by\": \"cargo run --release -p spot-bench --bin bench_heops -- --json\","
    );
    println!(
        "  \"caveats\": \"Measured on a single CPU core inside a shared container; \
         absolute times are noisy and machine-dependent. Compare kernels within one \
         file only — both columns come from the same run and process. \
         min_us is the more stable statistic on shared hardware.\","
    );
    println!("  \"host\": {{");
    println!("    \"arch\": \"{}\",", json_escape(std::env::consts::ARCH));
    println!(
        "    \"available_kernels\": [{}],",
        avail
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("    \"dispatched\": \"{}\"", json_escape(dispatched));
    println!("  }},");
    println!("  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        println!(
            "    {{\"op\": \"{}\", \"level\": \"{}\", \"kernel\": \"{}\", \
             \"reps\": {}, \"mean_us\": {:.3}, \"median_us\": {:.3}, \"min_us\": {:.3}}}{}",
            e.op,
            e.level,
            e.kernel,
            e.reps,
            e.mean_us,
            e.median_us,
            e.min_us,
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    println!("  ],");
    // Scalar-vs-dispatched ratios (scalar min / simd min), per op+level.
    let mut lines = Vec::new();
    for e in entries.iter().filter(|e| e.kernel != "scalar") {
        if let Some(s) = entries
            .iter()
            .find(|s| s.kernel == "scalar" && s.op == e.op && s.level == e.level)
        {
            lines.push(format!(
                "    \"{}/{}\": {:.2}",
                e.op,
                e.level,
                s.min_us / e.min_us
            ));
        }
    }
    println!("  \"speedup_scalar_over\": \"min_us ratios: scalar / dispatched\",");
    println!("  \"speedups\": {{");
    println!("{}", lines.join(",\n"));
    println!("  }}");
    println!("}}");
}

fn emit_table(entries: &[Entry]) {
    println!(
        "{:<22} {:<6} {:<8} {:>8} {:>12} {:>12} {:>12}",
        "op", "level", "kernel", "reps", "mean_us", "median_us", "min_us"
    );
    for e in entries {
        println!(
            "{:<22} {:<6} {:<8} {:>8} {:>12.3} {:>12.3} {:>12.3}",
            e.op, e.level, e.kernel, e.reps, e.mean_us, e.median_us, e.min_us
        );
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    // Resolve the normal startup dispatch first so the file records what
    // production would pick on this host.
    let dispatched = arch::active_name();

    let mut entries = Vec::new();
    for k in ["scalar", dispatched] {
        arch::force(k).expect("backend reported available");
        measure_kernel(k, &mut entries);
        if k == dispatched {
            break; // dispatched == scalar: one pass is the whole story
        }
    }
    arch::force(dispatched).expect("restore dispatched backend");
    // Batching amortization is a protocol property, not a kernel one:
    // measure it once under the production dispatch.
    measure_batched(dispatched, &mut entries);

    if json {
        emit_json(dispatched, &entries);
    } else {
        emit_table(&entries);
    }
}
