//! Data-owner client for the two-process TinyCnn demo: connects to a
//! running `spot-server`, drives the full secure inference over TCP,
//! and checks the reconstructed output against both the plaintext
//! forward pass and an in-process `MemTransport` reference run.
//!
//! ```text
//! spot-client [--connect 127.0.0.1:7341] [--scheme spot|channelwise|cheetah]
//!             [--batch N] [--seed S] [--link lan|wlan] [--trace out.json]
//! ```
//!
//! Prints `output vs plain: MATCH` / `output vs reference: MATCH` on
//! success (the loopback e2e CI job greps for these); with `--batch N`
//! the N queued images ride shared ciphertexts through both conv
//! layers and each image prints its own `image I: output vs plain:
//! MATCH` line.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_core::executor::Executor;
use spot_core::inference::TinyCnn;
use spot_core::patching::PatchMode;
use spot_core::session::{ExecBackend, SchemeKind};
use spot_core::twoparty::{run_client_batch, run_server};
use spot_he::context::Context;
use spot_he::keys::KeyGenerator;
use spot_he::params::{EncryptionParams, ParamLevel};
use spot_pipeline::report::{transfer_table, TransferRow};
use spot_proto::channel::LinkModel;
use spot_proto::transport::{MemTransport, TcpTransport, Transport, TransportStats};
use spot_tensor::tensor::Tensor;
use std::sync::Arc;
use std::time::Duration;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn connect_with_retry(addr: &str) -> TcpTransport {
    for _ in 0..100 {
        match TcpTransport::connect(addr) {
            Ok(t) => return t,
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
    panic!("could not connect to spot-server at {addr}");
}

/// Runs the same client logic against an in-process server over a
/// `MemTransport` pair, returning the per-image outputs and the
/// client-side transport accounting.
fn mem_reference(
    ctx: &Arc<Context>,
    cnn: &TinyCnn,
    inputs: &[Tensor],
    scheme: SchemeKind,
    seed: u64,
) -> (Vec<Tensor>, TransportStats) {
    let (ct, st) = MemTransport::pair();
    let ctx_s = Arc::clone(ctx);
    let cnn_s = cnn.clone();
    let server = std::thread::spawn(move || {
        let mut rng = StdRng::seed_from_u64(1312);
        run_server(
            &ctx_s,
            &st,
            &cnn_s,
            &ExecBackend::Phased(Executor::serial()),
            &mut rng,
        )
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let kg = KeyGenerator::new(ctx, &mut rng);
    let out = run_client_batch(
        ctx,
        &kg,
        &ct,
        inputs,
        cnn,
        scheme,
        (4, 4),
        PatchMode::Tweaked,
        &mut rng,
    )
    .expect("reference client run");
    server
        .join()
        .expect("reference server thread")
        .expect("reference server run");
    (out, ct.stats())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = arg_value(&args, "--connect").unwrap_or_else(|| "127.0.0.1:7341".into());
    let scheme = match arg_value(&args, "--scheme").as_deref().unwrap_or("spot") {
        "spot" => SchemeKind::Spot,
        "channelwise" => SchemeKind::Channelwise,
        "cheetah" => SchemeKind::Cheetah,
        other => panic!("unknown scheme {other:?} (use spot|channelwise|cheetah)"),
    };
    let seed: u64 = arg_value(&args, "--seed")
        .map(|v| v.parse().expect("--seed takes a number"))
        .unwrap_or(99);
    let batch: usize = arg_value(&args, "--batch")
        .map(|v| v.parse().expect("--batch takes a number"))
        .unwrap_or(1);
    assert!(batch >= 1, "--batch must be at least 1");
    let link = match arg_value(&args, "--link").as_deref().unwrap_or("lan") {
        "wlan" => LinkModel::wlan(),
        _ => LinkModel::lan(),
    };
    let trace_path = arg_value(&args, "--trace");
    let trace_baseline = trace_path
        .as_ref()
        .map(|_| spot_bench::traceio::trace_begin());

    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let cnn = TinyCnn::new(7);
    let inputs: Vec<Tensor> = (0..batch as u64)
        .map(|b| Tensor::random(2, 8, 8, 5, 9 + b))
        .collect();
    let want: Vec<Tensor> = inputs.iter().map(|i| cnn.forward_plain(i)).collect();

    println!("spot-client: in-process MemTransport reference run...");
    let (ref_out, ref_stats) = mem_reference(&ctx, &cnn, &inputs, scheme, seed);
    // Drop the reference run's events so the exported trace covers only
    // the TCP session — the half the cross-party merge consumes.
    let trace_baseline = trace_baseline.map(|_| spot_bench::traceio::trace_restart());

    println!("spot-client: connecting to {addr} (scheme {scheme:?}, batch {batch})");
    let transport = connect_with_retry(&addr);
    let t0 = std::time::Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    let kg = KeyGenerator::new(&ctx, &mut rng);
    let out = run_client_batch(
        &ctx,
        &kg,
        &transport,
        &inputs,
        &cnn,
        scheme,
        (4, 4),
        PatchMode::Tweaked,
        &mut rng,
    )
    .expect("client session");
    let wall = t0.elapsed().as_secs_f64();

    let plain_ok = out == want;
    let ref_ok = out == ref_out;
    if batch == 1 {
        println!(
            "output vs plain: {}",
            if plain_ok { "MATCH" } else { "MISMATCH" }
        );
        println!(
            "output vs reference: {}",
            if ref_ok { "MATCH" } else { "MISMATCH" }
        );
    } else {
        for (i, img) in out.iter().enumerate() {
            println!(
                "image {i}: output vs plain: {}",
                if *img == want[i] { "MATCH" } else { "MISMATCH" }
            );
            println!(
                "image {i}: output vs reference: {}",
                if *img == ref_out[i] {
                    "MATCH"
                } else {
                    "MISMATCH"
                }
            );
        }
    }

    let stats = transport.stats();
    let traffic_ok = stats.sent == ref_stats.sent
        && stats.received.bytes == ref_stats.received.bytes
        && stats.received.messages == ref_stats.received.messages;
    println!(
        "traffic vs reference: {}",
        if traffic_ok { "MATCH" } else { "MISMATCH" }
    );
    let rows = |st: &TransportStats| {
        [
            TransferRow {
                direction: "client -> server".into(),
                bytes: st.sent.bytes,
                messages: st.sent.messages,
                measured_s: 0.0,
                send_blocked_s: st.send_blocked.as_secs_f64(),
                modeled_s: link.transfer_time(st.sent.bytes as usize),
            },
            TransferRow {
                direction: "server -> client".into(),
                bytes: st.received.bytes,
                messages: st.received.messages,
                measured_s: 0.0,
                send_blocked_s: 0.0,
                modeled_s: link.transfer_time(st.received.bytes as usize),
            },
        ]
    };
    println!(
        "{}",
        transfer_table(
            "Client-side wire traffic, MemTransport reference (measured vs link model)",
            &rows(&ref_stats)
        )
    );
    println!(
        "{}",
        transfer_table(
            "Client-side wire traffic, TCP (measured vs link model)",
            &rows(&stats)
        )
    );
    if batch == 1 {
        println!("spot-client: end-to-end wall {wall:.3}s over TCP");
    } else {
        println!(
            "spot-client: end-to-end wall {wall:.3}s over TCP ({:.3}s/image at batch {batch})",
            wall / batch as f64
        );
    }
    if let (Some(path), Some(baseline)) = (&trace_path, &trace_baseline) {
        spot_bench::traceio::trace_finish(std::path::Path::new(path), baseline);
    }
    if !(plain_ok && ref_ok && traffic_ok) {
        std::process::exit(1);
    }
}
