//! Table I: convolution-layer runtime on a desktop client versus a
//! mobile client restricted to 3/2/1 in-memory ciphertexts, under the
//! channel-wise (CrypTFlow2-style) packing both use.

use spot_core::inference::{plan_conv, Scheme};
use spot_pipeline::device::DeviceProfile;
use spot_pipeline::report::{secs, Table};
use spot_pipeline::sim::{simulate_conv, SimConfig};
use spot_tensor::models::ConvShape;

fn main() {
    let shapes = [
        ConvShape::new(56, 56, 64, 256, 3, 1),
        ConvShape::new(28, 28, 128, 512, 3, 1),
        ConvShape::new(14, 14, 256, 1024, 3, 1),
        ConvShape::new(7, 7, 512, 2048, 3, 1),
    ];
    let mut table = Table::new(
        "Table I — conv runtime, desktop vs mobile client with 3/2/1-ciphertext memory",
        &[
            "Conv size (w h Ci Co)",
            "Desktop client",
            "3 ciphertext",
            "2 ciphertext",
            "1 ciphertext",
        ],
    );
    for shape in &shapes {
        let plan = plan_conv(shape, Scheme::CrypTFlow2, true);
        let desktop = simulate_conv(
            &plan,
            &SimConfig::with_client(DeviceProfile::desktop_client()),
        )
        .timing
        .total_s;
        let mut row = vec![
            format!(
                "{} {} {} {}",
                shape.width, shape.height, shape.c_in, shape.c_out
            ),
            secs(desktop),
        ];
        for cap in [3usize, 2, 1] {
            let client = DeviceProfile::nexus6().with_capacity(cap, plan.ciphertext_bytes);
            let t = simulate_conv(&plan, &SimConfig::with_client(client))
                .timing
                .total_s;
            row.push(format!(
                "{} (+{:.1}%)",
                secs(t),
                (t / desktop - 1.0) * 100.0
            ));
        }
        table.row(&row);
    }
    println!("{}", table.render());
    println!(
        "Paper's observation: tighter client memory inflates runtime, most\n\
         strongly for shallow layers whose many input ciphertexts serialize."
    );
}
