//! Extension experiment: how each scheme's latency scales with the
//! client's ciphertext capacity (generalizing Table I / Fig. 3 to all
//! three schemes) — the crossover at which more client memory stops
//! mattering is where SPOT's pipelining advantage comes from.

use spot_core::inference::{plan_conv, Scheme};
use spot_pipeline::device::DeviceProfile;
use spot_pipeline::report::{secs, Table};
use spot_pipeline::sim::{simulate_conv, SimConfig};
use spot_tensor::models::ConvShape;

fn main() {
    let shape = ConvShape::new(28, 28, 128, 512, 3, 1);
    let caps = [1usize, 2, 4, 8, 16, 64];
    let mut table = Table::new(
        "Memory sweep — 28x28x128->512 conv latency vs client ciphertext capacity (Nexus-class CPU)",
        &["Capacity (cts)", "CrypTFlow2", "Cheetah", "SPOT"],
    );
    for cap in caps {
        let mut row = vec![format!("{cap}")];
        for scheme in Scheme::ALL {
            let plan = plan_conv(&shape, scheme, true);
            let client = DeviceProfile::nexus6().with_capacity(cap, plan.ciphertext_bytes);
            let t = simulate_conv(&plan, &SimConfig::with_client(client))
                .timing
                .total_s;
            row.push(secs(t));
        }
        table.row(&row);
    }
    println!("{}", table.render());
    println!(
        "SPOT's curve is nearly flat: its pipeline never needs more than a\n\
         couple of in-flight ciphertexts, while the barrier schemes keep\n\
         improving with memory they do not have on tiny clients."
    );
}
