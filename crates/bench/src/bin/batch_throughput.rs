//! Extension experiment (Sec. II-E comparison): amortized per-image
//! latency vs batch size. Batching (as in Channel-By-Channel packing)
//! is a throughput play for capable clients; single-query latency on a
//! tiny client is SPOT's regime.

use spot_core::batch::{amortized_latency, plan_batched};
use spot_core::inference::Scheme;
use spot_pipeline::device::DeviceProfile;
use spot_pipeline::report::{secs, Table};
use spot_tensor::models::ConvShape;

fn main() {
    let shape = ConvShape::new(28, 28, 128, 128, 3, 1);
    let mut table = Table::new(
        "Batch throughput — amortized per-image seconds, 28x28x128 conv",
        &[
            "Batch",
            "SPOT desktop",
            "SPOT IoT",
            "CF2 desktop",
            "CF2 IoT",
        ],
    );
    for batch in [1usize, 2, 4, 8, 16] {
        let mut row = vec![format!("{batch}")];
        for scheme in [Scheme::Spot, Scheme::CrypTFlow2] {
            for dev in [DeviceProfile::desktop_client(), DeviceProfile::iot_k27()] {
                let bp = plan_batched(&shape, scheme, batch);
                row.push(secs(amortized_latency(&bp, dev)));
            }
        }
        table.row(&row);
    }
    println!("{}", table.render());
}
