//! Table VII: running-time microbenchmark on the bottleneck blocks of
//! ResNet-50 — CrypTFlow2 vs Cheetah vs SPOT on the IoT controller and
//! Nexus 6.

use spot_bench::{bottleneck_block_shapes, simulate_block};
use spot_core::inference::Scheme;
use spot_pipeline::device::DeviceProfile;
use spot_pipeline::report::{secs, speedup, Table};

fn main() {
    let blocks = [
        (56usize, 56usize, 64usize, 256usize),
        (28, 28, 128, 512),
        (14, 14, 256, 1024),
        (7, 7, 512, 2048),
    ];
    let mut table = Table::new(
        "Table VII — bottleneck blocks (ResNet-50): CrypTFlow2 / Cheetah / SPOT",
        &[
            "Block (W H Cmid Cout)",
            "CF2 IoT",
            "CF2 Nexus",
            "Cheetah IoT",
            "Cheetah Nexus",
            "SPOT IoT (speedup)",
            "SPOT Nexus (speedup)",
        ],
    );
    for (w, h, cm, co) in blocks {
        let shapes = bottleneck_block_shapes(w, h, cm, co);
        let mut cells = vec![format!("{w} {h} {cm} {co}")];
        let mut best = [f64::INFINITY; 2];
        for scheme in [Scheme::CrypTFlow2, Scheme::Cheetah] {
            for (di, dev) in [DeviceProfile::iot_k27(), DeviceProfile::nexus6()]
                .into_iter()
                .enumerate()
            {
                let t = simulate_block(&shapes, scheme, dev).timing.total_s;
                best[di] = best[di].min(t);
                cells.push(secs(t));
            }
        }
        for (di, dev) in [DeviceProfile::iot_k27(), DeviceProfile::nexus6()]
            .into_iter()
            .enumerate()
        {
            let t = simulate_block(&shapes, Scheme::Spot, dev).timing.total_s;
            cells.push(format!("{} ({})", secs(t), speedup(best[di], t)));
        }
        table.row(&cells);
    }
    println!("{}", table.render());
    println!("Paper: SPOT speedups of 2.35x-4.34x over the best baseline per block.");
}
