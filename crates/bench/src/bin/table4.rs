//! Table IV: ciphertext size and plaintext-multiplication cost per
//! parameter level — measured live from our BFV implementation.
//!
//! Pass `--full` for higher-precision timing including a real
//! `N = 16384` calibration (slower).

use spot_bench::calibrate_he_costs;
use spot_he::params::{EncryptionParams, ParamLevel};
use spot_pipeline::report::Table;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    eprintln!(
        "calibrating HE costs ({}) ...",
        if full { "full" } else { "quick" }
    );
    let costs = calibrate_he_costs(!full);
    let paper = [
        (ParamLevel::N16384, 789_617u64, 0.0015),
        (ParamLevel::N8192, 394_865, 0.0007),
        (ParamLevel::N4096, 131_697, 0.00014),
    ];
    let mut table = Table::new(
        "Table IV — ciphertext size and Mult cost per parameter level",
        &[
            "Parameter level (D)",
            "Ciphertext size (B)",
            "Mult cost (s)",
            "paper size (B)",
            "paper Mult (s)",
        ],
    );
    for (level, paper_size, paper_mult) in paper {
        let params = EncryptionParams::new(level);
        let c = costs.at(level);
        table.row(&[
            format!("{}", level.degree()),
            format!("{}", params.ciphertext_bytes()),
            format!("{:.5}", c.mult_plain),
            format!("{paper_size}"),
            format!("{paper_mult}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Shape to reproduce: halving D shrinks ciphertexts ~2-3x and makes\n\
         Mult 2-5x faster — the headroom SPOT's small patches unlock."
    );
    let c = costs.at(ParamLevel::N4096);
    println!(
        "\nFull measured op costs at D=4096: encrypt {:.5}s decrypt {:.5}s \
         mult {:.5}s add {:.6}s rotate {:.5}s",
        c.encrypt, c.decrypt, c.mult_plain, c.add, c.rotate
    );
}
