//! Table IX: runtime microbenchmark on the VGG-16 blocks — CrypTFlow2
//! vs Cheetah vs SPOT on both tiny clients.

use spot_bench::{simulate_block, vgg_block_shapes};
use spot_core::inference::Scheme;
use spot_pipeline::device::DeviceProfile;
use spot_pipeline::report::{secs, speedup, Table};

fn main() {
    let blocks = [
        (224usize, 224usize, 64usize, 64usize),
        (112, 112, 128, 128),
        (56, 56, 256, 256),
        (28, 28, 512, 512),
        (14, 14, 512, 512),
    ];
    let mut table = Table::new(
        "Table IX — VGG-16 blocks: CrypTFlow2 / Cheetah / SPOT",
        &[
            "Block (W H Ci Co)",
            "CF2 Nexus",
            "CF2 IoT",
            "Cheetah Nexus",
            "Cheetah IoT",
            "SPOT Nexus (speedup)",
            "SPOT IoT (speedup)",
        ],
    );
    for (w, h, ci, co) in blocks {
        let shapes = vgg_block_shapes(w, h, ci, co);
        let mut cells = vec![format!("{w} {h} {ci} {co}")];
        let mut best = [f64::INFINITY; 2];
        for scheme in [Scheme::CrypTFlow2, Scheme::Cheetah] {
            for (di, dev) in [DeviceProfile::nexus6(), DeviceProfile::iot_k27()]
                .into_iter()
                .enumerate()
            {
                let t = simulate_block(&shapes, scheme, dev).timing.total_s;
                best[di] = best[di].min(t);
                cells.push(secs(t));
            }
        }
        for (di, dev) in [DeviceProfile::nexus6(), DeviceProfile::iot_k27()]
            .into_iter()
            .enumerate()
        {
            let t = simulate_block(&shapes, Scheme::Spot, dev).timing.total_s;
            cells.push(format!("{} ({})", secs(t), speedup(best[di], t)));
        }
        table.row(&cells);
    }
    println!("{}", table.render());
    println!("Paper: SPOT speedups of 1.30x-3.47x, largest on the 224x224 block.");
}
