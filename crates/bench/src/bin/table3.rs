//! Table III: breakdown of a convolution layer's time into client-HE,
//! server-HE, and ReLU components for a mobile client holding one
//! ciphertext.

use spot_core::inference::{plan_conv, Scheme};
use spot_pipeline::device::DeviceProfile;
use spot_pipeline::report::Table;
use spot_pipeline::sim::{simulate_conv, SimConfig};
use spot_tensor::models::ConvShape;

fn main() {
    let shapes = [
        ConvShape::new(56, 56, 64, 256, 3, 1),
        ConvShape::new(28, 28, 128, 512, 3, 1),
        ConvShape::new(14, 14, 256, 1024, 3, 1),
        ConvShape::new(7, 7, 512, 2048, 3, 1),
    ];
    let mut table = Table::new(
        "Table III — layer time breakdown (mobile client, 1 ciphertext memory)",
        &["Conv size (w h Ci Co)", "client-HE", "server-HE", "ReLU"],
    );
    for shape in &shapes {
        let plan = plan_conv(shape, Scheme::CrypTFlow2, true);
        let client = DeviceProfile::nexus6().with_capacity(1, plan.ciphertext_bytes);
        let t = simulate_conv(&plan, &SimConfig::with_client(client)).timing;
        let total = t.client_he_s + t.server_he_s + t.relu_s;
        let pct = |v: f64| format!("{:.3}s ({:.0}%)", v, v / total * 100.0);
        table.row(&[
            format!(
                "{} {} {} {}",
                shape.width, shape.height, shape.c_in, shape.c_out
            ),
            pct(t.client_he_s),
            pct(t.server_he_s),
            pct(t.relu_s),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper's shape: client-HE dominates the shallow layer, server-HE\n\
         dominates deep layers (93-98%), ReLU stays at 1-3%."
    );
}
