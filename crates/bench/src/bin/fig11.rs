//! Fig. 11: memory utilization — *in-memory values* (useful feature-map
//! entries per MB of client ciphertext memory) across the blocks of
//! ResNet-50, ResNet-18 and VGG-16 for the three schemes.

use spot_core::inference::{plan_conv, Scheme};
use spot_core::memory_util::in_memory_values_per_mb;
use spot_pipeline::report::Table;
use spot_tensor::models::{
    table7_bottleneck_shapes, table8_basic_shapes, table9_vgg_shapes, ConvShape,
};

fn block_row(table: &mut Table, label: String, shape: &ConvShape) {
    let mut cells = vec![label];
    for scheme in Scheme::ALL {
        let plan = plan_conv(shape, scheme, false);
        cells.push(format!("{:.0}", in_memory_values_per_mb(&plan)));
    }
    table.row(&cells);
}

fn main() {
    let mut table = Table::new(
        "Fig. 11 — in-memory values per MB of client memory (higher is better)",
        &["Block", "CrypTFlow2", "Cheetah", "SPOT"],
    );
    for (w, h, cm, _co) in table7_bottleneck_shapes() {
        // the 3x3 mid conv of each ResNet-50 bottleneck stage
        block_row(
            &mut table,
            format!("R50 bottleneck {w}x{h} c{cm}"),
            &ConvShape::new(w, h, cm, cm, 3, 1),
        );
    }
    for (w, h, ci, co) in table8_basic_shapes() {
        block_row(
            &mut table,
            format!("R18 basic {w}x{h} c{ci}"),
            &ConvShape::new(w, h, ci, co, 3, 1),
        );
    }
    for (w, h, ci, co) in table9_vgg_shapes() {
        block_row(
            &mut table,
            format!("VGG16 {w}x{h} c{ci}"),
            &ConvShape::new(w, h, ci, co, 3, 1),
        );
    }
    println!("{}", table.render());
    println!(
        "Paper's shape: SPOT holds up to 2x more in-memory values than\n\
         CrypTFlow2/Cheetah; Cheetah's inputs pack densely but extraction\n\
         (one value per LWE ct) wrecks its combined utilization."
    );
}
