//! Table II: total ResNet-50 execution time — CrypTFlow2 vs Cheetah on
//! a desktop client versus an IoT client. The headline observation:
//! Cheetah's large speedup over CrypTFlow2 collapses on the tiny client.

use spot_core::inference::{plan_network, Scheme};
use spot_pipeline::device::DeviceProfile;
use spot_pipeline::report::{secs, Table};
use spot_pipeline::sim::SimConfig;
use spot_tensor::models::resnet50;

fn main() {
    let net = resnet50();
    let mut table = Table::new(
        "Table II — ResNet-50 total time, desktop vs IoT client",
        &["Client", "CrypTFlow2", "Cheetah", "Cheetah speedup"],
    );
    for client in [DeviceProfile::desktop_client(), DeviceProfile::iot_k27()] {
        let cfg = SimConfig::with_client(client.clone());
        let cf = plan_network(&net, Scheme::CrypTFlow2).simulate(&cfg);
        let ch = plan_network(&net, Scheme::Cheetah).simulate(&cfg);
        table.row(&[
            client.name.to_string(),
            secs(cf.total_s),
            secs(ch.total_s),
            format!("{:.0}%", (cf.total_s / ch.total_s - 1.0) * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper: desktop 295.7s -> 80.3s (260%); IoT 428.2s -> 348.2s (20%).\n\
         The shape to reproduce: Cheetah's relative advantage shrinks\n\
         sharply when the client is memory constrained."
    );
}
