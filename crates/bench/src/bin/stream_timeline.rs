//! Measured streaming-pipeline timeline: runs each scheme through the
//! real streaming runtime (`spot-core::stream`) on a scaled-down
//! Table-I-class layer with a single-thread server and a 2-ciphertext
//! client budget, then dumps the measured stall table, a Gantt-style
//! span trace per scheme (from the `spot-trace` layer), and the
//! spot-he buffer pool's steady-state allocation counters.
//!
//! ```text
//! stream-timeline [--trace out.json]
//! ```
//!
//! With `--trace` the full run (all three schemes) is also exported as
//! Chrome-trace JSON loadable in Perfetto / `chrome://tracing`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_core::executor::Executor;
use spot_core::inference::{run_conv_backend, ExecBackend, Scheme};
use spot_core::patching::PatchMode;
use spot_core::stream::{StreamConfig, StreamStats};
use spot_he::pool;
use spot_he::prelude::*;
use spot_pipeline::report::stall_table;
use spot_tensor::tensor::{Kernel, Tensor};
use spot_trace::{Cat, Event, Phase};

const MAX_EVENTS: usize = 48;

/// Lane label for a recorded thread id: the thread's trace label when
/// it set one (`client`, `server-0`, ...), else the session thread
/// that runs result assembly.
fn lane_of(threads: &[(u32, String)], tid: u32) -> &str {
    threads
        .iter()
        .find(|(t, _)| *t == tid)
        .map(|(_, n)| n.as_str())
        .unwrap_or("assemble")
}

fn dump_gantt(scheme: Scheme, stats: &StreamStats, events: &[Event], threads: &[(u32, String)]) {
    println!(
        "--- {} timeline ({} in cts, {} out cts, wall {:.3}s) ---",
        scheme.name(),
        stats.input_items,
        stats.output_items,
        stats.wall_s
    );
    // Pipeline-level spans only: the per-frame Net spans and HE counters
    // would drown the Gantt view (they stay in the JSON export).
    let spans: Vec<&Event> = events
        .iter()
        .filter(|e| matches!(e.phase, Phase::Span { .. }))
        .filter(|e| matches!(e.cat, Cat::Client | Cat::Stream))
        .collect();
    let t0 = spans.iter().map(|e| e.ts_ns).min().unwrap_or(0);
    for ev in spans.iter().take(MAX_EVENTS) {
        let lane = lane_of(threads, ev.tid);
        let indent = if lane == "client" {
            0
        } else if lane.starts_with("server-") {
            24
        } else {
            48
        };
        println!(
            "{:>8.3}s {:>8.3}s {:indent$}{} [{}]",
            (ev.ts_ns - t0) as f64 / 1e9,
            (ev.end_ns() - t0) as f64 / 1e9,
            "",
            ev.name.as_str(),
            lane,
            indent = indent
        );
    }
    if spans.len() > MAX_EVENTS {
        println!("... ({} more events)", spans.len() - MAX_EVENTS);
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let trace_baseline = spot_bench::traceio::trace_begin();

    let ctx = spot_he::context::Context::new(EncryptionParams::new(ParamLevel::N4096));
    let mut keyrng = StdRng::seed_from_u64(5150);
    let keygen = KeyGenerator::new(&ctx, &mut keyrng);
    // Scaled-down Table-I-class layer: 16x16 map, C_i = 32 → two
    // channel-wise input ciphertexts at N4096, so the all-input barrier
    // schemes really serialize their upload.
    let input = Tensor::random(32, 16, 16, 4, 81);
    let kernel = Kernel::random(4, 32, 3, 3, 3, 82);
    let cfg = StreamConfig::new(Executor::serial(), 2);

    println!("Streamed conv layer: 16x16, C_i=32 -> C_o=4, k=3 at N4096");
    println!("server = 1 thread, client ciphertext budget (channel capacity) = 2\n");

    let mut rows = Vec::new();
    let mut timelines = Vec::new();
    let mut all_events: Vec<Event> = Vec::new();
    for scheme in Scheme::ALL {
        let _ = spot_trace::take_events(); // clear any setup noise
        let mut rng = StdRng::seed_from_u64(7000);
        let (_, stats) = run_conv_backend(
            &ctx,
            &keygen,
            &input,
            &kernel,
            1,
            (4, 4),
            PatchMode::Tweaked,
            scheme,
            &ExecBackend::Streaming(cfg),
            &mut rng,
        );
        let stats = stats.expect("streaming backend reports stats");
        rows.push(stats.stall_row(scheme.name()));
        let events = spot_trace::take_events();
        all_events.extend(events.iter().cloned());
        timelines.push((scheme, stats, events));
    }
    let threads = spot_trace::thread_names();
    println!(
        "{}",
        stall_table("Measured stall accounting (single-thread server)", &rows)
    );
    println!(
        "SPOT's per-input streaming keeps the server busy during the upload;\n\
         the all-input schemes park every worker until the last ciphertext\n\
         lands (\"server idle\" = the paper's linear computation stall).\n"
    );

    for (scheme, stats, events) in &timelines {
        dump_gantt(*scheme, stats, events, &threads);
    }

    // Buffer-pool steady state: the same serial phased layer twice on
    // this thread — the second (warm) run draws its polynomial buffers
    // from the pool instead of the allocator.
    println!("== spot-he buffer pool: cold vs warm serial SPOT layer ==");
    let small_in = Tensor::random(4, 8, 8, 8, 11);
    let small_k = Kernel::random(4, 4, 3, 3, 4, 12);
    // Give the pool room for a whole layer's buffers so the warm run
    // measures pure steady-state reuse (streamed runs instead bound the
    // producer pool by the client's ciphertext budget).
    let prev_cap = pool::capacity();
    pool::set_capacity(512);
    pool::clear();
    pool::reset_stats();
    let mut rng = StdRng::seed_from_u64(9900);
    let _ = spot_core::spot::execute(
        &ctx,
        &keygen,
        &small_in,
        &small_k,
        1,
        (4, 4),
        PatchMode::Tweaked,
        &mut rng,
    );
    let cold = pool::stats();
    pool::reset_stats();
    let _ = spot_core::spot::execute(
        &ctx,
        &keygen,
        &small_in,
        &small_k,
        1,
        (4, 4),
        PatchMode::Tweaked,
        &mut rng,
    );
    let warm = pool::stats();
    for (tag, s) in [("cold", &cold), ("warm", &warm)] {
        println!(
            "{tag}: fresh {:>6}  reused {:>6}  recycled {:>6}  dropped {:>6}  (reuse {:.1}%)",
            s.fresh,
            s.reused,
            s.recycled,
            s.dropped,
            100.0 * s.reused as f64 / s.takes().max(1) as f64
        );
    }
    pool::set_capacity(prev_cap);
    println!(
        "\nSteady state: the warm layer's fresh allocations drop {:.0}x\n\
         while its buffer reuse covers {:.1}% of takes.",
        cold.fresh as f64 / (warm.fresh.max(1)) as f64,
        100.0 * warm.reused as f64 / warm.takes().max(1) as f64
    );

    if let Some(path) = &trace_path {
        // Re-seed the sink with everything drained per scheme (plus the
        // pool exercise above) so the export covers the whole run.
        let pool_events = spot_trace::take_events();
        all_events.extend(pool_events);
        let json = spot_trace::chrome::chrome_trace_json_with_threads(&all_events, &threads);
        spot_bench::traceio::write_trace_json(std::path::Path::new(path), &json);
        let delta = spot_trace::counters().delta(&trace_baseline);
        println!("trace: {} events, JSON OK -> {path}", all_events.len());
        println!("{}", spot_trace::summary::text_summary(&all_events, &delta));
    }
}
