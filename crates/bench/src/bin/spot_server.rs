//! Model-owner server for the two-process TinyCnn demo: listens on a
//! TCP socket, serves both convolution sessions plus the non-linear
//! rounds over the typed wire protocol, and prints the stall/traffic
//! report for the run.
//!
//! ```text
//! spot-server [--listen 127.0.0.1:7341] [--backend streaming|phased]
//!             [--threads N] [--capacity N] [--seed S] [--trace out.json]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_core::executor::Executor;
use spot_core::inference::TinyCnn;
use spot_core::session::ExecBackend;
use spot_core::stream::StreamConfig;
use spot_core::twoparty::run_server;
use spot_he::context::Context;
use spot_he::params::{EncryptionParams, ParamLevel};
use spot_pipeline::report::{stall_table, transfer_table, TransferRow};
use spot_proto::channel::LinkModel;
use spot_proto::transport::{TcpTransport, Transport};
use std::net::TcpListener;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let listen = arg_value(&args, "--listen").unwrap_or_else(|| "127.0.0.1:7341".into());
    let backend_name = arg_value(&args, "--backend").unwrap_or_else(|| "streaming".into());
    let threads: usize = arg_value(&args, "--threads")
        .map(|v| v.parse().expect("--threads takes a number"))
        .unwrap_or(2);
    let capacity: usize = arg_value(&args, "--capacity")
        .map(|v| v.parse().expect("--capacity takes a number"))
        .unwrap_or(2);
    let seed: u64 = arg_value(&args, "--seed")
        .map(|v| v.parse().expect("--seed takes a number"))
        .unwrap_or(1312);
    let trace_path = arg_value(&args, "--trace");
    let trace_baseline = trace_path
        .as_ref()
        .map(|_| spot_bench::traceio::trace_begin());
    let backend = match backend_name.as_str() {
        "phased" => ExecBackend::Phased(Executor::new(threads)),
        "streaming" => ExecBackend::Streaming(StreamConfig::new(Executor::new(threads), capacity)),
        other => panic!("unknown backend {other:?} (use streaming|phased)"),
    };

    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let cnn = TinyCnn::new(7);

    let listener = TcpListener::bind(&listen).expect("bind listen address");
    println!(
        "spot-server: listening on {} (backend {backend_name}, {threads} threads)",
        listener.local_addr().expect("local addr")
    );
    let (stream, peer) = listener.accept().expect("accept client");
    println!("spot-server: client connected from {peer}");
    let transport = TcpTransport::from_stream(stream).expect("wrap stream");

    let mut rng = StdRng::seed_from_u64(seed);
    let report = run_server(&ctx, &transport, &cnn, &backend, &mut rng).expect("server session");

    println!(
        "spot-server: done — {} input cts, {} output cts, {} rotations, {} plain mults",
        report.input_cts, report.output_cts, report.counts.rotate, report.counts.mult_plain
    );
    if report.batch > 1 {
        // Batched sessions run the rotation/key-switch schedule once for
        // the whole batch, so each image pays 1/batch of it.
        println!(
            "spot-server: batch {} — amortized {:.1} rotations/image, {:.1} plain mults/image",
            report.batch,
            spot_proto::cost::amortized_per_image(report.counts.rotate, report.batch),
            spot_proto::cost::amortized_per_image(report.counts.mult_plain, report.batch),
        );
        if let Some(baseline) = &trace_baseline {
            let delta = spot_trace::counters().delta(baseline);
            println!(
                "spot-server: traced {:.1} key switches/image, {:.1} rotations/image",
                spot_proto::cost::amortized_per_image(
                    delta.get(spot_trace::Counter::KeySwitch),
                    report.batch
                ),
                spot_proto::cost::amortized_per_image(
                    delta.get(spot_trace::Counter::Rotate),
                    report.batch
                ),
            );
        }
    }
    if report.stream.input_items > 0 {
        println!(
            "{}",
            stall_table(
                "Measured stall accounting (both conv layers)",
                &[report.stream.stall_row("TinyCnn server")]
            )
        );
    }
    let stats = transport.stats();
    let link = LinkModel::lan();
    println!(
        "{}",
        transfer_table(
            "Server-side wire traffic (measured vs LAN model)",
            &[
                TransferRow {
                    direction: "client -> server".into(),
                    bytes: stats.received.bytes,
                    messages: stats.received.messages,
                    measured_s: 0.0,
                    send_blocked_s: 0.0,
                    modeled_s: link.transfer_time(stats.received.bytes as usize),
                },
                TransferRow {
                    direction: "server -> client".into(),
                    bytes: stats.sent.bytes,
                    messages: stats.sent.messages,
                    measured_s: 0.0,
                    send_blocked_s: stats.send_blocked.as_secs_f64(),
                    modeled_s: link.transfer_time(stats.sent.bytes as usize),
                },
            ]
        )
    );
    if let (Some(path), Some(baseline)) = (&trace_path, &trace_baseline) {
        spot_bench::traceio::trace_finish(std::path::Path::new(path), baseline);
    }
}
