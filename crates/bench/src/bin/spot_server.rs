//! Model-owner server for the TinyCnn demo.
//!
//! By default this is a **multi-tenant server**: an accept loop admits
//! up to `--max-sessions` concurrent TCP sessions, each served on its
//! own thread through a shared [`spot_core::serving::SpotServer`] — one
//! [`ModelContext`] (HE context, weights, NTT-domain kernel caches
//! built once per model) and one bounded worker pool multiplexed
//! across every connection. Connections past the cap, or `Setup`
//! batches past `--max-batch`, are refused with a typed wire error.
//!
//! `--once` keeps the original single-connection demo: accept one
//! client, run the session on the main thread, print the stall/traffic
//! report, and exit (the loopback CI jobs and `results/tcp_demo.txt`
//! rely on this exact behavior).
//!
//! `--admin <addr>` starts the live observability endpoint
//! ([`spot_core::admin`]): `GET /metrics` (Prometheus text),
//! `/healthz`, `/sessions`. Diagnostics go through the `SPOT_LOG`
//! leveled logger (`SPOT_LOG=debug` for per-session detail).
//!
//! ```text
//! spot-server [--listen 127.0.0.1:7341] [--backend streaming|phased]
//!             [--threads N] [--capacity N] [--seed S] [--trace out.json]
//!             [--once] [--max-sessions N] [--max-batch N] [--pool N]
//!             [--serve N] [--read-timeout-ms MS] [--admin ADDR]
//!             [--linger-ms MS]
//! ```
//!
//! [`ModelContext`]: spot_core::serving::ModelContext

use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_core::admin::AdminServer;
use spot_core::executor::Executor;
use spot_core::inference::TinyCnn;
use spot_core::serving::{ModelContext, ServingConfig, SpotServer};
use spot_core::session::ExecBackend;
use spot_core::stream::StreamConfig;
use spot_core::twoparty::run_server;
use spot_he::context::Context;
use spot_he::params::{EncryptionParams, ParamLevel};
use spot_pipeline::report::{stall_table, transfer_table, TransferRow};
use spot_proto::channel::LinkModel;
use spot_proto::transport::{TcpTransport, Transport};
use spot_trace::{log_error, log_info, log_warn, Counter};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let listen = arg_value(&args, "--listen").unwrap_or_else(|| "127.0.0.1:7341".into());
    let backend_name = arg_value(&args, "--backend").unwrap_or_else(|| "streaming".into());
    let threads: usize = arg_value(&args, "--threads")
        .map(|v| v.parse().expect("--threads takes a number"))
        .unwrap_or(2);
    let capacity: usize = arg_value(&args, "--capacity")
        .map(|v| v.parse().expect("--capacity takes a number"))
        .unwrap_or(2);
    let seed: u64 = arg_value(&args, "--seed")
        .map(|v| v.parse().expect("--seed takes a number"))
        .unwrap_or(1312);
    let trace_path = arg_value(&args, "--trace");
    let trace_baseline = trace_path
        .as_ref()
        .map(|_| spot_bench::traceio::trace_begin());

    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let cnn = TinyCnn::new(7);
    let listener = TcpListener::bind(&listen).expect("bind listen address");

    if args.iter().any(|a| a == "--once") {
        serve_once(
            &listener,
            &ctx,
            &cnn,
            &backend_name,
            threads,
            capacity,
            seed,
            trace_path.as_deref(),
            trace_baseline.as_ref(),
        );
        return;
    }

    let max_sessions: usize = arg_value(&args, "--max-sessions")
        .map(|v| v.parse().expect("--max-sessions takes a number"))
        .unwrap_or(16);
    let max_batch: Option<usize> =
        arg_value(&args, "--max-batch").map(|v| v.parse().expect("--max-batch takes a number"));
    let pool_workers: usize = arg_value(&args, "--pool")
        .map(|v| v.parse().expect("--pool takes a number"))
        .unwrap_or_else(|| threads.saturating_sub(1));
    let serve_limit: usize = arg_value(&args, "--serve")
        .map(|v| v.parse().expect("--serve takes a number"))
        .unwrap_or(0);
    let read_timeout_ms: Option<u64> = arg_value(&args, "--read-timeout-ms")
        .map(|v| v.parse().expect("--read-timeout-ms takes a number"));
    let admin_addr = arg_value(&args, "--admin");
    let linger_ms: u64 = arg_value(&args, "--linger-ms")
        .map(|v| v.parse().expect("--linger-ms takes a number"))
        .unwrap_or(0);

    let streaming = match backend_name.as_str() {
        "phased" => false,
        "streaming" => true,
        other => panic!("unknown backend {other:?} (use streaming|phased)"),
    };
    let config = ServingConfig {
        max_sessions,
        max_batch,
        threads_per_session: threads,
        pool_workers,
        streaming,
        channel_capacity: capacity,
        base_seed: seed,
    };
    let model = ModelContext::new("tinycnn-7", ctx, cnn);
    let server = Arc::new(SpotServer::new(model, config));

    let admin = admin_addr.map(|addr| {
        let handle = AdminServer::bind(&addr, Arc::clone(&server)).expect("bind admin address");
        log_info!("server", "admin endpoint on http://{}", handle.addr());
        handle
    });

    println!(
        "spot-server: listening on {} (serving mode, backend {backend_name}, max {max_sessions} \
         sessions, {pool_workers} pool workers)",
        listener.local_addr().expect("local addr")
    );

    let mut handles = Vec::new();
    let mut accepted = 0usize;
    while serve_limit == 0 || accepted < serve_limit {
        let (stream, peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) => {
                log_error!("server", "accept failed: {e}");
                continue;
            }
        };
        accepted += 1;
        let server = Arc::clone(&server);
        handles.push(std::thread::spawn(move || {
            let transport = match TcpTransport::from_stream(stream) {
                Ok(t) => t,
                Err(e) => {
                    log_warn!("server", "rejecting {peer}: {e}");
                    return;
                }
            };
            if let Some(ms) = read_timeout_ms {
                let _ = transport.set_read_timeout(Some(Duration::from_millis(ms)));
            }
            let report = server.serve_connection(&transport);
            match &report.result {
                Ok(r) => log_info!(
                    "server",
                    "session {} ({peer}) done — batch {}, {} rotations, \
                     kernel cache {} builds / {} hits, {:.3}s",
                    report.id,
                    r.batch,
                    r.counts.rotate,
                    report.counters.get(Counter::KernelCacheBuild),
                    report.counters.get(Counter::KernelCacheHit),
                    report.wall.as_secs_f64()
                ),
                Err(e) if report.id == u64::MAX => {
                    log_warn!("server", "refused {peer}: {e}")
                }
                Err(e) => log_warn!("server", "session {} ({peer}) failed: {e}", report.id),
            }
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    let stats = server.stats();
    println!(
        "spot-server: served {} sessions ({} failed, {} rejected), {} shared kernel cache entries",
        stats.served,
        stats.failed,
        stats.rejected,
        server.model().caches().total_entries()
    );
    // Keep the process (and admin endpoint) alive briefly so a smoke
    // test can take a final /metrics scrape of the completed totals.
    if linger_ms > 0 {
        std::thread::sleep(Duration::from_millis(linger_ms));
    }
    if let Some(handle) = admin {
        handle.shutdown();
    }
    if let (Some(path), Some(baseline)) = (&trace_path, &trace_baseline) {
        spot_bench::traceio::trace_finish(std::path::Path::new(path), baseline);
    }
}

/// The original single-client demo path (`--once`): accept exactly one
/// connection, serve it on the main thread, print the full report.
#[allow(clippy::too_many_arguments)]
fn serve_once(
    listener: &TcpListener,
    ctx: &Arc<Context>,
    cnn: &TinyCnn,
    backend_name: &str,
    threads: usize,
    capacity: usize,
    seed: u64,
    trace_path: Option<&str>,
    trace_baseline: Option<&spot_trace::CounterSnapshot>,
) {
    let backend = match backend_name {
        "phased" => ExecBackend::Phased(Executor::new(threads)),
        "streaming" => ExecBackend::Streaming(StreamConfig::new(Executor::new(threads), capacity)),
        other => panic!("unknown backend {other:?} (use streaming|phased)"),
    };
    println!(
        "spot-server: listening on {} (backend {backend_name}, {threads} threads)",
        listener.local_addr().expect("local addr")
    );
    let (stream, peer) = listener.accept().expect("accept client");
    println!("spot-server: client connected from {peer}");
    let transport = TcpTransport::from_stream(stream).expect("wrap stream");

    let mut rng = StdRng::seed_from_u64(seed);
    let report = run_server(ctx, &transport, cnn, &backend, &mut rng).expect("server session");

    println!(
        "spot-server: done — {} input cts, {} output cts, {} rotations, {} plain mults",
        report.input_cts, report.output_cts, report.counts.rotate, report.counts.mult_plain
    );
    if report.batch > 1 {
        // Batched sessions run the rotation/key-switch schedule once for
        // the whole batch, so each image pays 1/batch of it.
        println!(
            "spot-server: batch {} — amortized {:.1} rotations/image, {:.1} plain mults/image",
            report.batch,
            spot_proto::cost::amortized_per_image(report.counts.rotate, report.batch),
            spot_proto::cost::amortized_per_image(report.counts.mult_plain, report.batch),
        );
        if let Some(baseline) = trace_baseline {
            let delta = spot_trace::counters().delta(baseline);
            println!(
                "spot-server: traced {:.1} key switches/image, {:.1} rotations/image",
                spot_proto::cost::amortized_per_image(
                    delta.get(spot_trace::Counter::KeySwitch),
                    report.batch
                ),
                spot_proto::cost::amortized_per_image(
                    delta.get(spot_trace::Counter::Rotate),
                    report.batch
                ),
            );
        }
    }
    if report.stream.input_items > 0 {
        println!(
            "{}",
            stall_table(
                "Measured stall accounting (both conv layers)",
                &[report.stream.stall_row("TinyCnn server")]
            )
        );
    }
    let stats = transport.stats();
    let link = LinkModel::lan();
    println!(
        "{}",
        transfer_table(
            "Server-side wire traffic (measured vs LAN model)",
            &[
                TransferRow {
                    direction: "client -> server".into(),
                    bytes: stats.received.bytes,
                    messages: stats.received.messages,
                    measured_s: 0.0,
                    send_blocked_s: 0.0,
                    modeled_s: link.transfer_time(stats.received.bytes as usize),
                },
                TransferRow {
                    direction: "server -> client".into(),
                    bytes: stats.sent.bytes,
                    messages: stats.sent.messages,
                    measured_s: 0.0,
                    send_blocked_s: stats.send_blocked.as_secs_f64(),
                    modeled_s: link.transfer_time(stats.sent.bytes as usize),
                },
            ]
        )
    );
    if let (Some(path), Some(baseline)) = (trace_path, trace_baseline) {
        spot_bench::traceio::trace_finish(std::path::Path::new(path), baseline);
    }
}
