//! Communication/computation cost model of the OT-based non-linear
//! protocols (the SCI-NonLinear module of CrypTFlow2 the paper reuses).
//!
//! We do not re-implement IKNP/Ferret OT extension; the non-linear layers
//! are evaluated *functionally* on shares while charging the costs
//! CrypTFlow2 reports: a millionaire-protocol DReLU over an `ℓ`-bit field
//! costs `< λℓ/4 + 14ℓ` bits of communication in about 4 rounds
//! (λ = 128), and multiplexing the result back onto the share costs two
//! more OTs. These constants reproduce the paper's Table III observation
//! that ReLU is only 1–3% of a convolution layer's runtime for tiny
//! clients.

/// Computational security parameter (bits).
pub const LAMBDA: u32 = 128;

/// Cost model for OT-based non-linear operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OtCostModel {
    /// Field bit width `ℓ` (log2 of the plaintext modulus, rounded up).
    pub ell: u32,
    /// Per-party CPU time per element, seconds, on the reference server
    /// core (scaled by device profiles in `spot-pipeline`).
    pub cpu_s_per_element: f64,
    /// Protocol rounds per batched invocation.
    pub rounds: u32,
}

impl OtCostModel {
    /// Cost model for DReLU + multiplex (one ReLU) over an `ell`-bit
    /// field.
    pub fn relu(ell: u32) -> Self {
        Self {
            ell,
            // Calibrated so ~800k ReLUs cost ≈0.25 s of CPU per party on
            // the reference server core (Table III: 0.18-0.34 s per layer).
            cpu_s_per_element: 3.0e-7,
            rounds: 6,
        }
    }

    /// Cost model for one Max (2-input comparison + mux), as used by
    /// max pooling.
    pub fn max(ell: u32) -> Self {
        Self {
            ell,
            cpu_s_per_element: 4.0e-7,
            rounds: 8,
        }
    }

    /// Cost model for faithful truncation by a public shift.
    pub fn truncation(ell: u32) -> Self {
        Self {
            ell,
            cpu_s_per_element: 2.0e-7,
            rounds: 4,
        }
    }

    /// Communication in bits per element (both directions combined):
    /// millionaire comparison `λℓ/4 + 14ℓ` plus `2(λ + ℓ)` for the
    /// multiplexer OTs.
    pub fn comm_bits_per_element(&self) -> u64 {
        (LAMBDA as u64 * self.ell as u64) / 4
            + 14 * self.ell as u64
            + 2 * (LAMBDA as u64 + self.ell as u64)
    }

    /// Communication in bytes for a batch of `n` elements.
    pub fn comm_bytes(&self, n: usize) -> u64 {
        (self.comm_bits_per_element() * n as u64).div_ceil(8)
    }

    /// CPU seconds for a batch of `n` elements (per party, reference
    /// core).
    pub fn cpu_seconds(&self, n: usize) -> f64 {
        self.cpu_s_per_element * n as f64
    }
}

/// Bit width of the default plaintext field (`t ≈ 2^20` → 21 bits).
pub fn field_bits(modulus: u64) -> u32 {
    64 - modulus.leading_zeros()
}

/// Cross-image SIMD batching capacity from slot occupancy: how many
/// images' packings fit one ciphertext when a single image occupies
/// `useful_slots` of the `total_slots` SIMD slots (≥ 1; the session
/// layer clamps this estimate to the exact position granularity of the
/// layer's lane layout).
pub fn slot_batch_capacity(total_slots: usize, useful_slots: usize) -> usize {
    if useful_slots == 0 {
        return 1;
    }
    (total_slots / useful_slots).max(1)
}

/// Amortized per-image count of a per-batch HE operation: batching `B`
/// images into shared ciphertexts leaves the per-batch rotation and
/// key-switch counts unchanged, so each image pays `count / B`.
pub fn amortized_per_image(count: u64, batch: usize) -> f64 {
    count as f64 / batch.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_comm_reasonable() {
        let m = OtCostModel::relu(21);
        // ~1 kbit per ReLU
        let bits = m.comm_bits_per_element();
        assert!((500..2000).contains(&bits), "bits = {bits}");
        // 800k ReLUs => tens of MB, fractions of a second of CPU
        assert!(m.comm_bytes(800_000) > 10_000_000);
        let cpu = m.cpu_seconds(800_000);
        assert!((0.1..1.0).contains(&cpu), "cpu = {cpu}");
    }

    #[test]
    fn field_bits_of_default_modulus() {
        assert_eq!(field_bits(1_032_193), 20);
        assert_eq!(field_bits(1 << 20), 21);
        assert_eq!(field_bits((1 << 21) - 9), 21);
    }

    #[test]
    fn max_costs_more_than_relu() {
        assert!(OtCostModel::max(21).cpu_s_per_element > OtCostModel::relu(21).cpu_s_per_element);
    }

    #[test]
    fn batch_capacity_from_occupancy() {
        // 25% occupancy -> 4 images per ciphertext.
        assert_eq!(slot_batch_capacity(4096, 1024), 4);
        // Over-full or empty packings never batch below 1.
        assert_eq!(slot_batch_capacity(4096, 4096), 1);
        assert_eq!(slot_batch_capacity(4096, 5000), 1);
        assert_eq!(slot_batch_capacity(4096, 0), 1);
        assert_eq!(slot_batch_capacity(8192, 1024), 8);
    }

    #[test]
    fn amortization_divides_per_batch_work() {
        assert_eq!(amortized_per_image(100, 4), 25.0);
        assert_eq!(amortized_per_image(100, 1), 100.0);
        assert_eq!(amortized_per_image(100, 0), 100.0);
    }
}
