//! OT-based non-linear layers on additive shares: ReLU, max pooling,
//! and DReLU.
//!
//! **Simulation note (see DESIGN.md §3):** the protocols are evaluated
//! *functionally* — the simulator plays both parties, reconstructs inside
//! the trusted harness, applies the non-linearity, and re-shares with
//! fresh randomness — while charging the exact communication and CPU
//! costs of CrypTFlow2's millionaire-based protocols to the [`Channel`].
//! The *outputs* are therefore bit-exact shares of the true result, and
//! the *costs* are faithful to the real protocol; only the cryptographic
//! transport is elided.

use crate::channel::Channel;
use crate::cost::{field_bits, OtCostModel};
use crate::share::{reconstruct, share, ShareVec};
use rand::Rng;

fn centered(v: u64, t: u64) -> i64 {
    if v > t / 2 {
        v as i64 - t as i64
    } else {
        v as i64
    }
}

fn to_field(v: i64, t: u64) -> u64 {
    v.rem_euclid(t as i64) as u64
}

/// Executes the (simulated) OT-based ReLU protocol on a shared vector.
///
/// Returns fresh shares of `ReLU(x)` (centered interpretation) and
/// charges the channel with the protocol's traffic.
///
/// # Panics
///
/// Panics if the shares belong to the same party.
pub fn relu_on_shares<R: Rng>(
    client: &ShareVec,
    server: &ShareVec,
    channel: &mut Channel,
    rng: &mut R,
) -> (ShareVec, ShareVec) {
    let t = client.modulus();
    let x = reconstruct(client, server);
    let y: Vec<u64> = x
        .iter()
        .map(|&v| {
            let c = centered(v, t);
            to_field(c.max(0), t)
        })
        .collect();
    let model = OtCostModel::relu(field_bits(t));
    let bytes = model.comm_bytes(x.len());
    channel.charge(bytes / 2, bytes - bytes / 2);
    share(&y, t, rng)
}

/// Executes the (simulated) DReLU protocol: boolean shares (as field
/// elements 0/1) of the predicate `x > 0`.
pub fn drelu_on_shares<R: Rng>(
    client: &ShareVec,
    server: &ShareVec,
    channel: &mut Channel,
    rng: &mut R,
) -> (ShareVec, ShareVec) {
    let t = client.modulus();
    let x = reconstruct(client, server);
    let b: Vec<u64> = x.iter().map(|&v| u64::from(centered(v, t) > 0)).collect();
    let model = OtCostModel::relu(field_bits(t));
    // DReLU alone skips the final multiplex OTs; charge 85% of full ReLU.
    let bytes = model.comm_bytes(x.len()) * 85 / 100;
    channel.charge(bytes / 2, bytes - bytes / 2);
    share(&b, t, rng)
}

/// Executes the (simulated) 2×2 max-pool protocol on shares of a CHW
/// tensor given as a flat vector with shape metadata.
///
/// Returns shares of the pooled tensor (`C × H/2 × W/2`, flattened).
///
/// # Panics
///
/// Panics if `channels * height * width != len` or dims are odd.
pub fn maxpool2_on_shares<R: Rng>(
    client: &ShareVec,
    server: &ShareVec,
    channels: usize,
    height: usize,
    width: usize,
    channel: &mut Channel,
    rng: &mut R,
) -> (ShareVec, ShareVec) {
    let t = client.modulus();
    assert_eq!(client.len(), channels * height * width, "shape mismatch");
    assert!(
        height.is_multiple_of(2) && width.is_multiple_of(2),
        "odd pooling dims"
    );
    let x = reconstruct(client, server);
    let oh = height / 2;
    let ow = width / 2;
    let mut y = Vec::with_capacity(channels * oh * ow);
    for c in 0..channels {
        for h in 0..oh {
            for w in 0..ow {
                let mut m = i64::MIN;
                for dh in 0..2 {
                    for dw in 0..2 {
                        let idx = (c * height + 2 * h + dh) * width + 2 * w + dw;
                        m = m.max(centered(x[idx], t));
                    }
                }
                y.push(to_field(m, t));
            }
        }
    }
    // 3 comparisons per output window.
    let model = OtCostModel::max(field_bits(t));
    let bytes = model.comm_bytes(3 * y.len());
    channel.charge(bytes / 2, bytes - bytes / 2);
    share(&y, t, rng)
}

/// Executes the (simulated) faithful truncation protocol: shares of
/// `x >> shift` with centered semantics (arithmetic shift).
pub fn truncate_on_shares<R: Rng>(
    client: &ShareVec,
    server: &ShareVec,
    shift: u32,
    channel: &mut Channel,
    rng: &mut R,
) -> (ShareVec, ShareVec) {
    let t = client.modulus();
    let x = reconstruct(client, server);
    let y: Vec<u64> = x
        .iter()
        .map(|&v| to_field(centered(v, t) >> shift, t))
        .collect();
    let model = OtCostModel::truncation(field_bits(t));
    let bytes = model.comm_bytes(x.len());
    channel.charge(bytes / 2, bytes - bytes / 2);
    share(&y, t, rng)
}

/// Computes shares of the global average pool: each party locally sums
/// its share per channel; the division by the (public) area uses the
/// truncation protocol's machinery. Returns shares of `C` values.
///
/// # Panics
///
/// Panics if `channels * area != len`.
pub fn global_avgpool_on_shares<R: Rng>(
    client: &ShareVec,
    server: &ShareVec,
    channels: usize,
    area: usize,
    channel: &mut Channel,
    rng: &mut R,
) -> (ShareVec, ShareVec) {
    let t = client.modulus();
    assert_eq!(client.len(), channels * area, "shape mismatch");
    // local per-channel sums commute with sharing...
    let sum_shares = |v: &ShareVec| -> Vec<u64> {
        (0..channels)
            .map(|c| {
                v.values()[c * area..(c + 1) * area]
                    .iter()
                    .fold(0u64, |a, &x| (a + x) % t)
            })
            .collect()
    };
    let sc = sum_shares(client);
    let ss = sum_shares(server);
    // ...but the division by `area` does not: run it as an interactive
    // (simulated) exact-division protocol, like truncation.
    let x = reconstruct(
        &ShareVec::new(client.party(), t, sc),
        &ShareVec::new(server.party(), t, ss),
    );
    let y: Vec<u64> = x
        .iter()
        .map(|&v| to_field(centered(v, t) / area as i64, t))
        .collect();
    let model = OtCostModel::truncation(field_bits(t));
    let bytes = model.comm_bytes(channels);
    channel.charge(bytes / 2, bytes - bytes / 2);
    share(&y, t, rng)
}

/// Helper: shares of a plain tensor for protocol entry points.
pub fn share_tensor<R: Rng>(values: &[i64], modulus: u64, rng: &mut R) -> (ShareVec, ShareVec) {
    let field: Vec<u64> = values.iter().map(|&v| to_field(v, modulus)).collect();
    share(&field, modulus, rng)
}

/// Helper: reconstructs shares back into centered signed values.
pub fn reconstruct_signed(a: &ShareVec, b: &ShareVec) -> Vec<i64> {
    let t = a.modulus();
    reconstruct(a, b)
        .into_iter()
        .map(|v| centered(v, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const T: u64 = 1_032_193;

    #[test]
    fn relu_matches_plaintext() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ch = Channel::new();
        let x: Vec<i64> = (-50..50).collect();
        let (c, s) = share_tensor(&x, T, &mut rng);
        let (oc, os) = relu_on_shares(&c, &s, &mut ch, &mut rng);
        let y = reconstruct_signed(&oc, &os);
        let expected: Vec<i64> = x.iter().map(|&v| v.max(0)).collect();
        assert_eq!(y, expected);
        assert!(ch.total_bytes() > 0, "protocol traffic must be charged");
    }

    #[test]
    fn drelu_is_boolean() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ch = Channel::new();
        let x: Vec<i64> = vec![-3, -1, 0, 1, 3];
        let (c, s) = share_tensor(&x, T, &mut rng);
        let (oc, os) = drelu_on_shares(&c, &s, &mut ch, &mut rng);
        let y = reconstruct_signed(&oc, &os);
        assert_eq!(y, vec![0, 0, 0, 1, 1]);
    }

    #[test]
    fn maxpool_matches_plaintext() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ch = Channel::new();
        // one channel, 4x4
        let x: Vec<i64> = (0..16).map(|i| (i * 7 % 13) - 6).collect();
        let (c, s) = share_tensor(&x, T, &mut rng);
        let (oc, os) = maxpool2_on_shares(&c, &s, 1, 4, 4, &mut ch, &mut rng);
        let y = reconstruct_signed(&oc, &os);
        let mut expected = Vec::new();
        for h in 0..2 {
            for w in 0..2 {
                let mut m = i64::MIN;
                for dh in 0..2 {
                    for dw in 0..2 {
                        m = m.max(x[(2 * h + dh) * 4 + 2 * w + dw]);
                    }
                }
                expected.push(m);
            }
        }
        assert_eq!(y, expected);
    }

    #[test]
    fn truncation_halves_scale() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ch = Channel::new();
        let x: Vec<i64> = vec![256, -256, 100, -100, 0];
        let (c, s) = share_tensor(&x, T, &mut rng);
        let (oc, os) = truncate_on_shares(&c, &s, 4, &mut ch, &mut rng);
        let y = reconstruct_signed(&oc, &os);
        assert_eq!(y, vec![16, -16, 6, -7, 0]); // arithmetic shift semantics
    }

    #[test]
    fn output_shares_are_fresh() {
        // Same input shared twice yields different output shares but the
        // same reconstruction.
        let mut rng = StdRng::seed_from_u64(5);
        let mut ch = Channel::new();
        let x = vec![42i64; 8];
        let (c, s) = share_tensor(&x, T, &mut rng);
        let (oc1, os1) = relu_on_shares(&c, &s, &mut ch, &mut rng);
        let (oc2, os2) = relu_on_shares(&c, &s, &mut ch, &mut rng);
        assert_ne!(oc1.values(), oc2.values());
        assert_eq!(
            reconstruct_signed(&oc1, &os1),
            reconstruct_signed(&oc2, &os2)
        );
    }

    #[test]
    fn comm_scales_with_batch() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut ch1 = Channel::new();
        let mut ch2 = Channel::new();
        let small = vec![1i64; 10];
        let large = vec![1i64; 1000];
        let (c, s) = share_tensor(&small, T, &mut rng);
        relu_on_shares(&c, &s, &mut ch1, &mut rng);
        let (c, s) = share_tensor(&large, T, &mut rng);
        relu_on_shares(&c, &s, &mut ch2, &mut rng);
        assert!(ch2.total_bytes() > 50 * ch1.total_bytes());
    }
}
#[cfg(test)]
mod avgpool_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const T: u64 = 1_032_193;

    #[test]
    fn avgpool_matches_plaintext() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut ch = Channel::new();
        // 2 channels x 4 elements
        let x: Vec<i64> = vec![4, 8, -4, 0, 100, 200, 300, 400];
        let (c, s) = share_tensor(&x, T, &mut rng);
        let (oc, os) = global_avgpool_on_shares(&c, &s, 2, 4, &mut ch, &mut rng);
        let y = reconstruct_signed(&oc, &os);
        assert_eq!(y, vec![2, 250]);
        assert!(ch.total_bytes() > 0);
    }

    #[test]
    #[should_panic]
    fn avgpool_rejects_bad_shape() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut ch = Channel::new();
        let (c, s) = share_tensor(&[1, 2, 3], T, &mut rng);
        let _ = global_avgpool_on_shares(&c, &s, 2, 2, &mut ch, &mut rng);
    }
}
