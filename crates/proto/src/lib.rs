//! # spot-proto — two-party protocol substrate
//!
//! Additive secret sharing over `Z_t`, a byte-counting in-memory channel
//! with link models, and the OT-based non-linear layers (ReLU, DReLU,
//! max pooling, truncation) of CrypTFlow2's SCI module, evaluated
//! functionally on shares with a faithful cost model.

#![warn(missing_docs)]

pub mod channel;
pub mod cost;
pub mod relu;
pub mod share;

pub use channel::{Channel, LinkModel};
pub use share::{reconstruct, share, Party, ShareVec};
