//! # spot-proto — two-party protocol substrate
//!
//! Additive secret sharing over `Z_t`, a byte-counting in-memory channel
//! with link models, and the OT-based non-linear layers (ReLU, DReLU,
//! max pooling, truncation) of CrypTFlow2's SCI module, evaluated
//! functionally on shares with a faithful cost model.
//!
//! The [`wire`] module defines the typed, versioned message set the
//! client and server exchange; [`transport`] provides in-process
//! ([`MemTransport`]) and TCP ([`TcpTransport`]) implementations that
//! both move serialized frames, so accounting reflects real wire bytes.

#![warn(missing_docs)]

pub mod channel;
pub mod cost;
pub mod error;
pub mod relu;
pub mod share;
pub mod transport;
pub mod wire;

pub use channel::{Channel, LinkModel};
pub use error::ProtoError;
pub use share::{reconstruct, share, Party, ShareVec};
pub use transport::{MemTransport, TcpTransport, Transport, TransportStats};
pub use wire::{error_code, ConvSetup, WireMessage};
