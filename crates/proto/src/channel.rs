//! In-memory two-party channel with byte and round accounting.
//!
//! The paper's client and server talk over a LAN/WLAN link; here both run
//! in-process and every message passes through a [`Channel`] that counts
//! bytes and communication rounds so the pipeline simulator can charge
//! transfer time under a configurable link model.

/// A simple link model: fixed per-message latency plus bandwidth-limited
/// transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// One-way latency in seconds.
    pub latency_s: f64,
    /// Bandwidth in bytes per second.
    pub bandwidth_bps: f64,
}

impl LinkModel {
    /// A gigabit LAN (0.2 ms latency, 125 MB/s).
    pub fn lan() -> Self {
        Self {
            latency_s: 0.0002,
            bandwidth_bps: 125e6,
        }
    }

    /// A WLAN link (2 ms latency, 50 MB/s — 802.11ac-class) — the regime
    /// of the paper's Nexus 6 / IoT clients.
    pub fn wlan() -> Self {
        Self {
            latency_s: 0.002,
            bandwidth_bps: 50e6,
        }
    }

    /// Transfer time for a message of `bytes` bytes.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }
}

/// Accumulated traffic statistics for one direction of a channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Total bytes sent.
    pub bytes: u64,
    /// Number of messages (each message is half a round trip).
    pub messages: u64,
}

/// A bidirectional in-memory channel with per-direction accounting.
///
/// Queued payloads are framed messages: each send is charged the wire
/// frame size ([`FRAME_HEADER_BYTES`] + payload), matching what the
/// real transports put on a socket. Consumed messages are dropped from
/// the inbox (`VecDeque` pop), so a long inference does not accumulate
/// every payload ever sent.
///
/// [`FRAME_HEADER_BYTES`]: crate::wire::FRAME_HEADER_BYTES
#[derive(Debug, Default)]
pub struct Channel {
    client_to_server: TrafficStats,
    server_to_client: TrafficStats,
    inbox_client: std::collections::VecDeque<Vec<u8>>,
    inbox_server: std::collections::VecDeque<Vec<u8>>,
}

impl Channel {
    /// Creates an empty channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Client sends `payload` to the server (charged at framed size).
    pub fn send_to_server(&mut self, payload: Vec<u8>) {
        self.client_to_server.bytes += (crate::wire::FRAME_HEADER_BYTES + payload.len()) as u64;
        self.client_to_server.messages += 1;
        self.inbox_server.push_back(payload);
    }

    /// Server sends `payload` to the client (charged at framed size).
    pub fn send_to_client(&mut self, payload: Vec<u8>) {
        self.server_to_client.bytes += (crate::wire::FRAME_HEADER_BYTES + payload.len()) as u64;
        self.server_to_client.messages += 1;
        self.inbox_client.push_back(payload);
    }

    /// Server receives the oldest pending message, if any.
    pub fn recv_at_server(&mut self) -> Option<Vec<u8>> {
        self.inbox_server.pop_front()
    }

    /// Client receives the oldest pending message, if any.
    pub fn recv_at_client(&mut self) -> Option<Vec<u8>> {
        self.inbox_client.pop_front()
    }

    /// Records abstract traffic without materialising a payload (used by
    /// the OT cost model, which never builds real OT messages).
    pub fn charge(&mut self, client_to_server_bytes: u64, server_to_client_bytes: u64) {
        if client_to_server_bytes > 0 {
            self.client_to_server.bytes += client_to_server_bytes;
            self.client_to_server.messages += 1;
        }
        if server_to_client_bytes > 0 {
            self.server_to_client.bytes += server_to_client_bytes;
            self.server_to_client.messages += 1;
        }
    }

    /// Folds measured transport traffic (already framed byte counts,
    /// e.g. from [`TransportStats`]) into this channel's accounting.
    ///
    /// [`TransportStats`]: crate::transport::TransportStats
    pub fn charge_traffic(
        &mut self,
        client_to_server: &TrafficStats,
        server_to_client: &TrafficStats,
    ) {
        self.client_to_server.bytes += client_to_server.bytes;
        self.client_to_server.messages += client_to_server.messages;
        self.server_to_client.bytes += server_to_client.bytes;
        self.server_to_client.messages += server_to_client.messages;
    }

    /// Upstream (client→server) statistics.
    pub fn upstream(&self) -> TrafficStats {
        self.client_to_server
    }

    /// Downstream (server→client) statistics.
    pub fn downstream(&self) -> TrafficStats {
        self.server_to_client
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.client_to_server.bytes + self.server_to_client.bytes
    }

    /// Estimated wall-clock communication time under a link model
    /// (messages serialized, no pipelining).
    pub fn comm_time(&self, link: &LinkModel) -> f64 {
        let msgs = self.client_to_server.messages + self.server_to_client.messages;
        msgs as f64 * link.latency_s + self.total_bytes() as f64 / link.bandwidth_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_delivery() {
        let mut ch = Channel::new();
        ch.send_to_server(vec![1]);
        ch.send_to_server(vec![2, 3]);
        assert_eq!(ch.recv_at_server(), Some(vec![1]));
        assert_eq!(ch.recv_at_server(), Some(vec![2, 3]));
        assert_eq!(ch.recv_at_server(), None);
    }

    #[test]
    fn accounting_tracks_both_directions() {
        let hdr = crate::wire::FRAME_HEADER_BYTES as u64;
        let mut ch = Channel::new();
        ch.send_to_server(vec![0u8; 100]);
        ch.send_to_client(vec![0u8; 50]);
        ch.charge(10, 20);
        assert_eq!(ch.upstream().bytes, 110 + hdr);
        assert_eq!(ch.downstream().bytes, 70 + hdr);
        assert_eq!(ch.upstream().messages, 2);
        assert_eq!(ch.total_bytes(), 180 + 2 * hdr);
    }

    #[test]
    fn charge_traffic_folds_measured_stats() {
        let mut ch = Channel::new();
        ch.charge_traffic(
            &TrafficStats {
                bytes: 1000,
                messages: 3,
            },
            &TrafficStats {
                bytes: 500,
                messages: 2,
            },
        );
        assert_eq!(ch.upstream().bytes, 1000);
        assert_eq!(ch.downstream().messages, 2);
        assert_eq!(ch.total_bytes(), 1500);
    }

    #[test]
    fn inbox_drains_consumed_messages() {
        let mut ch = Channel::new();
        for i in 0..10u8 {
            ch.send_to_server(vec![i]);
        }
        for i in 0..10u8 {
            assert_eq!(ch.recv_at_server(), Some(vec![i]));
        }
        assert_eq!(ch.recv_at_server(), None);
    }

    #[test]
    fn link_model_times() {
        let lan = LinkModel::lan();
        // 125 MB at 125 MB/s = 1s + latency
        let t = lan.transfer_time(125_000_000);
        assert!((t - 1.0002).abs() < 1e-9);
        assert!(LinkModel::wlan().transfer_time(1000) > lan.transfer_time(1000));
    }

    #[test]
    fn comm_time_counts_messages() {
        let mut ch = Channel::new();
        for _ in 0..10 {
            ch.send_to_server(vec![0u8; 1000]);
        }
        let lan = LinkModel::lan();
        let t = ch.comm_time(&lan);
        let framed = 10.0 * (1000 + crate::wire::FRAME_HEADER_BYTES) as f64;
        assert!((t - (10.0 * lan.latency_s + framed / lan.bandwidth_bps)).abs() < 1e-12);
    }
}
