//! Typed errors for the wire protocol and its transports.
//!
//! Hand-rolled (thiserror-style) so the crate stays dependency-free:
//! each variant carries just enough context to diagnose a malformed
//! frame or a dead connection without panicking.

use std::fmt;

/// Errors produced by wire-message codecs and transports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The peer closed the connection cleanly (EOF between frames).
    Closed,
    /// The peer hung up while messages were still expected.
    Disconnected,
    /// A frame carried an unsupported protocol version byte.
    BadVersion(u8),
    /// A frame carried an unknown message tag.
    BadTag(u8),
    /// A frame or payload was shorter than its declared layout.
    Truncated,
    /// A frame declared a payload length above [`MAX_FRAME`].
    ///
    /// [`MAX_FRAME`]: crate::wire::MAX_FRAME
    TooLarge(usize),
    /// Payload bytes failed structural validation.
    Malformed(String),
    /// An underlying socket error.
    Io(String),
    /// A lock guarding transport state was poisoned by a panic.
    Poisoned,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Closed => write!(f, "connection closed by peer"),
            ProtoError::Disconnected => write!(f, "peer disconnected mid-protocol"),
            ProtoError::BadVersion(v) => write!(f, "unsupported wire protocol version {v}"),
            ProtoError::BadTag(t) => write!(f, "unknown wire message tag {t}"),
            ProtoError::Truncated => write!(f, "truncated frame or payload"),
            ProtoError::TooLarge(n) => write!(f, "frame payload of {n} bytes exceeds limit"),
            ProtoError::Malformed(m) => write!(f, "malformed payload: {m}"),
            ProtoError::Io(m) => write!(f, "transport i/o error: {m}"),
            ProtoError::Poisoned => write!(f, "transport lock poisoned"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ProtoError::Truncated
        } else {
            ProtoError::Io(e.to_string())
        }
    }
}
