//! Typed wire messages with length-prefixed, versioned framing.
//!
//! Every client↔server exchange is one of the [`WireMessage`] variants
//! below, serialized as a frame:
//!
//! ```text
//! [version u8][tag u8][len u32 LE][payload: len bytes]
//! ```
//!
//! HE objects (ciphertexts, keys) travel as opaque byte blobs produced
//! by `spot-he`'s serializers — this crate never interprets them, so the
//! protocol layer stays independent of the HE backend. Decoding never
//! panics: malformed input yields a [`ProtoError`].

use crate::error::ProtoError;
use std::io::Read;

/// Wire protocol version carried in every frame header.
pub const WIRE_VERSION: u8 = 1;

/// Frame header size: version byte, tag byte, length u32.
pub const FRAME_HEADER_BYTES: usize = 6;

/// Upper bound on a frame payload (defensive cap, 256 MiB).
pub const MAX_FRAME: usize = 1 << 28;

/// Scheme/geometry hello sent by the client before a convolution layer.
///
/// Flat integer fields only, so the protocol crate needs no knowledge
/// of `spot-core` types; the receiving session layer re-derives its
/// typed configuration from these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSetup {
    /// Scheme discriminant (0 = channel-wise, 1 = Cheetah, 2 = SPOT).
    pub scheme: u8,
    /// Convolution mode discriminant (scheme-specific; SPOT: 0 =
    /// vanilla patching, 1 = overlap-tweaked).
    pub mode: u8,
    /// HE parameter level discriminant (log2(N) - 11, i.e. 0 = N2048).
    pub level: u8,
    /// Images batched into this layer's ciphertexts (0 and 1 both mean
    /// unbatched — the byte was reserved-zero before batching existed,
    /// so old encoders read as batch 1).
    pub batch: u8,
    /// Input height.
    pub h: u32,
    /// Input width.
    pub w: u32,
    /// Input channels.
    pub c_in: u32,
    /// Output channels.
    pub c_out: u32,
    /// Kernel height.
    pub k_h: u32,
    /// Kernel width.
    pub k_w: u32,
    /// Convolution stride.
    pub stride: u32,
    /// Patch height (SPOT; 0 when unused).
    pub patch_h: u32,
    /// Patch width (SPOT; 0 when unused).
    pub patch_w: u32,
    /// Wire trace id for cross-party trace correlation (0 = none). Like
    /// `batch`, this rides space the base layout never used: a zero
    /// trace id encodes to the original 40-byte payload, a nonzero one
    /// appends 8 bytes, and decoders accept both — so the frame stream
    /// is byte-identical to the legacy format whenever tracing is off.
    pub trace: u64,
}

impl ConvSetup {
    const BASE_BYTES: usize = 4 + 9 * 4;
    const TRACED_BYTES: usize = Self::BASE_BYTES + 8;

    fn encode(&self) -> Vec<u8> {
        let cap = if self.trace == 0 {
            Self::BASE_BYTES
        } else {
            Self::TRACED_BYTES
        };
        let mut out = Vec::with_capacity(cap);
        out.push(self.scheme);
        out.push(self.mode);
        out.push(self.level);
        out.push(self.batch);
        for v in [
            self.h,
            self.w,
            self.c_in,
            self.c_out,
            self.k_h,
            self.k_w,
            self.stride,
            self.patch_h,
            self.patch_w,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        if self.trace != 0 {
            out.extend_from_slice(&self.trace.to_le_bytes());
        }
        out
    }

    fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        if payload.len() != Self::BASE_BYTES && payload.len() != Self::TRACED_BYTES {
            return Err(ProtoError::Truncated);
        }
        let mut words = [0u32; 9];
        for (i, w) in words.iter_mut().enumerate() {
            *w = read_u32(payload, 4 + 4 * i)?;
        }
        let trace = if payload.len() == Self::TRACED_BYTES {
            read_u64(payload, Self::BASE_BYTES)?
        } else {
            0
        };
        Ok(Self {
            scheme: payload[0],
            mode: payload[1],
            level: payload[2],
            batch: payload[3],
            h: words[0],
            w: words[1],
            c_in: words[2],
            c_out: words[3],
            k_h: words[4],
            k_w: words[5],
            stride: words[6],
            patch_h: words[7],
            patch_w: words[8],
            trace,
        })
    }
}

/// One protocol message. Byte blobs are HE objects serialized by
/// `spot-he`; sequence numbers order ciphertexts within a layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMessage {
    /// Layer hello: scheme + geometry the server should prepare for.
    Setup(ConvSetup),
    /// Serialized BFV public key (client → server; optional).
    PublicKey(Vec<u8>),
    /// Serialized Galois rotation keys (client → server).
    GaloisKeys(Vec<u8>),
    /// A packed input ciphertext (client → server).
    PackedCt {
        /// Upload sequence number within the layer.
        seq: u32,
        /// Serialized ciphertext.
        blob: Vec<u8>,
    },
    /// An auxiliary/seam ciphertext belonging to a patch class ≥ 1
    /// (SPOT structure patching; client → server).
    AuxCt {
        /// Patch class index (1-based; class 0 rides in `PackedCt`).
        class: u16,
        /// Upload sequence number within the layer.
        seq: u32,
        /// Serialized ciphertext.
        blob: Vec<u8>,
    },
    /// A masked result ciphertext (server → client): the client's
    /// additive share, still encrypted.
    MaskedResult {
        /// Result sequence number within the layer.
        seq: u32,
        /// Serialized ciphertext.
        blob: Vec<u8>,
    },
    /// One round of an interactive OT-based non-linear protocol
    /// (ReLU / max-pool share exchange).
    OtRound {
        /// Operation discriminant (0 = ReLU, 1 = 2×2 max-pool).
        op: u8,
        /// Round number within the operation.
        round: u16,
        /// Round payload (share values, u32 LE each).
        blob: Vec<u8>,
    },
    /// Reveal a share vector to the peer (layer-boundary
    /// reconstruction; payload is u32 LE share values).
    ShareReveal {
        /// Share values, u32 LE each.
        blob: Vec<u8>,
    },
    /// Marks the end of one network layer's traffic.
    LayerBarrier {
        /// Layer index.
        layer: u32,
    },
    /// Clean end of session.
    Teardown,
    /// Clock-alignment ping (either direction). The client sends a
    /// probe with both stamps zero; the server echoes it back with its
    /// receive and transmit times on its own trace clock, letting the
    /// client compute the NTP-style midpoint offset. Only exchanged
    /// when tracing is on; never part of the cryptographic protocol.
    ClockProbe {
        /// Probe sequence number within the exchange.
        seq: u32,
        /// Echoer's receive time, nanoseconds on its trace clock.
        t_rx_ns: u64,
        /// Echoer's transmit time, nanoseconds on its trace clock.
        t_tx_ns: u64,
    },
    /// Typed server-side rejection (server → client): the session is
    /// over after this frame. Carries one of the [`error_code`]
    /// constants plus a human-readable detail string.
    Error {
        /// Machine-readable reason ([`error_code`] constants).
        code: u16,
        /// Human-readable context (UTF-8; lossily decoded on read).
        detail: String,
    },
}

/// Machine-readable reasons carried by [`WireMessage::Error`].
pub mod error_code {
    /// Admission control: the server is at its concurrent-session cap.
    pub const SERVER_FULL: u16 = 1;
    /// Admission control: the request exceeds the per-session
    /// ciphertext-memory budget (e.g. an over-capacity `Setup` batch).
    pub const OVER_BUDGET: u16 = 2;
    /// The session violated the protocol (malformed or unexpected
    /// frame, bad key material, unsupported geometry).
    pub const PROTOCOL: u16 = 3;
}

impl WireMessage {
    fn tag(&self) -> u8 {
        match self {
            WireMessage::Setup(_) => 0,
            WireMessage::PublicKey(_) => 1,
            WireMessage::GaloisKeys(_) => 2,
            WireMessage::PackedCt { .. } => 3,
            WireMessage::AuxCt { .. } => 4,
            WireMessage::MaskedResult { .. } => 5,
            WireMessage::OtRound { .. } => 6,
            WireMessage::ShareReveal { .. } => 7,
            WireMessage::LayerBarrier { .. } => 8,
            WireMessage::Teardown => 9,
            WireMessage::Error { .. } => 10,
            WireMessage::ClockProbe { .. } => 11,
        }
    }

    /// Compact causal tag for trace flow arrows: identifies *which*
    /// frame this is (message kind, class/op discriminant, sequence
    /// number) from fields already on the wire, so send and receive
    /// spans on opposite parties can be paired without any extra bytes.
    /// `None` for messages with no per-item identity (keys, reveals,
    /// teardown, errors).
    pub fn causal_tag(&self) -> Option<u64> {
        let (kind, mid, seq) = match self {
            WireMessage::PackedCt { seq, .. } => (1u64, 0u64, *seq as u64),
            WireMessage::AuxCt { class, seq, .. } => (2, *class as u64, *seq as u64),
            WireMessage::MaskedResult { seq, .. } => (3, 0, *seq as u64),
            WireMessage::OtRound { op, round, .. } => (4, *op as u64, *round as u64),
            WireMessage::LayerBarrier { layer } => (5, 0, *layer as u64),
            WireMessage::ClockProbe { seq, .. } => (6, 0, *seq as u64),
            _ => return None,
        };
        Some((kind << 56) | (mid << 40) | seq)
    }

    fn payload(&self) -> Vec<u8> {
        match self {
            WireMessage::Setup(s) => s.encode(),
            WireMessage::PublicKey(blob) | WireMessage::GaloisKeys(blob) => blob.clone(),
            WireMessage::PackedCt { seq, blob } => {
                let mut p = Vec::with_capacity(4 + blob.len());
                p.extend_from_slice(&seq.to_le_bytes());
                p.extend_from_slice(blob);
                p
            }
            WireMessage::AuxCt { class, seq, blob } => {
                let mut p = Vec::with_capacity(6 + blob.len());
                p.extend_from_slice(&class.to_le_bytes());
                p.extend_from_slice(&seq.to_le_bytes());
                p.extend_from_slice(blob);
                p
            }
            WireMessage::MaskedResult { seq, blob } => {
                let mut p = Vec::with_capacity(4 + blob.len());
                p.extend_from_slice(&seq.to_le_bytes());
                p.extend_from_slice(blob);
                p
            }
            WireMessage::OtRound { op, round, blob } => {
                let mut p = Vec::with_capacity(3 + blob.len());
                p.push(*op);
                p.extend_from_slice(&round.to_le_bytes());
                p.extend_from_slice(blob);
                p
            }
            WireMessage::ShareReveal { blob } => blob.clone(),
            WireMessage::LayerBarrier { layer } => layer.to_le_bytes().to_vec(),
            WireMessage::Teardown => Vec::new(),
            WireMessage::Error { code, detail } => {
                let mut p = Vec::with_capacity(2 + detail.len());
                p.extend_from_slice(&code.to_le_bytes());
                p.extend_from_slice(detail.as_bytes());
                p
            }
            WireMessage::ClockProbe {
                seq,
                t_rx_ns,
                t_tx_ns,
            } => {
                let mut p = Vec::with_capacity(20);
                p.extend_from_slice(&seq.to_le_bytes());
                p.extend_from_slice(&t_rx_ns.to_le_bytes());
                p.extend_from_slice(&t_tx_ns.to_le_bytes());
                p
            }
        }
    }

    fn from_tag_payload(tag: u8, payload: &[u8]) -> Result<Self, ProtoError> {
        Ok(match tag {
            0 => WireMessage::Setup(ConvSetup::decode(payload)?),
            1 => WireMessage::PublicKey(payload.to_vec()),
            2 => WireMessage::GaloisKeys(payload.to_vec()),
            3 => WireMessage::PackedCt {
                seq: read_u32(payload, 0)?,
                blob: tail(payload, 4)?,
            },
            4 => WireMessage::AuxCt {
                class: read_u16(payload, 0)?,
                seq: read_u32(payload, 2)?,
                blob: tail(payload, 6)?,
            },
            5 => WireMessage::MaskedResult {
                seq: read_u32(payload, 0)?,
                blob: tail(payload, 4)?,
            },
            6 => WireMessage::OtRound {
                op: *payload.first().ok_or(ProtoError::Truncated)?,
                round: read_u16(payload, 1)?,
                blob: tail(payload, 3)?,
            },
            7 => WireMessage::ShareReveal {
                blob: payload.to_vec(),
            },
            8 => WireMessage::LayerBarrier {
                layer: read_u32(payload, 0)?,
            },
            9 => {
                if !payload.is_empty() {
                    return Err(ProtoError::Malformed("teardown carries payload".into()));
                }
                WireMessage::Teardown
            }
            10 => WireMessage::Error {
                code: read_u16(payload, 0)?,
                detail: String::from_utf8_lossy(&tail(payload, 2)?).into_owned(),
            },
            11 => {
                if payload.len() != 20 {
                    return Err(ProtoError::Truncated);
                }
                WireMessage::ClockProbe {
                    seq: read_u32(payload, 0)?,
                    t_rx_ns: read_u64(payload, 4)?,
                    t_tx_ns: read_u64(payload, 12)?,
                }
            }
            t => return Err(ProtoError::BadTag(t)),
        })
    }

    /// Serializes the message as one framed byte vector.
    pub fn encode_frame(&self) -> Vec<u8> {
        let payload = self.payload();
        let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
        out.push(WIRE_VERSION);
        out.push(self.tag());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Serialized frame size (header + payload) without materialising
    /// the frame.
    pub fn frame_len(&self) -> usize {
        FRAME_HEADER_BYTES + self.payload().len()
    }

    /// Decodes one frame from the front of `bytes`, returning the
    /// message and the number of bytes consumed.
    pub fn decode_frame(bytes: &[u8]) -> Result<(Self, usize), ProtoError> {
        if bytes.len() < FRAME_HEADER_BYTES {
            return Err(ProtoError::Truncated);
        }
        if bytes[0] != WIRE_VERSION {
            return Err(ProtoError::BadVersion(bytes[0]));
        }
        let tag = bytes[1];
        let len = read_u32(bytes, 2)? as usize;
        if len > MAX_FRAME {
            return Err(ProtoError::TooLarge(len));
        }
        let end = FRAME_HEADER_BYTES + len;
        if bytes.len() < end {
            return Err(ProtoError::Truncated);
        }
        let msg = Self::from_tag_payload(tag, &bytes[FRAME_HEADER_BYTES..end])?;
        Ok((msg, end))
    }

    /// Reads exactly one frame from a byte stream.
    ///
    /// A clean EOF before the first header byte yields
    /// [`ProtoError::Closed`]; EOF mid-frame yields
    /// [`ProtoError::Truncated`].
    pub fn read_from<R: Read>(reader: &mut R) -> Result<Self, ProtoError> {
        let mut header = [0u8; FRAME_HEADER_BYTES];
        let mut got = 0usize;
        while got < header.len() {
            match reader.read(&mut header[got..]) {
                Ok(0) => {
                    return Err(if got == 0 {
                        ProtoError::Closed
                    } else {
                        ProtoError::Truncated
                    })
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        if header[0] != WIRE_VERSION {
            return Err(ProtoError::BadVersion(header[0]));
        }
        let tag = header[1];
        let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]) as usize;
        if len > MAX_FRAME {
            return Err(ProtoError::TooLarge(len));
        }
        let mut payload = vec![0u8; len];
        reader.read_exact(&mut payload)?;
        Self::from_tag_payload(tag, &payload)
    }
}

/// Packs field elements (each `< 2^32`) as u32 LE for OT-round and
/// share-reveal payloads.
///
/// # Panics
///
/// Panics if a value does not fit in 32 bits (the plaintext modulus is
/// far below that in every parameter level).
pub fn pack_share_values(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for &v in values {
        assert!(v < (1u64 << 32), "share value exceeds u32 range");
        out.extend_from_slice(&(v as u32).to_le_bytes());
    }
    out
}

/// Inverse of [`pack_share_values`].
pub fn unpack_share_values(bytes: &[u8]) -> Result<Vec<u64>, ProtoError> {
    if !bytes.len().is_multiple_of(4) {
        return Err(ProtoError::Truncated);
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]) as u64)
        .collect())
}

fn read_u32(bytes: &[u8], off: usize) -> Result<u32, ProtoError> {
    let s = bytes.get(off..off + 4).ok_or(ProtoError::Truncated)?;
    Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

fn read_u16(bytes: &[u8], off: usize) -> Result<u16, ProtoError> {
    let s = bytes.get(off..off + 2).ok_or(ProtoError::Truncated)?;
    Ok(u16::from_le_bytes([s[0], s[1]]))
}

fn read_u64(bytes: &[u8], off: usize) -> Result<u64, ProtoError> {
    let s = bytes.get(off..off + 8).ok_or(ProtoError::Truncated)?;
    Ok(u64::from_le_bytes([
        s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
    ]))
}

fn tail(bytes: &[u8], off: usize) -> Result<Vec<u8>, ProtoError> {
    Ok(bytes.get(off..).ok_or(ProtoError::Truncated)?.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<WireMessage> {
        vec![
            WireMessage::Setup(ConvSetup {
                scheme: 2,
                mode: 1,
                level: 1,
                batch: 4,
                h: 8,
                w: 8,
                c_in: 2,
                c_out: 4,
                k_h: 3,
                k_w: 3,
                stride: 1,
                patch_h: 4,
                patch_w: 4,
                trace: 0xDEAD_BEEF_0000_0001,
            }),
            WireMessage::PublicKey(vec![1, 2, 3]),
            WireMessage::GaloisKeys(vec![9; 100]),
            WireMessage::PackedCt {
                seq: 7,
                blob: vec![0xAB; 33],
            },
            WireMessage::AuxCt {
                class: 2,
                seq: 11,
                blob: vec![0xCD; 5],
            },
            WireMessage::MaskedResult {
                seq: 3,
                blob: vec![0xEF; 8],
            },
            WireMessage::OtRound {
                op: 1,
                round: 4,
                blob: pack_share_values(&[0, 1, 1_032_192]),
            },
            WireMessage::ShareReveal {
                blob: pack_share_values(&[42, 43]),
            },
            WireMessage::LayerBarrier { layer: 2 },
            WireMessage::Teardown,
            WireMessage::ClockProbe {
                seq: 3,
                t_rx_ns: 1_234_567_890_123,
                t_tx_ns: 1_234_567_890_456,
            },
            WireMessage::Error {
                code: error_code::SERVER_FULL,
                detail: "at capacity (16 sessions)".into(),
            },
        ]
    }

    #[test]
    fn frame_roundtrip_all_variants() {
        for msg in samples() {
            let frame = msg.encode_frame();
            assert_eq!(frame.len(), msg.frame_len());
            let (back, used) = WireMessage::decode_frame(&frame).unwrap();
            assert_eq!(used, frame.len());
            assert_eq!(back, msg);
            // and through the stream reader
            let mut cursor = std::io::Cursor::new(frame);
            assert_eq!(WireMessage::read_from(&mut cursor).unwrap(), msg);
        }
    }

    #[test]
    fn back_to_back_frames_consume_exactly() {
        let mut buf = Vec::new();
        for msg in samples() {
            buf.extend_from_slice(&msg.encode_frame());
        }
        let mut off = 0;
        let mut seen = Vec::new();
        while off < buf.len() {
            let (msg, used) = WireMessage::decode_frame(&buf[off..]).unwrap();
            off += used;
            seen.push(msg);
        }
        assert_eq!(seen, samples());
    }

    #[test]
    fn rejects_bad_version_and_tag() {
        let mut frame = WireMessage::Teardown.encode_frame();
        frame[0] = 99;
        assert_eq!(
            WireMessage::decode_frame(&frame),
            Err(ProtoError::BadVersion(99))
        );
        let mut frame = WireMessage::Teardown.encode_frame();
        frame[1] = 200;
        assert_eq!(
            WireMessage::decode_frame(&frame),
            Err(ProtoError::BadTag(200))
        );
    }

    #[test]
    fn rejects_truncation_and_oversize_without_panicking() {
        let frame = WireMessage::PackedCt {
            seq: 1,
            blob: vec![7; 20],
        }
        .encode_frame();
        for cut in 0..frame.len() {
            assert!(WireMessage::decode_frame(&frame[..cut]).is_err());
        }
        let mut huge = WireMessage::Teardown.encode_frame();
        huge[2..6].copy_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert_eq!(
            WireMessage::decode_frame(&huge),
            Err(ProtoError::TooLarge(MAX_FRAME + 1))
        );
    }

    #[test]
    fn eof_is_closed_only_between_frames() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert_eq!(WireMessage::read_from(&mut empty), Err(ProtoError::Closed));
        let frame = WireMessage::LayerBarrier { layer: 1 }.encode_frame();
        let mut partial = std::io::Cursor::new(frame[..4].to_vec());
        assert_eq!(
            WireMessage::read_from(&mut partial),
            Err(ProtoError::Truncated)
        );
    }

    #[test]
    fn setup_trace_zero_keeps_legacy_layout() {
        let mut setup = match &samples()[0] {
            WireMessage::Setup(s) => *s,
            _ => unreachable!(),
        };
        setup.trace = 0;
        let frame = WireMessage::Setup(setup).encode_frame();
        // Payload is exactly the pre-trace 40-byte layout...
        assert_eq!(frame.len(), FRAME_HEADER_BYTES + ConvSetup::BASE_BYTES);
        // ...and decodes with trace = 0.
        let (back, _) = WireMessage::decode_frame(&frame).unwrap();
        assert_eq!(back, WireMessage::Setup(setup));
        // A nonzero trace id appends exactly 8 bytes; the 40-byte
        // payload prefix is unchanged (only the header length differs).
        setup.trace = 1;
        let traced = WireMessage::Setup(setup).encode_frame();
        assert_eq!(traced.len(), frame.len() + 8);
        assert_eq!(
            traced[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + ConvSetup::BASE_BYTES],
            frame[FRAME_HEADER_BYTES..]
        );
        // Payloads of any other length are rejected.
        let mut bad = traced.clone();
        bad.truncate(bad.len() - 4);
        bad[2..6].copy_from_slice(&((ConvSetup::TRACED_BYTES - 4) as u32).to_le_bytes());
        assert!(WireMessage::decode_frame(&bad).is_err());
    }

    #[test]
    fn causal_tags_are_distinct_and_stable() {
        let tags: Vec<Option<u64>> = samples().iter().map(|m| m.causal_tag()).collect();
        let mut seen = std::collections::HashSet::new();
        for (msg, tag) in samples().iter().zip(&tags) {
            match msg {
                WireMessage::PackedCt { .. }
                | WireMessage::AuxCt { .. }
                | WireMessage::MaskedResult { .. }
                | WireMessage::OtRound { .. }
                | WireMessage::LayerBarrier { .. }
                | WireMessage::ClockProbe { .. } => {
                    let t = tag.expect("tagged kind");
                    assert!(seen.insert(t), "duplicate tag {t:#x} for {msg:?}");
                }
                _ => assert_eq!(*tag, None, "untagged kind {msg:?}"),
            }
        }
        // Same kind, different seq ⇒ different tag; same fields ⇒ same.
        let a = WireMessage::PackedCt {
            seq: 1,
            blob: vec![],
        };
        let b = WireMessage::PackedCt {
            seq: 2,
            blob: vec![],
        };
        assert_ne!(a.causal_tag(), b.causal_tag());
        assert_eq!(a.causal_tag(), a.causal_tag());
    }

    #[test]
    fn share_value_packing_roundtrip() {
        let vals = vec![0u64, 1, 500_000, u32::MAX as u64];
        assert_eq!(
            unpack_share_values(&pack_share_values(&vals)).unwrap(),
            vals
        );
        assert!(unpack_share_values(&[1, 2, 3]).is_err());
    }
}
