//! Additive secret sharing over `Z_t` (Sec. II-C of the paper).
//!
//! A value `m` is split as `⟨m⟩_0 = r` (uniform) and `⟨m⟩_1 = m - r`;
//! reconstruction is addition mod `t`. Linear-layer outputs are shared
//! this way between server and client so the OT-based non-linear layers
//! can operate on shares.

use rand::Rng;

/// Which of the two parties holds a share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Party {
    /// The client (data owner).
    Client,
    /// The server (model owner).
    Server,
}

impl Party {
    /// The opposite party.
    pub fn other(self) -> Party {
        match self {
            Party::Client => Party::Server,
            Party::Server => Party::Client,
        }
    }
}

/// A vector of additive shares over `Z_t`, tagged with its holder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShareVec {
    party: Party,
    modulus: u64,
    values: Vec<u64>,
}

impl ShareVec {
    /// Wraps raw share values.
    ///
    /// # Panics
    ///
    /// Panics if any value is `>= modulus`.
    pub fn new(party: Party, modulus: u64, values: Vec<u64>) -> Self {
        assert!(
            values.iter().all(|&v| v < modulus),
            "share value out of field"
        );
        Self {
            party,
            modulus,
            values,
        }
    }

    /// The holding party.
    pub fn party(&self) -> Party {
        self.party
    }

    /// The field modulus `t`.
    pub fn modulus(&self) -> u64 {
        self.modulus
    }

    /// The share values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Number of shared elements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Element-wise local addition of two share vectors held by the same
    /// party (shares of the element-wise sum).
    ///
    /// # Panics
    ///
    /// Panics on party, modulus, or length mismatch.
    pub fn add(&self, other: &ShareVec) -> ShareVec {
        self.check_peer(other);
        let t = self.modulus;
        ShareVec {
            party: self.party,
            modulus: t,
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(&a, &b)| (a + b) % t)
                .collect(),
        }
    }

    /// Element-wise local subtraction (shares of the difference).
    ///
    /// # Panics
    ///
    /// Panics on party, modulus, or length mismatch.
    pub fn sub(&self, other: &ShareVec) -> ShareVec {
        self.check_peer(other);
        let t = self.modulus;
        ShareVec {
            party: self.party,
            modulus: t,
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(&a, &b)| (a + t - b) % t)
                .collect(),
        }
    }

    /// Adds a public constant vector (only one party applies it, by
    /// convention the server).
    pub fn add_public(&self, constants: &[u64]) -> ShareVec {
        assert_eq!(constants.len(), self.len());
        let t = self.modulus;
        ShareVec {
            party: self.party,
            modulus: t,
            values: self
                .values
                .iter()
                .zip(constants)
                .map(|(&a, &c)| (a + c % t) % t)
                .collect(),
        }
    }

    fn check_peer(&self, other: &ShareVec) {
        assert_eq!(self.party, other.party, "shares held by different parties");
        assert_eq!(self.modulus, other.modulus, "share modulus mismatch");
        assert_eq!(self.len(), other.len(), "share length mismatch");
    }
}

/// Splits a vector of `Z_t` values into a pair of additive shares.
pub fn share<R: Rng>(values: &[u64], modulus: u64, rng: &mut R) -> (ShareVec, ShareVec) {
    let client: Vec<u64> = values.iter().map(|_| rng.gen_range(0..modulus)).collect();
    let server: Vec<u64> = values
        .iter()
        .zip(&client)
        .map(|(&m, &r)| (m + modulus - r) % modulus)
        .collect();
    (
        ShareVec::new(Party::Client, modulus, client),
        ShareVec::new(Party::Server, modulus, server),
    )
}

/// Reconstructs the secret from both shares.
///
/// # Panics
///
/// Panics if the shares belong to the same party or differ in shape.
pub fn reconstruct(a: &ShareVec, b: &ShareVec) -> Vec<u64> {
    assert_ne!(a.party(), b.party(), "need one share from each party");
    assert_eq!(a.modulus(), b.modulus());
    assert_eq!(a.len(), b.len());
    let t = a.modulus();
    a.values()
        .iter()
        .zip(b.values())
        .map(|(&x, &y)| (x + y) % t)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const T: u64 = 1_032_193;

    #[test]
    fn share_reconstruct_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let values: Vec<u64> = (0..100).map(|i| i * 997 % T).collect();
        let (c, s) = share(&values, T, &mut rng);
        assert_eq!(reconstruct(&c, &s), values);
    }

    #[test]
    fn shares_look_uniform() {
        // the client share of a constant vector should not be constant
        let mut rng = StdRng::seed_from_u64(2);
        let values = vec![5u64; 64];
        let (c, _) = share(&values, T, &mut rng);
        assert!(c.values().iter().any(|&v| v != c.values()[0]));
    }

    #[test]
    fn linear_ops_commute_with_reconstruction() {
        let mut rng = StdRng::seed_from_u64(3);
        let a: Vec<u64> = (0..32).map(|i| i * 11 % T).collect();
        let b: Vec<u64> = (0..32).map(|i| i * 13 % T).collect();
        let (ca, sa) = share(&a, T, &mut rng);
        let (cb, sb) = share(&b, T, &mut rng);
        let sum = reconstruct(&ca.add(&cb), &sa.add(&sb));
        for i in 0..32 {
            assert_eq!(sum[i], (a[i] + b[i]) % T);
        }
        let diff = reconstruct(&ca.sub(&cb), &sa.sub(&sb));
        for i in 0..32 {
            assert_eq!(diff[i], (a[i] + T - b[i]) % T);
        }
    }

    #[test]
    fn public_constant_added_once() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = vec![10u64; 8];
        let k = vec![7u64; 8];
        let (ca, sa) = share(&a, T, &mut rng);
        let out = reconstruct(&ca, &sa.add_public(&k));
        assert!(out.iter().all(|&v| v == 17));
    }

    #[test]
    #[should_panic]
    fn reconstruct_same_party_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let (c, _) = share(&[1, 2], T, &mut rng);
        let _ = reconstruct(&c, &c);
    }
}
