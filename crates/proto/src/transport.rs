//! Pluggable message transports: in-process queues and framed TCP.
//!
//! Both implementations move **serialized frames**, so traffic
//! accounting reflects real wire bytes (header + payload) and is
//! bit-identical between [`MemTransport`] and [`TcpTransport`].

use crate::channel::TrafficStats;
use crate::error::ProtoError;
use crate::wire::WireMessage;
use spot_trace::{count, metrics, Counter};
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Traffic and stall accounting for one endpoint of a transport.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransportStats {
    /// Frames sent by this endpoint (framed wire bytes).
    pub sent: TrafficStats,
    /// Frames received by this endpoint (framed wire bytes).
    pub received: TrafficStats,
    /// Time this endpoint spent blocked in `send` on backpressure.
    pub send_blocked: Duration,
}

// Live-registry rollups for wire traffic, one set of handles for the
// whole process (both transports, all sessions). Registered lazily so
// processes that never send a frame expose no wire series.
struct WireMetrics {
    tx_bytes: Arc<metrics::Counter>,
    tx_frames: Arc<metrics::Counter>,
    rx_bytes: Arc<metrics::Counter>,
    rx_frames: Arc<metrics::Counter>,
    send_blocked_ns: Arc<metrics::Counter>,
}

fn wire_metrics() -> &'static WireMetrics {
    static WIRE: OnceLock<WireMetrics> = OnceLock::new();
    WIRE.get_or_init(|| {
        let reg = metrics::global();
        WireMetrics {
            tx_bytes: reg.counter("spot_wire_tx_bytes", &[]),
            tx_frames: reg.counter("spot_wire_tx_frames", &[]),
            rx_bytes: reg.counter("spot_wire_rx_bytes", &[]),
            rx_frames: reg.counter("spot_wire_rx_frames", &[]),
            send_blocked_ns: reg.counter("spot_wire_send_blocked_ns", &[]),
        }
    })
}

// Per-frame trace accounting shared by both transports: typed counters
// (bytes/frames/blocked time per direction) for the process totals,
// mirrored into the live registry when it is enabled.
fn trace_sent(bytes: u64, blocked: Duration) {
    count(Counter::TxBytes, bytes);
    count(Counter::TxFrames, 1);
    count(Counter::TxBlockedNs, blocked.as_nanos() as u64);
    if metrics::enabled() {
        let wire = wire_metrics();
        wire.tx_bytes.inc(bytes);
        wire.tx_frames.inc(1);
        wire.send_blocked_ns.inc(blocked.as_nanos() as u64);
    }
}

fn trace_received(bytes: u64) {
    count(Counter::RxBytes, bytes);
    count(Counter::RxFrames, 1);
    if metrics::enabled() {
        let wire = wire_metrics();
        wire.rx_bytes.inc(bytes);
        wire.rx_frames.inc(1);
    }
}

/// A bidirectional, ordered message pipe between the two parties.
///
/// `send` blocks on backpressure (bounded in-memory queue or a full
/// socket buffer); `recv` blocks until a message arrives and returns
/// [`ProtoError::Closed`] once the peer has shut its sending side and
/// the pipe is drained. Implementations are shareable across threads.
pub trait Transport: Send + Sync {
    /// Sends one message to the peer, blocking on backpressure.
    fn send(&self, msg: &WireMessage) -> Result<(), ProtoError>;
    /// Receives the next message, blocking until one arrives.
    fn recv(&self) -> Result<WireMessage, ProtoError>;
    /// Closes this endpoint's sending direction; the peer's `recv`
    /// drains pending messages and then reports [`ProtoError::Closed`].
    fn close_tx(&self);
    /// Accounting snapshot for this endpoint.
    fn stats(&self) -> TransportStats;
}

// ---------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------

#[derive(Debug)]
struct PipeState {
    frames: VecDeque<Vec<u8>>,
    closed: bool,
}

/// One direction of the in-memory pipe: a bounded FIFO of serialized
/// frames with condvar-based blocking semantics.
#[derive(Debug)]
struct Pipe {
    state: Mutex<PipeState>,
    capacity: usize,
    can_send: Condvar,
    can_recv: Condvar,
}

impl Pipe {
    fn new(capacity: Option<usize>) -> Self {
        Self {
            state: Mutex::new(PipeState {
                frames: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.map_or(usize::MAX, |c| c.max(1)),
            can_send: Condvar::new(),
            can_recv: Condvar::new(),
        }
    }

    fn lock(&self) -> Result<MutexGuard<'_, PipeState>, ProtoError> {
        self.state.lock().map_err(|_| ProtoError::Poisoned)
    }

    fn push(&self, frame: Vec<u8>) -> Result<Duration, ProtoError> {
        let mut st = self.lock()?;
        let mut blocked = Duration::ZERO;
        while st.frames.len() >= self.capacity && !st.closed {
            let t0 = Instant::now();
            st = self.can_send.wait(st).map_err(|_| ProtoError::Poisoned)?;
            blocked += t0.elapsed();
        }
        if st.closed {
            return Err(ProtoError::Disconnected);
        }
        st.frames.push_back(frame);
        self.can_recv.notify_one();
        Ok(blocked)
    }

    fn pop(&self) -> Result<Vec<u8>, ProtoError> {
        let mut st = self.lock()?;
        loop {
            if let Some(frame) = st.frames.pop_front() {
                self.can_send.notify_one();
                return Ok(frame);
            }
            if st.closed {
                return Err(ProtoError::Closed);
            }
            st = self.can_recv.wait(st).map_err(|_| ProtoError::Poisoned)?;
        }
    }

    fn close(&self) {
        if let Ok(mut st) = self.state.lock() {
            st.closed = true;
        }
        self.can_recv.notify_all();
        self.can_send.notify_all();
    }
}

/// In-process [`Transport`]: both parties run in one process and
/// exchange serialized frames through a pair of FIFO pipes, preserving
/// the byte/message accounting a real socket would see.
#[derive(Debug)]
pub struct MemTransport {
    tx: Arc<Pipe>,
    rx: Arc<Pipe>,
    stats: Mutex<TransportStats>,
}

impl MemTransport {
    /// Creates a connected pair `(client, server)` with unbounded
    /// queues in both directions.
    pub fn pair() -> (MemTransport, MemTransport) {
        Self::pair_with_capacity(None, None)
    }

    /// Creates a connected pair `(client, server)` with optional
    /// per-direction frame capacities: `uplink` bounds client→server
    /// (the tiny client's in-flight ciphertext budget), `downlink`
    /// bounds server→client. `None` means unbounded.
    pub fn pair_with_capacity(
        uplink: Option<usize>,
        downlink: Option<usize>,
    ) -> (MemTransport, MemTransport) {
        let up = Arc::new(Pipe::new(uplink));
        let down = Arc::new(Pipe::new(downlink));
        let client = MemTransport {
            tx: Arc::clone(&up),
            rx: Arc::clone(&down),
            stats: Mutex::new(TransportStats::default()),
        };
        let server = MemTransport {
            tx: down,
            rx: up,
            stats: Mutex::new(TransportStats::default()),
        };
        (client, server)
    }
}

impl Transport for MemTransport {
    fn send(&self, msg: &WireMessage) -> Result<(), ProtoError> {
        let frame = msg.encode_frame();
        let bytes = frame.len() as u64;
        let mut span = spot_trace::span(spot_trace::Cat::Net, "send").arg("bytes", bytes);
        if span.id() != 0 {
            if let Some(tag) = msg.causal_tag() {
                span = span.arg("flow", tag);
            }
        }
        let blocked = self.tx.push(frame)?;
        drop(span);
        trace_sent(bytes, blocked);
        let mut st = self.stats.lock().map_err(|_| ProtoError::Poisoned)?;
        st.sent.bytes += bytes;
        st.sent.messages += 1;
        st.send_blocked += blocked;
        Ok(())
    }

    fn recv(&self) -> Result<WireMessage, ProtoError> {
        let mut span = spot_trace::span(spot_trace::Cat::Net, "recv");
        let frame = self.rx.pop()?;
        let (msg, used) = WireMessage::decode_frame(&frame)?;
        if used != frame.len() {
            return Err(ProtoError::Malformed("trailing bytes in frame".into()));
        }
        if span.id() != 0 {
            span = span.arg("bytes", frame.len() as u64);
            if let Some(tag) = msg.causal_tag() {
                span = span.arg("flow", tag);
            }
        }
        drop(span);
        trace_received(frame.len() as u64);
        let mut st = self.stats.lock().map_err(|_| ProtoError::Poisoned)?;
        st.received.bytes += frame.len() as u64;
        st.received.messages += 1;
        Ok(msg)
    }

    fn close_tx(&self) {
        self.tx.close();
    }

    fn stats(&self) -> TransportStats {
        self.stats.lock().map(|s| *s).unwrap_or_default()
    }
}

// ---------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------

/// Framed TCP [`Transport`] for genuine two-process runs over
/// loopback or a LAN.
///
/// Writes flush per message (each frame is one protocol message);
/// reads block on `read_exact`. Backpressure is the socket's own
/// buffer: a blocked `write_all` counts toward `send_blocked`.
#[derive(Debug)]
pub struct TcpTransport {
    reader: Mutex<BufReader<TcpStream>>,
    writer: Mutex<BufWriter<TcpStream>>,
    stream: TcpStream,
    stats: Mutex<TransportStats>,
}

impl TcpTransport {
    /// Wraps an accepted or connected stream.
    pub fn from_stream(stream: TcpStream) -> Result<Self, ProtoError> {
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Self {
            reader: Mutex::new(reader),
            writer: Mutex::new(writer),
            stream,
            stats: Mutex::new(TransportStats::default()),
        })
    }

    /// Connects to a listening peer.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ProtoError> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    /// Bounds how long a `recv` may block on the socket (`None` =
    /// forever, the default). A serving process applies this per
    /// session so a client that connects and then stalls mid-frame
    /// (slow-loris) fails its own session with an I/O error instead of
    /// pinning a worker indefinitely.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ProtoError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }
}

impl Transport for TcpTransport {
    fn send(&self, msg: &WireMessage) -> Result<(), ProtoError> {
        let frame = msg.encode_frame();
        let mut span =
            spot_trace::span(spot_trace::Cat::Net, "send").arg("bytes", frame.len() as u64);
        if span.id() != 0 {
            if let Some(tag) = msg.causal_tag() {
                span = span.arg("flow", tag);
            }
        }
        let t0 = Instant::now();
        {
            let mut w = self.writer.lock().map_err(|_| ProtoError::Poisoned)?;
            w.write_all(&frame)?;
            w.flush()?;
        }
        let elapsed = t0.elapsed();
        drop(span);
        trace_sent(frame.len() as u64, elapsed);
        let mut st = self.stats.lock().map_err(|_| ProtoError::Poisoned)?;
        st.sent.bytes += frame.len() as u64;
        st.sent.messages += 1;
        st.send_blocked += elapsed;
        Ok(())
    }

    fn recv(&self) -> Result<WireMessage, ProtoError> {
        let mut span = spot_trace::span(spot_trace::Cat::Net, "recv");
        let msg = {
            let mut r = self.reader.lock().map_err(|_| ProtoError::Poisoned)?;
            WireMessage::read_from(&mut *r)?
        };
        if span.id() != 0 {
            span = span.arg("bytes", msg.frame_len() as u64);
            if let Some(tag) = msg.causal_tag() {
                span = span.arg("flow", tag);
            }
        }
        drop(span);
        trace_received(msg.frame_len() as u64);
        let mut st = self.stats.lock().map_err(|_| ProtoError::Poisoned)?;
        st.received.bytes += msg.frame_len() as u64;
        st.received.messages += 1;
        Ok(msg)
    }

    fn close_tx(&self) {
        if let Ok(mut w) = self.writer.lock() {
            w.flush().ok();
        }
        self.stream.shutdown(std::net::Shutdown::Write).ok();
    }

    fn stats(&self) -> TransportStats {
        self.stats.lock().map(|s| *s).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ConvSetup;
    use std::net::TcpListener;

    fn sample(seq: u32) -> WireMessage {
        WireMessage::PackedCt {
            seq,
            blob: vec![seq as u8; 64],
        }
    }

    #[test]
    fn mem_pair_roundtrip_and_accounting() {
        let (client, server) = MemTransport::pair();
        let msg = sample(1);
        client.send(&msg).unwrap();
        assert_eq!(server.recv().unwrap(), msg);
        let frame_bytes = msg.frame_len() as u64;
        assert_eq!(client.stats().sent.bytes, frame_bytes);
        assert_eq!(client.stats().sent.messages, 1);
        assert_eq!(server.stats().received.bytes, frame_bytes);
        client.close_tx();
        assert_eq!(server.recv(), Err(ProtoError::Closed));
    }

    #[test]
    fn mem_bounded_uplink_blocks_sender() {
        let (client, server) = MemTransport::pair_with_capacity(Some(1), None);
        client.send(&sample(0)).unwrap();
        let t = std::thread::spawn(move || {
            client.send(&sample(1)).unwrap(); // blocks until server drains
            client.stats().send_blocked
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(server.recv().unwrap(), sample(0));
        let blocked = t.join().unwrap();
        assert!(blocked >= Duration::from_millis(10), "blocked {blocked:?}");
        assert_eq!(server.recv().unwrap(), sample(1));
    }

    #[test]
    fn mem_recv_drains_before_closed() {
        let (client, server) = MemTransport::pair();
        client.send(&sample(0)).unwrap();
        client.send(&sample(1)).unwrap();
        client.close_tx();
        assert_eq!(server.recv().unwrap(), sample(0));
        assert_eq!(server.recv().unwrap(), sample(1));
        assert_eq!(server.recv(), Err(ProtoError::Closed));
        // peer direction still works
        server.send(&sample(9)).unwrap();
    }

    #[test]
    fn tcp_loopback_matches_mem_accounting() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server_thread = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let t = TcpTransport::from_stream(stream).unwrap();
            let mut seen = Vec::new();
            loop {
                match t.recv() {
                    Ok(WireMessage::Teardown) => break,
                    Ok(m) => seen.push(m),
                    Err(e) => panic!("server recv: {e}"),
                }
            }
            t.send(&WireMessage::LayerBarrier { layer: 7 }).unwrap();
            t.close_tx();
            (seen, t.stats())
        });

        let client = TcpTransport::connect(addr).unwrap();
        let msgs = vec![
            WireMessage::Setup(ConvSetup {
                scheme: 0,
                mode: 0,
                level: 1,
                batch: 1,
                h: 4,
                w: 4,
                c_in: 1,
                c_out: 1,
                k_h: 3,
                k_w: 3,
                stride: 1,
                patch_h: 0,
                patch_w: 0,
                trace: 0,
            }),
            sample(0),
            sample(1),
        ];
        for m in &msgs {
            client.send(m).unwrap();
        }
        client.send(&WireMessage::Teardown).unwrap();
        assert_eq!(
            client.recv().unwrap(),
            WireMessage::LayerBarrier { layer: 7 }
        );
        assert_eq!(client.recv(), Err(ProtoError::Closed));
        let (seen, server_stats) = server_thread.join().unwrap();
        assert_eq!(seen, msgs);

        // Byte accounting identical to what MemTransport would report.
        let (mc, ms) = MemTransport::pair();
        for m in &msgs {
            mc.send(m).unwrap();
        }
        mc.send(&WireMessage::Teardown).unwrap();
        for _ in 0..4 {
            ms.recv().unwrap();
        }
        assert_eq!(client.stats().sent, mc.stats().sent);
        assert_eq!(server_stats.received, ms.stats().received);
    }
}
