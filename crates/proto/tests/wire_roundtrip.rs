//! Property tests for the framed wire protocol: every `WireMessage`
//! variant survives encode→decode bit-exactly, truncated frames are
//! rejected (never a panic), and the version byte is enforced.

use proptest::collection::vec;
use proptest::prelude::*;
use spot_proto::{ConvSetup, ProtoError, WireMessage};

fn blob() -> impl Strategy<Value = Vec<u8>> {
    vec(0u8..=255, 0..2000)
}

fn setup_strategy() -> impl Strategy<Value = ConvSetup> {
    (
        (0u8..3, 0u8..2, 0u8..4, 0u8..32),
        (1u32..64, 1u32..64, 1u32..32, 1u32..32),
        (1u32..8, 1u32..8, 1u32..3, 0u32..16, 0u32..16),
        0u64..=u64::MAX,
    )
        .prop_map(
            |(
                (scheme, mode, level, batch),
                (h, w, c_in, c_out),
                (k_h, k_w, stride, patch_h, patch_w),
                trace,
            )| {
                ConvSetup {
                    scheme,
                    mode,
                    level,
                    batch,
                    h,
                    w,
                    c_in,
                    c_out,
                    k_h,
                    k_w,
                    stride,
                    patch_h,
                    patch_w,
                    trace,
                }
            },
        )
}

fn message_strategy() -> impl Strategy<Value = WireMessage> {
    prop_oneof![
        setup_strategy().prop_map(WireMessage::Setup),
        blob().prop_map(WireMessage::PublicKey),
        blob().prop_map(WireMessage::GaloisKeys),
        (0u32..10_000, blob()).prop_map(|(seq, blob)| WireMessage::PackedCt { seq, blob }),
        ((1u16..100, 0u32..10_000), blob()).prop_map(|((class, seq), blob)| WireMessage::AuxCt {
            class,
            seq,
            blob
        }),
        (0u32..10_000, blob()).prop_map(|(seq, blob)| WireMessage::MaskedResult { seq, blob }),
        ((0u8..4, 0u16..16), blob()).prop_map(|((op, round), blob)| WireMessage::OtRound {
            op,
            round,
            blob
        }),
        blob().prop_map(|blob| WireMessage::ShareReveal { blob }),
        (0u32..1000).prop_map(|layer| WireMessage::LayerBarrier { layer }),
        Just(WireMessage::Teardown),
        (0u32..=u32::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX).prop_map(|(seq, t_rx_ns, t_tx_ns)| {
            WireMessage::ClockProbe {
                seq,
                t_rx_ns,
                t_tx_ns,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn frame_roundtrip_is_identity(msg in message_strategy()) {
        let frame = msg.encode_frame();
        prop_assert_eq!(frame.len(), msg.frame_len());
        let (back, used) = WireMessage::decode_frame(&frame)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(used, frame.len());
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn decode_ignores_trailing_bytes(msg in message_strategy(), extra in blob()) {
        let mut frame = msg.encode_frame();
        let want_used = frame.len();
        frame.extend_from_slice(&extra);
        let (back, used) = WireMessage::decode_frame(&frame)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(used, want_used);
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn truncated_frames_rejected(msg in message_strategy(), cut in 1usize..64) {
        let frame = msg.encode_frame();
        let cut = cut.min(frame.len());
        prop_assert!(WireMessage::decode_frame(&frame[..frame.len() - cut]).is_err());
    }

    #[test]
    fn wrong_version_rejected(msg in message_strategy(), version in 0u8..=255) {
        let mut frame = msg.encode_frame();
        prop_assume!(version != frame[0]);
        frame[0] = version;
        prop_assert!(matches!(
            WireMessage::decode_frame(&frame),
            Err(ProtoError::BadVersion(v)) if v == version
        ));
    }

    #[test]
    fn garbage_never_panics(bytes in vec(0u8..=255, 0..512)) {
        // Decoding arbitrary bytes must return, never panic; when it
        // succeeds the reported length must stay in bounds.
        if let Ok((_, used)) = WireMessage::decode_frame(&bytes) {
            prop_assert!(used <= bytes.len());
        }
    }

    #[test]
    fn read_from_matches_decode(msg in message_strategy(), extra in blob()) {
        let mut stream = msg.encode_frame();
        stream.extend_from_slice(&extra);
        let mut cursor = std::io::Cursor::new(stream);
        let back = WireMessage::read_from(&mut cursor)
            .map_err(|e| TestCaseError::fail(format!("read_from failed: {e}")))?;
        prop_assert_eq!(back, msg.clone());
        prop_assert_eq!(cursor.position() as usize, msg.frame_len());
    }
}
