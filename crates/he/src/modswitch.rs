//! Modulus switching: rescaling a ciphertext from `q = q_0…q_k` down to
//! `q' = q_0…q_{k-1}` by dividing (with rounding) by the last prime.
//!
//! Switching before transmission shrinks serialized ciphertexts by one
//! RNS component per switch at the cost of a small additive noise term —
//! this is how SEAL-style systems reach the compact sizes the paper's
//! Table IV reports for `D = 16384`. The operation is exact in RNS:
//!
//! ```text
//! c'_j = (c_j − [c]_{q_k} mod q_j) · q_k^{-1}  (mod q_j)
//! ```
//!
//! with `[c]_{q_k}` centered to keep the rounding error at most 1/2.

use crate::ciphertext::Ciphertext;
use crate::context::Context;
use crate::params::EncryptionParams;
use crate::poly::{Poly, PolyForm};
use std::sync::Arc;

/// A context pair for modulus switching: the source context and the
/// derived context with the last coefficient prime removed.
#[derive(Debug)]
pub struct ModSwitch {
    src: Arc<Context>,
    dst: Arc<Context>,
    /// `q_k^{-1} mod q_j` for each remaining modulus `j`.
    qk_inv: Vec<u64>,
}

impl ModSwitch {
    /// Builds the switcher; the destination context drops the source's
    /// last coefficient modulus.
    ///
    /// # Panics
    ///
    /// Panics if the source has fewer than two coefficient moduli.
    pub fn new(src: &Arc<Context>) -> Self {
        let k = src.moduli_count();
        assert!(k >= 2, "modulus switching needs at least two RNS primes");
        let params = src.params();
        let kept: Vec<u64> = params.coeff_moduli()[..k - 1].to_vec();
        let dst = Context::new(EncryptionParams::with_explicit_moduli(
            params.level(),
            kept,
            params.plain_modulus(),
        ));
        let qk = src.moduli()[k - 1].value();
        let qk_inv = dst
            .moduli()
            .iter()
            .map(|m| m.inv(qk % m.value()).expect("moduli coprime"))
            .collect();
        Self {
            src: Arc::clone(src),
            dst,
            qk_inv,
        }
    }

    /// The destination (smaller-modulus) context.
    pub fn target_context(&self) -> &Arc<Context> {
        &self.dst
    }

    fn switch_poly(&self, p: &Poly) -> Poly {
        let mut p = p.clone();
        p.to_coeff();
        let n = self.src.degree();
        let k = self.src.moduli_count();
        let qk = self.src.moduli()[k - 1];
        let half = qk.value() / 2;
        let mut data = vec![0u64; (k - 1) * n];
        for j in 0..k - 1 {
            let mj = &self.dst.moduli()[j];
            let last = p.residues(k - 1);
            let cur = p.residues(j);
            for i in 0..n {
                // centered representative of c mod q_k
                let r = last[i];
                let (r_mod, negative) = if r > half {
                    (qk.value() - r, true)
                } else {
                    (r, false)
                };
                let r_j = mj.reduce(r_mod);
                let adjusted = if negative {
                    mj.add(cur[i], r_j)
                } else {
                    mj.sub(cur[i], r_j)
                };
                data[j * n + i] = mj.mul(adjusted, self.qk_inv[j]);
            }
        }
        Poly::from_residues(&self.dst, data, PolyForm::Coeff)
    }

    /// Switches a ciphertext down by one modulus. The result lives in
    /// [`ModSwitch::target_context`] and decrypts under a secret key
    /// generated from the same seed/polynomial in that context.
    pub fn switch(&self, ct: &Ciphertext) -> Ciphertext {
        spot_trace::count(spot_trace::Counter::ModSwitch, 1);
        let mut c0 = self.switch_poly(ct.c0());
        let mut c1 = self.switch_poly(ct.c1());
        c0.to_ntt();
        c1.to_ntt();
        Ciphertext::from_parts(c0, c1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::BatchEncoder;
    use crate::encryptor::{Decryptor, Encryptor};
    use crate::keys::KeyGenerator;
    use crate::params::ParamLevel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn switched_ciphertext_still_decrypts() {
        let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
        let mut rng = StdRng::seed_from_u64(9);
        let keygen = KeyGenerator::new(&ctx, &mut rng);
        let encoder = BatchEncoder::new(&ctx);
        let encryptor = Encryptor::new(&ctx, keygen.public_key(&mut rng));

        let values: Vec<u64> = (0..512u64).collect();
        let ct = encryptor.encrypt(&encoder.encode(&values), &mut rng);

        let switcher = ModSwitch::new(&ctx);
        let small = switcher.switch(&ct);

        // decrypt under the same secret polynomial in the small context
        let dst = switcher.target_context();
        let sk_small = keygen.secret_key_for(dst);
        let decryptor = Decryptor::new(dst, sk_small);
        let small_encoder = BatchEncoder::new(dst);
        let out = small_encoder.decode(&decryptor.decrypt(&small));
        assert_eq!(&out[..512], &values[..]);
    }

    #[test]
    fn switching_shrinks_serialization() {
        let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
        let switcher = ModSwitch::new(&ctx);
        let big = ctx.params().ciphertext_bytes();
        let small = switcher.target_context().params().ciphertext_bytes();
        assert!(small < big * 3 / 4, "{small} !< 0.75 * {big}");
    }

    #[test]
    fn switch_preserves_homomorphic_results() {
        // mask-and-send after a multiply: switch the final ciphertext,
        // the client still recovers the right product.
        let ctx = Context::new(EncryptionParams::new(ParamLevel::N8192));
        let mut rng = StdRng::seed_from_u64(10);
        let keygen = KeyGenerator::new(&ctx, &mut rng);
        let encoder = BatchEncoder::new(&ctx);
        let encryptor = Encryptor::new(&ctx, keygen.public_key(&mut rng));
        let evaluator = crate::evaluator::Evaluator::new(&ctx);

        let a: Vec<u64> = (1..=64u64).collect();
        let b: Vec<u64> = (0..64u64).map(|i| 2 * i + 1).collect();
        let ct = encryptor.encrypt(&encoder.encode(&a), &mut rng);
        let prod = evaluator.multiply_plain(&ct, &encoder.encode(&b));

        let switcher = ModSwitch::new(&ctx);
        let small = switcher.switch(&prod);
        let dst = switcher.target_context();
        let decryptor = Decryptor::new(dst, keygen.secret_key_for(dst));
        let out = BatchEncoder::new(dst).decode(&decryptor.decrypt(&small));
        let t = ctx.params().plain_modulus();
        for i in 0..64 {
            assert_eq!(out[i], a[i] * b[i] % t);
        }
    }

    #[test]
    #[should_panic]
    fn single_modulus_cannot_switch() {
        let ctx = Context::new(EncryptionParams::new(ParamLevel::N2048));
        let _ = ModSwitch::new(&ctx);
    }
}
