//! Thread-local residue-buffer pool for the HE hot path.
//!
//! Every [`Poly`](crate::poly::Poly) owns a `moduli_count * degree`
//! `Vec<u64>` — ~100 KB at `N = 4096` and ~1 MB at `N = 16384`. The
//! steady-state encrypt → convolve → decrypt loop used to allocate and
//! free several of these per HE operation (ciphertext clones, rotation
//! outputs, key-switch scratch, sampled randomness). The pool keeps
//! retired buffers on a per-thread free list keyed by length, so a
//! thread's working set of polynomials is allocated once and then
//! recycled: [`Poly`](crate::poly::Poly) returns its buffer here on
//! drop, and every `Poly` construction site takes from here first.
//!
//! The pool is strictly thread-local (no locks, no cross-thread
//! traffic); a buffer encrypted on a client producer thread and dropped
//! on a server worker simply migrates to the worker's pool, which is
//! exactly the steady-state owner in the streaming runtime.
//!
//! Capacity is bounded: at most [`capacity`] buffers are retained per
//! distinct length (excess buffers are freed normally). Tiny-client
//! code paths shrink this bound to their ciphertext budget — see
//! `spot_core::stream`, which asserts the pool never retains more
//! residue buffers than the device's ciphertext memory model allows.

use std::cell::RefCell;
use std::collections::HashMap;

/// Allocation counters for one thread's pool (observable from benches:
/// a steady-state hot loop should show `fresh` flat while `reused`
/// grows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers allocated fresh from the system allocator.
    pub fresh: u64,
    /// Buffers served from the free list.
    pub reused: u64,
    /// Buffers returned to the free list.
    pub recycled: u64,
    /// Buffers dropped because the free list was at capacity.
    pub dropped: u64,
}

impl PoolStats {
    /// Total `take` calls served.
    pub fn takes(&self) -> u64 {
        self.fresh + self.reused
    }
}

struct Pool {
    free: HashMap<usize, Vec<Vec<u64>>>,
    cap_per_len: usize,
    stats: PoolStats,
}

impl Pool {
    const DEFAULT_CAP: usize = 64;

    fn new() -> Self {
        Self {
            free: HashMap::new(),
            cap_per_len: Self::DEFAULT_CAP,
            stats: PoolStats::default(),
        }
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::new());
}

/// Takes a buffer of exactly `len` elements with **unspecified
/// contents** — the caller must overwrite every element (or use
/// [`take_zeroed`]).
pub fn take(len: usize) -> Vec<u64> {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        match p.free.get_mut(&len).and_then(Vec::pop) {
            Some(buf) => {
                p.stats.reused += 1;
                spot_trace::count(spot_trace::Counter::PoolHit, 1);
                buf
            }
            None => {
                p.stats.fresh += 1;
                spot_trace::count(spot_trace::Counter::PoolMiss, 1);
                vec![0u64; len]
            }
        }
    })
}

/// Takes a buffer of `len` zeros.
pub fn take_zeroed(len: usize) -> Vec<u64> {
    let mut buf = take(len);
    buf.fill(0);
    buf
}

/// Returns a buffer to the current thread's free list (dropped if the
/// list already holds [`capacity`] buffers of this length, or if the
/// thread is shutting down).
pub fn recycle(buf: Vec<u64>) {
    if buf.is_empty() {
        return;
    }
    // `try_with`: a Poly dropped during thread-local teardown must not
    // panic; its buffer just frees normally.
    let _ = POOL.try_with(|p| {
        let mut p = p.borrow_mut();
        let cap = p.cap_per_len;
        let list = p.free.entry(buf.len()).or_default();
        if list.len() < cap {
            list.push(buf);
            p.stats.recycled += 1;
            spot_trace::count(spot_trace::Counter::PoolRecycled, 1);
        } else {
            p.stats.dropped += 1;
            spot_trace::count(spot_trace::Counter::PoolDropped, 1);
        }
    });
}

/// Sets the maximum number of buffers retained per distinct length on
/// the current thread, freeing any excess immediately. Tiny-client
/// producers bound this by their ciphertext budget.
pub fn set_capacity(buffers_per_len: usize) {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.cap_per_len = buffers_per_len;
        for list in p.free.values_mut() {
            list.truncate(buffers_per_len);
        }
    });
}

/// The current thread's retention bound (buffers per distinct length).
pub fn capacity() -> usize {
    POOL.with(|p| p.borrow().cap_per_len)
}

/// Number of buffers currently held on the current thread's free lists.
pub fn held() -> usize {
    POOL.with(|p| p.borrow().free.values().map(Vec::len).sum())
}

/// The current thread's allocation counters.
pub fn stats() -> PoolStats {
    POOL.with(|p| p.borrow().stats)
}

/// Resets the current thread's counters (free lists are kept).
pub fn reset_stats() {
    POOL.with(|p| p.borrow_mut().stats = PoolStats::default());
}

/// Frees every retained buffer on the current thread.
pub fn clear() {
    POOL.with(|p| p.borrow_mut().free.clear());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_reuses() {
        clear();
        reset_stats();
        let a = take(1024);
        let ptr = a.as_ptr();
        recycle(a);
        let b = take(1024);
        assert_eq!(b.as_ptr(), ptr, "recycled buffer must be reused");
        let s = stats();
        assert_eq!(s.fresh, 1);
        assert_eq!(s.reused, 1);
        assert_eq!(s.recycled, 1);
        recycle(b);
    }

    #[test]
    fn lengths_are_segregated() {
        clear();
        recycle(take(64));
        let b = take(128);
        assert_eq!(b.len(), 128);
        recycle(b);
        assert_eq!(take(64).len(), 64);
    }

    #[test]
    fn capacity_bounds_retention() {
        clear();
        reset_stats();
        set_capacity(2);
        for _ in 0..4 {
            recycle(vec![0u64; 256]);
        }
        assert_eq!(held(), 2);
        let s = stats();
        assert_eq!(s.recycled, 2);
        assert_eq!(s.dropped, 2);
        set_capacity(Pool::DEFAULT_CAP);
        clear();
    }

    #[test]
    fn take_zeroed_clears_dirty_buffers() {
        clear();
        recycle(vec![7u64; 32]);
        assert!(take_zeroed(32).iter().all(|&v| v == 0));
    }
}
