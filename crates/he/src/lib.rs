//! # spot-he — BFV homomorphic encryption, from scratch
//!
//! A self-contained implementation of the SIMD-batched BFV scheme
//! (Fan–Vercauteren) providing exactly the operations the SPOT paper's
//! convolution protocols need: packed encryption, ciphertext–plaintext
//! multiplication, ciphertext addition, and slot rotations via Galois
//! key switching. It substitutes for Microsoft SEAL in the original work.
//!
//! Parameter levels mirror SEAL's 128-bit-security defaults
//! (`N ∈ {2048, 4096, 8192, 16384}` — the paper's Table IV levels).
//!
//! ## Quick example
//!
//! ```
//! use rand::SeedableRng;
//! use spot_he::prelude::*;
//!
//! let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let keygen = KeyGenerator::new(&ctx, &mut rng);
//! let encoder = BatchEncoder::new(&ctx);
//! let encryptor = Encryptor::new(&ctx, keygen.public_key(&mut rng));
//! let decryptor = Decryptor::new(&ctx, keygen.secret_key().clone());
//! let evaluator = Evaluator::new(&ctx);
//!
//! let ct = encryptor.encrypt(&encoder.encode(&[1, 2, 3, 4]), &mut rng);
//! let doubled = evaluator.multiply_plain(&ct, &encoder.encode(&[2, 2, 2, 2]));
//! let out = encoder.decode(&decryptor.decrypt(&doubled));
//! assert_eq!(&out[..4], &[2, 4, 6, 8]);
//! ```

#![warn(missing_docs)]

pub mod arch;
pub mod bigint;
pub mod ciphertext;
pub mod context;
pub mod encoding;
pub mod encryptor;
pub mod evaluator;
pub mod keys;
pub mod modswitch;
pub mod modulus;
pub mod ntt;
pub mod params;
pub mod poly;
pub mod pool;
pub mod primes;
pub mod serial;

/// Convenient re-exports of the main API types.
pub mod prelude {
    pub use crate::ciphertext::Ciphertext;
    pub use crate::context::Context;
    pub use crate::encoding::{BatchEncoder, Plaintext};
    pub use crate::encryptor::{Decryptor, Encryptor, SymmetricEncryptor};
    pub use crate::evaluator::{Evaluator, HeOp, OpCounts, OpSink};
    pub use crate::keys::{GaloisKeys, KeyGenerator, PublicKey, SecretKey};
    pub use crate::params::{EncryptionParams, ParamLevel};
}
