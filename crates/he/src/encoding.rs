//! SIMD batch encoding (the "packing" in packed HE).
//!
//! With a plaintext modulus `t ≡ 1 (mod 2N)`, the plaintext ring
//! `Z_t[X]/(X^N+1)` splits into `N` slots arranged as a `2 × N/2` matrix.
//! Ring addition/multiplication act element-wise on slots, and Galois
//! automorphisms rotate the two rows cyclically (`x ↦ x^{3^k}`) or swap
//! them (`x ↦ x^{2N−1}`) — exactly the SIMD semantics GAZELLE-style HE
//! convolutions rely on.

use crate::context::Context;
use crate::poly::Poly;
use crate::pool;
use std::sync::Arc;

/// A plaintext polynomial over `Z_t` in coefficient form.
#[derive(Debug, PartialEq, Eq)]
pub struct Plaintext {
    coeffs: Vec<u64>,
}

impl Clone for Plaintext {
    fn clone(&self) -> Self {
        let mut coeffs = pool::take(self.coeffs.len());
        coeffs.copy_from_slice(&self.coeffs);
        Self { coeffs }
    }
}

impl Drop for Plaintext {
    fn drop(&mut self) {
        pool::recycle(std::mem::take(&mut self.coeffs));
    }
}

impl Plaintext {
    /// Creates a plaintext from raw mod-`t` coefficients.
    pub fn from_coeffs(coeffs: Vec<u64>) -> Self {
        Self { coeffs }
    }

    /// The mod-`t` coefficients.
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Whether every coefficient is zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Lifts the plaintext into the RNS ciphertext space with centered
    /// representatives (coefficients above `t/2` become negative) and
    /// converts to NTT form, ready for [`Evaluator::multiply_plain`].
    ///
    /// [`Evaluator::multiply_plain`]: crate::evaluator::Evaluator::multiply_plain
    pub fn lift(&self, ctx: &Arc<Context>) -> Poly {
        let t = ctx.params().plain_modulus();
        let half = t / 2;
        let signed: Vec<i64> = self
            .coeffs
            .iter()
            .map(|&c| {
                if c > half {
                    c as i64 - t as i64
                } else {
                    c as i64
                }
            })
            .collect();
        let mut p = Poly::from_signed_coeffs(ctx, &signed);
        p.to_ntt();
        p
    }

    /// Lifts the plaintext scaled by `Δ = ⌊q/t⌋` (used when adding a
    /// plaintext directly to a ciphertext), in NTT form.
    pub fn lift_scaled(&self, ctx: &Arc<Context>) -> Poly {
        let mut p = self.lift(ctx);
        p.mul_scalar_per_modulus(ctx.delta_mod_qi());
        p
    }
}

/// Encodes/decodes slot vectors to/from plaintext polynomials.
#[derive(Debug, Clone)]
pub struct BatchEncoder {
    ctx: Arc<Context>,
}

impl BatchEncoder {
    /// Creates an encoder bound to a context.
    pub fn new(ctx: &Arc<Context>) -> Self {
        Self {
            ctx: Arc::clone(ctx),
        }
    }

    /// Number of SIMD slots (`N`).
    pub fn slot_count(&self) -> usize {
        self.ctx.degree()
    }

    /// Number of slots per row (`N/2`) — row-cyclic rotations act within
    /// this bound.
    pub fn row_size(&self) -> usize {
        self.ctx.degree() / 2
    }

    /// Encodes up to `N` slot values (`mod t`) into a plaintext; missing
    /// slots are zero.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() > N` or any value `>= t`.
    pub fn encode(&self, values: &[u64]) -> Plaintext {
        let n = self.ctx.degree();
        assert!(values.len() <= n, "too many values for slot count");
        let t = self.ctx.params().plain_modulus();
        let map = self.ctx.slot_index_map();
        let mut m = pool::take_zeroed(n);
        for (i, &v) in values.iter().enumerate() {
            assert!(
                v < t,
                "slot value {v} out of range for plaintext modulus {t}"
            );
            m[map[i]] = v;
        }
        // Values currently sit in NTT-evaluation order; inverse transform
        // over Z_t yields the plaintext polynomial coefficients.
        self.ctx.plain_ntt().inverse(&mut m);
        Plaintext::from_coeffs(m)
    }

    /// Encodes signed values, mapping negatives to `t - |v|`.
    ///
    /// # Panics
    ///
    /// Panics if `|v| >= t/2` for any value.
    pub fn encode_signed(&self, values: &[i64]) -> Plaintext {
        let t = self.ctx.params().plain_modulus();
        let mapped: Vec<u64> = values
            .iter()
            .map(|&v| {
                assert!((v.unsigned_abs()) < t / 2, "signed value {v} out of range");
                if v >= 0 {
                    v as u64
                } else {
                    t - v.unsigned_abs()
                }
            })
            .collect();
        self.encode(&mapped)
    }

    /// Decodes a plaintext back into its `N` slot values.
    pub fn decode(&self, pt: &Plaintext) -> Vec<u64> {
        let n = self.ctx.degree();
        let mut m = pt.coeffs().to_vec();
        assert_eq!(m.len(), n, "plaintext length mismatch");
        self.ctx.plain_ntt().forward(&mut m);
        let map = self.ctx.slot_index_map();
        (0..n).map(|i| m[map[i]]).collect()
    }

    /// Decodes into centered signed values in `(-t/2, t/2]`.
    pub fn decode_signed(&self, pt: &Plaintext) -> Vec<i64> {
        let t = self.ctx.params().plain_modulus();
        self.decode(pt)
            .into_iter()
            .map(|v| {
                if v > t / 2 {
                    v as i64 - t as i64
                } else {
                    v as i64
                }
            })
            .collect()
    }
}

/// Returns the Galois element implementing a row rotation by `steps`
/// (positive = rotate left) for degree `n`.
///
/// # Panics
///
/// Panics if `|steps| >= n/2` or `steps == 0`.
pub fn galois_elt_from_step(steps: i64, n: usize) -> usize {
    let row = (n / 2) as i64;
    assert!(
        steps != 0 && steps.abs() < row,
        "rotation step out of range"
    );
    let s = steps.rem_euclid(row) as u64; // negative k => row - |k|
    let two_n = 2 * n;
    // 3^s mod 2n
    let mut g: usize = 1;
    let mut base: usize = 3;
    let mut e = s;
    while e > 0 {
        if e & 1 == 1 {
            g = (g * base) % two_n;
        }
        base = (base * base) % two_n;
        e >>= 1;
    }
    g
}

/// Returns the Galois element swapping the two slot rows (`x ↦ x^{2N−1}`).
pub fn galois_elt_column_swap(n: usize) -> usize {
    2 * n - 1
}

/// Applies the slot permutation that the Galois element for `steps`
/// induces, on a plain slot vector — the reference semantics rotations are
/// tested against: `out[i] = in[(i + steps) mod row]` within each row.
pub fn rotate_slots_reference(slots: &[u64], steps: i64) -> Vec<u64> {
    let n = slots.len();
    let row = n / 2;
    let mut out = vec![0u64; n];
    for r in 0..2 {
        for i in 0..row {
            let src = ((i as i64 + steps).rem_euclid(row as i64)) as usize;
            out[r * row + i] = slots[r * row + src];
        }
    }
    out
}

/// Reference semantics of the column swap: rows exchanged.
pub fn swap_rows_reference(slots: &[u64]) -> Vec<u64> {
    let row = slots.len() / 2;
    let mut out = slots[row..].to_vec();
    out.extend_from_slice(&slots[..row]);
    out
}

/// Applies a Galois automorphism to a `Plaintext` (over `Z_t`) — used by
/// tests to verify slot-rotation semantics without encryption.
#[allow(clippy::needless_range_loop)]
pub fn apply_galois_plain(ctx: &Arc<Context>, pt: &Plaintext, g: usize) -> Plaintext {
    let n = ctx.degree();
    let two_n = 2 * n;
    let t = ctx.plain_modulus();
    let src = pt.coeffs();
    let mut dst = vec![0u64; n];
    for j in 0..n {
        let idx = (j * g) % two_n;
        let v = src[j];
        if idx < n {
            dst[idx] = t.add(dst[idx], v);
        } else {
            dst[idx - n] = t.sub(dst[idx - n], v);
        }
    }
    Plaintext::from_coeffs(dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{EncryptionParams, ParamLevel};

    fn setup() -> (Arc<Context>, BatchEncoder) {
        let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
        let enc = BatchEncoder::new(&ctx);
        (ctx, enc)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (ctx, enc) = setup();
        let t = ctx.params().plain_modulus();
        let values: Vec<u64> = (0..enc.slot_count() as u64)
            .map(|i| (i * 31 + 7) % t)
            .collect();
        let pt = enc.encode(&values);
        assert_eq!(enc.decode(&pt), values);
    }

    #[test]
    fn signed_roundtrip() {
        let (_, enc) = setup();
        let values: Vec<i64> = (0..100).map(|i| i - 50).collect();
        let pt = enc.encode_signed(&values);
        let decoded = enc.decode_signed(&pt);
        assert_eq!(&decoded[..100], &values[..]);
        assert!(decoded[100..].iter().all(|&v| v == 0));
    }

    #[test]
    fn plaintext_mul_is_slotwise() {
        // Multiplying plaintext polynomials multiplies slots element-wise.
        let (ctx, enc) = setup();
        let n = ctx.degree();
        let a: Vec<u64> = (0..n as u64).map(|i| i % 97).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i * 3 + 1) % 89).collect();
        let pa = enc.encode(&a);
        let pb = enc.encode(&b);
        // multiply polynomials mod t via the plaintext NTT
        let mut fa = pa.coeffs().to_vec();
        let mut fb = pb.coeffs().to_vec();
        ctx.plain_ntt().forward(&mut fa);
        ctx.plain_ntt().forward(&mut fb);
        let tm = ctx.plain_modulus();
        let prod: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| tm.mul(x, y)).collect();
        let mut prod = prod;
        ctx.plain_ntt().inverse(&mut prod);
        let decoded = enc.decode(&Plaintext::from_coeffs(prod));
        let expected: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| tm.mul(x, y)).collect();
        assert_eq!(decoded, expected);
    }

    #[test]
    fn galois_rotates_rows_left() {
        let (ctx, enc) = setup();
        let n = ctx.degree();
        let values: Vec<u64> = (0..n as u64).collect();
        let pt = enc.encode(&values);
        for steps in [1i64, 2, 5, -1, -3] {
            let g = galois_elt_from_step(steps, n);
            let rotated = apply_galois_plain(&ctx, &pt, g);
            let decoded = enc.decode(&rotated);
            assert_eq!(
                decoded,
                rotate_slots_reference(&values, steps),
                "step {steps}"
            );
        }
    }

    #[test]
    fn galois_swaps_columns() {
        let (ctx, enc) = setup();
        let n = ctx.degree();
        let values: Vec<u64> = (0..n as u64).collect();
        let pt = enc.encode(&values);
        let g = galois_elt_column_swap(n);
        let swapped = apply_galois_plain(&ctx, &pt, g);
        assert_eq!(enc.decode(&swapped), swap_rows_reference(&values));
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_value() {
        let (ctx, enc) = setup();
        let t = ctx.params().plain_modulus();
        let _ = enc.encode(&[t]);
    }
}
