//! SIMD batch encoding (the "packing" in packed HE).
//!
//! With a plaintext modulus `t ≡ 1 (mod 2N)`, the plaintext ring
//! `Z_t[X]/(X^N+1)` splits into `N` slots arranged as a `2 × N/2` matrix.
//! Ring addition/multiplication act element-wise on slots, and Galois
//! automorphisms rotate the two rows cyclically (`x ↦ x^{3^k}`) or swap
//! them (`x ↦ x^{2N−1}`) — exactly the SIMD semantics GAZELLE-style HE
//! convolutions rely on.

use crate::context::Context;
use crate::poly::Poly;
use crate::pool;
use std::sync::Arc;

/// A plaintext polynomial over `Z_t` in coefficient form.
#[derive(Debug, PartialEq, Eq)]
pub struct Plaintext {
    coeffs: Vec<u64>,
}

impl Clone for Plaintext {
    fn clone(&self) -> Self {
        let mut coeffs = pool::take(self.coeffs.len());
        coeffs.copy_from_slice(&self.coeffs);
        Self { coeffs }
    }
}

impl Drop for Plaintext {
    fn drop(&mut self) {
        pool::recycle(std::mem::take(&mut self.coeffs));
    }
}

impl Plaintext {
    /// Creates a plaintext from raw mod-`t` coefficients.
    pub fn from_coeffs(coeffs: Vec<u64>) -> Self {
        Self { coeffs }
    }

    /// The mod-`t` coefficients.
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Whether every coefficient is zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Lifts the plaintext into the RNS ciphertext space with centered
    /// representatives (coefficients above `t/2` become negative) and
    /// converts to NTT form, ready for [`Evaluator::multiply_plain`].
    ///
    /// [`Evaluator::multiply_plain`]: crate::evaluator::Evaluator::multiply_plain
    pub fn lift(&self, ctx: &Arc<Context>) -> Poly {
        let t = ctx.params().plain_modulus();
        let half = t / 2;
        let signed: Vec<i64> = self
            .coeffs
            .iter()
            .map(|&c| {
                if c > half {
                    c as i64 - t as i64
                } else {
                    c as i64
                }
            })
            .collect();
        let mut p = Poly::from_signed_coeffs(ctx, &signed);
        p.to_ntt();
        p
    }

    /// Lifts the plaintext scaled by `Δ = ⌊q/t⌋` (used when adding a
    /// plaintext directly to a ciphertext), in NTT form.
    pub fn lift_scaled(&self, ctx: &Arc<Context>) -> Poly {
        let mut p = self.lift(ctx);
        p.mul_scalar_per_modulus(ctx.delta_mod_qi());
        p
    }
}

/// Encodes/decodes slot vectors to/from plaintext polynomials.
#[derive(Debug, Clone)]
pub struct BatchEncoder {
    ctx: Arc<Context>,
}

impl BatchEncoder {
    /// Creates an encoder bound to a context.
    pub fn new(ctx: &Arc<Context>) -> Self {
        Self {
            ctx: Arc::clone(ctx),
        }
    }

    /// Number of SIMD slots (`N`).
    pub fn slot_count(&self) -> usize {
        self.ctx.degree()
    }

    /// Number of slots per row (`N/2`) — row-cyclic rotations act within
    /// this bound.
    pub fn row_size(&self) -> usize {
        self.ctx.degree() / 2
    }

    /// Encodes up to `N` slot values (`mod t`) into a plaintext; missing
    /// slots are zero.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() > N` or any value `>= t`.
    pub fn encode(&self, values: &[u64]) -> Plaintext {
        let n = self.ctx.degree();
        assert!(values.len() <= n, "too many values for slot count");
        let t = self.ctx.params().plain_modulus();
        let map = self.ctx.slot_index_map();
        let mut m = pool::take_zeroed(n);
        for (i, &v) in values.iter().enumerate() {
            assert!(
                v < t,
                "slot value {v} out of range for plaintext modulus {t}"
            );
            m[map[i]] = v;
        }
        // Values currently sit in NTT-evaluation order; inverse transform
        // over Z_t yields the plaintext polynomial coefficients.
        self.ctx.plain_ntt().inverse(&mut m);
        Plaintext::from_coeffs(m)
    }

    /// Encodes signed values, mapping negatives to `t - |v|`.
    ///
    /// # Panics
    ///
    /// Panics if `|v| >= t/2` for any value.
    pub fn encode_signed(&self, values: &[i64]) -> Plaintext {
        let t = self.ctx.params().plain_modulus();
        let mapped: Vec<u64> = values
            .iter()
            .map(|&v| {
                assert!((v.unsigned_abs()) < t / 2, "signed value {v} out of range");
                if v >= 0 {
                    v as u64
                } else {
                    t - v.unsigned_abs()
                }
            })
            .collect();
        self.encode(&mapped)
    }

    /// Decodes a plaintext back into its `N` slot values.
    pub fn decode(&self, pt: &Plaintext) -> Vec<u64> {
        let n = self.ctx.degree();
        let mut m = pt.coeffs().to_vec();
        assert_eq!(m.len(), n, "plaintext length mismatch");
        self.ctx.plain_ntt().forward(&mut m);
        let map = self.ctx.slot_index_map();
        (0..n).map(|i| m[map[i]]).collect()
    }

    /// Decodes into centered signed values in `(-t/2, t/2]`.
    pub fn decode_signed(&self, pt: &Plaintext) -> Vec<i64> {
        let t = self.ctx.params().plain_modulus();
        self.decode(pt)
            .into_iter()
            .map(|v| {
                if v > t / 2 {
                    v as i64 - t as i64
                } else {
                    v as i64
                }
            })
            .collect()
    }
}

/// Cross-image SIMD-slot batching: interleaves several images' packed
/// slot vectors into the free position capacity of one ciphertext.
///
/// The lane packings upstream (see `spot-core`'s `LaneLayout`) shape
/// each lane as `blocks × groups × piece_slots`, and a single image
/// only ever occupies the first few *positions* — a position being one
/// `(lane, group)` piece slot range (`lane_major`, the SPOT
/// whole-piece packing) or one group index across **both** lanes and
/// all channel blocks (`!lane_major`, the channel-wise and SPOT
/// channel-split packings). Because the convolution kernel plaintexts
/// write every group position identically, each position computes a
/// fully independent convolution: spare positions are free capacity.
///
/// `BatchLayout` assigns image `b` the position range
/// `[b·stride, (b+1)·stride)` where `stride` is the number of
/// positions one image occupies, giving `capacity()` images per
/// ciphertext with the server-side HE operation count **unchanged** —
/// rotations and key-switches amortize to `1/B` per image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchLayout {
    /// Slots per lane (`N/2`).
    pub lane_size: usize,
    /// Channel blocks per lane.
    pub blocks: usize,
    /// Piece positions (groups) per block.
    pub groups: usize,
    /// Slots per piece position (power of two).
    pub piece_slots: usize,
    /// Positions one image occupies (its piece count; 1 for
    /// channel-wise packing).
    pub stride: usize,
    /// Position model: `true` = positions enumerate `(lane, group)`
    /// pairs lane-major (`2·groups` positions, SPOT whole-piece
    /// packing); `false` = a position is one group index spanning both
    /// lanes and all blocks (`groups` positions, channel-wise and SPOT
    /// channel-split packing).
    pub lane_major: bool,
}

impl BatchLayout {
    /// Builds a batch layout over a `blocks × groups × piece_slots`
    /// lane structure.
    ///
    /// # Panics
    ///
    /// Panics if the block structure does not exactly fill the lane or
    /// an image does not fit (`stride > positions`).
    pub fn new(
        lane_size: usize,
        blocks: usize,
        groups: usize,
        piece_slots: usize,
        stride: usize,
        lane_major: bool,
    ) -> Self {
        assert_eq!(
            blocks * groups * piece_slots,
            lane_size,
            "block structure must exactly fill the lane"
        );
        let layout = Self {
            lane_size,
            blocks,
            groups,
            piece_slots,
            stride,
            lane_major,
        };
        assert!(
            stride >= 1 && stride <= layout.positions(),
            "image stride {} exceeds {} positions",
            stride,
            layout.positions()
        );
        layout
    }

    /// Total piece positions per ciphertext.
    pub fn positions(&self) -> usize {
        if self.lane_major {
            2 * self.groups
        } else {
            self.groups
        }
    }

    /// Images one ciphertext can carry (`≥ 1`).
    pub fn capacity(&self) -> usize {
        (self.positions() / self.stride).max(1)
    }

    /// Copies one position's slots (all blocks, and both lanes in the
    /// `!lane_major` model) from `src` position `src_pos` to `dst`
    /// position `dst_pos`. Both vectors are full `2·lane_size` slot
    /// rows.
    pub fn copy_position(&self, dst: &mut [u64], src: &[u64], dst_pos: usize, src_pos: usize) {
        debug_assert!(dst_pos < self.positions() && src_pos < self.positions());
        debug_assert!(dst.len() == 2 * self.lane_size && src.len() == 2 * self.lane_size);
        let r = self.lane_size;
        let ps = self.piece_slots;
        let gstride = self.groups * ps;
        if self.lane_major {
            let (ld, gd) = (dst_pos / self.groups, dst_pos % self.groups);
            let (ls, gs) = (src_pos / self.groups, src_pos % self.groups);
            for b in 0..self.blocks {
                let doff = ld * r + b * gstride + gd * ps;
                let soff = ls * r + b * gstride + gs * ps;
                dst[doff..doff + ps].copy_from_slice(&src[soff..soff + ps]);
            }
        } else {
            for lane in 0..2 {
                for b in 0..self.blocks {
                    let doff = lane * r + b * gstride + dst_pos * ps;
                    let soff = lane * r + b * gstride + src_pos * ps;
                    dst[doff..doff + ps].copy_from_slice(&src[soff..soff + ps]);
                }
            }
        }
    }

    /// Packs up to `capacity()` images' single-image slot rows (each as
    /// produced by the B=1 packing, occupying positions `0..stride`)
    /// into one shared slot row: image `b` lands at positions
    /// `b·stride ..`.
    ///
    /// # Panics
    ///
    /// Panics if more than `capacity()` images are given.
    pub fn pack_images(&self, images: &[Vec<u64>]) -> Vec<u64> {
        assert!(
            images.len() <= self.capacity(),
            "{} images exceed batch capacity {}",
            images.len(),
            self.capacity()
        );
        let mut out = vec![0u64; 2 * self.lane_size];
        for (b, img) in images.iter().enumerate() {
            for p in 0..self.stride {
                self.copy_position(&mut out, img, b * self.stride + p, p);
            }
        }
        out
    }

    /// Extracts image `b`'s slots from a shared slot row back into
    /// single-image form (positions `0..stride`; all other slots zero),
    /// the exact inverse of [`Self::pack_images`] for that image.
    pub fn unpack_image(&self, shared: &[u64], b: usize) -> Vec<u64> {
        assert!(b < self.capacity(), "image {b} out of batch range");
        let mut out = vec![0u64; 2 * self.lane_size];
        for p in 0..self.stride {
            self.copy_position(&mut out, shared, p, b * self.stride + p);
        }
        out
    }

    /// Splits per-image share masks into one shared mask row: image
    /// `b`'s full-ring mask `masks[b]` contributes exactly its
    /// positions-`0..stride` slots, scattered to positions
    /// `b·stride ..`. Subtracting the result from a batched ciphertext
    /// therefore masks each image's slots with that image's own
    /// independently drawn randomness — masks stay independent per
    /// client even though the ciphertext is shared. Slots covered by no
    /// image stay zero (they hold no image data by construction).
    pub fn scatter_masks(&self, masks: &[Vec<u64>]) -> Vec<u64> {
        assert!(
            masks.len() <= self.capacity(),
            "{} masks exceed batch capacity {}",
            masks.len(),
            self.capacity()
        );
        let mut out = vec![0u64; 2 * self.lane_size];
        for (b, m) in masks.iter().enumerate() {
            for p in 0..self.stride {
                self.copy_position(&mut out, m, b * self.stride + p, p);
            }
        }
        out
    }
}

/// Returns the Galois element implementing a row rotation by `steps`
/// (positive = rotate left) for degree `n`.
///
/// # Panics
///
/// Panics if `|steps| >= n/2` or `steps == 0`.
pub fn galois_elt_from_step(steps: i64, n: usize) -> usize {
    let row = (n / 2) as i64;
    assert!(
        steps != 0 && steps.abs() < row,
        "rotation step out of range"
    );
    let s = steps.rem_euclid(row) as u64; // negative k => row - |k|
    let two_n = 2 * n;
    // 3^s mod 2n
    let mut g: usize = 1;
    let mut base: usize = 3;
    let mut e = s;
    while e > 0 {
        if e & 1 == 1 {
            g = (g * base) % two_n;
        }
        base = (base * base) % two_n;
        e >>= 1;
    }
    g
}

/// Returns the Galois element swapping the two slot rows (`x ↦ x^{2N−1}`).
pub fn galois_elt_column_swap(n: usize) -> usize {
    2 * n - 1
}

/// Applies the slot permutation that the Galois element for `steps`
/// induces, on a plain slot vector — the reference semantics rotations are
/// tested against: `out[i] = in[(i + steps) mod row]` within each row.
pub fn rotate_slots_reference(slots: &[u64], steps: i64) -> Vec<u64> {
    let n = slots.len();
    let row = n / 2;
    let mut out = vec![0u64; n];
    for r in 0..2 {
        for i in 0..row {
            let src = ((i as i64 + steps).rem_euclid(row as i64)) as usize;
            out[r * row + i] = slots[r * row + src];
        }
    }
    out
}

/// Reference semantics of the column swap: rows exchanged.
pub fn swap_rows_reference(slots: &[u64]) -> Vec<u64> {
    let row = slots.len() / 2;
    let mut out = slots[row..].to_vec();
    out.extend_from_slice(&slots[..row]);
    out
}

/// Applies a Galois automorphism to a `Plaintext` (over `Z_t`) — used by
/// tests to verify slot-rotation semantics without encryption.
#[allow(clippy::needless_range_loop)]
pub fn apply_galois_plain(ctx: &Arc<Context>, pt: &Plaintext, g: usize) -> Plaintext {
    let n = ctx.degree();
    let two_n = 2 * n;
    let t = ctx.plain_modulus();
    let src = pt.coeffs();
    let mut dst = vec![0u64; n];
    for j in 0..n {
        let idx = (j * g) % two_n;
        let v = src[j];
        if idx < n {
            dst[idx] = t.add(dst[idx], v);
        } else {
            dst[idx - n] = t.sub(dst[idx - n], v);
        }
    }
    Plaintext::from_coeffs(dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{EncryptionParams, ParamLevel};

    fn setup() -> (Arc<Context>, BatchEncoder) {
        let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
        let enc = BatchEncoder::new(&ctx);
        (ctx, enc)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (ctx, enc) = setup();
        let t = ctx.params().plain_modulus();
        let values: Vec<u64> = (0..enc.slot_count() as u64)
            .map(|i| (i * 31 + 7) % t)
            .collect();
        let pt = enc.encode(&values);
        assert_eq!(enc.decode(&pt), values);
    }

    #[test]
    fn signed_roundtrip() {
        let (_, enc) = setup();
        let values: Vec<i64> = (0..100).map(|i| i - 50).collect();
        let pt = enc.encode_signed(&values);
        let decoded = enc.decode_signed(&pt);
        assert_eq!(&decoded[..100], &values[..]);
        assert!(decoded[100..].iter().all(|&v| v == 0));
    }

    #[test]
    fn plaintext_mul_is_slotwise() {
        // Multiplying plaintext polynomials multiplies slots element-wise.
        let (ctx, enc) = setup();
        let n = ctx.degree();
        let a: Vec<u64> = (0..n as u64).map(|i| i % 97).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i * 3 + 1) % 89).collect();
        let pa = enc.encode(&a);
        let pb = enc.encode(&b);
        // multiply polynomials mod t via the plaintext NTT
        let mut fa = pa.coeffs().to_vec();
        let mut fb = pb.coeffs().to_vec();
        ctx.plain_ntt().forward(&mut fa);
        ctx.plain_ntt().forward(&mut fb);
        let tm = ctx.plain_modulus();
        let prod: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| tm.mul(x, y)).collect();
        let mut prod = prod;
        ctx.plain_ntt().inverse(&mut prod);
        let decoded = enc.decode(&Plaintext::from_coeffs(prod));
        let expected: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| tm.mul(x, y)).collect();
        assert_eq!(decoded, expected);
    }

    #[test]
    fn galois_rotates_rows_left() {
        let (ctx, enc) = setup();
        let n = ctx.degree();
        let values: Vec<u64> = (0..n as u64).collect();
        let pt = enc.encode(&values);
        for steps in [1i64, 2, 5, -1, -3] {
            let g = galois_elt_from_step(steps, n);
            let rotated = apply_galois_plain(&ctx, &pt, g);
            let decoded = enc.decode(&rotated);
            assert_eq!(
                decoded,
                rotate_slots_reference(&values, steps),
                "step {steps}"
            );
        }
    }

    #[test]
    fn galois_swaps_columns() {
        let (ctx, enc) = setup();
        let n = ctx.degree();
        let values: Vec<u64> = (0..n as u64).collect();
        let pt = enc.encode(&values);
        let g = galois_elt_column_swap(n);
        let swapped = apply_galois_plain(&ctx, &pt, g);
        assert_eq!(enc.decode(&swapped), swap_rows_reference(&values));
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_value() {
        let (ctx, enc) = setup();
        let t = ctx.params().plain_modulus();
        let _ = enc.encode(&[t]);
    }

    fn image_row(bl: &BatchLayout, seed: u64) -> Vec<u64> {
        // A single-image row: nonzero data only in positions 0..stride.
        let mut row = vec![0u64; 2 * bl.lane_size];
        let src: Vec<u64> = (0..2 * bl.lane_size as u64)
            .map(|i| i * 31 + seed)
            .collect();
        for p in 0..bl.stride {
            bl.copy_position(&mut row, &src, p, p);
        }
        row
    }

    #[test]
    fn batch_pack_unpack_roundtrip_both_models() {
        for lane_major in [false, true] {
            let bl = BatchLayout::new(256, 2, 8, 16, 2, lane_major);
            assert_eq!(bl.positions(), if lane_major { 16 } else { 8 });
            assert_eq!(bl.capacity(), bl.positions() / 2);
            let images: Vec<Vec<u64>> = (0..bl.capacity() as u64)
                .map(|b| image_row(&bl, 1000 * (b + 1)))
                .collect();
            let shared = bl.pack_images(&images);
            for (b, img) in images.iter().enumerate() {
                assert_eq!(
                    &bl.unpack_image(&shared, b),
                    img,
                    "lane_major={lane_major} b={b}"
                );
            }
        }
    }

    #[test]
    fn batch_positions_are_disjoint() {
        let bl = BatchLayout::new(256, 4, 4, 16, 1, false);
        // Packing one image must not touch any other image's positions.
        let img = image_row(&bl, 7);
        let shared = bl.pack_images(&[vec![0u64; 512], img.clone()]);
        assert_eq!(bl.unpack_image(&shared, 0), vec![0u64; 512]);
        assert_eq!(bl.unpack_image(&shared, 1), img);
    }

    #[test]
    fn scatter_masks_places_each_images_randomness() {
        let bl = BatchLayout::new(256, 2, 8, 16, 2, true);
        let masks: Vec<Vec<u64>> = (0..3u64)
            .map(|b| (0..512).map(|i| i as u64 * 3 + 100 * b).collect())
            .collect();
        let shared = bl.scatter_masks(&masks);
        for (b, m) in masks.iter().enumerate() {
            // Image b's slots hold exactly mask b's position-0..stride
            // slots, independent of every other image's mask.
            let mut single = vec![0u64; 512];
            for p in 0..bl.stride {
                bl.copy_position(&mut single, m, p, p);
            }
            assert_eq!(bl.unpack_image(&shared, b), single, "mask {b}");
        }
    }

    #[test]
    #[should_panic]
    fn batch_overflow_rejected() {
        let bl = BatchLayout::new(256, 2, 4, 32, 2, false);
        assert_eq!(bl.capacity(), 2);
        let imgs: Vec<Vec<u64>> = (0..3).map(|_| vec![0u64; 512]).collect();
        let _ = bl.pack_images(&imgs);
    }
}
