//! Encryption and decryption.
//!
//! Decryption reconstructs each coefficient of `c0 + c1·s` exactly via CRT
//! big-integer lift and computes `m = ⌈t·c/q⌋ mod t` — slower than RNS
//! floating-point tricks but bit-exact, which the correctness tests of the
//! convolution schemes rely on.

use crate::bigint::BigUint;
use crate::ciphertext::Ciphertext;
use crate::context::Context;
use crate::encoding::Plaintext;
use crate::keys::{sample_error, sample_ternary, sample_uniform, PublicKey, SecretKey};
use crate::poly::Poly;
use crate::pool;
use rand::Rng;
use std::sync::Arc;

/// Encrypts plaintexts under a public key.
#[derive(Debug)]
pub struct Encryptor {
    ctx: Arc<Context>,
    pk: PublicKey,
}

impl Encryptor {
    /// Creates an encryptor.
    pub fn new(ctx: &Arc<Context>, pk: PublicKey) -> Self {
        Self {
            ctx: Arc::clone(ctx),
            pk,
        }
    }

    /// Encrypts a plaintext: `(b·u + e0 + Δ·m, a·u + e1)`.
    pub fn encrypt<R: Rng>(&self, pt: &Plaintext, rng: &mut R) -> Ciphertext {
        spot_trace::count(spot_trace::Counter::Encrypt, 1);
        let ctx = &self.ctx;
        let mut u = sample_ternary(ctx, rng);
        u.to_ntt();
        let mut e0 = sample_error(ctx, rng);
        e0.to_ntt();
        let mut e1 = sample_error(ctx, rng);
        e1.to_ntt();

        let dm = pt.lift_scaled(ctx);

        let mut c0 = self.pk.b.clone();
        c0.mul_assign_ntt(&u);
        c0.add_assign(&e0);
        c0.add_assign(&dm);

        let mut c1 = self.pk.a.clone();
        c1.mul_assign_ntt(&u);
        c1.add_assign(&e1);

        Ciphertext { c0, c1 }
    }

    /// Encrypts the all-zero plaintext (used by the server to produce
    /// masking ciphertexts).
    pub fn encrypt_zero<R: Rng>(&self, rng: &mut R) -> Ciphertext {
        let zero = Plaintext::from_coeffs(pool::take_zeroed(self.ctx.degree()));
        self.encrypt(&zero, rng)
    }
}

/// Encrypts plaintexts under the secret key (smaller client-side state;
/// the ciphertext is the same shape).
#[derive(Debug)]
pub struct SymmetricEncryptor {
    ctx: Arc<Context>,
    sk: SecretKey,
}

impl SymmetricEncryptor {
    /// Creates a symmetric encryptor.
    pub fn new(ctx: &Arc<Context>, sk: SecretKey) -> Self {
        Self {
            ctx: Arc::clone(ctx),
            sk,
        }
    }

    /// Encrypts: sample uniform `a`, output `(-(a·s) + e + Δ·m, a)`.
    pub fn encrypt<R: Rng>(&self, pt: &Plaintext, rng: &mut R) -> Ciphertext {
        spot_trace::count(spot_trace::Counter::Encrypt, 1);
        let ctx = &self.ctx;
        let a = sample_uniform(ctx, rng);
        let mut e = sample_error(ctx, rng);
        e.to_ntt();
        let dm = pt.lift_scaled(ctx);
        let mut c0 = a.clone();
        c0.mul_assign_ntt(&self.sk.s);
        c0.neg_assign();
        c0.add_assign(&e);
        c0.add_assign(&dm);
        Ciphertext { c0, c1: a }
    }
}

/// Decrypts ciphertexts with the secret key and reports noise budgets.
#[derive(Debug)]
pub struct Decryptor {
    ctx: Arc<Context>,
    sk: SecretKey,
}

impl Decryptor {
    /// Creates a decryptor.
    pub fn new(ctx: &Arc<Context>, sk: SecretKey) -> Self {
        Self {
            ctx: Arc::clone(ctx),
            sk,
        }
    }

    /// Computes `c0 + c1·s` in coefficient form.
    fn phase(&self, ct: &Ciphertext) -> Poly {
        let mut acc = ct.c1.clone();
        acc.mul_assign_ntt(&self.sk.s);
        acc.add_assign(&ct.c0);
        acc.to_coeff();
        acc
    }

    /// Decrypts a ciphertext.
    #[allow(clippy::needless_range_loop)]
    pub fn decrypt(&self, ct: &Ciphertext) -> Plaintext {
        spot_trace::count(spot_trace::Counter::Decrypt, 1);
        let ctx = &self.ctx;
        let n = ctx.degree();
        let k = ctx.moduli_count();
        let t = ctx.params().plain_modulus();
        let phase = self.phase(ct);
        let q = ctx.q_big();
        // Every coefficient is written below, so a dirty pooled buffer is
        // fine; the buffer recycles when the Plaintext drops.
        let mut coeffs = pool::take(n);
        let mut residues = vec![0u64; k];
        for j in 0..n {
            for i in 0..k {
                residues[i] = phase.residues(i)[j];
            }
            let (mag, neg) = ctx.crt_lift_centered(&residues);
            // m = round(t * mag / q) with sign
            let num = mag.mul_u64(t).add(ctx.q_half());
            let (m, _) = num.div_rem(q);
            let m = m.rem_u64(t);
            coeffs[j] = if neg && m != 0 { t - m } else { m };
        }
        Plaintext::from_coeffs(coeffs)
    }

    /// The invariant noise budget in bits, SEAL-style: the number of bits
    /// of headroom before noise would corrupt decryption. Returns 0 when
    /// the ciphertext is no longer decryptable.
    #[allow(clippy::needless_range_loop)]
    pub fn noise_budget(&self, ct: &Ciphertext) -> u32 {
        let ctx = &self.ctx;
        let n = ctx.degree();
        let k = ctx.moduli_count();
        let t = ctx.params().plain_modulus();
        let phase = self.phase(ct);
        let q = ctx.q_big();
        // noise = centered(t * phase mod q); budget = log2(q / (2*max|noise|)).
        let mut max_noise = BigUint::zero();
        let mut residues = vec![0u64; k];
        for j in 0..n {
            for i in 0..k {
                residues[i] = phase.residues(i)[j];
            }
            let (mag, _) = ctx.crt_lift_centered(&residues);
            let scaled = mag.mul_u64(t);
            let (_, mut r) = scaled.div_rem(q);
            // center r in (-q/2, q/2]
            if &r > ctx.q_half() {
                r = q.sub(&r);
            }
            if r > max_noise {
                max_noise = r;
            }
        }
        if max_noise.is_zero() {
            return q.bits();
        }
        let noise_bits = max_noise.bits();
        q.bits().saturating_sub(noise_bits + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::BatchEncoder;
    use crate::keys::KeyGenerator;
    use crate::params::{EncryptionParams, ParamLevel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(level: ParamLevel) -> (Arc<Context>, KeyGenerator, StdRng) {
        let ctx = Context::new(EncryptionParams::new(level));
        let mut rng = StdRng::seed_from_u64(42);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        (ctx, kg, rng)
    }

    #[test]
    fn encrypt_decrypt_roundtrip_all_levels() {
        for level in [ParamLevel::N2048, ParamLevel::N4096] {
            let (ctx, kg, mut rng) = setup(level);
            let pk = kg.public_key(&mut rng);
            let encoder = BatchEncoder::new(&ctx);
            let encryptor = Encryptor::new(&ctx, pk);
            let decryptor = Decryptor::new(&ctx, kg.secret_key().clone());
            let t = ctx.params().plain_modulus();
            let values: Vec<u64> = (0..ctx.degree() as u64).map(|i| (i * 997) % t).collect();
            let ct = encryptor.encrypt(&encoder.encode(&values), &mut rng);
            let decoded = encoder.decode(&decryptor.decrypt(&ct));
            assert_eq!(decoded, values, "level {level}");
        }
    }

    #[test]
    fn symmetric_encrypt_decrypt() {
        let (ctx, kg, mut rng) = setup(ParamLevel::N4096);
        let encoder = BatchEncoder::new(&ctx);
        let enc = SymmetricEncryptor::new(&ctx, kg.secret_key().clone());
        let dec = Decryptor::new(&ctx, kg.secret_key().clone());
        let values: Vec<u64> = (0..50u64).map(|i| i * i).collect();
        let ct = enc.encrypt(&encoder.encode(&values), &mut rng);
        let decoded = encoder.decode(&dec.decrypt(&ct));
        assert_eq!(&decoded[..50], &values[..]);
    }

    #[test]
    fn fresh_noise_budget_is_large() {
        let (ctx, kg, mut rng) = setup(ParamLevel::N4096);
        let pk = kg.public_key(&mut rng);
        let encoder = BatchEncoder::new(&ctx);
        let encryptor = Encryptor::new(&ctx, pk);
        let decryptor = Decryptor::new(&ctx, kg.secret_key().clone());
        let ct = encryptor.encrypt(&encoder.encode(&[1, 2, 3]), &mut rng);
        let budget = decryptor.noise_budget(&ct);
        // 109-bit q, 20-bit t: expect roughly 50-80 bits fresh budget.
        assert!(budget > 40, "budget {budget} too small");
        assert!(budget < ctx.q_big().bits());
        let _ = ctx;
    }

    #[test]
    fn wrong_key_fails_to_decrypt() {
        let (ctx, kg, mut rng) = setup(ParamLevel::N4096);
        let pk = kg.public_key(&mut rng);
        let encoder = BatchEncoder::new(&ctx);
        let encryptor = Encryptor::new(&ctx, pk);
        let other = KeyGenerator::new(&ctx, &mut rng);
        let decryptor = Decryptor::new(&ctx, other.secret_key().clone());
        let values = vec![7u64; 10];
        let ct = encryptor.encrypt(&encoder.encode(&values), &mut rng);
        let decoded = encoder.decode(&decryptor.decrypt(&ct));
        assert_ne!(&decoded[..10], &values[..]);
        assert_eq!(decryptor.noise_budget(&ct), 0);
    }
}
