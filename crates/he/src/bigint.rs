//! Minimal unsigned big-integer arithmetic for CRT reconstruction and
//! BFV decryption rounding.
//!
//! The coefficient modulus `q` is a product of at most nine 62-bit primes
//! (≤ 558 bits), so a tiny little-endian `u64`-limb integer with schoolbook
//! operations is ample. Division uses binary long division — decryption is
//! a client-side, non-hot path where exactness matters more than speed.

/// An arbitrary-precision unsigned integer (little-endian 64-bit limbs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        Self { limbs: vec![] }
    }

    /// Constructs from a single 64-bit value.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            Self { limbs: vec![v] }
        }
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Number of significant bits.
    pub fn bits(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => (self.limbs.len() as u32 - 1) * 64 + (64 - hi.leading_zeros()),
        }
    }

    /// Approximate log2 of the value (for noise-budget estimates).
    ///
    /// Returns 0.0 for zero.
    pub fn log2(&self) -> f64 {
        let n = self.limbs.len();
        if n == 0 {
            return 0.0;
        }
        let hi = self.limbs[n - 1] as f64;
        let next = if n >= 2 {
            self.limbs[n - 2] as f64
        } else {
            0.0
        };
        ((n - 1) as f64 - 1.0) * 64.0 + (hi * 2f64.powi(64) + next).log2()
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        let mut out = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u128;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = *self.limbs.get(i).unwrap_or(&0) as u128;
            let b = *other.limbs.get(i).unwrap_or(&0) as u128;
            let s = a + b + carry;
            out.push(s as u64);
            carry = s >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        let mut r = Self { limbs: out };
        r.trim();
        r
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &Self) -> Self {
        assert!(self >= other, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i128;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i128;
            let b = *other.limbs.get(i).unwrap_or(&0) as i128;
            let mut d = a - b - borrow;
            if d < 0 {
                d += 1i128 << 64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u64);
        }
        let mut r = Self { limbs: out };
        r.trim();
        r
    }

    /// `self * small`.
    pub fn mul_u64(&self, small: u64) -> Self {
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let p = l as u128 * small as u128 + carry;
            out.push(p as u64);
            carry = p >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        let mut r = Self { limbs: out };
        r.trim();
        r
    }

    /// Full product `self * other`.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut r = Self { limbs: out };
        r.trim();
        r
    }

    /// Left shift by `sh` bits.
    pub fn shl(&self, sh: u32) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let limb_shift = (sh / 64) as usize;
        let bit_shift = sh % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut r = Self { limbs: out };
        r.trim();
        r
    }

    /// Quotient and remainder `(self / div, self % div)` via binary long
    /// division.
    ///
    /// # Panics
    ///
    /// Panics if `div` is zero.
    pub fn div_rem(&self, div: &Self) -> (Self, Self) {
        assert!(!div.is_zero(), "division by zero");
        if self < div {
            return (Self::zero(), self.clone());
        }
        let shift = self.bits() - div.bits();
        let mut rem = self.clone();
        let mut quo_limbs = vec![0u64; (shift as usize / 64) + 1];
        let mut d = div.shl(shift);
        let mut i = shift as i64;
        while i >= 0 {
            if rem >= d {
                rem = rem.sub(&d);
                quo_limbs[(i as usize) / 64] |= 1u64 << (i as usize % 64);
            }
            d = d.shr1();
            i -= 1;
        }
        let mut q = Self { limbs: quo_limbs };
        q.trim();
        (q, rem)
    }

    fn shr1(&self) -> Self {
        let mut out = vec![0u64; self.limbs.len()];
        let mut carry = 0u64;
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            out[i] = (l >> 1) | (carry << 63);
            carry = l & 1;
        }
        let mut r = Self { limbs: out };
        r.trim();
        r
    }

    /// `self mod small`, for a 62-bit modulus.
    pub fn rem_u64(&self, small: u64) -> u64 {
        let mut rem = 0u128;
        for &l in self.limbs.iter().rev() {
            rem = ((rem << 64) | l as u128) % small as u128;
        }
        rem as u64
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                std::cmp::Ordering::Equal => continue,
                o => return o,
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl std::fmt::Display for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // hex output, simple and sufficient for debugging
        write!(f, "0x")?;
        for (i, l) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                write!(f, "{l:x}")?;
            } else {
                write!(f, "{l:016x}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = BigUint::from_u64(u64::MAX).mul_u64(u64::MAX);
        let b = BigUint::from_u64(12345);
        assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn mul_div_roundtrip() {
        let a = BigUint::from_u64(0xDEAD_BEEF_CAFE_BABE).mul_u64(0x1234_5678_9ABC_DEF0);
        let d = BigUint::from_u64(0xFFFF_FFF1);
        let (q, r) = a.div_rem(&d);
        assert_eq!(q.mul(&d).add(&r), a);
        assert!(r < d);
    }

    #[test]
    fn rem_u64_matches_div_rem() {
        let a = BigUint::from_u64(u64::MAX)
            .mul_u64(987654321)
            .add(&BigUint::from_u64(42));
        let m = 1_000_003u64;
        let (_, r) = a.div_rem(&BigUint::from_u64(m));
        assert_eq!(a.rem_u64(m), r.limbs.first().copied().unwrap_or(0));
    }

    #[test]
    fn shl_is_mul_by_power_of_two() {
        let a = BigUint::from_u64(0xABCD);
        assert_eq!(
            a.shl(64),
            BigUint {
                limbs: vec![0, 0xABCD]
            }
        );
        assert_eq!(a.shl(4), BigUint::from_u64(0xABCD0));
    }

    #[test]
    fn bits_counts() {
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::from_u64(1).bits(), 1);
        assert_eq!(BigUint::from_u64(255).bits(), 8);
        assert_eq!(BigUint::from_u64(1).shl(100).bits(), 101);
    }

    #[test]
    fn ordering() {
        let a = BigUint::from_u64(5).shl(64);
        let b = BigUint::from_u64(u64::MAX);
        assert!(a > b);
        assert!(BigUint::zero() < b);
    }
}
