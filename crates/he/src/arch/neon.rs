//! NEON backend: 2×64-bit lanes (aarch64).
//!
//! NEON has native unsigned 64-bit compare/select but, like AVX2, no
//! 64×64→128 vector multiply; `mul_lo`/`mul_hi` are composed from
//! `vmull_u32` 32×32→64 partial products on the narrowed halves.
//!
//! The kernel bodies live in [`super::vec`]; this module only
//! implements the lane primitives and the `#[target_feature(enable =
//! "neon")]` entry points. Safety obligations are the same as the AVX2
//! backend's: NEON presence is proven by runtime detection before this
//! table can be installed, and `load`/`store` pointer validity comes
//! from the `chunks_exact` iteration in the generic kernels.
//!
//! Note: x86 CI runners never compile this module (`cfg(target_arch =
//! "aarch64")`), so keep the intrinsic surface minimal and mirrored on
//! `avx2.rs` when changing it.

use super::{vec, vec::V64, Kernels};
use crate::modulus::Modulus;
use std::arch::aarch64::*;

/// Two u64 lanes in one NEON register.
#[derive(Copy, Clone)]
struct W(uint64x2_t);

impl V64 for W {
    const LANES: usize = 2;

    #[inline(always)]
    unsafe fn load(ptr: *const u64) -> Self {
        // SAFETY: caller guarantees 2 readable u64s; NEON checked at
        // dispatch time.
        W(unsafe { vld1q_u64(ptr) })
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut u64) {
        // SAFETY: caller guarantees 2 writable u64s; NEON checked at
        // dispatch time.
        unsafe { vst1q_u64(ptr, self.0) }
    }

    #[inline(always)]
    fn splat(x: u64) -> Self {
        // SAFETY: NEON checked at dispatch time.
        W(unsafe { vdupq_n_u64(x) })
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        // SAFETY: NEON checked at dispatch time.
        W(unsafe { vaddq_u64(self.0, o.0) })
    }

    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        // SAFETY: NEON checked at dispatch time.
        W(unsafe { vsubq_u64(self.0, o.0) })
    }

    #[inline(always)]
    fn mul_lo(self, o: Self) -> Self {
        // SAFETY: NEON checked at dispatch time.
        unsafe {
            let a_lo = vmovn_u64(self.0);
            let a_hi = vshrn_n_u64::<32>(self.0);
            let b_lo = vmovn_u64(o.0);
            let b_hi = vshrn_n_u64::<32>(o.0);
            let ll = vmull_u32(a_lo, b_lo);
            // Lane wrap in the cross sum only affects bits >= 64 of the
            // true product; the low 32 bits we shift up are exact.
            let cross = vmlal_u32(vmull_u32(a_lo, b_hi), a_hi, b_lo);
            W(vaddq_u64(ll, vshlq_n_u64::<32>(cross)))
        }
    }

    #[inline(always)]
    fn mul_hi(self, o: Self) -> Self {
        // SAFETY: NEON checked at dispatch time.
        unsafe {
            let a_lo = vmovn_u64(self.0);
            let a_hi = vshrn_n_u64::<32>(self.0);
            let b_lo = vmovn_u64(o.0);
            let b_hi = vshrn_n_u64::<32>(o.0);
            let ll = vmull_u32(a_lo, b_lo);
            let lh = vmull_u32(a_lo, b_hi);
            let hl = vmull_u32(a_hi, b_lo);
            let hh = vmull_u32(a_hi, b_hi);
            let m32 = vdupq_n_u64(0xFFFF_FFFF);
            // mid ≤ 3·(2^32 − 1) — no lane overflow.
            let mid = vaddq_u64(
                vaddq_u64(vshrq_n_u64::<32>(ll), vandq_u64(lh, m32)),
                vandq_u64(hl, m32),
            );
            W(vaddq_u64(
                vaddq_u64(hh, vshrq_n_u64::<32>(lh)),
                vaddq_u64(vshrq_n_u64::<32>(hl), vshrq_n_u64::<32>(mid)),
            ))
        }
    }

    #[inline(always)]
    fn mul_wide(self, o: Self) -> (Self, Self) {
        // SAFETY: NEON checked at dispatch time.
        unsafe {
            // Shares the four 32×32 partial products between both halves.
            let a_lo = vmovn_u64(self.0);
            let a_hi = vshrn_n_u64::<32>(self.0);
            let b_lo = vmovn_u64(o.0);
            let b_hi = vshrn_n_u64::<32>(o.0);
            let ll = vmull_u32(a_lo, b_lo);
            let lh = vmull_u32(a_lo, b_hi);
            let hl = vmull_u32(a_hi, b_lo);
            let hh = vmull_u32(a_hi, b_hi);
            let m32 = vdupq_n_u64(0xFFFF_FFFF);
            let mid = vaddq_u64(
                vaddq_u64(vshrq_n_u64::<32>(ll), vandq_u64(lh, m32)),
                vandq_u64(hl, m32),
            );
            let hi = vaddq_u64(
                vaddq_u64(hh, vshrq_n_u64::<32>(lh)),
                vaddq_u64(vshrq_n_u64::<32>(hl), vshrq_n_u64::<32>(mid)),
            );
            let cross = vaddq_u64(lh, hl);
            let lo = vaddq_u64(ll, vshlq_n_u64::<32>(cross));
            (W(hi), W(lo))
        }
    }

    #[inline(always)]
    fn cond_sub(self, m: Self) -> Self {
        // SAFETY: NEON checked at dispatch time.
        unsafe {
            // t = self - m underflows exactly when self < m (trait
            // contract: m < 2^63, self < m + 2^63), so the sign bit of
            // t selects the lanes that need m added back.
            let t = vsubq_u64(self.0, m.0);
            let under = vreinterpretq_u64_s64(vshrq_n_s64::<63>(vreinterpretq_s64_u64(t)));
            W(vaddq_u64(t, vandq_u64(under, m.0)))
        }
    }

    #[inline(always)]
    fn deinterleave_pairs(self, o: Self) -> (Self, Self) {
        // SAFETY: NEON checked at dispatch time.
        unsafe {
            // [a0 a1], [b0 b1] -> evens [a0 b0], odds [a1 b1].
            (
                W(vcombine_u64(vget_low_u64(self.0), vget_low_u64(o.0))),
                W(vcombine_u64(vget_high_u64(self.0), vget_high_u64(o.0))),
            )
        }
    }

    #[inline(always)]
    fn interleave_pairs(self, o: Self) -> (Self, Self) {
        // SAFETY: NEON checked at dispatch time.
        unsafe {
            // evens [e0 e1], odds [o0 o1] -> [e0 o0], [e1 o1].
            (
                W(vcombine_u64(vget_low_u64(self.0), vget_low_u64(o.0))),
                W(vcombine_u64(vget_high_u64(self.0), vget_high_u64(o.0))),
            )
        }
    }

    #[inline(always)]
    fn add_nonzero_bit(self, o: Self) -> Self {
        // SAFETY: NEON checked at dispatch time.
        unsafe {
            let zero_mask = vceqzq_u64(o.0);
            let bit = vbicq_u64(vdupq_n_u64(1), zero_mask);
            W(vaddq_u64(self.0, bit))
        }
    }

    #[inline(always)]
    fn add_with_carry(self, o: Self) -> (Self, Self) {
        // SAFETY: NEON checked at dispatch time.
        unsafe {
            let sum = vaddq_u64(self.0, o.0);
            // Unsigned overflow iff sum < either addend.
            let carry = vshrq_n_u64::<63>(vcltq_u64(sum, self.0));
            (W(sum), W(carry))
        }
    }
}

macro_rules! neon_kernel {
    ($wrapper:ident, $impl_fn:ident, $generic:ident, ($($arg:ident : $ty:ty),*)) => {
        #[target_feature(enable = "neon")]
        unsafe fn $impl_fn($($arg: $ty),*) {
            vec::$generic::<W>($($arg),*)
        }
        fn $wrapper($($arg: $ty),*) {
            // SAFETY: this kernel table is only installed after
            // `is_aarch64_feature_detected!("neon")` returned true.
            unsafe { $impl_fn($($arg),*) }
        }
    };
}

neon_kernel!(
    ntt_forward,
    ntt_forward_impl,
    ntt_forward_v,
    (m: &Modulus, roots: &[u64], roots_shoup: &[u64], a: &mut [u64])
);
neon_kernel!(
    ntt_inverse,
    ntt_inverse_impl,
    ntt_inverse_v,
    (m: &Modulus, roots: &[u64], roots_shoup: &[u64], inv_degree: u64,
     inv_degree_shoup: u64, a: &mut [u64])
);
neon_kernel!(
    pointwise_mul,
    pointwise_mul_impl,
    pointwise_mul_v,
    (m: &Modulus, dst: &mut [u64], src: &[u64])
);
neon_kernel!(
    pointwise_add_mul,
    pointwise_add_mul_impl,
    pointwise_add_mul_v,
    (m: &Modulus, dst: &mut [u64], a: &[u64], b: &[u64])
);
neon_kernel!(
    pointwise_add,
    pointwise_add_impl,
    pointwise_add_v,
    (m: &Modulus, dst: &mut [u64], src: &[u64])
);
neon_kernel!(
    pointwise_sub,
    pointwise_sub_impl,
    pointwise_sub_v,
    (m: &Modulus, dst: &mut [u64], src: &[u64])
);
neon_kernel!(
    mul_scalar,
    mul_scalar_impl,
    mul_scalar_v,
    (m: &Modulus, dst: &mut [u64], scalar_val: u64, shoup: u64)
);
neon_kernel!(
    reduce,
    reduce_impl,
    reduce_v,
    (m: &Modulus, dst: &mut [u64], src: &[u64])
);

/// The NEON kernel table (install only after runtime detection).
pub static KERNELS: Kernels = Kernels {
    name: "neon",
    ntt_forward,
    ntt_inverse,
    pointwise_mul,
    pointwise_add_mul,
    pointwise_add,
    pointwise_sub,
    mul_scalar,
    reduce,
};
