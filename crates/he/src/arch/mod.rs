//! Runtime-dispatched SIMD kernels for the HE hot loops.
//!
//! The three hottest inner loops of the crate — the forward/inverse NTT
//! butterflies, the pointwise polynomial ops, and the key-switch digit
//! loops — are routed through a single [`Kernels`] table of function
//! pointers selected **once** at startup:
//!
//! * CPU features are detected at runtime (`AVX2` on x86_64, `NEON` on
//!   aarch64); dispatch granularity is **per op**: `auto` installs the
//!   fastest kernel for each table entry, not one uniform backend. On
//!   AVX2 hosts that is the mixed `avx2+scalar` table — the measured
//!   baseline shows scalar Barrett ahead on `pointwise_mul` and the
//!   key-switch digit lift (~0.7× under AVX2), so those entries keep
//!   the scalar kernels while the NTTs and fused digit loops vectorize.
//! * The `SPOT_SIMD` environment variable overrides detection:
//!   `off`/`scalar` force the scalar kernels, `auto` (or unset) picks
//!   the tuned per-op table, and a backend name (`avx2`, `neon`,
//!   `avx2+scalar`) forces that table uniformly — falling back to
//!   scalar with a warning if the CPU does not support it.
//! * Every backend is bit-identical to the scalar path: all kernels
//!   produce canonical `[0, p)` residues at their boundaries, so the
//!   choice of backend can never change any ciphertext, share, or
//!   trace-counter value (verified by `tests/simd_kernels.rs`).
//!
//! The decision is logged once to stderr
//! (`[spot-he] simd dispatch: kernel=… requested=… available=…`) and
//! mirrored as a `spot-trace` instant event so exported traces record
//! which kernel the HE spans ran on.
//!
//! Vector kernels are written once, generically over the minimal
//! [`vec::V64`] lane trait; per-ISA `unsafe` is confined to the ~12
//! primitive lane ops in `avx2.rs` / `neon.rs`. See DESIGN.md §11 for
//! the safety argument and the recipe for adding a new ISA.

use crate::modulus::Modulus;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Once;

pub(crate) mod scalar;
pub(crate) mod vec;

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;
#[cfg(target_arch = "aarch64")]
pub(crate) mod neon;

/// In-place forward negacyclic NTT over one residue row.
/// `(modulus, root_powers, root_powers_shoup, values)`.
pub type NttFn = fn(&Modulus, &[u64], &[u64], &mut [u64]);
/// In-place inverse NTT: `(modulus, inv_root_powers, inv_root_powers_shoup,
/// inv_degree, inv_degree_shoup, values)`.
pub type NttInvFn = fn(&Modulus, &[u64], &[u64], u64, u64, &mut [u64]);
/// Element-wise `dst[i] = dst[i] op src[i] mod p`.
pub type BinFn = fn(&Modulus, &mut [u64], &[u64]);
/// Fused element-wise `dst[i] = (dst[i] + a[i]*b[i]) mod p`.
pub type AddMulFn = fn(&Modulus, &mut [u64], &[u64], &[u64]);
/// Element-wise `dst[i] = dst[i] * scalar mod p` with the scalar's
/// Shoup constant precomputed by the caller.
pub type MulScalarFn = fn(&Modulus, &mut [u64], u64, u64);
/// Element-wise Barrett reduction `dst[i] = src[i] mod p`.
pub type ReduceFn = fn(&Modulus, &mut [u64], &[u64]);

/// A complete set of hot-loop kernels for one backend.
///
/// All kernels take inputs already reduced into the range the scalar
/// reference requires (`[0, p)` for pointwise operands, `[0, 4p)`
/// mid-NTT) and produce canonical `[0, p)` outputs, which is what makes
/// backends interchangeable bit-for-bit.
#[derive(Debug)]
pub struct Kernels {
    /// Stable backend name (`"scalar"`, `"avx2"`, `"neon"`).
    pub name: &'static str,
    /// Forward negacyclic NTT (lazy `[0, 4p)` butterflies, fully
    /// reduced output).
    pub ntt_forward: NttFn,
    /// Inverse negacyclic NTT (lazy `[0, 2p)` butterflies, the
    /// `N^{-1}` scaling pass fully reduces).
    pub ntt_inverse: NttInvFn,
    /// Pointwise modular multiplication.
    pub pointwise_mul: BinFn,
    /// Pointwise fused multiply-accumulate (the key-switch digit loop).
    pub pointwise_add_mul: AddMulFn,
    /// Pointwise modular addition.
    pub pointwise_add: BinFn,
    /// Pointwise modular subtraction.
    pub pointwise_sub: BinFn,
    /// Multiplication by a per-modulus scalar constant.
    pub mul_scalar: MulScalarFn,
    /// Barrett reduction of a residue row into a smaller modulus (the
    /// key-switch digit lift).
    pub reduce: ReduceFn,
}

static ACTIVE: AtomicPtr<Kernels> = AtomicPtr::new(ptr::null_mut());
static INIT: Once = Once::new();

/// The scalar reference kernels (always available).
pub fn scalar_kernels() -> &'static Kernels {
    &scalar::KERNELS
}

/// Every backend the current CPU supports, scalar first.
pub fn available() -> Vec<&'static Kernels> {
    let mut v: Vec<&'static Kernels> = vec![&scalar::KERNELS];
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        v.push(&avx2::KERNELS);
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        v.push(&neon::KERNELS);
    }
    v
}

/// The fastest backend the current CPU supports.
pub fn best_available() -> &'static Kernels {
    available().last().expect("scalar backend always present")
}

/// The table `auto` dispatch installs: the fastest uniform backend with
/// per-op substitutions wherever the measured baseline
/// (`BENCH_heops.json`) shows a different kernel ahead. On x86_64 with
/// AVX2 that is the mixed `avx2+scalar` table (scalar Barrett wins on
/// `pointwise_mul` and the key-switch digit lift); elsewhere no op-level
/// loss has been measured and the uniform best table is returned.
pub fn tuned_best() -> &'static Kernels {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return &avx2::TUNED;
    }
    best_available()
}

fn choose(requested: &str) -> (&'static Kernels, bool) {
    match requested {
        "off" | "scalar" => (&scalar::KERNELS, true),
        "" | "auto" => (tuned_best(), true),
        #[cfg(target_arch = "x86_64")]
        "avx2+scalar" if std::arch::is_x86_feature_detected!("avx2") => (&avx2::TUNED, true),
        name => match available().into_iter().find(|k| k.name == name) {
            Some(k) => (k, true),
            None => (&scalar::KERNELS, false),
        },
    }
}

fn install(kernels: &'static Kernels, requested: &str, honoured: bool) {
    ACTIVE.store(kernels as *const Kernels as *mut Kernels, Ordering::Release);
    let names: Vec<&str> = available().iter().map(|k| k.name).collect();
    eprintln!(
        "[spot-he] simd dispatch: kernel={} requested={} available={}{}",
        kernels.name,
        if requested.is_empty() {
            "auto"
        } else {
            requested
        },
        names.join(","),
        if honoured {
            ""
        } else {
            " (requested backend unsupported; using scalar)"
        }
    );
    // Mirror the decision into exported traces so HE spans/counters can
    // be attributed to the kernel that produced them.
    spot_trace::instant(spot_trace::Cat::He, kernels.dispatch_event_name());
}

impl Kernels {
    fn dispatch_event_name(&self) -> &'static str {
        match self.name {
            "avx2" => "simd_dispatch=avx2",
            "avx2+scalar" => "simd_dispatch=avx2+scalar",
            "neon" => "simd_dispatch=neon",
            _ => "simd_dispatch=scalar",
        }
    }
}

/// The active kernel table, dispatching on first use.
///
/// The first call reads `SPOT_SIMD` and the CPU's feature flags, logs
/// the decision, and caches it; later calls are a single atomic load.
#[inline]
pub fn kernels() -> &'static Kernels {
    let p = ACTIVE.load(Ordering::Acquire);
    if !p.is_null() {
        // SAFETY: ACTIVE only ever holds pointers to the 'static kernel
        // tables installed by `install`.
        return unsafe { &*p };
    }
    INIT.call_once(|| {
        let requested = std::env::var("SPOT_SIMD").unwrap_or_default();
        let (k, honoured) = choose(requested.trim());
        install(k, requested.trim(), honoured);
    });
    let p = ACTIVE.load(Ordering::Acquire);
    // SAFETY: as above; `install` has run (either in this call_once or a
    // concurrent one that completed first).
    unsafe { &*p }
}

/// The name of the currently dispatched backend (dispatches if needed).
pub fn active_name() -> &'static str {
    kernels().name
}

/// Re-points the dispatch at a named backend at runtime.
///
/// Intended for benchmarks and tests that measure both paths in one
/// process; production code should rely on [`kernels`] + `SPOT_SIMD`.
/// Returns an error naming the available backends if `name` is not
/// supported on this CPU.
pub fn force(name: &str) -> Result<&'static Kernels, String> {
    // Run the normal first-use dispatch first so logs stay ordered.
    let _ = kernels();
    let (k, honoured) = choose(name);
    if !honoured {
        return Err(format!(
            "backend {name:?} not available (have: {})",
            available()
                .iter()
                .map(|k| k.name)
                .collect::<Vec<_>>()
                .join(",")
        ));
    }
    install(k, name, true);
    Ok(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_available() {
        let avail = available();
        assert_eq!(avail[0].name, "scalar");
        assert!(!avail.is_empty());
    }

    #[test]
    fn force_scalar_and_back() {
        let k = force("scalar").unwrap();
        assert_eq!(k.name, "scalar");
        assert_eq!(active_name(), "scalar");
        let best = best_available();
        let k = force(best.name).unwrap();
        assert_eq!(k.name, best.name);
        assert!(force("no-such-backend").is_err());
    }

    #[test]
    fn choose_honours_off_and_auto() {
        assert_eq!(choose("off").0.name, "scalar");
        assert_eq!(choose("scalar").0.name, "scalar");
        assert_eq!(choose("auto").0.name, tuned_best().name);
        assert_eq!(choose("").0.name, tuned_best().name);
        let (k, honoured) = choose("riscv-vector");
        assert_eq!(k.name, "scalar");
        assert!(!honoured);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn tuned_table_mixes_backends_per_op() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        let (t, honoured) = choose("avx2+scalar");
        assert!(honoured);
        assert_eq!(t.name, "avx2+scalar");
        assert_eq!(tuned_best().name, "avx2+scalar");
        // The two measured-loss entries fall back to scalar; the NTTs
        // keep the vector kernels.
        assert_eq!(
            t.pointwise_mul as usize,
            scalar::KERNELS.pointwise_mul as usize
        );
        assert_eq!(t.reduce as usize, scalar::KERNELS.reduce as usize);
        assert_ne!(t.ntt_forward as usize, scalar::KERNELS.ntt_forward as usize);
        assert_eq!(t.ntt_forward as usize, avx2::KERNELS.ntt_forward as usize);
    }
}
