//! ISA-generic vector kernels.
//!
//! The hot loops are written **once** here, generically over the
//! minimal [`V64`] lane trait (a handful of 64-bit lane primitives);
//! `avx2.rs` / `neon.rs` only implement those primitives and wrap the
//! generic kernels in `#[target_feature]` entry points. Everything is
//! `#[inline(always)]` so that each instantiation is compiled inside
//! its backend's `#[target_feature]` wrapper and picks up the wider
//! instruction set.
//!
//! ## Arithmetic strategy
//!
//! * **NTT butterflies** use the same lazy Shoup form as the scalar
//!   path (values in `[0, 4p)` forward / `[0, 2p)` inverse); the Shoup
//!   multiply vectorizes as one 64×64 high product and two low
//!   products. Stages whose group half-length is below the lane width
//!   fall back to the scalar butterfly helpers — same math, same
//!   intermediate values.
//! * **Pointwise products** have no precomputed per-element Shoup
//!   constant, so the scalar path's 128-bit Barrett would need four
//!   high products per element. Instead the vector path lifts one
//!   operand into Montgomery form with a single Shoup multiply by
//!   `2^64 mod p` (a per-modulus constant) and reduces the wide product
//!   with one Montgomery REDC. The result is the canonical `[0, p)`
//!   residue, hence bit-identical to scalar Barrett.
//! * **Digit reduction** (`x mod p` for full-range `x`) vectorizes the
//!   scalar Barrett quotient exactly (same `q`, same conditional
//!   subtraction), so even the pre-reduction values match.
//!
//! Bounds used below (all enforced by `Modulus::new`): `p < 2^62`, so
//! `4p < 2^64` and every `u + 2p - v` stays inside u64.

use super::scalar;
use crate::modulus::Modulus;

/// Minimal 64-bit-lane SIMD vector interface.
///
/// Implementations must be lane-wise and wrapping (mod 2^64) where the
/// scalar counterpart wraps. `load`/`store` contracts: the pointer must
/// be valid for `LANES` u64 reads/writes (no alignment requirement).
pub(crate) trait V64: Copy {
    /// Lane count (a power of two).
    const LANES: usize;
    /// Loads `LANES` consecutive u64 values.
    ///
    /// # Safety
    /// `ptr` must be valid for reading `LANES` u64s.
    unsafe fn load(ptr: *const u64) -> Self;
    /// Stores `LANES` consecutive u64 values.
    ///
    /// # Safety
    /// `ptr` must be valid for writing `LANES` u64s.
    unsafe fn store(self, ptr: *mut u64);
    /// Broadcasts one value to every lane.
    fn splat(x: u64) -> Self;
    /// Lane-wise wrapping addition.
    fn add(self, o: Self) -> Self;
    /// Lane-wise wrapping subtraction.
    fn sub(self, o: Self) -> Self;
    /// Lane-wise low 64 bits of the 128-bit product.
    fn mul_lo(self, o: Self) -> Self;
    /// Lane-wise high 64 bits of the 128-bit product.
    fn mul_hi(self, o: Self) -> Self;
    /// Lane-wise full product as `(high, low)`. Backends may override
    /// to share the 32-bit partial products of both halves.
    #[inline(always)]
    fn mul_wide(self, o: Self) -> (Self, Self) {
        (self.mul_hi(o), self.mul_lo(o))
    }
    /// Lane-wise `if self >= m { self - m } else { self }`.
    ///
    /// Contract (narrower than full unsigned compare, which lets
    /// backends use a signed sign-bit test): requires `m < 2^63` and
    /// `self < m + 2^63`. Every call site here satisfies this because
    /// `p < 2^62`, so even the widest intermediate (`[0, 4p)` against
    /// `2p`) fits.
    fn cond_sub(self, m: Self) -> Self;
    /// Lane-wise `self + (o != 0 ? 1 : 0)` (the REDC low-half carry).
    fn add_nonzero_bit(self, o: Self) -> Self;
    /// Lane-wise `(self + o mod 2^64, carry ∈ {0, 1})`.
    fn add_with_carry(self, o: Self) -> (Self, Self);
    /// Splits two registers holding `2*LANES` consecutive values
    /// `(x0, y0, x1, y1, …)` into `(evens, odds)`: `(x0, x1, …)` and
    /// `(y0, y1, …)`. Used by the `t = 1` NTT tail stage.
    fn deinterleave_pairs(self, o: Self) -> (Self, Self);
    /// Inverse of [`V64::deinterleave_pairs`]: merges `(x0, x1, …)` and
    /// `(y0, y1, …)` back into `(x0, y0, x1, y1)` / `(x2, y2, x3, y3)`.
    fn interleave_pairs(self, o: Self) -> (Self, Self);
    /// Splits two registers holding `2*LANES` consecutive values
    /// `(x0, x1, y0, y1, x2, x3, y2, y3)` at 128-bit granularity into
    /// `(x0, x1, x2, x3)` and `(y0, y1, y2, y3)`. Used by the `t = 2`
    /// NTT tail stage, which only runs when `LANES == 4`; 2-lane
    /// backends never call it and keep this default.
    fn deinterleave_quads(self, o: Self) -> (Self, Self) {
        let _ = o;
        unreachable!("quad shuffles are only used by 4-lane backends")
    }
    /// Inverse of [`V64::deinterleave_quads`].
    fn interleave_quads(self, o: Self) -> (Self, Self) {
        let _ = o;
        unreachable!("quad shuffles are only used by 4-lane backends")
    }
}

/// Lazy Shoup multiply: `x * w mod p`, result in `[0, 2p)`; valid for
/// any `x` as long as `w < p` (mirrors `Modulus::mul_shoup_lazy`).
#[inline(always)]
fn mul_shoup_lazy_v<T: V64>(x: T, w: T, ws: T, p: T) -> T {
    let q = x.mul_hi(ws);
    x.mul_lo(w).sub(q.mul_lo(p))
}

/// Montgomery product step shared by the pointwise kernels:
/// `a * b mod p` as the canonical `[0, p)` residue, for `a` arbitrary
/// and `b < p`. Lifts `a` by `2^64 mod p` (Shoup), REDCs the wide
/// product back down, and fully reduces.
#[inline(always)]
fn mont_mul_v<T: V64>(a: T, b: T, p: T, rp: T, rps: T, neg_inv: T) -> T {
    let am = mul_shoup_lazy_v(a, rp, rps, p); // [0, 2p), ≡ a·2^64 (mod p)
    let (hi, lo) = am.mul_wide(b); // am·b < 2p² < p·2^64
    let m = lo.mul_lo(neg_inv);
    // t = (am·b + m·p) / 2^64: the low halves cancel exactly, carrying
    // 1 into the high half iff the low half was non-zero.
    let t = hi.add(m.mul_hi(p)).add_nonzero_bit(lo); // [0, 2p)
    t.cond_sub(p)
}

/// Vectorized `t = 1` stage: butterflies on adjacent element pairs with
/// one distinct twiddle per pair (twiddles are contiguous in the stage
/// slice, so they vector-load directly). `FWD` selects the butterfly
/// direction. Requires `a.len() >= 2 * LANES`.
#[inline(always)]
fn tail_stage_t1<T: V64, const FWD: bool>(
    stage_roots: &[u64],
    stage_shoup: &[u64],
    a: &mut [u64],
    p_v: T,
    two_p_v: T,
) {
    let n = a.len();
    debug_assert_eq!(stage_roots.len(), n / 2);
    let mut g = 0; // group index; group g owns elements (2g, 2g + 1)
    while 2 * g < n {
        // SAFETY: 2g + 2*LANES <= n (n and LANES are powers of two and
        // n >= 2*LANES), and g + LANES <= n/2 = stage slice length.
        unsafe {
            let base = a.as_mut_ptr().add(2 * g);
            let v0 = T::load(base);
            let v1 = T::load(base.add(T::LANES));
            let (x, y) = v0.deinterleave_pairs(v1);
            let w_v = T::load(stage_roots.as_ptr().add(g));
            let ws_v = T::load(stage_shoup.as_ptr().add(g));
            let (rx, ry) = if FWD {
                let u = x.cond_sub(two_p_v); // [0, 2p)
                let v = mul_shoup_lazy_v(y, w_v, ws_v, p_v);
                (u.add(v), u.add(two_p_v).sub(v)) // [0, 4p)
            } else {
                // x, y in [0, 2p).
                (
                    x.add(y).cond_sub(two_p_v),
                    mul_shoup_lazy_v(x.add(two_p_v).sub(y), w_v, ws_v, p_v),
                )
            };
            let (r0, r1) = rx.interleave_pairs(ry);
            r0.store(base);
            r1.store(base.add(T::LANES));
        }
        g += T::LANES;
    }
}

/// Vectorized `t = 2` stage for 4-lane backends: each 8-element block
/// holds two groups `(x0, x1, y0, y1)`, split with 128-bit shuffles;
/// each group's twiddle is duplicated across its two lanes. Requires
/// `LANES == 4` and `a.len() >= 8`.
#[inline(always)]
fn tail_stage_t2<T: V64, const FWD: bool>(
    stage_roots: &[u64],
    stage_shoup: &[u64],
    a: &mut [u64],
    p_v: T,
    two_p_v: T,
) {
    let n = a.len();
    debug_assert_eq!(T::LANES, 4);
    debug_assert_eq!(stage_roots.len(), n / 4);
    let mut g = 0; // group index; group g owns elements (4g .. 4g + 4)
    while 4 * g < n {
        let tw = [
            stage_roots[g],
            stage_roots[g],
            stage_roots[g + 1],
            stage_roots[g + 1],
        ];
        let tws = [
            stage_shoup[g],
            stage_shoup[g],
            stage_shoup[g + 1],
            stage_shoup[g + 1],
        ];
        // SAFETY: 4g + 8 <= n (n >= 8 and both are powers of two), and
        // the tw/tws arrays hold LANES == 4 elements.
        unsafe {
            let base = a.as_mut_ptr().add(4 * g);
            let v0 = T::load(base);
            let v1 = T::load(base.add(T::LANES));
            let (x, y) = v0.deinterleave_quads(v1);
            let w_v = T::load(tw.as_ptr());
            let ws_v = T::load(tws.as_ptr());
            let (rx, ry) = if FWD {
                let u = x.cond_sub(two_p_v);
                let v = mul_shoup_lazy_v(y, w_v, ws_v, p_v);
                (u.add(v), u.add(two_p_v).sub(v))
            } else {
                (
                    x.add(y).cond_sub(two_p_v),
                    mul_shoup_lazy_v(x.add(two_p_v).sub(y), w_v, ws_v, p_v),
                )
            };
            let (r0, r1) = rx.interleave_quads(ry);
            r0.store(base);
            r1.store(base.add(T::LANES));
        }
        g += 2;
    }
}

#[inline(always)]
pub(crate) fn ntt_forward_v<T: V64>(
    m: &Modulus,
    roots: &[u64],
    roots_shoup: &[u64],
    a: &mut [u64],
) {
    let p = m.value();
    let two_p = 2 * p;
    let p_v = T::splat(p);
    let two_p_v = T::splat(two_p);
    let n = a.len();
    debug_assert!(n.is_power_of_two());
    let mut t = n;
    let mut size = 1usize;
    while size < n {
        t >>= 1;
        let stage_roots = &roots[size..2 * size];
        let stage_shoup = &roots_shoup[size..2 * size];
        if t >= T::LANES {
            for i in 0..size {
                let w_v = T::splat(stage_roots[i]);
                let ws_v = T::splat(stage_shoup[i]);
                let (lo, hi) = a[2 * i * t..2 * i * t + 2 * t].split_at_mut(t);
                // t and LANES are powers of two, so the chunks are exact.
                for (xc, yc) in lo
                    .chunks_exact_mut(T::LANES)
                    .zip(hi.chunks_exact_mut(T::LANES))
                {
                    // SAFETY: chunks_exact guarantees both chunks hold
                    // exactly LANES u64s.
                    unsafe {
                        let u = T::load(xc.as_ptr()).cond_sub(two_p_v); // [0, 2p)
                        let v = mul_shoup_lazy_v(T::load(yc.as_ptr()), w_v, ws_v, p_v);
                        u.add(v).store(xc.as_mut_ptr()); // [0, 4p)
                        u.add(two_p_v).sub(v).store(yc.as_mut_ptr()); // (0, 4p)
                    }
                }
            }
        } else if t == 1 && n >= 2 * T::LANES {
            tail_stage_t1::<T, true>(stage_roots, stage_shoup, a, p_v, two_p_v);
        } else if t == 2 && T::LANES == 4 && n >= 2 * T::LANES {
            tail_stage_t2::<T, true>(stage_roots, stage_shoup, a, p_v, two_p_v);
        } else {
            for i in 0..size {
                let w = stage_roots[i];
                let ws = stage_shoup[i];
                let (lo, hi) = a[2 * i * t..2 * i * t + 2 * t].split_at_mut(t);
                for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                    scalar::fwd_butterfly(m, x, y, w, ws, two_p);
                }
            }
        }
        size <<= 1;
    }
    // Single full-reduction pass: [0, 4p) -> [0, p).
    let split = n - n % T::LANES;
    let (main, rest) = a.split_at_mut(split);
    for chunk in main.chunks_exact_mut(T::LANES) {
        // SAFETY: chunks_exact guarantees LANES u64s.
        unsafe {
            T::load(chunk.as_ptr())
                .cond_sub(two_p_v)
                .cond_sub(p_v)
                .store(chunk.as_mut_ptr());
        }
    }
    for x in rest.iter_mut() {
        *x = scalar::reduce_4p(p, two_p, *x);
    }
}

/// One vector-width inverse butterfly at `xp`/`yp`.
///
/// # Safety
/// Both pointers must be valid for `T::LANES` u64 reads and writes.
#[inline(always)]
unsafe fn inv_butterfly_chunk<T: V64>(
    xp: *mut u64,
    yp: *mut u64,
    w_v: T,
    ws_v: T,
    p_v: T,
    two_p_v: T,
) {
    // SAFETY: forwarded to the caller.
    unsafe {
        let u = T::load(xp);
        let v = T::load(yp);
        // u, v in [0, 2p).
        u.add(v).cond_sub(two_p_v).store(xp); // [0, 2p)
        mul_shoup_lazy_v(u.add(two_p_v).sub(v), w_v, ws_v, p_v).store(yp); // [0, 2p)
    }
}

#[inline(always)]
pub(crate) fn ntt_inverse_v<T: V64>(
    m: &Modulus,
    roots: &[u64],
    roots_shoup: &[u64],
    inv_degree: u64,
    inv_degree_shoup: u64,
    a: &mut [u64],
) {
    let p = m.value();
    let two_p = 2 * p;
    let p_v = T::splat(p);
    let two_p_v = T::splat(two_p);
    let n = a.len();
    debug_assert!(n.is_power_of_two());
    let mut t = 1usize;
    let mut size = n >> 1;
    while size >= 1 {
        let stage_roots = &roots[size..2 * size];
        let stage_shoup = &roots_shoup[size..2 * size];
        if t >= T::LANES {
            for i in 0..size {
                let w_v = T::splat(stage_roots[i]);
                let ws_v = T::splat(stage_shoup[i]);
                let (lo, hi) = a[2 * i * t..2 * i * t + 2 * t].split_at_mut(t);
                // Manual 4× unroll: four independent chunk chains per
                // iteration hide the Shoup multiply's latency (LLVM
                // unrolls the forward stage loop on its own but leaves
                // this one rolled, which measures ~25% slower).
                let xp = lo.as_mut_ptr();
                let yp = hi.as_mut_ptr();
                let chunks = t / T::LANES; // exact: both are powers of two
                let mut c = 0;
                while c + 4 <= chunks {
                    // SAFETY: (c + 3) * LANES + LANES <= t, so every
                    // pointer stays within the t-element halves.
                    unsafe {
                        for j in c..c + 4 {
                            inv_butterfly_chunk(
                                xp.add(j * T::LANES),
                                yp.add(j * T::LANES),
                                w_v,
                                ws_v,
                                p_v,
                                two_p_v,
                            );
                        }
                    }
                    c += 4;
                }
                while c < chunks {
                    // SAFETY: c * LANES + LANES <= t.
                    unsafe {
                        inv_butterfly_chunk(
                            xp.add(c * T::LANES),
                            yp.add(c * T::LANES),
                            w_v,
                            ws_v,
                            p_v,
                            two_p_v,
                        );
                    }
                    c += 1;
                }
            }
        } else if t == 1 && n >= 2 * T::LANES {
            tail_stage_t1::<T, false>(stage_roots, stage_shoup, a, p_v, two_p_v);
        } else if t == 2 && T::LANES == 4 && n >= 2 * T::LANES {
            tail_stage_t2::<T, false>(stage_roots, stage_shoup, a, p_v, two_p_v);
        } else {
            for i in 0..size {
                let w = stage_roots[i];
                let ws = stage_shoup[i];
                let (lo, hi) = a[2 * i * t..2 * i * t + 2 * t].split_at_mut(t);
                for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                    scalar::inv_butterfly(m, x, y, w, ws, two_p);
                }
            }
        }
        t <<= 1;
        size >>= 1;
    }
    // N^{-1} scaling doubles as the final full reduction to [0, p).
    let w_v = T::splat(inv_degree);
    let ws_v = T::splat(inv_degree_shoup);
    let split = n - n % T::LANES;
    let (main, rest) = a.split_at_mut(split);
    for chunk in main.chunks_exact_mut(T::LANES) {
        // SAFETY: chunks_exact guarantees LANES u64s.
        unsafe {
            mul_shoup_lazy_v(T::load(chunk.as_ptr()), w_v, ws_v, p_v)
                .cond_sub(p_v)
                .store(chunk.as_mut_ptr());
        }
    }
    for x in rest.iter_mut() {
        *x = m.mul_shoup(*x, inv_degree, inv_degree_shoup);
    }
}

#[inline(always)]
pub(crate) fn pointwise_mul_v<T: V64>(m: &Modulus, dst: &mut [u64], src: &[u64]) {
    let (neg_inv, rp, rps) = m.montgomery();
    if m.value() & 1 == 0 {
        // Montgomery needs an odd modulus; every BFV modulus is an odd
        // prime, but stay total for exotic callers.
        return scalar::pointwise_mul(m, dst, src);
    }
    let p_v = T::splat(m.value());
    let rp_v = T::splat(rp);
    let rps_v = T::splat(rps);
    let neg_inv_v = T::splat(neg_inv);
    let split = dst.len() - dst.len() % T::LANES;
    let (main, rest) = dst.split_at_mut(split);
    for (dc, sc) in main
        .chunks_exact_mut(T::LANES)
        .zip(src.chunks_exact(T::LANES))
    {
        // SAFETY: chunks_exact guarantees both chunks hold LANES u64s.
        unsafe {
            let a = T::load(dc.as_ptr());
            let b = T::load(sc.as_ptr());
            mont_mul_v(a, b, p_v, rp_v, rps_v, neg_inv_v).store(dc.as_mut_ptr());
        }
    }
    scalar::pointwise_mul(m, rest, &src[split..]);
}

#[inline(always)]
pub(crate) fn pointwise_add_mul_v<T: V64>(m: &Modulus, dst: &mut [u64], a: &[u64], b: &[u64]) {
    let (neg_inv, rp, rps) = m.montgomery();
    if m.value() & 1 == 0 {
        return scalar::pointwise_add_mul(m, dst, a, b);
    }
    let p_v = T::splat(m.value());
    let rp_v = T::splat(rp);
    let rps_v = T::splat(rps);
    let neg_inv_v = T::splat(neg_inv);
    let split = dst.len() - dst.len() % T::LANES;
    let (main, rest) = dst.split_at_mut(split);
    for ((dc, ac), bc) in main
        .chunks_exact_mut(T::LANES)
        .zip(a.chunks_exact(T::LANES))
        .zip(b.chunks_exact(T::LANES))
    {
        // SAFETY: chunks_exact guarantees all chunks hold LANES u64s.
        unsafe {
            let d = T::load(dc.as_ptr());
            let x = T::load(ac.as_ptr());
            let y = T::load(bc.as_ptr());
            let prod = mont_mul_v(x, y, p_v, rp_v, rps_v, neg_inv_v); // [0, p)
            d.add(prod).cond_sub(p_v).store(dc.as_mut_ptr());
        }
    }
    scalar::pointwise_add_mul(m, rest, &a[split..], &b[split..]);
}

#[inline(always)]
pub(crate) fn pointwise_add_v<T: V64>(m: &Modulus, dst: &mut [u64], src: &[u64]) {
    let p_v = T::splat(m.value());
    let split = dst.len() - dst.len() % T::LANES;
    let (main, rest) = dst.split_at_mut(split);
    for (dc, sc) in main
        .chunks_exact_mut(T::LANES)
        .zip(src.chunks_exact(T::LANES))
    {
        // SAFETY: chunks_exact guarantees both chunks hold LANES u64s.
        unsafe {
            T::load(dc.as_ptr())
                .add(T::load(sc.as_ptr()))
                .cond_sub(p_v)
                .store(dc.as_mut_ptr());
        }
    }
    scalar::pointwise_add(m, rest, &src[split..]);
}

#[inline(always)]
pub(crate) fn pointwise_sub_v<T: V64>(m: &Modulus, dst: &mut [u64], src: &[u64]) {
    let p_v = T::splat(m.value());
    let split = dst.len() - dst.len() % T::LANES;
    let (main, rest) = dst.split_at_mut(split);
    for (dc, sc) in main
        .chunks_exact_mut(T::LANES)
        .zip(src.chunks_exact(T::LANES))
    {
        // SAFETY: chunks_exact guarantees both chunks hold LANES u64s.
        unsafe {
            // d + p - s ∈ (0, 2p) for reduced inputs; one cond-sub
            // lands on the canonical residue.
            T::load(dc.as_ptr())
                .add(p_v)
                .sub(T::load(sc.as_ptr()))
                .cond_sub(p_v)
                .store(dc.as_mut_ptr());
        }
    }
    scalar::pointwise_sub(m, rest, &src[split..]);
}

#[inline(always)]
pub(crate) fn mul_scalar_v<T: V64>(m: &Modulus, dst: &mut [u64], scalar_val: u64, shoup: u64) {
    let p_v = T::splat(m.value());
    let w_v = T::splat(scalar_val);
    let ws_v = T::splat(shoup);
    let split = dst.len() - dst.len() % T::LANES;
    let (main, rest) = dst.split_at_mut(split);
    for dc in main.chunks_exact_mut(T::LANES) {
        // SAFETY: chunks_exact guarantees LANES u64s.
        unsafe {
            mul_shoup_lazy_v(T::load(dc.as_ptr()), w_v, ws_v, p_v)
                .cond_sub(p_v)
                .store(dc.as_mut_ptr());
        }
    }
    scalar::mul_scalar(m, rest, scalar_val, shoup);
}

#[inline(always)]
pub(crate) fn reduce_v<T: V64>(m: &Modulus, dst: &mut [u64], src: &[u64]) {
    let (bhi, blo) = m.barrett();
    let p_v = T::splat(m.value());
    let bhi_v = T::splat(bhi);
    let blo_v = T::splat(blo);
    let split = dst.len() - dst.len() % T::LANES;
    let (main, rest) = dst.split_at_mut(split);
    for (dc, sc) in main
        .chunks_exact_mut(T::LANES)
        .zip(src.chunks_exact(T::LANES))
    {
        // SAFETY: chunks_exact guarantees both chunks hold LANES u64s.
        unsafe {
            let x = T::load(sc.as_ptr());
            // Exactly the scalar Barrett quotient for a 64-bit input
            // (x_hi = 0): q = hi64(x·b_hi) + carry(hi64(x·b_lo) + lo64(x·b_hi)).
            let ll_hi = x.mul_hi(blo_v);
            let lh_lo = x.mul_lo(bhi_v);
            let lh_hi = x.mul_hi(bhi_v);
            let (_, carry) = ll_hi.add_with_carry(lh_lo);
            let q = lh_hi.add(carry);
            x.sub(q.mul_lo(p_v)).cond_sub(p_v).store(dc.as_mut_ptr());
        }
    }
    scalar::reduce(m, rest, &src[split..]);
}
