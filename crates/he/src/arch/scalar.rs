//! Scalar reference kernels.
//!
//! These are the original hand-written hot loops (PR 1's lazy-reduction
//! NTT and the pointwise loops from `poly.rs`), moved behind the
//! [`Kernels`](super::Kernels) table so every backend shares one entry
//! point. The vector backends' tail loops (group sizes below the lane
//! width, slice remainders) call the same butterfly helpers, so scalar
//! and vector stages compose without changing any intermediate value.

use super::Kernels;
use crate::modulus::Modulus;

/// One forward butterfly in lazy form: inputs `x ∈ [0, 4p)`,
/// `y` arbitrary; outputs in `[0, 4p)`.
#[inline(always)]
pub(crate) fn fwd_butterfly(m: &Modulus, x: &mut u64, y: &mut u64, w: u64, ws: u64, two_p: u64) {
    // u in [0, 4p) -> [0, 2p); v in [0, 2p) for any 64-bit input.
    let mut u = *x;
    if u >= two_p {
        u -= two_p;
    }
    let v = m.mul_shoup_lazy(*y, w, ws);
    *x = u + v; // [0, 4p)
    *y = u + two_p - v; // (0, 4p)
}

/// One inverse butterfly in lazy form: inputs and outputs in `[0, 2p)`.
#[inline(always)]
pub(crate) fn inv_butterfly(m: &Modulus, x: &mut u64, y: &mut u64, w: u64, ws: u64, two_p: u64) {
    // u, v in [0, 2p).
    let u = *x;
    let v = *y;
    let mut s = u + v; // [0, 4p)
    if s >= two_p {
        s -= two_p;
    }
    *x = s; // [0, 2p)
    *y = m.mul_shoup_lazy(u + two_p - v, w, ws); // [0, 2p)
}

/// Full reduction `[0, 4p) -> [0, p)` of one value.
#[inline(always)]
pub(crate) fn reduce_4p(p: u64, two_p: u64, mut v: u64) -> u64 {
    if v >= two_p {
        v -= two_p;
    }
    if v >= p {
        v -= p;
    }
    v
}

pub(crate) fn ntt_forward(m: &Modulus, roots: &[u64], roots_shoup: &[u64], a: &mut [u64]) {
    let p = m.value();
    let two_p = 2 * p;
    let n = a.len();
    let mut t = n;
    let mut size = 1usize;
    while size < n {
        t >>= 1;
        let stage_roots = &roots[size..2 * size];
        let stage_shoup = &roots_shoup[size..2 * size];
        for i in 0..size {
            let w = stage_roots[i];
            let ws = stage_shoup[i];
            let (lo, hi) = a[2 * i * t..2 * i * t + 2 * t].split_at_mut(t);
            for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                fwd_butterfly(m, x, y, w, ws, two_p);
            }
        }
        size <<= 1;
    }
    // Single full-reduction pass: [0, 4p) -> [0, p).
    for x in a.iter_mut() {
        *x = reduce_4p(p, two_p, *x);
    }
}

pub(crate) fn ntt_inverse(
    m: &Modulus,
    roots: &[u64],
    roots_shoup: &[u64],
    inv_degree: u64,
    inv_degree_shoup: u64,
    a: &mut [u64],
) {
    let two_p = 2 * m.value();
    let n = a.len();
    let mut t = 1usize;
    let mut size = n >> 1;
    while size >= 1 {
        let stage_roots = &roots[size..2 * size];
        let stage_shoup = &roots_shoup[size..2 * size];
        for i in 0..size {
            let w = stage_roots[i];
            let ws = stage_shoup[i];
            let (lo, hi) = a[2 * i * t..2 * i * t + 2 * t].split_at_mut(t);
            for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                inv_butterfly(m, x, y, w, ws, two_p);
            }
        }
        t <<= 1;
        size >>= 1;
    }
    // N^{-1} scaling doubles as the final full reduction to [0, p):
    // mul_shoup accepts the lazy [0, 2p) inputs directly.
    for x in a.iter_mut() {
        *x = m.mul_shoup(*x, inv_degree, inv_degree_shoup);
    }
}

pub(crate) fn pointwise_mul(m: &Modulus, dst: &mut [u64], src: &[u64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = m.mul(*d, s);
    }
}

pub(crate) fn pointwise_add_mul(m: &Modulus, dst: &mut [u64], a: &[u64], b: &[u64]) {
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d = m.add(*d, m.mul(x, y));
    }
}

pub(crate) fn pointwise_add(m: &Modulus, dst: &mut [u64], src: &[u64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = m.add(*d, s);
    }
}

pub(crate) fn pointwise_sub(m: &Modulus, dst: &mut [u64], src: &[u64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = m.sub(*d, s);
    }
}

pub(crate) fn mul_scalar(m: &Modulus, dst: &mut [u64], scalar: u64, _scalar_shoup: u64) {
    for d in dst.iter_mut() {
        *d = m.mul(*d, scalar);
    }
}

pub(crate) fn reduce(m: &Modulus, dst: &mut [u64], src: &[u64]) {
    for (d, &v) in dst.iter_mut().zip(src) {
        *d = m.reduce(v);
    }
}

/// The scalar kernel table.
pub static KERNELS: Kernels = Kernels {
    name: "scalar",
    ntt_forward,
    ntt_inverse,
    pointwise_mul,
    pointwise_add_mul,
    pointwise_add,
    pointwise_sub,
    mul_scalar,
    reduce,
};
