//! AVX2 backend: 4×64-bit lanes.
//!
//! x86_64 has no 64×64→128 vector multiply below AVX-512, so the
//! `mul_lo`/`mul_hi` primitives are composed from `vpmuludq` 32×32→64
//! partial products (the standard schoolbook split). Everything else is
//! native 64-bit lane arithmetic; unsigned comparisons use the
//! sign-bit-flip trick over the signed `vpcmpgtq`.
//!
//! The kernel bodies live in [`super::vec`]; this module only
//! implements the lane primitives and the `#[target_feature(enable =
//! "avx2")]` entry points. The `unsafe` obligations are exactly:
//!
//! 1. every intrinsic requires AVX2, which [`super::available`] proves
//!    at runtime before this table can be selected, and
//! 2. `load`/`store` pointer validity, guaranteed by the
//!    `chunks_exact` iteration in the generic kernels.

use super::{vec, vec::V64, Kernels};
use crate::modulus::Modulus;
use std::arch::x86_64::*;

/// Four u64 lanes in one AVX2 register.
#[derive(Copy, Clone)]
struct W(__m256i);

#[inline(always)]
fn sign() -> __m256i {
    // SAFETY: AVX2 is available whenever this backend runs (checked at
    // dispatch time before the table is installed).
    unsafe { _mm256_set1_epi64x(i64::MIN) }
}

/// Zero-cost optimization barrier: emits no instructions but hides the
/// value's producer from LLVM. Without it, the combiner recognizes the
/// `mul_hi` schoolbook partial products as a 64-bit vector mulhi and —
/// AVX2 having no such instruction — *scalarizes* it into four
/// `vpextrq`/`mul`/`vinserti128` round trips, which measures ~35%
/// slower than the vpmuludq form it replaced (seen on the inverse-NTT
/// butterfly; the forward butterfly happened to escape the fold).
/// # Safety
/// Requires AVX2 (the `ymm_reg` operand class), which every caller in
/// this module guarantees via the dispatch-time feature check.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn opaque(v: __m256i) -> __m256i {
    let mut v = v;
    // SAFETY: comment-only asm template; emits no instructions and only
    // pins the value to a ymm register.
    unsafe {
        std::arch::asm!(
            "/* {0} */",
            inout(ymm_reg) v,
            options(pure, nomem, nostack, preserves_flags)
        );
    }
    v
}

/// All-ones mask per lane where `a < b` (unsigned).
#[inline(always)]
fn lt_u64(a: __m256i, b: __m256i) -> __m256i {
    // SAFETY: AVX2 checked at dispatch time.
    unsafe {
        let s = sign();
        _mm256_cmpgt_epi64(_mm256_xor_si256(b, s), _mm256_xor_si256(a, s))
    }
}

impl V64 for W {
    const LANES: usize = 4;

    #[inline(always)]
    unsafe fn load(ptr: *const u64) -> Self {
        // SAFETY: caller guarantees 4 readable u64s; loadu has no
        // alignment requirement. AVX2 checked at dispatch time.
        W(unsafe { _mm256_loadu_si256(ptr as *const __m256i) })
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut u64) {
        // SAFETY: caller guarantees 4 writable u64s; storeu has no
        // alignment requirement. AVX2 checked at dispatch time.
        unsafe { _mm256_storeu_si256(ptr as *mut __m256i, self.0) }
    }

    #[inline(always)]
    fn splat(x: u64) -> Self {
        // SAFETY: AVX2 checked at dispatch time.
        W(unsafe { _mm256_set1_epi64x(x as i64) })
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        // SAFETY: AVX2 checked at dispatch time.
        W(unsafe { _mm256_add_epi64(self.0, o.0) })
    }

    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        // SAFETY: AVX2 checked at dispatch time.
        W(unsafe { _mm256_sub_epi64(self.0, o.0) })
    }

    #[inline(always)]
    fn mul_lo(self, o: Self) -> Self {
        // SAFETY: AVX2 checked at dispatch time.
        unsafe {
            // vpmuludq reads the low 32 bits of each 64-bit lane.
            let ll = _mm256_mul_epu32(self.0, o.0);
            let lh = _mm256_mul_epu32(self.0, _mm256_srli_epi64(o.0, 32));
            let hl = _mm256_mul_epu32(_mm256_srli_epi64(self.0, 32), o.0);
            let cross = _mm256_add_epi64(lh, hl);
            W(_mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32)))
        }
    }

    #[inline(always)]
    fn mul_hi(self, o: Self) -> Self {
        // SAFETY: AVX2 checked at dispatch time.
        unsafe {
            let a_hi = _mm256_srli_epi64(self.0, 32);
            let b_hi = _mm256_srli_epi64(o.0, 32);
            let ll = _mm256_mul_epu32(self.0, o.0);
            let lh = _mm256_mul_epu32(self.0, b_hi);
            let hl = _mm256_mul_epu32(a_hi, o.0);
            // SAFETY: AVX2 checked at dispatch time (see `opaque`).
            let hh = opaque(_mm256_mul_epu32(a_hi, b_hi));
            let m32 = _mm256_set1_epi64x(0xFFFF_FFFF);
            // mid ≤ 3·(2^32 − 1) — no lane overflow.
            let mid = _mm256_add_epi64(
                _mm256_add_epi64(_mm256_srli_epi64(ll, 32), _mm256_and_si256(lh, m32)),
                _mm256_and_si256(hl, m32),
            );
            W(_mm256_add_epi64(
                _mm256_add_epi64(hh, _mm256_srli_epi64(lh, 32)),
                _mm256_add_epi64(_mm256_srli_epi64(hl, 32), _mm256_srli_epi64(mid, 32)),
            ))
        }
    }

    #[inline(always)]
    fn mul_wide(self, o: Self) -> (Self, Self) {
        // SAFETY: AVX2 checked at dispatch time.
        unsafe {
            // Shares the four 32×32 partial products between both halves.
            let a_hi = _mm256_srli_epi64(self.0, 32);
            let b_hi = _mm256_srli_epi64(o.0, 32);
            let ll = _mm256_mul_epu32(self.0, o.0);
            let lh = _mm256_mul_epu32(self.0, b_hi);
            let hl = _mm256_mul_epu32(a_hi, o.0);
            let hh = _mm256_mul_epu32(a_hi, b_hi);
            let m32 = _mm256_set1_epi64x(0xFFFF_FFFF);
            let mid = _mm256_add_epi64(
                _mm256_add_epi64(_mm256_srli_epi64(ll, 32), _mm256_and_si256(lh, m32)),
                _mm256_and_si256(hl, m32),
            );
            let hi = _mm256_add_epi64(
                _mm256_add_epi64(hh, _mm256_srli_epi64(lh, 32)),
                _mm256_add_epi64(_mm256_srli_epi64(hl, 32), _mm256_srli_epi64(mid, 32)),
            );
            let cross = _mm256_add_epi64(lh, hl);
            let lo = _mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32));
            (W(hi), W(lo))
        }
    }

    #[inline(always)]
    fn cond_sub(self, m: Self) -> Self {
        // SAFETY: AVX2 checked at dispatch time.
        unsafe {
            // t = self - m is negative as i64 exactly when self < m
            // (using the trait contract m < 2^63, self < m + 2^63), so
            // one signed compare against zero replaces the sign-flipped
            // unsigned compare: add m back in the underflowed lanes.
            let t = _mm256_sub_epi64(self.0, m.0);
            let under = _mm256_cmpgt_epi64(_mm256_setzero_si256(), t);
            W(_mm256_add_epi64(t, _mm256_and_si256(under, m.0)))
        }
    }

    #[inline(always)]
    fn deinterleave_pairs(self, o: Self) -> (Self, Self) {
        // SAFETY: AVX2 checked at dispatch time.
        unsafe {
            // unpck interleaves within 128-bit halves: lo = [a0 b0 a2 b2],
            // hi = [a1 b1 a3 b3]; the 0xD8 permute ([q0 q2 q1 q3]) then
            // straightens them into [a0 a2 b0 b2] / [a1 a3 b1 b3].
            let lo = _mm256_unpacklo_epi64(self.0, o.0);
            let hi = _mm256_unpackhi_epi64(self.0, o.0);
            (
                W(_mm256_permute4x64_epi64::<0xD8>(lo)),
                W(_mm256_permute4x64_epi64::<0xD8>(hi)),
            )
        }
    }

    #[inline(always)]
    fn interleave_pairs(self, o: Self) -> (Self, Self) {
        // SAFETY: AVX2 checked at dispatch time.
        unsafe {
            // Inverse of deinterleave_pairs: pre-permute each input to
            // [q0 q2 q1 q3], then unpck recombines adjacent pairs.
            let e = _mm256_permute4x64_epi64::<0xD8>(self.0);
            let d = _mm256_permute4x64_epi64::<0xD8>(o.0);
            (
                W(_mm256_unpacklo_epi64(e, d)),
                W(_mm256_unpackhi_epi64(e, d)),
            )
        }
    }

    #[inline(always)]
    fn deinterleave_quads(self, o: Self) -> (Self, Self) {
        // SAFETY: AVX2 checked at dispatch time.
        unsafe {
            // Gather the low 128-bit halves into one register and the
            // high halves into the other.
            (
                W(_mm256_permute2x128_si256::<0x20>(self.0, o.0)),
                W(_mm256_permute2x128_si256::<0x31>(self.0, o.0)),
            )
        }
    }

    #[inline(always)]
    fn interleave_quads(self, o: Self) -> (Self, Self) {
        // SAFETY: AVX2 checked at dispatch time.
        unsafe {
            // Self-inverse permutation pair: same shuffles as
            // deinterleave_quads.
            (
                W(_mm256_permute2x128_si256::<0x20>(self.0, o.0)),
                W(_mm256_permute2x128_si256::<0x31>(self.0, o.0)),
            )
        }
    }

    #[inline(always)]
    fn add_nonzero_bit(self, o: Self) -> Self {
        // SAFETY: AVX2 checked at dispatch time.
        unsafe {
            let zero_mask = _mm256_cmpeq_epi64(o.0, _mm256_setzero_si256());
            let bit = _mm256_andnot_si256(zero_mask, _mm256_set1_epi64x(1));
            W(_mm256_add_epi64(self.0, bit))
        }
    }

    #[inline(always)]
    fn add_with_carry(self, o: Self) -> (Self, Self) {
        // SAFETY: AVX2 checked at dispatch time.
        unsafe {
            let sum = _mm256_add_epi64(self.0, o.0);
            // Unsigned overflow iff sum < either addend.
            let carry = _mm256_srli_epi64(lt_u64(sum, self.0), 63);
            (W(sum), W(carry))
        }
    }
}

macro_rules! avx2_kernel {
    ($wrapper:ident, $impl_fn:ident, $generic:ident, ($($arg:ident : $ty:ty),*)) => {
        #[target_feature(enable = "avx2")]
        unsafe fn $impl_fn($($arg: $ty),*) {
            vec::$generic::<W>($($arg),*)
        }
        fn $wrapper($($arg: $ty),*) {
            // SAFETY: this kernel table is only installed after
            // `is_x86_feature_detected!("avx2")` returned true.
            unsafe { $impl_fn($($arg),*) }
        }
    };
}

avx2_kernel!(
    ntt_forward,
    ntt_forward_impl,
    ntt_forward_v,
    (m: &Modulus, roots: &[u64], roots_shoup: &[u64], a: &mut [u64])
);
avx2_kernel!(
    ntt_inverse,
    ntt_inverse_impl,
    ntt_inverse_v,
    (m: &Modulus, roots: &[u64], roots_shoup: &[u64], inv_degree: u64,
     inv_degree_shoup: u64, a: &mut [u64])
);
avx2_kernel!(
    pointwise_mul,
    pointwise_mul_impl,
    pointwise_mul_v,
    (m: &Modulus, dst: &mut [u64], src: &[u64])
);
avx2_kernel!(
    pointwise_add_mul,
    pointwise_add_mul_impl,
    pointwise_add_mul_v,
    (m: &Modulus, dst: &mut [u64], a: &[u64], b: &[u64])
);
avx2_kernel!(
    pointwise_add,
    pointwise_add_impl,
    pointwise_add_v,
    (m: &Modulus, dst: &mut [u64], src: &[u64])
);
avx2_kernel!(
    pointwise_sub,
    pointwise_sub_impl,
    pointwise_sub_v,
    (m: &Modulus, dst: &mut [u64], src: &[u64])
);
avx2_kernel!(
    mul_scalar,
    mul_scalar_impl,
    mul_scalar_v,
    (m: &Modulus, dst: &mut [u64], scalar_val: u64, shoup: u64)
);
avx2_kernel!(
    reduce,
    reduce_impl,
    reduce_v,
    (m: &Modulus, dst: &mut [u64], src: &[u64])
);

/// The AVX2 kernel table (install only after runtime detection).
pub static KERNELS: Kernels = Kernels {
    name: "avx2",
    ntt_forward,
    ntt_inverse,
    pointwise_mul,
    pointwise_add_mul,
    pointwise_add,
    pointwise_sub,
    mul_scalar,
    reduce,
};

/// Per-op tuned table: AVX2 where the vector path wins, scalar where
/// the measured baseline (`BENCH_heops.json`) shows it behind. Plain
/// Barrett with the native 64-bit `mul` beats the vpmuludq schoolbook
/// on `pointwise_mul` and the key-switch digit lift (~0.7× under
/// AVX2), so those two entries keep the scalar kernels. Selected by
/// `auto` dispatch; `SPOT_SIMD=avx2` still forces the uniform vector
/// table for A/B measurement.
pub static TUNED: Kernels = Kernels {
    name: "avx2+scalar",
    ntt_forward,
    ntt_inverse,
    pointwise_mul: super::scalar::pointwise_mul,
    pointwise_add_mul,
    pointwise_add,
    pointwise_sub,
    mul_scalar,
    reduce: super::scalar::reduce,
};
