//! 64-bit prime modulus arithmetic with Barrett reduction.
//!
//! Every coefficient and plaintext modulus in the BFV scheme is a prime
//! below 2^62. [`Modulus`] precomputes a Barrett constant so that modular
//! multiplication costs one `u128` widening multiply plus a correction,
//! and exposes the handful of modular helpers the rest of the crate needs
//! (exponentiation, inversion, primitive roots).

/// A prime modulus below 2^62 with precomputed Barrett reduction constants.
///
/// # Examples
///
/// ```
/// use spot_he::modulus::Modulus;
/// let m = Modulus::new(65537);
/// assert_eq!(m.mul(65536, 65536), 1); // (-1)^2 = 1 mod 65537
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus {
    value: u64,
    /// floor(2^128 / value), stored as (high, low) 64-bit limbs.
    barrett_hi: u64,
    barrett_lo: u64,
    /// `-value^{-1} mod 2^64` (value is an odd prime), for Montgomery REDC.
    mont_neg_inv: u64,
    /// `2^64 mod value`, with its Shoup constant: multiplying by this
    /// lifts an operand into Montgomery form in one Shoup multiply.
    mont_r: u64,
    mont_r_shoup: u64,
}

impl Modulus {
    /// Creates a new modulus.
    ///
    /// # Panics
    ///
    /// Panics if `value` is 0, 1, or >= 2^62.
    pub fn new(value: u64) -> Self {
        assert!(value > 1, "modulus must be > 1");
        assert!(value < (1u64 << 62), "modulus must be < 2^62");
        // Compute floor(2^128 / value) via 128-bit long division in two steps.
        let hi = (u128::MAX / value as u128) as u64;
        // remainder of 2^128 - 1 division trick: compute precisely.
        // 2^128 / v = floor(((2^128 - 1) - (v - 1)) / v) + adjustment; easier:
        // q = (2^128 - 1) / v; r = (2^128 - 1) % v; if r == v - 1 { q + 1 } else { q }
        let q = u128::MAX / value as u128;
        let r = u128::MAX % value as u128;
        let q = if r == value as u128 - 1 { q + 1 } else { q };
        let _ = hi;
        // Montgomery constants. Newton iteration doubles the number of
        // correct low bits per step: value*x ≡ 1 (mod 2) for odd value,
        // so six steps reach 2^64.
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(value.wrapping_mul(inv)));
        }
        let mont_r = ((1u128 << 64) % value as u128) as u64;
        let mut out = Self {
            value,
            barrett_hi: (q >> 64) as u64,
            barrett_lo: q as u64,
            mont_neg_inv: inv.wrapping_neg(),
            mont_r,
            mont_r_shoup: 0,
        };
        out.mont_r_shoup = out.shoup(mont_r);
        out
    }

    /// The modulus value.
    #[inline(always)]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The Barrett constant `floor(2^128 / value)` as (high, low) limbs.
    #[inline(always)]
    pub(crate) fn barrett(&self) -> (u64, u64) {
        (self.barrett_hi, self.barrett_lo)
    }

    /// Montgomery constants `(-value^{-1} mod 2^64, 2^64 mod value,
    /// shoup(2^64 mod value))`. Only meaningful for odd moduli.
    #[inline(always)]
    pub(crate) fn montgomery(&self) -> (u64, u64, u64) {
        (self.mont_neg_inv, self.mont_r, self.mont_r_shoup)
    }

    /// Reduces a 64-bit value (already < 2^62 * anything) modulo the modulus.
    #[inline(always)]
    pub fn reduce(&self, x: u64) -> u64 {
        self.reduce_u128(x as u128)
    }

    /// Reduces a 128-bit value modulo the modulus using Barrett reduction.
    #[inline]
    pub fn reduce_u128(&self, x: u128) -> u64 {
        // Barrett: q = floor(x * floor(2^128/m) / 2^128), r = x - q*m, then
        // one conditional subtraction.
        let xlo = x as u64;
        let xhi = (x >> 64) as u64;
        // x * barrett = (xhi*2^64 + xlo) * (bhi*2^64 + blo); we need bits >= 2^128.
        let lo_lo = (xlo as u128) * (self.barrett_lo as u128);
        let lo_hi = (xlo as u128) * (self.barrett_hi as u128);
        let hi_lo = (xhi as u128) * (self.barrett_lo as u128);
        let hi_hi = (xhi as u128) * (self.barrett_hi as u128);
        let mid = (lo_lo >> 64) + (lo_hi & 0xFFFF_FFFF_FFFF_FFFF) + (hi_lo & 0xFFFF_FFFF_FFFF_FFFF);
        let q = hi_hi + (lo_hi >> 64) + (hi_lo >> 64) + (mid >> 64);
        let r = x.wrapping_sub(q.wrapping_mul(self.value as u128)) as u64;
        if r >= self.value {
            r - self.value
        } else {
            r
        }
    }

    /// Modular addition; inputs must already be reduced.
    #[inline(always)]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        let s = a + b;
        if s >= self.value {
            s - self.value
        } else {
            s
        }
    }

    /// Modular subtraction; inputs must already be reduced.
    #[inline(always)]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        if a >= b {
            a - b
        } else {
            a + self.value - b
        }
    }

    /// Modular negation; input must already be reduced.
    #[inline(always)]
    pub fn neg(&self, a: u64) -> u64 {
        if a == 0 {
            0
        } else {
            self.value - a
        }
    }

    /// Modular multiplication; inputs must already be reduced.
    #[inline(always)]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        self.reduce_u128(a as u128 * b as u128)
    }

    /// Modular exponentiation by squaring.
    pub fn pow(&self, mut base: u64, mut exp: u64) -> u64 {
        base = self.reduce(base);
        let mut acc = 1u64;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Modular inverse via Fermat's little theorem (modulus must be prime).
    ///
    /// Returns `None` if `a == 0 (mod m)`.
    pub fn inv(&self, a: u64) -> Option<u64> {
        let a = self.reduce(a);
        if a == 0 {
            return None;
        }
        Some(self.pow(a, self.value - 2))
    }

    /// Precomputes a Shoup representation of `operand` for fast repeated
    /// multiplication by a constant: `floor(operand * 2^64 / m)`.
    #[inline]
    pub fn shoup(&self, operand: u64) -> u64 {
        (((operand as u128) << 64) / self.value as u128) as u64
    }

    /// Multiplies `x` by a constant `operand` given its Shoup precomputation.
    ///
    /// Fully reduced: result is in `[0, m)`.
    #[inline(always)]
    pub fn mul_shoup(&self, x: u64, operand: u64, operand_shoup: u64) -> u64 {
        let r = self.mul_shoup_lazy(x, operand, operand_shoup);
        if r >= self.value {
            r - self.value
        } else {
            r
        }
    }

    /// Lazy Shoup multiplication: skips the final conditional subtraction,
    /// returning a value in `[0, 2m)`.
    ///
    /// Valid for *any* 64-bit `x` (not just reduced inputs) as long as
    /// `operand < m`: the quotient estimate `q = floor(x * shoup / 2^64)`
    /// is off by at most one, so `x*operand - q*m` lands in `[0, 2m)`,
    /// which fits in 64 bits because `m < 2^62`. This is the workhorse of
    /// the lazy-reduction NTT butterflies.
    #[inline(always)]
    pub fn mul_shoup_lazy(&self, x: u64, operand: u64, operand_shoup: u64) -> u64 {
        let q = ((x as u128 * operand_shoup as u128) >> 64) as u64;
        x.wrapping_mul(operand)
            .wrapping_sub(q.wrapping_mul(self.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrett_matches_naive() {
        let m = Modulus::new((0x3FFF_FFFF_FFFF_F001 % (1 << 61)) | 1);
        // use a few fixed primes instead
        for &p in &[65537u64, 1032193, 0x1FFF_FFFF_FFE0_0001 | 5] {
            let m = Modulus::new(p | 1);
            for i in 0..1000u64 {
                let a = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let b = i.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
                assert_eq!(
                    m.reduce_u128(a as u128 * b as u128),
                    ((a as u128 * b as u128) % m.value() as u128) as u64
                );
            }
        }
        let _ = m;
    }

    #[test]
    fn add_sub_neg() {
        let m = Modulus::new(97);
        assert_eq!(m.add(96, 5), 4);
        assert_eq!(m.sub(3, 5), 95);
        assert_eq!(m.neg(0), 0);
        assert_eq!(m.neg(1), 96);
    }

    #[test]
    fn pow_and_inv() {
        let m = Modulus::new(65537);
        assert_eq!(m.pow(3, 65536), 1); // Fermat
        let inv = m.inv(12345).unwrap();
        assert_eq!(m.mul(12345, inv), 1);
        assert_eq!(m.inv(0), None);
    }

    #[test]
    fn shoup_matches_mul() {
        let m = Modulus::new(1032193);
        let c = 777_777 % m.value();
        let cs = m.shoup(c);
        for x in (0..m.value()).step_by(9871) {
            assert_eq!(m.mul_shoup(x, c, cs), m.mul(x, c));
        }
    }

    #[test]
    fn shoup_lazy_congruent_and_bounded_for_unreduced_inputs() {
        let m = Modulus::new(1032193);
        let c = 777_777 % m.value();
        let cs = m.shoup(c);
        // x ranges far beyond [0, m): lazy result must stay in [0, 2m)
        // and agree with the exact product modulo m.
        for i in 0..5000u64 {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let r = m.mul_shoup_lazy(x, c, cs);
            assert!(r < 2 * m.value(), "lazy result out of [0, 2m): {r}");
            assert_eq!(m.reduce(r), m.reduce_u128(x as u128 * c as u128));
        }
    }

    #[test]
    #[should_panic]
    fn rejects_tiny_modulus() {
        let _ = Modulus::new(1);
    }

    // ---- boundary-operand property tests -------------------------------
    //
    // The SIMD kernels in `crate::arch` assume exactly the contracts
    // proved here: `mul_shoup_lazy` stays in [0, 2p) for *any* 64-bit x,
    // and the lazy butterflies keep their [0, 4p) / [0, 2p) windows even
    // at the extreme operands 0, p-1, 2p-1, 4p-1.

    use crate::arch::scalar::{fwd_butterfly, inv_butterfly};
    use proptest::prelude::*;

    /// Test primes: small, mid, and a 62-bit prime where 4p-1 is within
    /// one bit of u64::MAX (tightest lazy window).
    const PRIMES: [u64; 3] = [1032193, 0x07FF_FFFF_FFFC_A001, 0x3FFF_FFFF_FFFF_F001];

    /// Boundary picks plus a seed-derived filler, clamped below `bound`.
    fn pick(sel: usize, seed: u64, p: u64, bound: u64) -> u64 {
        let edges = [0, 1, p - 1, p, 2 * p - 1, 2 * p, 4 * p - 1, u64::MAX];
        let v = if sel < edges.len() {
            edges[sel]
        } else {
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        };
        v % bound
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn mul_shoup_lazy_bounded_and_congruent_at_boundaries(
            p_sel in 0usize..3,
            x_sel in 0usize..9,
            w_sel in 0usize..9,
            seed in 0u64..u64::MAX,
        ) {
            let p = PRIMES[p_sel];
            let m = Modulus::new(p);
            // Any 64-bit x is legal (no clamp); the operand must be
            // canonical.
            let edges = [0, 1, p - 1, p, 2 * p - 1, 2 * p, 4 * p - 1, u64::MAX];
            let x = if x_sel < 8 { edges[x_sel] } else { seed };
            let w = pick(w_sel, seed.rotate_left(17), p, p);
            let ws = m.shoup(w);
            let r = m.mul_shoup_lazy(x, w, ws);
            prop_assert!(r < 2 * p, "lazy result {} outside [0, 2p) for p={}", r, p);
            prop_assert_eq!(m.reduce(r), m.reduce_u128(x as u128 * w as u128));
        }

        #[test]
        fn fwd_butterfly_preserves_4p_window_and_values(
            p_sel in 0usize..3,
            x_sel in 0usize..9,
            y_sel in 0usize..9,
            w_sel in 0usize..9,
            seed in 0u64..u64::MAX,
        ) {
            let p = PRIMES[p_sel];
            let m = Modulus::new(p);
            // Stage inputs live in [0, 4p) (incl. 4p-1 at the 62-bit prime).
            let mut x = pick(x_sel, seed, p, 4 * p);
            let mut y = pick(y_sel, seed.rotate_left(31), p, 4 * p);
            let w = pick(w_sel, seed.rotate_left(47), p, p);
            let (x0, y0) = (x, y);
            fwd_butterfly(&m, &mut x, &mut y, w, m.shoup(w), 2 * p);
            prop_assert!(x < 4 * p, "fwd x' {} outside [0, 4p)", x);
            prop_assert!(y < 4 * p, "fwd y' {} outside [0, 4p)", y);
            let wy = m.reduce_u128(y0 as u128 * w as u128);
            prop_assert_eq!(m.reduce(x), m.add(m.reduce(x0), wy));
            prop_assert_eq!(m.reduce(y), m.sub(m.reduce(x0), wy));
        }

        #[test]
        fn inv_butterfly_preserves_2p_window_and_values(
            p_sel in 0usize..3,
            x_sel in 0usize..9,
            y_sel in 0usize..9,
            w_sel in 0usize..9,
            seed in 0u64..u64::MAX,
        ) {
            let p = PRIMES[p_sel];
            let m = Modulus::new(p);
            // Inverse-stage inputs live in [0, 2p).
            let mut x = pick(x_sel, seed, p, 2 * p);
            let mut y = pick(y_sel, seed.rotate_left(31), p, 2 * p);
            let w = pick(w_sel, seed.rotate_left(47), p, p);
            let (x0, y0) = (x, y);
            inv_butterfly(&m, &mut x, &mut y, w, m.shoup(w), 2 * p);
            prop_assert!(x < 2 * p, "inv x' {} outside [0, 2p)", x);
            prop_assert!(y < 2 * p, "inv y' {} outside [0, 2p)", y);
            prop_assert_eq!(m.reduce(x), m.add(m.reduce(x0), m.reduce(y0)));
            let diff = m.sub(m.reduce(x0), m.reduce(y0));
            prop_assert_eq!(m.reduce(y), m.reduce_u128(diff as u128 * w as u128));
        }
    }
}
