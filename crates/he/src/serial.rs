//! Validated (non-panicking) serialization for HE objects that travel
//! on the wire: ciphertexts, public keys, and Galois rotation keys.
//!
//! The byte layouts reuse [`Ciphertext::to_bytes`]'s bit-packing (each
//! RNS modulus's residues packed at that modulus's width), and every
//! decoder rejects malformed input — wrong header, truncated payload,
//! trailing bytes, or residues outside `[0, q_i)` — with a
//! [`SerialError`] instead of panicking, so garbage received from a
//! network peer can never crash a session.
//!
//! `GaloisKeys` entries are written **sorted by Galois element** so the
//! encoding is deterministic (the in-memory store is a `HashMap` with
//! nondeterministic iteration order).

use crate::ciphertext::{pack_bits, unpack_bits_into, Ciphertext};
use crate::context::Context;
use crate::keys::{GaloisKeys, KeySwitchKey, PublicKey};
use crate::poly::{Poly, PolyForm};
use crate::pool;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Errors from validated HE deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerialError {
    /// Input shorter than its declared or implied layout.
    Truncated,
    /// Header fields (degree / modulus count) disagree with the context.
    HeaderMismatch,
    /// Total input length disagrees with the expected layout.
    LengthMismatch,
    /// A packed residue is not reduced modulo its RNS modulus.
    ResidueOutOfRange,
    /// Structural corruption (bad counts, trailing bytes, …).
    Malformed(String),
}

impl fmt::Display for SerialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerialError::Truncated => write!(f, "truncated HE object"),
            SerialError::HeaderMismatch => write!(f, "header does not match context"),
            SerialError::LengthMismatch => write!(f, "payload length mismatch"),
            SerialError::ResidueOutOfRange => write!(f, "residue not reduced mod q_i"),
            SerialError::Malformed(m) => write!(f, "malformed HE object: {m}"),
        }
    }
}

impl std::error::Error for SerialError {}

/// Bytes one packed polynomial occupies under `ctx`.
fn poly_packed_bytes(ctx: &Context) -> usize {
    let n = ctx.degree();
    ctx.moduli()
        .iter()
        .map(|m| {
            let bits = 64 - m.value().leading_zeros() as usize;
            (n * bits).div_ceil(8)
        })
        .sum()
}

fn write_poly(out: &mut Vec<u8>, poly: &Poly) {
    let ctx = poly.context();
    for (i, m) in ctx.moduli().iter().enumerate() {
        let bits = 64 - m.value().leading_zeros() as usize;
        out.extend_from_slice(&pack_bits(poly.residues(i), bits));
    }
}

/// Reads one packed NTT-form polynomial, validating residue ranges.
fn read_poly(ctx: &Arc<Context>, bytes: &[u8], off: &mut usize) -> Result<Poly, SerialError> {
    let n = ctx.degree();
    let k = ctx.moduli_count();
    let mut data = pool::take(k * n);
    for (i, m) in ctx.moduli().iter().enumerate() {
        let bits = 64 - m.value().leading_zeros() as usize;
        let section = (n * bits).div_ceil(8);
        let src = bytes
            .get(*off..*off + section)
            .ok_or(SerialError::Truncated)?;
        unpack_bits_into(src, bits, &mut data[i * n..(i + 1) * n]);
        if data[i * n..(i + 1) * n].iter().any(|&v| v >= m.value()) {
            return Err(SerialError::ResidueOutOfRange);
        }
        *off += section;
    }
    Ok(Poly::from_residues(ctx, data, PolyForm::Ntt))
}

impl Ciphertext {
    /// Non-panicking counterpart of [`Ciphertext::from_bytes`]: rejects
    /// header mismatches, truncation, trailing bytes, and unreduced
    /// residues with an error instead of panicking.
    pub fn try_from_bytes(ctx: &Arc<Context>, bytes: &[u8]) -> Result<Self, SerialError> {
        let hdr = bytes.get(0..16).ok_or(SerialError::Truncated)?;
        let hdr_n = u64::from_le_bytes(hdr[0..8].try_into().expect("8-byte slice")) as usize;
        let hdr_k = u64::from_le_bytes(hdr[8..16].try_into().expect("8-byte slice")) as usize;
        if (hdr_n, hdr_k) != (ctx.degree(), ctx.moduli_count()) {
            return Err(SerialError::HeaderMismatch);
        }
        if bytes.len() != ctx.params().ciphertext_bytes() {
            return Err(SerialError::LengthMismatch);
        }
        let mut off = 16usize;
        let c0 = read_poly(ctx, bytes, &mut off)?;
        let c1 = read_poly(ctx, bytes, &mut off)?;
        if off != bytes.len() {
            return Err(SerialError::LengthMismatch);
        }
        Ok(Self::from_parts(c0, c1))
    }
}

/// Serializes a public key: packed `b` then `a`.
pub fn public_key_to_bytes(pk: &PublicKey) -> Vec<u8> {
    let mut out = Vec::new();
    write_poly(&mut out, &pk.b);
    write_poly(&mut out, &pk.a);
    out
}

/// Deserializes a public key produced by [`public_key_to_bytes`].
pub fn public_key_from_bytes(ctx: &Arc<Context>, bytes: &[u8]) -> Result<PublicKey, SerialError> {
    if bytes.len() != 2 * poly_packed_bytes(ctx) {
        return Err(SerialError::LengthMismatch);
    }
    let mut off = 0usize;
    let b = read_poly(ctx, bytes, &mut off)?;
    let a = read_poly(ctx, bytes, &mut off)?;
    Ok(PublicKey { b, a })
}

/// Serializes Galois keys deterministically: `[count u32]` then, per
/// entry **sorted by Galois element**, `[elt u64][pair_count u32]`
/// followed by each key-switch pair's `(b, a)` packed polynomials.
pub fn galois_keys_to_bytes(gk: &GaloisKeys) -> Vec<u8> {
    let mut elements: Vec<usize> = gk.elements().collect();
    elements.sort_unstable();
    let mut out = Vec::new();
    out.extend_from_slice(&(elements.len() as u32).to_le_bytes());
    for elt in elements {
        let ksk = &gk.keys[&elt];
        out.extend_from_slice(&(elt as u64).to_le_bytes());
        out.extend_from_slice(&(ksk.pairs.len() as u32).to_le_bytes());
        for (b, a) in &ksk.pairs {
            write_poly(&mut out, b);
            write_poly(&mut out, a);
        }
    }
    out
}

/// Deserializes Galois keys produced by [`galois_keys_to_bytes`].
pub fn galois_keys_from_bytes(ctx: &Arc<Context>, bytes: &[u8]) -> Result<GaloisKeys, SerialError> {
    let count = read_u32(bytes, 0)? as usize;
    // Sanity bound: no real key set has anywhere near this many entries.
    if count > 1 << 16 {
        return Err(SerialError::Malformed(format!(
            "implausible galois entry count {count}"
        )));
    }
    let mut off = 4usize;
    let mut keys = HashMap::with_capacity(count);
    for _ in 0..count {
        let elt_bytes = bytes.get(off..off + 8).ok_or(SerialError::Truncated)?;
        let elt = u64::from_le_bytes(elt_bytes.try_into().expect("8-byte slice")) as usize;
        off += 8;
        let pair_count = read_u32(bytes, off)? as usize;
        off += 4;
        if pair_count == 0 || pair_count > ctx.moduli_count() {
            return Err(SerialError::Malformed(format!(
                "bad key-switch digit count {pair_count}"
            )));
        }
        let mut pairs = Vec::with_capacity(pair_count);
        for _ in 0..pair_count {
            let b = read_poly(ctx, bytes, &mut off)?;
            let a = read_poly(ctx, bytes, &mut off)?;
            pairs.push((b, a));
        }
        if keys.insert(elt, KeySwitchKey { pairs }).is_some() {
            return Err(SerialError::Malformed(format!(
                "duplicate galois element {elt}"
            )));
        }
    }
    if off != bytes.len() {
        return Err(SerialError::LengthMismatch);
    }
    Ok(GaloisKeys { keys })
}

fn read_u32(bytes: &[u8], off: usize) -> Result<u32, SerialError> {
    let s = bytes.get(off..off + 4).ok_or(SerialError::Truncated)?;
    Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::BatchEncoder;
    use crate::encryptor::{Decryptor, Encryptor};
    use crate::evaluator::Evaluator;
    use crate::keys::KeyGenerator;
    use crate::params::{EncryptionParams, ParamLevel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> Arc<Context> {
        Context::new(EncryptionParams::new(ParamLevel::N4096))
    }

    #[test]
    fn public_key_roundtrip_encrypts() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(3);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let pk = kg.public_key(&mut rng);
        let bytes = public_key_to_bytes(&pk);
        let pk2 = public_key_from_bytes(&ctx, &bytes).unwrap();
        let encoder = BatchEncoder::new(&ctx);
        let enc = Encryptor::new(&ctx, pk2);
        let dec = Decryptor::new(&ctx, kg.secret_key().clone());
        let ct = enc.encrypt(&encoder.encode(&[5, 6, 7]), &mut rng);
        assert_eq!(&encoder.decode(&dec.decrypt(&ct))[..3], &[5, 6, 7]);
    }

    #[test]
    fn galois_keys_roundtrip_is_deterministic_and_rotates() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(4);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let elts = [
            crate::encoding::galois_elt_from_step(1, ctx.degree()),
            crate::encoding::galois_elt_from_step(-2, ctx.degree()),
        ];
        let gk = kg.galois_keys(&elts, &mut rng);
        let bytes = galois_keys_to_bytes(&gk);
        // Deterministic despite HashMap storage.
        assert_eq!(bytes, galois_keys_to_bytes(&gk));
        let gk2 = galois_keys_from_bytes(&ctx, &bytes).unwrap();
        assert_eq!(bytes, galois_keys_to_bytes(&gk2));

        let encoder = BatchEncoder::new(&ctx);
        let enc = Encryptor::new(&ctx, kg.public_key(&mut rng));
        let dec = Decryptor::new(&ctx, kg.secret_key().clone());
        let ev = Evaluator::new(&ctx);
        let values: Vec<u64> = (0..ctx.degree() as u64).map(|i| i % 97).collect();
        let ct = enc.encrypt(&encoder.encode(&values), &mut rng);
        let rot = ev.rotate_rows(&ct, 1, &gk2);
        let out = encoder.decode(&dec.decrypt(&rot));
        let expected = crate::encoding::rotate_slots_reference(&values, 1);
        assert_eq!(out, expected);
    }

    #[test]
    fn try_from_bytes_rejects_garbage() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(5);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let encoder = BatchEncoder::new(&ctx);
        let enc = Encryptor::new(&ctx, kg.public_key(&mut rng));
        let ct = enc.encrypt(&encoder.encode(&[1, 2]), &mut rng);
        let good = ct.to_bytes();
        assert!(Ciphertext::try_from_bytes(&ctx, &good).is_ok());
        // truncations
        for cut in [0usize, 7, 16, good.len() - 1] {
            assert!(Ciphertext::try_from_bytes(&ctx, &good[..cut]).is_err());
        }
        // header mismatch
        let mut bad = good.clone();
        bad[0] = 0xFF;
        assert!(matches!(
            Ciphertext::try_from_bytes(&ctx, &bad),
            Err(SerialError::HeaderMismatch)
        ));
        // unreduced residues (all bits set in the body)
        let mut bad = good;
        for b in bad.iter_mut().skip(16) {
            *b = 0xFF;
        }
        assert!(matches!(
            Ciphertext::try_from_bytes(&ctx, &bad),
            Err(SerialError::ResidueOutOfRange)
        ));
        // garbage keys never panic
        assert!(public_key_from_bytes(&ctx, &[1, 2, 3]).is_err());
        assert!(galois_keys_from_bytes(&ctx, &[0xFF; 64]).is_err());
        assert!(galois_keys_from_bytes(&ctx, &[]).is_err());
    }
}
