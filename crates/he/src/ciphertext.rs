//! BFV ciphertexts.

use crate::context::Context;
use crate::poly::Poly;
use crate::pool;
use std::sync::Arc;

/// A size-2 BFV ciphertext `(c0, c1)` satisfying
/// `c0 + c1·s = Δ·m + e (mod q)`. Stored in NTT form.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    pub(crate) c0: Poly,
    pub(crate) c1: Poly,
}

impl Ciphertext {
    /// Builds a ciphertext from its two component polynomials.
    ///
    /// # Panics
    ///
    /// Panics if the polynomials are not both in NTT form.
    pub fn from_parts(c0: Poly, c1: Poly) -> Self {
        use crate::poly::PolyForm;
        assert_eq!(c0.form(), PolyForm::Ntt, "c0 must be in NTT form");
        assert_eq!(c1.form(), PolyForm::Ntt, "c1 must be in NTT form");
        Self { c0, c1 }
    }

    /// The first component polynomial.
    pub fn c0(&self) -> &Poly {
        &self.c0
    }

    /// The second component polynomial.
    pub fn c1(&self) -> &Poly {
        &self.c1
    }

    /// The context this ciphertext belongs to.
    pub fn context(&self) -> &Arc<Context> {
        self.c0.context()
    }

    /// Serialized size in bytes (matches
    /// [`EncryptionParams::ciphertext_bytes`]).
    ///
    /// [`EncryptionParams::ciphertext_bytes`]: crate::params::EncryptionParams::ciphertext_bytes
    pub fn byte_size(&self) -> usize {
        self.context().params().ciphertext_bytes()
    }

    /// Serializes the ciphertext to bytes: a 16-byte header followed by
    /// `c0` then `c1`, each modulus's residues bit-packed at that
    /// modulus's width (the size the paper's Table IV reports).
    pub fn to_bytes(&self) -> Vec<u8> {
        let ctx = self.context();
        let mut out = Vec::with_capacity(self.byte_size());
        out.extend_from_slice(&(ctx.degree() as u64).to_le_bytes());
        out.extend_from_slice(&(ctx.moduli_count() as u64).to_le_bytes());
        for poly in [&self.c0, &self.c1] {
            for (i, m) in ctx.moduli().iter().enumerate() {
                let bits = 64 - m.value().leading_zeros() as usize;
                out.extend_from_slice(&pack_bits(poly.residues(i), bits));
            }
        }
        out
    }

    /// Deserializes a ciphertext produced by [`Ciphertext::to_bytes`]
    /// under the same context.
    ///
    /// # Panics
    ///
    /// Panics if the header does not match the context or the payload is
    /// truncated.
    pub fn from_bytes(ctx: &Arc<Context>, bytes: &[u8]) -> Self {
        use crate::poly::PolyForm;
        let n = ctx.degree();
        let k = ctx.moduli_count();
        assert!(bytes.len() >= 16, "ciphertext header missing");
        let hdr_n = u64::from_le_bytes(bytes[0..8].try_into().unwrap()) as usize;
        let hdr_k = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        assert_eq!((hdr_n, hdr_k), (n, k), "ciphertext header mismatch");
        assert_eq!(
            bytes.len(),
            ctx.params().ciphertext_bytes(),
            "ciphertext payload size"
        );
        let mut off = 16usize;
        let mut read_poly = || {
            // Every element is written below, so a dirty pooled buffer is
            // fine.
            let mut data = pool::take(k * n);
            for (i, m) in ctx.moduli().iter().enumerate() {
                let bits = 64 - m.value().leading_zeros() as usize;
                let section = (n * bits).div_ceil(8);
                unpack_bits_into(
                    &bytes[off..off + section],
                    bits,
                    &mut data[i * n..(i + 1) * n],
                );
                off += section;
            }
            Poly::from_residues(ctx, data, PolyForm::Ntt)
        };
        let c0 = read_poly();
        let c1 = read_poly();
        Self { c0, c1 }
    }
}

/// Packs `values` into a byte stream at `bits` bits per value
/// (little-endian bit order).
pub fn pack_bits(values: &[u64], bits: usize) -> Vec<u8> {
    let mut out = vec![0u8; (values.len() * bits).div_ceil(8)];
    let mut bitpos = 0usize;
    for &v in values {
        for b in 0..bits {
            if (v >> b) & 1 == 1 {
                out[(bitpos + b) / 8] |= 1 << ((bitpos + b) % 8);
            }
        }
        bitpos += bits;
    }
    out
}

/// Unpacks `count` values of `bits` bits each from a byte stream.
pub fn unpack_bits(bytes: &[u8], bits: usize, count: usize) -> Vec<u64> {
    let mut out = vec![0u64; count];
    unpack_bits_into(bytes, bits, &mut out);
    out
}

/// Unpacks `out.len()` values of `bits` bits each into an existing
/// buffer (overwrites every element).
pub fn unpack_bits_into(bytes: &[u8], bits: usize, out: &mut [u64]) {
    let mut bitpos = 0usize;
    for slot in out.iter_mut() {
        let mut v = 0u64;
        for b in 0..bits {
            let p = bitpos + b;
            if (bytes[p / 8] >> (p % 8)) & 1 == 1 {
                v |= 1 << b;
            }
        }
        *slot = v;
        bitpos += bits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::BatchEncoder;
    use crate::encryptor::{Decryptor, Encryptor};
    use crate::keys::KeyGenerator;
    use crate::params::{EncryptionParams, ParamLevel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn serialization_roundtrip() {
        let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
        let mut rng = StdRng::seed_from_u64(11);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let pk = kg.public_key(&mut rng);
        let encoder = BatchEncoder::new(&ctx);
        let encryptor = Encryptor::new(&ctx, pk);
        let decryptor = Decryptor::new(&ctx, kg.secret_key().clone());

        let values: Vec<u64> = (0..100u64).collect();
        let ct = encryptor.encrypt(&encoder.encode(&values), &mut rng);
        let bytes = ct.to_bytes();
        assert_eq!(bytes.len(), ctx.params().ciphertext_bytes());
        let ct2 = Ciphertext::from_bytes(&ctx, &bytes);
        let decoded = encoder.decode(&decryptor.decrypt(&ct2));
        assert_eq!(&decoded[..100], &values[..]);
    }
}
