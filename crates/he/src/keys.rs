//! Key material: secret key, public key, and Galois (rotation) keys.
//!
//! The secret key is a uniform ternary polynomial. Galois keys are
//! RNS-decomposition key-switching keys (one digit per coefficient prime,
//! GHS style): digit `i` encrypts `g_i · s(X^g)` under `s`, where
//! `g_i = (q/q_i)·[(q/q_i)^{-1}]_{q_i}` is the CRT gadget.

use crate::context::Context;
use crate::poly::{Poly, PolyForm};
use crate::pool;
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// Samples a uniform ternary polynomial (coefficients in `{-1, 0, 1}`),
/// coefficient form.
pub(crate) fn sample_ternary<R: Rng>(ctx: &Arc<Context>, rng: &mut R) -> Poly {
    let n = ctx.degree();
    let coeffs: Vec<i64> = (0..n).map(|_| rng.gen_range(-1i64..=1)).collect();
    Poly::from_signed_coeffs(ctx, &coeffs)
}

/// Samples a centered-binomial error polynomial (η = 8, σ = 2),
/// coefficient form.
pub(crate) fn sample_error<R: Rng>(ctx: &Arc<Context>, rng: &mut R) -> Poly {
    let n = ctx.degree();
    let coeffs: Vec<i64> = (0..n)
        .map(|_| {
            let bits: u16 = rng.gen();
            let a = (bits & 0xFF).count_ones() as i64;
            let b = (bits >> 8).count_ones() as i64;
            a - b
        })
        .collect();
    Poly::from_signed_coeffs(ctx, &coeffs)
}

/// Samples a uniform polynomial over the full RNS space, NTT form.
pub(crate) fn sample_uniform<R: Rng>(ctx: &Arc<Context>, rng: &mut R) -> Poly {
    let n = ctx.degree();
    let k = ctx.moduli_count();
    // Every element is written below, so a dirty pooled buffer is fine.
    let mut data = pool::take(k * n);
    for (i, m) in ctx.moduli().iter().enumerate() {
        for j in 0..n {
            data[i * n + j] = rng.gen_range(0..m.value());
        }
    }
    Poly::from_residues(ctx, data, PolyForm::Ntt)
}

/// The secret key (ternary polynomial, stored in NTT form).
#[derive(Debug, Clone)]
pub struct SecretKey {
    pub(crate) s: Poly,
    /// Coefficient-form copy, needed to derive automorphed keys.
    pub(crate) s_coeff: Poly,
}

/// The public key `(b, a)` with `b = -(a·s + e)`, stored in NTT form.
#[derive(Debug, Clone)]
pub struct PublicKey {
    pub(crate) b: Poly,
    pub(crate) a: Poly,
}

/// One key-switching key: for each RNS digit `i`, a pair `(b_i, a_i)` with
/// `b_i = -(a_i·s + e_i) + g_i·s'`, all in NTT form.
#[derive(Debug, Clone)]
pub struct KeySwitchKey {
    pub(crate) pairs: Vec<(Poly, Poly)>,
}

/// Galois keys: a key-switching key per Galois element.
#[derive(Debug, Clone, Default)]
pub struct GaloisKeys {
    pub(crate) keys: HashMap<usize, KeySwitchKey>,
}

impl GaloisKeys {
    /// The Galois elements keys exist for.
    pub fn elements(&self) -> impl Iterator<Item = usize> + '_ {
        self.keys.keys().copied()
    }

    /// Whether a key exists for `galois_elt`.
    pub fn contains(&self, galois_elt: usize) -> bool {
        self.keys.contains_key(&galois_elt)
    }

    /// Number of keys held.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no keys are held.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Generates secret/public/Galois keys for a context.
#[derive(Debug)]
pub struct KeyGenerator {
    ctx: Arc<Context>,
    sk: SecretKey,
}

impl KeyGenerator {
    /// Generates a fresh secret key.
    pub fn new<R: Rng>(ctx: &Arc<Context>, rng: &mut R) -> Self {
        let s_coeff = sample_ternary(ctx, rng);
        let mut s = s_coeff.clone();
        s.to_ntt();
        Self {
            ctx: Arc::clone(ctx),
            sk: SecretKey { s, s_coeff },
        }
    }

    /// The secret key.
    pub fn secret_key(&self) -> &SecretKey {
        &self.sk
    }

    /// Re-embeds this generator's (ternary) secret polynomial into
    /// another context — used after modulus switching, where the same
    /// secret must decrypt under a reduced coefficient modulus.
    ///
    /// # Panics
    ///
    /// Panics if the target degree differs.
    pub fn secret_key_for(&self, target: &Arc<Context>) -> SecretKey {
        assert_eq!(target.degree(), self.ctx.degree(), "degree mismatch");
        // recover signed ternary coefficients from the first modulus
        let m0 = self.ctx.moduli()[0];
        let signed: Vec<i64> = self
            .sk
            .s_coeff
            .residues(0)
            .iter()
            .map(|&r| {
                if r == 0 {
                    0
                } else if r == 1 {
                    1
                } else {
                    debug_assert_eq!(r, m0.value() - 1);
                    -1
                }
            })
            .collect();
        let s_coeff = Poly::from_signed_coeffs(target, &signed);
        let mut s = s_coeff.clone();
        s.to_ntt();
        SecretKey { s, s_coeff }
    }

    /// Generates the public key.
    pub fn public_key<R: Rng>(&self, rng: &mut R) -> PublicKey {
        let a = sample_uniform(&self.ctx, rng);
        let mut e = sample_error(&self.ctx, rng);
        e.to_ntt();
        // b = -(a*s + e)
        let mut b = a.clone();
        b.mul_assign_ntt(&self.sk.s);
        b.add_assign(&e);
        b.neg_assign();
        PublicKey { b, a }
    }

    /// Generates a key-switching key from `s_prime` (NTT form) to the
    /// generator's secret key.
    fn key_switch_key<R: Rng>(&self, s_prime: &Poly, rng: &mut R) -> KeySwitchKey {
        let k = self.ctx.moduli_count();
        let mut pairs = Vec::with_capacity(k);
        for i in 0..k {
            let a_i = sample_uniform(&self.ctx, rng);
            let mut e_i = sample_error(&self.ctx, rng);
            e_i.to_ntt();
            // b_i = -(a_i*s + e_i) + g_i * s'
            let mut b_i = a_i.clone();
            b_i.mul_assign_ntt(&self.sk.s);
            b_i.add_assign(&e_i);
            b_i.neg_assign();
            let mut gs = s_prime.clone();
            gs.mul_scalar_per_modulus(&self.ctx.gadget()[i]);
            b_i.add_assign(&gs);
            pairs.push((b_i, a_i));
        }
        KeySwitchKey { pairs }
    }

    /// Generates Galois keys for the given Galois elements.
    ///
    /// # Panics
    ///
    /// Panics if the parameter level does not support rotation (fewer than
    /// two RNS primes leave no room for key-switching noise).
    pub fn galois_keys<R: Rng>(&self, elements: &[usize], rng: &mut R) -> GaloisKeys {
        assert!(
            self.ctx.params().level().supports_rotation(),
            "parameter level {} does not support rotations",
            self.ctx.params().level()
        );
        let mut keys = HashMap::new();
        for &g in elements {
            // s' = s(X^g)
            let mut s_auto = self.sk.s_coeff.apply_galois(g);
            s_auto.to_ntt();
            keys.insert(g, self.key_switch_key(&s_auto, rng));
        }
        GaloisKeys { keys }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{EncryptionParams, ParamLevel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn public_key_relation_holds() {
        // b + a*s should equal -e (small).
        let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
        let mut rng = StdRng::seed_from_u64(1);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let pk = kg.public_key(&mut rng);
        let mut check = pk.a.clone();
        check.mul_assign_ntt(&kg.secret_key().s);
        check.add_assign(&pk.b);
        check.to_coeff();
        // every coefficient small when centered
        for j in 0..ctx.degree() {
            let residues: Vec<u64> = (0..ctx.moduli_count())
                .map(|i| check.residues(i)[j])
                .collect();
            let (mag, _) = ctx.crt_lift_centered(&residues);
            assert!(mag.bits() <= 6, "error coefficient too large: {mag}");
        }
    }

    #[test]
    fn ternary_and_error_distributions_bounded() {
        let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
        let mut rng = StdRng::seed_from_u64(2);
        let t = sample_ternary(&ctx, &mut rng);
        let m0 = ctx.moduli()[0];
        for &c in t.residues(0) {
            assert!(c == 0 || c == 1 || c == m0.value() - 1);
        }
        let e = sample_error(&ctx, &mut rng);
        for &c in e.residues(0) {
            let centered = if c > m0.value() / 2 {
                m0.value() - c
            } else {
                c
            };
            assert!(centered <= 8, "CBD sample out of range");
        }
    }

    #[test]
    fn galois_keys_for_requested_elements() {
        let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
        let mut rng = StdRng::seed_from_u64(3);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let gk = kg.galois_keys(&[3, 9, 8191], &mut rng);
        assert_eq!(gk.len(), 3);
        assert!(gk.contains(3) && gk.contains(9) && gk.contains(8191));
        assert!(!gk.contains(27));
    }

    #[test]
    #[should_panic]
    fn rotation_keys_rejected_at_n2048() {
        let ctx = Context::new(EncryptionParams::new(ParamLevel::N2048));
        let mut rng = StdRng::seed_from_u64(4);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let _ = kg.galois_keys(&[3], &mut rng);
    }
}
