//! Shared precomputed state for one BFV parameter set.
//!
//! A [`Context`] owns everything expensive to compute once per parameter
//! set: NTT tables per coefficient prime, the plaintext-modulus NTT tables
//! used by batching, CRT/RNS reconstruction constants, `Δ = ⌊q/t⌋` in RNS
//! form, and the key-switching gadget values.

use crate::bigint::BigUint;
use crate::modulus::Modulus;
use crate::ntt::NttTables;
use crate::params::EncryptionParams;
use std::sync::Arc;

/// Precomputed context for a parameter set. Create once and share via
/// [`Arc`].
#[derive(Debug)]
pub struct Context {
    params: EncryptionParams,
    moduli: Vec<Modulus>,
    ntt_tables: Vec<NttTables>,
    plain_modulus: Modulus,
    plain_ntt: NttTables,
    /// Big-integer q = product of coefficient moduli.
    q_big: BigUint,
    /// q/2 (for centering).
    q_half: BigUint,
    /// Δ = floor(q/t) as residues mod each q_i.
    delta_mod_qi: Vec<u64>,
    /// CRT: punctured products q_i_hat = q / q_i (bigint).
    punctured: Vec<BigUint>,
    /// [(q/q_i)^{-1}]_{q_i}.
    punctured_inv: Vec<u64>,
    /// Key-switch gadget g_i = (q/q_i) * [(q/q_i)^{-1}]_{q_i} mod q_j, for
    /// each digit i and modulus j: `gadget[i][j]`.
    gadget: Vec<Vec<u64>>,
    /// Slot index map for batching (see encoding module).
    slot_index_map: Vec<usize>,
}

fn bit_reverse(x: usize, bits: u32) -> usize {
    x.reverse_bits() >> (usize::BITS - bits)
}

impl Context {
    /// Builds the context for the given parameters.
    #[allow(clippy::needless_range_loop)]
    pub fn new(params: EncryptionParams) -> Arc<Self> {
        let n = params.degree();
        let moduli: Vec<Modulus> = params
            .coeff_moduli()
            .iter()
            .map(|&q| Modulus::new(q))
            .collect();
        let ntt_tables: Vec<NttTables> = params
            .coeff_moduli()
            .iter()
            .map(|&q| NttTables::new(q, n))
            .collect();
        let plain_modulus = Modulus::new(params.plain_modulus());
        let plain_ntt = NttTables::new(params.plain_modulus(), n);

        // q as bigint
        let mut q_big = BigUint::from_u64(1);
        for &q in params.coeff_moduli() {
            q_big = q_big.mul_u64(q);
        }
        let (q_half, _) = q_big.div_rem(&BigUint::from_u64(2));

        // delta = floor(q / t)
        let (delta, _) = q_big.div_rem(&BigUint::from_u64(params.plain_modulus()));
        let delta_mod_qi: Vec<u64> = params
            .coeff_moduli()
            .iter()
            .map(|&q| delta.rem_u64(q))
            .collect();

        // CRT constants
        let k = moduli.len();
        let mut punctured = Vec::with_capacity(k);
        let mut punctured_inv = Vec::with_capacity(k);
        for i in 0..k {
            let mut p = BigUint::from_u64(1);
            for (j, &q) in params.coeff_moduli().iter().enumerate() {
                if j != i {
                    p = p.mul_u64(q);
                }
            }
            let inv = moduli[i]
                .inv(p.rem_u64(moduli[i].value()))
                .expect("moduli are distinct primes, inverse exists");
            punctured.push(p);
            punctured_inv.push(inv);
        }

        // gadget[i][j] = (q/q_i) * inv_i mod q_j
        let mut gadget = Vec::with_capacity(k);
        for i in 0..k {
            let gi_scaled = punctured[i].mul_u64(punctured_inv[i]);
            let row: Vec<u64> = params
                .coeff_moduli()
                .iter()
                .map(|&qj| gi_scaled.rem_u64(qj))
                .collect();
            gadget.push(row);
        }

        // Batching slot index map (SEAL's matrix representation): slot i of
        // row 0 lives at bit-reversed index of (3^i - 1)/2, slot i of row 1
        // at bit-reversed index of (2n - 3^i - 1)/2.
        let two_n = 2 * n;
        let logn = n.trailing_zeros();
        let mut slot_index_map = vec![0usize; n];
        let mut pos = 1usize;
        for i in 0..n / 2 {
            let index1 = (pos - 1) / 2;
            let index2 = (two_n - pos - 1) / 2;
            slot_index_map[i] = bit_reverse(index1, logn);
            slot_index_map[i + n / 2] = bit_reverse(index2, logn);
            pos = (pos * 3) % two_n;
        }

        Arc::new(Self {
            params,
            moduli,
            ntt_tables,
            plain_modulus,
            plain_ntt,
            q_big,
            q_half,
            delta_mod_qi,
            punctured,
            punctured_inv,
            gadget,
            slot_index_map,
        })
    }

    /// The encryption parameters.
    pub fn params(&self) -> &EncryptionParams {
        &self.params
    }

    /// Polynomial degree `N`.
    pub fn degree(&self) -> usize {
        self.params.degree()
    }

    /// Number of RNS coefficient moduli.
    pub fn moduli_count(&self) -> usize {
        self.moduli.len()
    }

    /// The RNS moduli.
    pub fn moduli(&self) -> &[Modulus] {
        &self.moduli
    }

    /// NTT tables per coefficient modulus.
    pub fn ntt_tables(&self) -> &[NttTables] {
        &self.ntt_tables
    }

    /// The plaintext modulus as a [`Modulus`].
    pub fn plain_modulus(&self) -> &Modulus {
        &self.plain_modulus
    }

    /// NTT tables over the plaintext modulus (used by batching).
    pub fn plain_ntt(&self) -> &NttTables {
        &self.plain_ntt
    }

    /// `q` as a big integer.
    pub fn q_big(&self) -> &BigUint {
        &self.q_big
    }

    /// `q/2` as a big integer.
    pub fn q_half(&self) -> &BigUint {
        &self.q_half
    }

    /// `Δ = ⌊q/t⌋ mod q_i` for each modulus.
    pub fn delta_mod_qi(&self) -> &[u64] {
        &self.delta_mod_qi
    }

    /// CRT punctured products `q / q_i`.
    pub fn punctured(&self) -> &[BigUint] {
        &self.punctured
    }

    /// `[(q/q_i)^{-1}]_{q_i}`.
    pub fn punctured_inv(&self) -> &[u64] {
        &self.punctured_inv
    }

    /// Key-switch gadget residues `gadget[i][j] = g_i mod q_j`.
    pub fn gadget(&self) -> &[Vec<u64>] {
        &self.gadget
    }

    /// Batching slot index map: slot `i` of the plaintext vector lives at
    /// coefficient-NTT position `slot_index_map[i]`.
    pub fn slot_index_map(&self) -> &[usize] {
        &self.slot_index_map
    }

    /// Reconstructs the centered big-integer value of one coefficient from
    /// its RNS residues, returning `(magnitude, is_negative)`.
    pub fn crt_lift_centered(&self, residues: &[u64]) -> (BigUint, bool) {
        debug_assert_eq!(residues.len(), self.moduli.len());
        let mut acc = BigUint::zero();
        for (i, &r) in residues.iter().enumerate() {
            let term = self.punctured[i].mul_u64(self.moduli[i].mul(r, self.punctured_inv[i]));
            acc = acc.add(&term);
        }
        let (_, mut acc) = acc.div_rem(&self.q_big);
        if acc > self.q_half {
            acc = self.q_big.sub(&acc);
            (acc, true)
        } else {
            (acc, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{EncryptionParams, ParamLevel};

    #[test]
    fn crt_lift_small_values() {
        let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
        // value 42 in all residues
        let residues: Vec<u64> = ctx.moduli().iter().map(|_| 42u64).collect();
        let (v, neg) = ctx.crt_lift_centered(&residues);
        assert!(!neg);
        assert_eq!(v, BigUint::from_u64(42));
        // value -7: q_i - 7 in each residue
        let residues: Vec<u64> = ctx.moduli().iter().map(|m| m.value() - 7).collect();
        let (v, neg) = ctx.crt_lift_centered(&residues);
        assert!(neg);
        assert_eq!(v, BigUint::from_u64(7));
    }

    #[test]
    fn delta_times_t_close_to_q() {
        let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
        let t = ctx.params().plain_modulus();
        // delta = floor(q/t) => q - delta*t < t. Verify via first modulus residue
        // of delta: reconstruct delta from its residues (it fits the CRT range).
        let (delta, neg) = ctx.crt_lift_centered(ctx.delta_mod_qi());
        // delta is huge (about q/t ~ 2^89) and positive when centered? It is
        // less than q/2, so not negative.
        assert!(!neg);
        let dt = delta.mul_u64(t);
        let diff = ctx.q_big().sub(&dt);
        assert!(diff < BigUint::from_u64(t));
    }

    #[test]
    fn slot_map_is_permutation() {
        let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
        let mut seen = vec![false; ctx.degree()];
        for &p in ctx.slot_index_map() {
            assert!(!seen[p], "slot index map not injective");
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gadget_sums_to_identity() {
        // sum_i g_i * x_i where x_i = x mod q_i reconstructs x mod q.
        // Check for x = 123456789 using residue arithmetic mod each q_j.
        let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
        let x = 123_456_789u64;
        for (j, mj) in ctx.moduli().iter().enumerate() {
            let mut acc = 0u64;
            for i in 0..ctx.moduli_count() {
                let xi = x % ctx.moduli()[i].value();
                acc = mj.add(acc, mj.mul(ctx.gadget()[i][j], mj.reduce(xi)));
            }
            assert_eq!(acc, mj.reduce(x));
        }
    }
}
