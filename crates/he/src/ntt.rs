//! Negacyclic number-theoretic transform over `Z_p[X]/(X^N + 1)`.
//!
//! Standard Cooley–Tukey / Gentleman–Sande butterflies with the
//! `psi`-twisted ordering (Longa–Naehrig): the forward transform maps
//! coefficients to evaluations at odd powers of the primitive `2N`-th root
//! of unity, so pointwise products correspond to negacyclic convolution.
//! Twiddles are precomputed with Shoup constants for fast constant
//! multiplication.

use crate::modulus::Modulus;
use crate::primes::primitive_root;

/// Precomputed tables for the negacyclic NTT of a fixed degree and prime.
#[derive(Debug, Clone)]
pub struct NttTables {
    modulus: Modulus,
    degree: usize,
    /// Powers of psi in bit-reversed order (forward transform).
    root_powers: Vec<u64>,
    root_powers_shoup: Vec<u64>,
    /// Powers of psi^{-1} in bit-reversed order (inverse transform).
    inv_root_powers: Vec<u64>,
    inv_root_powers_shoup: Vec<u64>,
    /// N^{-1} mod p, with Shoup constant.
    inv_degree: u64,
    inv_degree_shoup: u64,
}

fn bit_reverse(x: usize, bits: u32) -> usize {
    x.reverse_bits() >> (usize::BITS - bits)
}

impl NttTables {
    /// Builds NTT tables for `degree` (a power of two) modulo prime `p`
    /// with `p ≡ 1 (mod 2*degree)`.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is not a power of two or the congruence fails.
    pub fn new(p: u64, degree: usize) -> Self {
        assert!(degree.is_power_of_two(), "degree must be a power of two");
        assert_eq!(
            p % (2 * degree as u64),
            1,
            "prime must be 1 mod 2*degree for the negacyclic NTT"
        );
        let modulus = Modulus::new(p);
        let psi = primitive_root(p, 2 * degree as u64);
        let psi_inv = modulus.inv(psi).expect("psi invertible");
        let bits = degree.trailing_zeros();

        let mut root_powers = vec![0u64; degree];
        let mut inv_root_powers = vec![0u64; degree];
        let mut acc = 1u64;
        let mut acc_inv = 1u64;
        // powers stored at bit-reversed indices
        let mut fwd = vec![0u64; degree];
        let mut inv = vec![0u64; degree];
        for i in 0..degree {
            fwd[i] = acc;
            inv[i] = acc_inv;
            acc = modulus.mul(acc, psi);
            acc_inv = modulus.mul(acc_inv, psi_inv);
        }
        for i in 0..degree {
            root_powers[i] = fwd[bit_reverse(i, bits)];
            inv_root_powers[i] = inv[bit_reverse(i, bits)];
        }

        let root_powers_shoup = root_powers.iter().map(|&w| modulus.shoup(w)).collect();
        let inv_root_powers_shoup = inv_root_powers.iter().map(|&w| modulus.shoup(w)).collect();
        let inv_degree = modulus.inv(degree as u64).expect("degree invertible");
        let inv_degree_shoup = modulus.shoup(inv_degree);
        Self {
            modulus,
            degree,
            root_powers,
            root_powers_shoup,
            inv_root_powers,
            inv_root_powers_shoup,
            inv_degree,
            inv_degree_shoup,
        }
    }

    /// The modulus these tables were built for.
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// The transform degree `N`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// In-place forward negacyclic NTT (coefficients -> evaluations, in
    /// bit-reversed evaluation order).
    ///
    /// Uses SEAL-style lazy reduction (Longa–Naehrig): butterfly values
    /// are kept in `[0, 4p)` throughout the stages — each butterfly does
    /// one conditional subtraction of `2p` plus a lazy Shoup multiply in
    /// `[0, 2p)` — and a single reduction pass at the end maps the array
    /// back to `[0, p)`. This trades the two conditional corrections per
    /// butterfly of the textbook form for roughly half that, which is
    /// where most of the transform time goes.
    ///
    /// The loop body lives behind the [`crate::arch`] kernel dispatch:
    /// the scalar reference and the vectorized (AVX2/NEON) butterflies
    /// are bit-identical, so the dispatched choice never changes the
    /// output.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != degree`.
    pub fn forward(&self, a: &mut [u64]) {
        self.forward_with(crate::arch::kernels(), a);
    }

    /// [`NttTables::forward`] on an explicit kernel table instead of the
    /// dispatched one — lets tests and benches compare backends
    /// side-by-side without touching the global dispatch state.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != degree`.
    pub fn forward_with(&self, kernels: &crate::arch::Kernels, a: &mut [u64]) {
        assert_eq!(a.len(), self.degree);
        (kernels.ntt_forward)(&self.modulus, &self.root_powers, &self.root_powers_shoup, a);
    }

    /// In-place inverse negacyclic NTT (evaluations -> coefficients).
    ///
    /// Lazy-reduction form: butterfly values stay in `[0, 2p)` (the sum
    /// gets one conditional subtraction of `2p`, the difference goes
    /// through a lazy Shoup multiply), and the final `N^{-1}` scaling
    /// pass performs the full reduction to `[0, p)`.
    ///
    /// Like [`NttTables::forward`], the butterflies run on the
    /// [`crate::arch`]-dispatched kernel.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != degree`.
    pub fn inverse(&self, a: &mut [u64]) {
        self.inverse_with(crate::arch::kernels(), a);
    }

    /// [`NttTables::inverse`] on an explicit kernel table instead of the
    /// dispatched one.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != degree`.
    pub fn inverse_with(&self, kernels: &crate::arch::Kernels, a: &mut [u64]) {
        assert_eq!(a.len(), self.degree);
        (kernels.ntt_inverse)(
            &self.modulus,
            &self.inv_root_powers,
            &self.inv_root_powers_shoup,
            self.inv_degree,
            self.inv_degree_shoup,
            a,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::ntt_primes;

    #[allow(clippy::needless_range_loop)]
    fn naive_negacyclic(a: &[u64], b: &[u64], p: u64) -> Vec<u64> {
        let n = a.len();
        let m = Modulus::new(p);
        let mut out = vec![0u64; n];
        for i in 0..n {
            for j in 0..n {
                let prod = m.mul(a[i], b[j]);
                let k = i + j;
                if k < n {
                    out[k] = m.add(out[k], prod);
                } else {
                    out[k - n] = m.sub(out[k - n], prod);
                }
            }
        }
        out
    }

    #[test]
    fn roundtrip() {
        for degree in [8usize, 64, 1024] {
            let p = ntt_primes(30, degree, 1)[0];
            let tables = NttTables::new(p, degree);
            let orig: Vec<u64> = (0..degree as u64).map(|i| (i * 37 + 11) % p).collect();
            let mut a = orig.clone();
            tables.forward(&mut a);
            tables.inverse(&mut a);
            assert_eq!(a, orig);
        }
    }

    #[test]
    fn roundtrip_at_max_prime_size() {
        // 62-bit prime: 4p sits right under 2^64, the tightest case for
        // the lazy-reduction [0, 4p) intermediate values.
        let degree = 256usize;
        let p = ntt_primes(62, degree, 1)[0];
        let tables = NttTables::new(p, degree);
        let orig: Vec<u64> = (0..degree as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % p)
            .collect();
        let mut a = orig.clone();
        tables.forward(&mut a);
        for &x in &a {
            assert!(x < p, "forward output must be fully reduced");
        }
        tables.inverse(&mut a);
        for &x in &a {
            assert!(x < p, "inverse output must be fully reduced");
        }
        assert_eq!(a, orig);
    }

    #[test]
    fn pointwise_is_negacyclic_convolution() {
        let degree = 32usize;
        let p = ntt_primes(30, degree, 1)[0];
        let m = Modulus::new(p);
        let tables = NttTables::new(p, degree);
        let a: Vec<u64> = (0..degree as u64).map(|i| (i * i + 3) % p).collect();
        let b: Vec<u64> = (0..degree as u64).map(|i| (7 * i + 1) % p).collect();
        let expected = naive_negacyclic(&a, &b, p);
        let mut fa = a.clone();
        let mut fb = b.clone();
        tables.forward(&mut fa);
        tables.forward(&mut fb);
        let mut fc: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| m.mul(x, y)).collect();
        tables.inverse(&mut fc);
        assert_eq!(fc, expected);
    }

    #[test]
    fn x_times_x_pow_n_minus_1_wraps_negatively() {
        // (X) * (X^{N-1}) = X^N = -1 in the negacyclic ring.
        let degree = 16usize;
        let p = ntt_primes(30, degree, 1)[0];
        let tables = NttTables::new(p, degree);
        let mut a = vec![0u64; degree];
        a[1] = 1;
        let mut b = vec![0u64; degree];
        b[degree - 1] = 1;
        let m = Modulus::new(p);
        tables.forward(&mut a);
        tables.forward(&mut b);
        let mut c: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| m.mul(x, y)).collect();
        tables.inverse(&mut c);
        let mut expected = vec![0u64; degree];
        expected[0] = p - 1;
        assert_eq!(c, expected);
    }
}
