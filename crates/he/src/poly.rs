//! RNS polynomials in `Z_q[X]/(X^N + 1)`.
//!
//! A [`Poly`] stores one residue vector per coefficient prime
//! (residue-major layout) and tracks whether it is in coefficient or
//! NTT (evaluation) representation. All ring operations required by BFV
//! are provided: addition, subtraction, negation, pointwise (NTT-domain)
//! multiplication, scalar multiplication and Galois automorphisms.

use crate::context::Context;
use crate::pool;
use std::sync::Arc;

/// Representation of a polynomial's residues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolyForm {
    /// Coefficient representation.
    Coeff,
    /// NTT (evaluation) representation.
    Ntt,
}

/// An RNS polynomial bound to a [`Context`].
#[derive(Debug)]
pub struct Poly {
    ctx: Arc<Context>,
    /// `moduli_count * degree` residues, residue-major.
    data: Vec<u64>,
    form: PolyForm,
}

impl Clone for Poly {
    fn clone(&self) -> Self {
        let mut data = pool::take(self.data.len());
        data.copy_from_slice(&self.data);
        Self {
            ctx: Arc::clone(&self.ctx),
            data,
            form: self.form,
        }
    }
}

impl Drop for Poly {
    fn drop(&mut self) {
        pool::recycle(std::mem::take(&mut self.data));
    }
}

impl Poly {
    /// The zero polynomial in the given form.
    pub fn zero(ctx: &Arc<Context>, form: PolyForm) -> Self {
        Self {
            ctx: Arc::clone(ctx),
            data: pool::take_zeroed(ctx.moduli_count() * ctx.degree()),
            form,
        }
    }

    /// Builds a polynomial from raw residues (residue-major).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != moduli_count * degree`.
    pub fn from_residues(ctx: &Arc<Context>, data: Vec<u64>, form: PolyForm) -> Self {
        assert_eq!(data.len(), ctx.moduli_count() * ctx.degree());
        Self {
            ctx: Arc::clone(ctx),
            data,
            form,
        }
    }

    /// Builds a polynomial from signed coefficients, reducing each into
    /// every RNS modulus (coefficient form).
    pub fn from_signed_coeffs(ctx: &Arc<Context>, coeffs: &[i64]) -> Self {
        assert_eq!(coeffs.len(), ctx.degree());
        let n = ctx.degree();
        let k = ctx.moduli_count();
        // Every element is written below, so a dirty pooled buffer is fine.
        let mut data = pool::take(k * n);
        for (i, m) in ctx.moduli().iter().enumerate() {
            for (j, &c) in coeffs.iter().enumerate() {
                data[i * n + j] = if c >= 0 {
                    m.reduce(c as u64)
                } else {
                    m.sub(0, m.reduce((-c) as u64))
                };
            }
        }
        let _ = k;
        Self {
            ctx: Arc::clone(ctx),
            data,
            form: PolyForm::Coeff,
        }
    }

    /// The context this polynomial belongs to.
    pub fn context(&self) -> &Arc<Context> {
        &self.ctx
    }

    /// Current representation.
    pub fn form(&self) -> PolyForm {
        self.form
    }

    /// Residues for modulus index `i`.
    pub fn residues(&self, i: usize) -> &[u64] {
        let n = self.ctx.degree();
        &self.data[i * n..(i + 1) * n]
    }

    /// Mutable residues for modulus index `i`.
    pub fn residues_mut(&mut self, i: usize) -> &mut [u64] {
        let n = self.ctx.degree();
        &mut self.data[i * n..(i + 1) * n]
    }

    /// Raw residue storage.
    pub fn raw(&self) -> &[u64] {
        &self.data
    }

    /// Converts to NTT form in place (no-op if already NTT).
    pub fn to_ntt(&mut self) {
        if self.form == PolyForm::Ntt {
            return;
        }
        spot_trace::count(spot_trace::Counter::NttFwd, 1);
        let ctx = Arc::clone(&self.ctx);
        for (i, tables) in ctx.ntt_tables().iter().enumerate() {
            tables.forward(self.residues_mut(i));
        }
        self.form = PolyForm::Ntt;
    }

    /// Converts to coefficient form in place (no-op if already coeff).
    pub fn to_coeff(&mut self) {
        if self.form == PolyForm::Coeff {
            return;
        }
        spot_trace::count(spot_trace::Counter::NttInv, 1);
        let ctx = Arc::clone(&self.ctx);
        for (i, tables) in ctx.ntt_tables().iter().enumerate() {
            tables.inverse(self.residues_mut(i));
        }
        self.form = PolyForm::Coeff;
    }

    fn assert_compatible(&self, other: &Poly) {
        assert!(
            Arc::ptr_eq(&self.ctx, &other.ctx) || self.ctx.params() == other.ctx.params(),
            "polynomials from different contexts"
        );
        assert_eq!(self.form, other.form, "polynomial form mismatch");
    }

    /// `self += other` (element-wise in either form).
    pub fn add_assign(&mut self, other: &Poly) {
        self.assert_compatible(other);
        let ctx = Arc::clone(&self.ctx);
        let n = ctx.degree();
        let kernels = crate::arch::kernels();
        for (i, m) in ctx.moduli().iter().enumerate() {
            let dst = &mut self.data[i * n..(i + 1) * n];
            let src = &other.data[i * n..(i + 1) * n];
            (kernels.pointwise_add)(m, dst, src);
        }
    }

    /// `self -= other`.
    pub fn sub_assign(&mut self, other: &Poly) {
        self.assert_compatible(other);
        let ctx = Arc::clone(&self.ctx);
        let n = ctx.degree();
        let kernels = crate::arch::kernels();
        for (i, m) in ctx.moduli().iter().enumerate() {
            let dst = &mut self.data[i * n..(i + 1) * n];
            let src = &other.data[i * n..(i + 1) * n];
            (kernels.pointwise_sub)(m, dst, src);
        }
    }

    /// `self = -self`.
    pub fn neg_assign(&mut self) {
        let ctx = Arc::clone(&self.ctx);
        let n = ctx.degree();
        for (i, m) in ctx.moduli().iter().enumerate() {
            for d in &mut self.data[i * n..(i + 1) * n] {
                *d = m.neg(*d);
            }
        }
    }

    /// `self *= other`, pointwise; both must be in NTT form.
    ///
    /// # Panics
    ///
    /// Panics if either polynomial is in coefficient form.
    pub fn mul_assign_ntt(&mut self, other: &Poly) {
        assert_eq!(self.form, PolyForm::Ntt, "lhs must be in NTT form");
        self.assert_compatible(other);
        let ctx = Arc::clone(&self.ctx);
        let n = ctx.degree();
        let kernels = crate::arch::kernels();
        for (i, m) in ctx.moduli().iter().enumerate() {
            let dst = &mut self.data[i * n..(i + 1) * n];
            let src = &other.data[i * n..(i + 1) * n];
            (kernels.pointwise_mul)(m, dst, src);
        }
    }

    /// `self += a * b`, pointwise; all three must be in NTT form.
    ///
    /// Fused form of `mul_assign_ntt` + `add_assign` that avoids the
    /// intermediate product polynomial — the key-switch inner loop uses
    /// this to accumulate `digit * ksk` terms without cloning the digit.
    ///
    /// # Panics
    ///
    /// Panics if any polynomial is in coefficient form.
    pub fn add_mul_assign_ntt(&mut self, a: &Poly, b: &Poly) {
        assert_eq!(self.form, PolyForm::Ntt, "accumulator must be in NTT form");
        self.assert_compatible(a);
        self.assert_compatible(b);
        let ctx = Arc::clone(&self.ctx);
        let n = ctx.degree();
        let kernels = crate::arch::kernels();
        for (i, m) in ctx.moduli().iter().enumerate() {
            let dst = &mut self.data[i * n..(i + 1) * n];
            let sa = &a.data[i * n..(i + 1) * n];
            let sb = &b.data[i * n..(i + 1) * n];
            (kernels.pointwise_add_mul)(m, dst, sa, sb);
        }
    }

    /// Relabels the representation without transforming the residues.
    ///
    /// Escape hatch for buffer-reuse patterns: a caller that overwrites
    /// every residue of an NTT-form scratch polynomial with fresh
    /// coefficient data must relabel it `Coeff` before calling
    /// [`Poly::to_ntt`] again. The caller is responsible for the data
    /// actually matching `form`.
    pub fn reinterpret_form(&mut self, form: PolyForm) {
        self.form = form;
    }

    /// Multiplies every residue of modulus `i` by `scalar_i` (a per-modulus
    /// scalar, e.g. `Δ mod q_i`).
    pub fn mul_scalar_per_modulus(&mut self, scalars: &[u64]) {
        let ctx = Arc::clone(&self.ctx);
        assert_eq!(scalars.len(), ctx.moduli_count());
        let n = ctx.degree();
        let kernels = crate::arch::kernels();
        for (i, m) in ctx.moduli().iter().enumerate() {
            let s = m.reduce(scalars[i]);
            (kernels.mul_scalar)(m, &mut self.data[i * n..(i + 1) * n], s, m.shoup(s));
        }
    }

    /// Applies the Galois automorphism `X -> X^g` (odd `g`, `1 <= g < 2N`).
    ///
    /// Must be in coefficient form: coefficient `j` of the result comes
    /// from coefficient `j' ` where `j' * g ≡ j (mod 2N)` with the
    /// negacyclic sign rule.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial is in NTT form or `g` is even.
    #[allow(clippy::needless_range_loop)]
    pub fn apply_galois(&self, g: usize) -> Poly {
        assert_eq!(self.form, PolyForm::Coeff, "galois requires coeff form");
        assert_eq!(g % 2, 1, "galois element must be odd");
        let ctx = &self.ctx;
        let n = ctx.degree();
        let two_n = 2 * n;
        let mut out = Poly::zero(ctx, PolyForm::Coeff);
        for (i, m) in ctx.moduli().iter().enumerate() {
            let src = self.residues(i);
            let dst = out.residues_mut(i);
            for j in 0..n {
                // x^j -> x^{j*g mod 2n}, with x^n = -1.
                let idx = (j * g) % two_n;
                let v = src[j];
                if idx < n {
                    dst[idx] = m.add(dst[idx], v);
                } else {
                    dst[idx - n] = m.sub(dst[idx - n], v);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::params::{EncryptionParams, ParamLevel};

    fn ctx() -> Arc<Context> {
        Context::new(EncryptionParams::new(ParamLevel::N4096))
    }

    #[test]
    fn ntt_roundtrip_preserves_poly() {
        let ctx = ctx();
        let coeffs: Vec<i64> = (0..ctx.degree() as i64)
            .map(|i| (i * 7) % 1000 - 500)
            .collect();
        let orig = Poly::from_signed_coeffs(&ctx, &coeffs);
        let mut p = orig.clone();
        p.to_ntt();
        p.to_coeff();
        assert_eq!(p.raw(), orig.raw());
    }

    #[test]
    fn add_then_sub_is_identity() {
        let ctx = ctx();
        let a = Poly::from_signed_coeffs(&ctx, &vec![3i64; ctx.degree()]);
        let b = Poly::from_signed_coeffs(&ctx, &vec![-5i64; ctx.degree()]);
        let mut c = a.clone();
        c.add_assign(&b);
        c.sub_assign(&b);
        assert_eq!(c.raw(), a.raw());
    }

    #[test]
    fn galois_identity_element() {
        let ctx = ctx();
        let coeffs: Vec<i64> = (0..ctx.degree() as i64).map(|i| i % 17).collect();
        let p = Poly::from_signed_coeffs(&ctx, &coeffs);
        let q = p.apply_galois(1);
        assert_eq!(p.raw(), q.raw());
    }

    #[test]
    fn galois_composition() {
        // applying g then h equals applying g*h mod 2n
        let ctx = ctx();
        let n = ctx.degree();
        let coeffs: Vec<i64> = (0..n as i64).map(|i| (i * i) % 23 - 11).collect();
        let p = Poly::from_signed_coeffs(&ctx, &coeffs);
        let g = 3usize;
        let h = 5usize;
        let a = p.apply_galois(g).apply_galois(h);
        let b = p.apply_galois((g * h) % (2 * n));
        assert_eq!(a.raw(), b.raw());
    }

    #[test]
    fn ntt_mul_is_ring_mul() {
        // (1 + x) * (1 - x) = 1 - x^2
        let ctx = ctx();
        let n = ctx.degree();
        let mut a_coeffs = vec![0i64; n];
        a_coeffs[0] = 1;
        a_coeffs[1] = 1;
        let mut b_coeffs = vec![0i64; n];
        b_coeffs[0] = 1;
        b_coeffs[1] = -1;
        let mut a = Poly::from_signed_coeffs(&ctx, &a_coeffs);
        let mut b = Poly::from_signed_coeffs(&ctx, &b_coeffs);
        a.to_ntt();
        b.to_ntt();
        a.mul_assign_ntt(&b);
        a.to_coeff();
        let mut expected = vec![0i64; n];
        expected[0] = 1;
        expected[2] = -1;
        let e = Poly::from_signed_coeffs(&ctx, &expected);
        assert_eq!(a.raw(), e.raw());
    }
}
